"""``python -m repro``: regenerate the paper's tables and figures."""

import sys

from .reporting import main

if __name__ == "__main__":
    sys.exit(main())
