"""Sweep points: picklable units of work with content-addressed keys.

A :class:`SweepPoint` names a module-level callable (``target``,
written ``"package.module:function"``) and the keyword arguments to
call it with.  Everything about the point — its cache key, its RNG
seed — derives from that identity, so two processes that agree on the
point agree on the result.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

#: Bump when the meaning of cached results changes (result schema,
#: seeding scheme, calibration defaults).  Combined with the package
#: version so releases invalidate stale caches automatically.
#: v2: telemetry mode joined the cache key (a metrics-only entry no
#: longer satisfies a span-instrumented request).
#: v3: the serialized topology spec joined the cache key, so cached
#: points are addressed by the testbed shape they ran on.
SWEEP_SCHEMA_VERSION = 3

#: The schema the RNG *seed* derivation is frozen at.  Seeds must stay
#: stable across cache-schema bumps — they define the simulated bytes,
#: and the golden fixtures (tests/golden/) pin results produced under
#: schema 2.  Cache addressing evolves; the seed payload does not.
SEED_SCHEMA_VERSION = 2


class SweepError(RuntimeError):
    """Raised for malformed points, targets or parameters."""


def _repro_version() -> str:
    from .. import __version__
    return __version__


def canonical_params(params: Dict[str, Any]) -> str:
    """A canonical JSON encoding of ``params``.

    Key order never matters: ``{"a": 1, "b": 2}`` and the same dict
    built in the opposite insertion order produce the same string
    (``sort_keys`` applies recursively).  Only JSON-representable
    values are allowed — a param that cannot round-trip through JSON
    would make the cache key ambiguous.
    """
    try:
        return json.dumps(params, sort_keys=True,
                          separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise SweepError(
            f"sweep params must be JSON-representable: {exc}") from exc


def cache_key(experiment: str, target: str, params: Dict[str, Any],
              version: Optional[str] = None,
              telemetry: Any = False,
              topology: Optional[Dict[str, Any]] = None) -> str:
    """The content address of one sweep point.

    sha256 over (experiment, target, canonical params, repro version,
    sweep schema version, telemetry mode, and — when the point declares
    one — the canonical serialized topology).  Any change to the
    parameters or to the code version yields a new key; reordering the
    params dict does not.  The telemetry mode is part of the key
    because it changes what the cached entry *contains*: a point run
    without span tracing must not satisfy a ``telemetry="spans"``
    request whose merged report depends on the ``spans.*`` histograms.
    The topology is part of the key because the same target + params
    can elaborate different testbed shapes (``scale-tenants`` tenant
    mixes): a cached result is only valid for the shape it ran on.
    """
    version = version if version is not None else _repro_version()
    parts = [
        experiment,
        target,
        canonical_params(params),
        str(version),
        str(SWEEP_SCHEMA_VERSION),
        str(telemetry),
    ]
    if topology is not None:
        parts.append(canonical_params(topology))
    return hashlib.sha256("\x00".join(parts).encode("utf-8")).hexdigest()


def seed_payload_key(experiment: str, target: str, params: Dict[str, Any],
                     version: Optional[str] = None,
                     telemetry: Any = False) -> str:
    """The digest the per-point RNG seed derives from.

    Identical to the schema-2 :func:`cache_key` payload and frozen
    there on purpose: the seed determines the simulated bytes, so it
    must not move when cache *addressing* evolves (schema bumps, the
    topology joining the key).  The topology is deliberately excluded —
    it is derived from the params, so including it would change every
    seed the moment a builder adds a field to its spec.
    """
    version = version if version is not None else _repro_version()
    payload = "\x00".join([
        experiment,
        target,
        canonical_params(params),
        str(version),
        str(SEED_SCHEMA_VERSION),
        str(telemetry),
    ])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def point_seed(key: str) -> int:
    """Derive the point's RNG seed from its cache key.

    Seeding from the key (not from wall clock, worker id or submission
    order) is what makes ``--jobs N`` bit-identical to ``--jobs 1``:
    whichever process runs the point, the global ``random`` module is
    reset to the same state first.
    """
    return int(key[:16], 16)


def resolve_target(target: str) -> Callable[..., Any]:
    """Import ``"package.module:function"`` and return the callable."""
    module_name, _, func_name = target.partition(":")
    if not module_name or not func_name:
        raise SweepError(
            f"target {target!r} must look like 'package.module:function'")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SweepError(f"cannot import target module "
                         f"{module_name!r}: {exc}") from exc
    func = getattr(module, func_name, None)
    if not callable(func):
        raise SweepError(f"target {target!r} does not name a callable")
    return func


@dataclass
class SweepPoint:
    """One independent simulation in a sweep.

    ``experiment``
        The figure/table this point belongs to (``"fig7b"``); part of
        the cache key and of progress reporting.
    ``target``
        Dotted path of a module-level callable,
        ``"repro.experiments.echo:echo_throughput"``.  Referencing by
        path keeps points picklable and keeps the cache key independent
        of pickle details.
    ``params``
        Keyword arguments for the target; must round-trip through JSON.
    ``telemetry``
        When truthy the runner constructs a metrics-only
        :class:`~repro.telemetry.sink.Telemetry`, passes it as the
        ``telemetry=`` kwarg, and merges the export into the sweep's
        registry (cached alongside the result, so warm runs merge too).
        The string ``"spans"`` additionally turns on per-packet span
        tracing, so the export carries the ``spans.stage.*``
        attribution histograms (``python -m repro latency --sweep``).
    ``topology``
        The serialized :class:`repro.topology.TopologySpec` the target
        elaborates (``spec.to_dict()``), when the experiment builds
        through the topology layer.  Joins the cache key — cached
        results are addressed by the shape they ran on — but not the
        seed (the seed payload is frozen at schema 2; see
        :func:`seed_payload_key`).
    """

    experiment: str
    target: str
    params: Dict[str, Any] = field(default_factory=dict)
    telemetry: Any = False
    topology: Optional[Dict[str, Any]] = None

    def key(self, version: Optional[str] = None) -> str:
        return cache_key(self.experiment, self.target, self.params,
                         version, telemetry=self.telemetry,
                         topology=self.topology)

    def seed(self, version: Optional[str] = None) -> int:
        return point_seed(seed_payload_key(
            self.experiment, self.target, self.params, version,
            telemetry=self.telemetry))

    def label(self) -> str:
        """A short human-readable identity for progress/errors."""
        parts = ", ".join(f"{k}={v!r}" for k, v in
                          sorted(self.params.items()))
        return f"{self.experiment}({parts})"
