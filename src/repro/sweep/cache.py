"""The content-addressed on-disk result cache.

Entries live under ``.repro-cache/<key[:2]>/<key>.json`` — one JSON
file per sweep point, named by the point's sha256 content address
(:func:`repro.sweep.points.cache_key`).  The layout is deliberately
dumb: no index, no locking, no eviction policy.  Writers are atomic
(temp file + ``os.replace``) so concurrent workers and concurrent CI
jobs can share a cache directory; a corrupted or truncated entry is
indistinguishable from a miss and is recomputed and overwritten.

``rm -rf .repro-cache`` is the documented invalidation story; version
bumps (either the package version or the sweep schema version) change
every key, which retires a stale cache without touching it.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Format marker inside each entry; entries with a different marker
#: are treated as corrupt (→ miss, recompute, overwrite).
ENTRY_FORMAT = "repro-sweep-entry-v1"


@dataclass
class CacheEntry:
    """One memoized sweep-point result."""

    key: str
    experiment: str
    target: str
    params: Dict[str, Any]
    seed: int
    result: Any
    metrics: Optional[Dict[str, Any]] = None
    topology: Optional[Dict[str, Any]] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "format": ENTRY_FORMAT,
            "key": self.key,
            "experiment": self.experiment,
            "target": self.target,
            "params": self.params,
            "seed": self.seed,
            "result": self.result,
            "metrics": self.metrics,
            "topology": self.topology,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "CacheEntry":
        if not isinstance(data, dict):
            raise ValueError(f"cache entry must be a JSON object, "
                             f"got {type(data).__name__}")
        if data.get("format") != ENTRY_FORMAT:
            raise ValueError(f"unknown cache entry format "
                             f"{data.get('format')!r}")
        return cls(
            key=data["key"],
            experiment=data["experiment"],
            target=data["target"],
            params=data["params"],
            seed=data["seed"],
            result=data["result"],
            metrics=data.get("metrics"),
            topology=data.get("topology"),
        )


class SweepCache:
    """A directory of :class:`CacheEntry` JSON files, keyed by content.

    ``load`` returns None on *any* failure — missing file, unparsable
    JSON, wrong format marker, key mismatch — so callers need exactly
    one code path: hit or recompute.
    """

    def __init__(self, directory: str = DEFAULT_CACHE_DIR):
        self.directory = str(directory)
        self.stats_hits = 0
        self.stats_misses = 0
        self.stats_corrupt = 0
        self.stats_stores = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], key + ".json")

    def load(self, key: str) -> Optional[CacheEntry]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            entry = CacheEntry.from_json(data)
            if entry.key != key:
                raise ValueError("entry key does not match its address")
        except FileNotFoundError:
            self.stats_misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Truncated write, bit rot, hand-edited file: treat as a
            # miss; the recompute path overwrites it.
            self.stats_corrupt += 1
            self.stats_misses += 1
            return None
        self.stats_hits += 1
        return entry

    def store(self, entry: CacheEntry) -> None:
        path = self._path(entry.key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # Atomic publish: never leave a half-written entry at the final
        # path, even with concurrent writers (last writer wins; both
        # wrote identical bytes by construction).
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry.to_json(), handle, sort_keys=True,
                          separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats_stores += 1

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def keys(self) -> Iterator[str]:
        if not os.path.isdir(self.directory):
            return
        for shard in sorted(os.listdir(self.directory)):
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith("."):
                    yield name[:-len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                os.unlink(self._path(key))
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.stats_hits,
            "misses": self.stats_misses,
            "corrupt": self.stats_corrupt,
            "stores": self.stats_stores,
        }


def default_cache(directory: Optional[str] = None) -> SweepCache:
    """The conventional cache: ``.repro-cache/`` in the working tree,
    overridable with the ``REPRO_CACHE_DIR`` environment variable."""
    if directory is None:
        directory = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    return SweepCache(directory)
