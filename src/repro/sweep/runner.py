"""Execute sweep points serially or across a process pool.

The contract that everything else leans on: **the output is a pure
function of the point list**.  Guarantees, in order of load-bearing:

* results come back in point order, regardless of completion order;
* each point runs with the global ``random`` module seeded from the
  point's own content address (:func:`repro.sweep.points.point_seed`),
  so a worker process and an in-process run produce identical bytes;
* results are canonicalized through a JSON round-trip before anyone
  sees them, so a cache hit (JSON from disk) and a fresh computation
  (live Python objects) are indistinguishable;
* telemetry exports merge in point order, keeping float accumulation
  deterministic even though workers finish in arbitrary order.
"""

from __future__ import annotations

import json
import multiprocessing
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..telemetry.metrics import MetricsRegistry
from .cache import CacheEntry, SweepCache
from .points import SweepPoint, resolve_target


def _execute_point(point: SweepPoint) -> Tuple[Any, Optional[Dict]]:
    """Run one point: seed, call the target, canonicalize the result.

    This is the single choke point both the serial path and the pool
    workers go through — tests monkeypatch or count it, and any future
    instrumentation belongs here.
    """
    func = resolve_target(point.target)
    kwargs = dict(point.params)
    metrics_export: Optional[Dict] = None
    telemetry = None
    if point.telemetry:
        from ..telemetry.sink import Telemetry
        # "spans" turns on per-packet span trees; finished traces feed
        # spans.* histograms in the registry, so the export (and hence
        # the cache entry) carries the latency attribution.  "profile"
        # turns on the simulator profiler; event counts flush into
        # profile.* counters (wall-clock timing stays off — registry
        # exports must be machine-independent).
        telemetry = Telemetry(trace=False,
                              spans=(point.telemetry == "spans"),
                              profile=(point.telemetry == "profile"))
        kwargs["telemetry"] = telemetry
    # Deterministic per-point seeding: the global RNG is the only
    # simulator-visible nondeterminism (e.g. Flow IP idents), and it is
    # reset from the point's identity so serial == parallel == cached.
    random.seed(point.seed())
    result = func(**kwargs)
    if telemetry is not None:
        metrics_export = telemetry.metrics.to_dict()
    # JSON round-trip: tuples become lists, NaN is rejected — exactly
    # what a later cache hit would return.
    try:
        result = json.loads(json.dumps(result, allow_nan=False))
    except (TypeError, ValueError) as exc:
        raise RuntimeError(
            f"sweep point {point.label()} returned a result that does "
            f"not round-trip through JSON: {exc}") from exc
    return result, metrics_export


def _pool_worker(payload: Tuple[int, SweepPoint]
                 ) -> Tuple[int, Any, Optional[Dict]]:
    index, point = payload
    result, metrics = _execute_point(point)
    return index, result, metrics


@dataclass
class SweepResult:
    """What a sweep produced, plus where the work actually happened."""

    rows: List[Any] = field(default_factory=list)
    computed: int = 0
    cache_hits: int = 0
    jobs: int = 1
    metrics: Optional[MetricsRegistry] = None

    @property
    def points(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, index):
        return self.rows[index]


def _pool_context():
    """Prefer fork (fast, inherits sys.path/imports); fall back to the
    platform default where fork does not exist."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_sweep(points: Sequence[SweepPoint], jobs: int = 1,
              cache: Optional[SweepCache] = None,
              registry: Optional[MetricsRegistry] = None,
              progress: Optional[Callable[[str], None]] = None
              ) -> SweepResult:
    """Run ``points``, returning results in point order.

    ``jobs``
        1 runs in-process; N > 1 fans cache misses out over a
        ``multiprocessing`` pool of N workers.  The output is
        bit-identical either way.
    ``cache``
        A :class:`SweepCache`; hits skip simulation entirely, misses
        are stored after computing.  None disables caching.
    ``registry``
        Destination for merged per-point telemetry.  When None and at
        least one point exports metrics, a fresh registry is created;
        either way it is returned as ``SweepResult.metrics``.
    """
    points = list(points)
    jobs = max(1, int(jobs))
    result = SweepResult(rows=[None] * len(points), jobs=jobs)
    metric_exports: List[Optional[Dict]] = [None] * len(points)

    # Phase 1: satisfy what we can from the cache (in the parent, so
    # `computed` is exact and workers only ever see real work).
    pending: List[Tuple[int, SweepPoint]] = []
    for index, point in enumerate(points):
        entry = cache.load(point.key()) if cache is not None else None
        if entry is not None:
            result.rows[index] = entry.result
            metric_exports[index] = entry.metrics
            result.cache_hits += 1
            if progress is not None:
                progress(f"cache hit: {point.label()}")
        else:
            pending.append((index, point))

    # Phase 2: compute the misses, serially or across the pool.
    if pending:
        if jobs == 1 or len(pending) == 1:
            computed = (_pool_worker(item) for item in pending)
        else:
            ctx = _pool_context()
            pool = ctx.Pool(processes=min(jobs, len(pending)))
            try:
                computed = pool.imap_unordered(_pool_worker, pending,
                                               chunksize=1)
                computed = list(computed)
            finally:
                pool.close()
                pool.join()
        for index, row, metrics in computed:
            point = points[index]
            result.rows[index] = row
            metric_exports[index] = metrics
            result.computed += 1
            if cache is not None:
                cache.store(CacheEntry(
                    key=point.key(), experiment=point.experiment,
                    target=point.target, params=dict(point.params),
                    seed=point.seed(), result=row, metrics=metrics,
                    topology=point.topology))
            if progress is not None:
                progress(f"computed: {point.label()}")

    # Phase 3: merge telemetry in point order (commutative counters,
    # but float addition order still matters for bit-identity).
    if any(export for export in metric_exports):
        registry = registry if registry is not None else MetricsRegistry()
        for export in metric_exports:
            if export:
                registry.merge_from(export)
    result.metrics = registry
    return result
