"""Parallel sweep execution with a deterministic result cache.

Every figure and table in the reproduction is an aggregation over
*sweep points*: independent (experiment, parameters, seed) simulations
that share no state.  This package exploits that structure three ways:

* :func:`run_sweep` fans points out across a ``multiprocessing`` pool
  (``jobs=N``) — results are bit-identical to a serial run because each
  point is seeded deterministically from its own identity, never from
  global interpreter state;
* :class:`SweepCache` memoizes results on disk under ``.repro-cache/``,
  content-addressed by (experiment name, canonicalized params, repro
  version), so unchanged points are never re-simulated;
* per-point telemetry exports are merged back into one
  :class:`~repro.telemetry.metrics.MetricsRegistry` via
  ``Histogram.merge``/``MetricsRegistry.merge_from``.

Experiment modules declare their sweeps as picklable
:class:`SweepPoint` lists (see ``repro.experiments.*``); the CLI
(``python -m repro figures --jobs 4``), the benchmark suite and the
regression tests all consume the same lists through the same runner.
"""

from .cache import CacheEntry, SweepCache, default_cache
from .points import (
    SEED_SCHEMA_VERSION,
    SWEEP_SCHEMA_VERSION,
    SweepError,
    SweepPoint,
    cache_key,
    canonical_params,
    point_seed,
    resolve_target,
    seed_payload_key,
)
from .runner import SweepResult, run_sweep

__all__ = [
    "CacheEntry",
    "SweepCache",
    "SweepError",
    "SweepPoint",
    "SweepResult",
    "SEED_SCHEMA_VERSION",
    "SWEEP_SCHEMA_VERSION",
    "cache_key",
    "canonical_params",
    "default_cache",
    "point_seed",
    "resolve_target",
    "run_sweep",
    "seed_payload_key",
]
