"""Regenerate the paper's tables and figures from the command line.

``python -m repro`` prints the analytical tables (instant) and, with
``--full``, re-runs the simulated experiments too.  The same renderers
back the benchmark suite's output.

Simulated sections execute through :mod:`repro.sweep`: ``--jobs N``
fans their sweep points across a process pool (bit-identical output to
``--jobs 1``), and results are memoized under ``.repro-cache/`` unless
``--no-cache`` is given, so a re-run re-simulates nothing.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

from .models import area, loc
from .models.memory import (
    DriverParameters,
    KIB,
    MIB,
    figure4_bandwidth_sweep,
    figure4_queue_sweep,
    table3,
)
from .models.perf import figure7a
from .sweep import SweepCache, SweepPoint, default_cache, run_sweep


@dataclass
class RenderContext:
    """How simulated renderers execute their sweeps.

    Carries the parallelism/caching knobs from the CLI into each
    renderer and accumulates where the work actually happened, for the
    end-of-run summary (printed to stderr — stdout stays byte-identical
    across ``--jobs`` values and cache states).
    """

    jobs: int = 1
    cache: Optional[SweepCache] = None
    points: int = 0
    computed: int = 0
    cache_hits: int = 0

    def sweep(self, points: Sequence[SweepPoint]) -> List:
        outcome = run_sweep(points, jobs=self.jobs, cache=self.cache)
        self.points += outcome.points
        self.computed += outcome.computed
        self.cache_hits += outcome.cache_hits
        return outcome.rows

    def summary(self) -> Optional[str]:
        if not self.points:
            return None
        where = (self.cache.directory if self.cache is not None
                 else "disabled")
        return (f"sweep: {self.points} points, {self.computed} simulated, "
                f"{self.cache_hits} cached (jobs={self.jobs}, "
                f"cache={where})")


def format_table(title: str, rows: List[Dict], columns=None) -> str:
    """Render rows as an aligned text table under a banner."""
    lines = [f"\n=== {title} ==="]
    if not rows:
        lines.append("(no rows)")
        return "\n".join(lines)
    columns = columns or list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in rows))
        for c in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c])
                               for c in columns))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _human(nbytes: float) -> str:
    if nbytes >= MIB:
        return f"{nbytes / MIB:.1f} MiB"
    if nbytes >= KIB:
        return f"{nbytes / KIB:.1f} KiB"
    return f"{int(nbytes)} B"


# ---------------------------------------------------------------------------
# Section renderers
# ---------------------------------------------------------------------------

def render_table1(ctx: Optional[RenderContext] = None) -> str:
    rows = [
        {"category": a.category, "solution": a.solution,
         "LUT": a.utilization.lut, "FF": a.utilization.ff,
         "BRAM": a.utilization.bram, "tunneling": a.tunneling,
         "hw transport": a.hardware_transport}
        for a in area.TABLE1
    ]
    return format_table("Table 1: accelerator networking architectures",
                        rows)


def render_table2(ctx: Optional[RenderContext] = None) -> str:
    derived = DriverParameters().table2a()
    rows = [{"parameter": k, "value": round(v, 2)}
            for k, v in derived.items()]
    return format_table("Table 2a: driver memory parameters", rows)


def render_table3(ctx: Optional[RenderContext] = None) -> str:
    result = table3()
    rows = []
    for key in ("tx_rings", "tx_buffers", "rx_buffers",
                "completion_queues", "rx_ring", "producer_indices",
                "total"):
        rows.append({
            "structure": key,
            "software": _human(result["software"][key]),
            "fld": _human(result["fld"][key]),
            "shrink": (f"x{result['ratios'][key]:.1f}"
                       if key in result["ratios"] else "-"),
        })
    return format_table("Table 3: memory, software vs FLD", rows)


def render_table4(ctx: Optional[RenderContext] = None) -> str:
    rows = [{"component": k, "python loc": v}
            for k, v in loc.table4().items()]
    return format_table("Table 4: software LOC (this reproduction)", rows)


def render_table5(ctx: Optional[RenderContext] = None) -> str:
    rows = [
        {"module": m.name, "clk MHz": m.clock_mhz,
         "LUT": m.utilization.lut, "FF": m.utilization.ff,
         "BRAM": m.utilization.bram, "URAM": m.utilization.uram}
        for m in area.TABLE5
    ]
    return format_table("Table 5: prototype resource utilization", rows)


def render_fig4(ctx: Optional[RenderContext] = None) -> str:
    bandwidth = [
        {"line_rate_gbps": r["bandwidth_gbps"],
         "software": _human(r["software_bytes"]),
         "fld": _human(r["fld_bytes"])}
        for r in figure4_bandwidth_sweep()
    ]
    queues = [
        {"tx_queues": r["num_tx_queues"],
         "software": _human(r["software_bytes"]),
         "fld": _human(r["fld_bytes"])}
        for r in figure4_queue_sweep()
    ]
    return (format_table("Fig. 4 (left): memory vs line rate", bandwidth)
            + "\n" + format_table("Fig. 4 (right): memory vs queues",
                                  queues))


def render_fig7a(ctx: Optional[RenderContext] = None) -> str:
    rows = figure7a(sizes=[64, 128, 256, 512, 1024, 1500])
    return format_table("Fig. 7a: PCIe model vs raw Ethernet (Gbps)", rows)


def render_table6(ctx: Optional[RenderContext] = None) -> str:
    from .experiments.echo import table6_points
    ctx = ctx or RenderContext()
    rows = ctx.sweep(table6_points(count=1500))
    return format_table("Table 6: 64 B echo RTT (simulated)", rows)


def render_fig7b(ctx: Optional[RenderContext] = None) -> str:
    from .experiments.echo import fig7b_points
    ctx = ctx or RenderContext()
    rows = ctx.sweep(fig7b_points(
        sizes=[64, 256, 1024, 1500], count=700,
        modes=["flde-remote", "cpu-remote", "flde-local"]))
    return format_table(
        "Fig. 7b: echo throughput (simulated, Gbps)", rows,
        columns=["mode", "size", "gbps", "model_gbps", "mpps"])


def render_fig8a(ctx: Optional[RenderContext] = None) -> str:
    from .experiments.zuc import fig8a_points
    ctx = ctx or RenderContext()
    rows = ctx.sweep(fig8a_points(sizes=[64, 256, 512, 1024], count=200))
    return format_table(
        "Fig. 8a: ZUC throughput (simulated, Gbps)", rows,
        columns=["mode", "size", "gbps", "model_gbps"])


def render_defrag(ctx: Optional[RenderContext] = None) -> str:
    from .experiments.defrag import experiment_points
    ctx = ctx or RenderContext()
    rows = ctx.sweep(experiment_points(rounds=40))
    return format_table(
        "§8.2.2: IP defragmentation (simulated)", rows,
        columns=["config", "goodput_gbps", "active_cores"])


def render_iot(ctx: Optional[RenderContext] = None) -> str:
    from .experiments.iot import isolation_points
    ctx = ctx or RenderContext()
    unshaped, shaped = ctx.sweep(isolation_points())
    rows = [dict(name="unshaped", **unshaped),
            dict(name="shaped 6G+6G", **shaped)]
    return format_table(
        "§8.2.3: IoT tenant isolation (simulated)", rows,
        columns=["name", "tenant_a_gbps", "tenant_b_gbps", "meter_drops"])


ANALYTICAL = {
    "table1": render_table1,
    "table2": render_table2,
    "table3": render_table3,
    "table4": render_table4,
    "table5": render_table5,
    "fig4": render_fig4,
    "fig7a": render_fig7a,
}

SIMULATED = {
    "table6": render_table6,
    "fig7b": render_fig7b,
    "fig8a": render_fig8a,
    "defrag": render_defrag,
    "iot": render_iot,
}


# ---------------------------------------------------------------------------
# Command line
# ---------------------------------------------------------------------------

_TABLE_SECTIONS = ("table1", "table2", "table3", "table4", "table5",
                   "table6")
_FIGURE_SECTIONS = ("fig4", "fig7a", "fig7b", "fig8a", "defrag", "iot")


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    """The sweep-execution knobs shared by every subcommand."""
    parser.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="run simulated sweep points across N worker processes "
             "(output is bit-identical to --jobs 1)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the sweep result cache")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="sweep cache location (default: .repro-cache/, or "
             "$REPRO_CACHE_DIR)")


def _make_context(args: argparse.Namespace) -> RenderContext:
    cache = None
    if not getattr(args, "no_cache", False):
        cache = default_cache(getattr(args, "cache_dir", None))
    return RenderContext(jobs=getattr(args, "jobs", 1), cache=cache)


def _configure_tables(sub) -> None:
    tables = sub.add_parser(
        "tables", help="render the paper's tables (1-6)")
    tables.add_argument("sections", nargs="*", metavar="SECTION",
                        help=f"subset of: {', '.join(_TABLE_SECTIONS)}")
    tables.add_argument("--full", action="store_true",
                        help="include the simulated table (table6)")
    _add_sweep_options(tables)


def _configure_figures(sub) -> None:
    figures = sub.add_parser(
        "figures", help="render the paper's figures (4, 7a/b, 8a, ...)")
    figures.add_argument("sections", nargs="*", metavar="SECTION",
                         help=f"subset of: {', '.join(_FIGURE_SECTIONS)}")
    figures.add_argument("--full", action="store_true",
                         help="include the simulated figures")
    _add_sweep_options(figures)


def _configure_trace(sub) -> None:
    trace = sub.add_parser(
        "trace",
        help="run one experiment with telemetry on; write a Chrome trace")
    trace.add_argument("experiment",
                       help="experiment to trace (see --list)")
    trace.add_argument("-o", "--output", required=True,
                       help="path for the chrome://tracing JSON file")
    trace.add_argument("--count", type=int, default=None,
                       help="override the experiment's packet/message count")
    trace.add_argument("--size", type=int, default=None,
                       help="override the packet/message size in bytes")
    trace.add_argument("--metrics", default=None, metavar="PATH",
                       help="also dump the metrics registry as JSON")
    _add_sweep_options(trace)


def _configure_latency(sub) -> None:
    latency = sub.add_parser(
        "latency",
        help="run one experiment with span tracing; print the "
             "per-stage latency attribution (Table-6 style)")
    latency.add_argument("experiment",
                         help="experiment to attribute (see --list)")
    latency.add_argument("-o", "--json", default=None, metavar="PATH",
                         help="also write the report, violations and "
                              "span trees as JSON")
    latency.add_argument("--count", type=int, default=None,
                         help="override the experiment's packet count")
    latency.add_argument("--size", type=int, default=None,
                         help="override the frame size in bytes")
    latency.add_argument("--sample-rate", type=int, default=1,
                         metavar="N", help="trace one in every N packets "
                                           "(default: every packet)")
    latency.add_argument("--sweep", action="store_true",
                         help="merge attribution across the experiment's "
                              "standard sweep via the result cache "
                              "(approximate log2-bucket percentiles)")
    _add_sweep_options(latency)


def _configure_profile(sub) -> None:
    profile = sub.add_parser(
        "profile",
        help="run one experiment under the simulator profiler; print "
             "per-stage heap-event attribution and events per packet")
    profile.add_argument("experiment",
                         help="experiment to profile (see --list)")
    profile.add_argument("-o", "--json", default=None, metavar="PATH",
                         help="also write the full profile report as JSON")
    profile.add_argument("--count", type=int, default=None,
                         help="override the experiment's packet count")
    profile.add_argument("--size", type=int, default=None,
                         help="override the frame size in bytes")
    profile.add_argument("--wallclock", action="store_true",
                         help="also time handler execution per callsite "
                              "(machine-local; excluded from the metrics "
                              "registry)")
    profile.add_argument("--collapsed", default=None, metavar="PATH",
                         help="write collapsed-stack lines for "
                              "flamegraph.pl / speedscope")
    profile.add_argument("--top", type=int, default=10, metavar="N",
                         help="rows per top-N table (default: 10)")


def _configure_objects(sub) -> None:
    objects = sub.add_parser(
        "objects",
        help="elaborate one experiment's testbed and dump each node's "
             "firmware object table (no packets are sent)")
    objects.add_argument("experiment",
                         help="experiment testbed to dump (see --list)")
    objects.add_argument("-o", "--json", default=None, metavar="PATH",
                         help="also write the dump as JSON")


def _configure_scale_tenants(sub) -> None:
    scale = sub.add_parser(
        "scale-tenants",
        help="N accelerator functions multiplexed on one FLD: "
             "per-tenant throughput/latency + invariant audit")
    scale.add_argument("--tenants", type=int, nargs="+", default=[4],
                       metavar="N",
                       help="tenant count(s) to run (default: 4)")
    scale.add_argument("--size", type=int, default=256,
                       help="frame size in bytes (default: 256)")
    scale.add_argument("--count", type=int, default=400,
                       help="frames dealt round-robin across tenants "
                            "(default: 400)")
    _add_sweep_options(scale)


def _configure_prog(sub) -> None:
    prog = sub.add_parser(
        "prog",
        help="run the match-action example programs (firewall, lb, "
             "nat, ddos) in the FLD datapath; per-verdict counters + "
             "program latency + invariant audit")
    prog.add_argument("--scenario", nargs="+", default=["all"],
                      metavar="NAME",
                      help="scenario(s) to run: firewall, lb, nat, "
                           "ddos or all (default: all)")
    prog.add_argument("--size", type=int, default=256,
                      help="frame size in bytes (default: 256)")
    prog.add_argument("--count", type=int, default=400,
                      help="frames offered per scenario (default: 400)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures, or "
                    "record a telemetry trace of a simulated experiment.",
    )
    parser.add_argument("--list", action="store_true",
                        help="list every section and traceable experiment")
    sub = parser.add_subparsers(dest="command")
    for command in SUBCOMMANDS.values():
        command.configure(sub)
    return parser


def _render_sections(names: Sequence[str],
                     ctx: Optional[RenderContext] = None) -> int:
    everything = {**ANALYTICAL, **SIMULATED}
    unknown = [n for n in names if n not in everything]
    if unknown:
        print(f"unknown sections: {', '.join(unknown)}; "
              f"choose from {', '.join(everything)}")
        return 2
    ctx = ctx or RenderContext()
    for name in names:
        print(everything[name](ctx))
    return 0


def _cmd_group(sections: Sequence[str], full: bool,
               ordered: Sequence[str],
               ctx: Optional[RenderContext] = None) -> int:
    ctx = ctx or RenderContext()
    if sections:
        bad = [s for s in sections if s not in ordered]
        if bad:
            print(f"unknown sections: {', '.join(bad)}; "
                  f"choose from {', '.join(ordered)}")
            return 2
        code = _render_sections(sections, ctx)
    else:
        chosen = [name for name in ordered
                  if name in ANALYTICAL or full]
        code = _render_sections(chosen, ctx)
        if not full:
            simulated = [n for n in ordered if n in SIMULATED]
            if simulated:
                print(f"\n(add --full to also run: "
                      f"{', '.join(simulated)})")
    summary = ctx.summary()
    if summary:
        print(summary, file=sys.stderr)
    return code


def _cmd_trace(args: argparse.Namespace) -> int:
    from .telemetry.runner import run_traced, traceable_experiments
    if getattr(args, "jobs", 1) > 1:
        print("note: trace records one instrumented run; "
              "--jobs does not apply", file=sys.stderr)
    try:
        summary = run_traced(args.experiment, args.output,
                             count=args.count, size=args.size,
                             metrics_output=args.metrics)
    except ValueError:
        known = traceable_experiments()
        print(f"unknown experiment {args.experiment!r}; choose from:")
        for name, description in known.items():
            print(f"  {name:12s} {description}")
        return 2
    print(f"traced {summary['experiment']}: "
          f"{summary['trace_events']} events "
          f"({summary['trace_dropped']} dropped), "
          f"{summary['metrics']} metrics -> {summary['output']}")
    for key, value in summary["result"].items():
        print(f"  {key}: {_fmt(value)}")
    if args.metrics:
        print(f"  metrics json: {args.metrics}")
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from .telemetry.latency import render_report
    from .telemetry.runner import (
        latency_experiments,
        run_latency,
        run_latency_sweep,
    )
    if args.sweep:
        cache_dir = None
        if not args.no_cache:
            cache_dir = default_cache(args.cache_dir).directory
        try:
            summary = run_latency_sweep(args.experiment, jobs=args.jobs,
                                        cache_dir=cache_dir,
                                        count=args.count)
        except ValueError as exc:
            print(exc)
            return 2
        print(render_report(
            summary["report"],
            title=f"Latency attribution: {args.experiment} sweep "
                  f"(merged across {summary['points']} points)"))
        print(f"sweep: {summary['points']} points, "
              f"{summary['computed']} simulated, "
              f"{summary['cache_hits']} cached", file=sys.stderr)
        return 0
    try:
        summary = run_latency(args.experiment, count=args.count,
                              size=args.size,
                              sample_rate=args.sample_rate,
                              json_output=args.json)
    except ValueError:
        known = latency_experiments()
        print(f"unknown experiment {args.experiment!r}; choose from:")
        for name, description in known.items():
            print(f"  {name:12s} {description}")
        return 2
    print(render_report(
        summary["report"],
        title=f"Latency attribution: {args.experiment}"))
    sampler = summary["sampler"]
    print(f"sampler: {sampler['sampled']}/{sampler['seen']} packets "
          f"traced ({sampler['skipped']} skipped by 1-in-"
          f"{args.sample_rate} sampling, {sampler['dropped']} dropped "
          f"at the trace cap)")
    violations = summary["violations"]
    if violations:
        print(f"\n{len(violations)} invariant violation(s):")
        for violation in violations:
            print(f"  [{violation['rule']}] {violation['subject']}: "
                  f"{violation['detail']}")
    else:
        print("\ninvariant audit: clean")
    if args.json:
        print(f"json report: {args.json}")
    return 1 if violations else 0


def _cmd_objects(args: argparse.Namespace) -> int:
    from .telemetry.runner import object_experiments, run_objects
    try:
        summary = run_objects(args.experiment)
    except ValueError:
        known = object_experiments()
        print(f"unknown experiment {args.experiment!r}; choose from:")
        for name, description in known.items():
            print(f"  {name:12s} {description}")
        return 2
    for node, rows in summary["nodes"].items():
        print(format_table(
            f"Firmware objects: {node} ({len(rows)} object(s))",
            [{"handle": row["handle"], "kind": row["kind"],
              "label": row["label"], "refs": row["refcount"],
              "deps": " ".join(row["deps"]) or "-"}
             for row in rows]) if rows
            else f"Firmware objects: {node} (empty table)")
    if args.json:
        import json
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
        print(f"json dump: {args.json}")
    return 0


def _cmd_scale_tenants(args: argparse.Namespace) -> int:
    from .experiments import scale_tenants
    ctx = _make_context(args)
    rows = ctx.sweep(scale_tenants.sweep_points(
        tuple(args.tenants), size=args.size, count=args.count))
    print(format_table(
        "Scale-tenants: aggregate echo (25 Gbps offered, one FLD)",
        [{key: row[key] for key in ("tenants", "size", "sent",
                                    "received", "gbps", "mpps",
                                    "violations")}
         for row in rows]))
    for row in rows:
        print(format_table(
            f"Per-tenant breakdown ({row['tenants']} tenant(s))",
            row["per_tenant"]))
    summary = ctx.summary()
    if summary:
        print(summary, file=sys.stderr)
    dirty = sum(row["violations"] for row in rows)
    if dirty:
        print(f"\ninvariant audit: {dirty} violation(s)")
        return 1
    print("\ninvariant audit: clean")
    return 0


def _cmd_prog(args: argparse.Namespace) -> int:
    from .experiments import prog as prog_experiment
    scenarios = list(args.scenario)
    if scenarios == ["all"]:
        scenarios = list(prog_experiment.SCENARIOS)
    unknown = [s for s in scenarios if s not in prog_experiment.SCENARIOS]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}; choose from "
              f"{', '.join(prog_experiment.SCENARIOS)} or all")
        return 2
    rows = [prog_experiment.run_scenario(name, size=args.size,
                                         count=args.count)
            for name in scenarios]
    print(format_table(
        "Match-action programs in the FLD datapath",
        [{"scenario": row["scenario"],
          "sent": row["sent"], "received": row["received"],
          "gbps": row["gbps"],
          "rtt_p99_us": row["rtt_p99_us"],
          "prog_p99_us": row["prog_latency"]["p99_us"],
          "violations": row["violations"]}
         for row in rows]))
    for row in rows:
        verdicts = dict(row["verdicts"])
        verdicts["scenario"] = row["scenario"]
        print(format_table(
            f"Verdict counters ({row['scenario']}, "
            f"{row['verdicts']['insns']} insns interpreted)",
            [verdicts]))
        print(format_table(
            f"Per-function accelerator counts ({row['scenario']})",
            row["per_fn"]))
    dirty = sum(row["violations"] for row in rows)
    if dirty:
        print(f"\ninvariant audit: {dirty} violation(s)")
        return 1
    print("\ninvariant audit: clean")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .telemetry.runner import profile_experiments, run_profile
    try:
        summary = run_profile(args.experiment, count=args.count,
                              size=args.size, wallclock=args.wallclock,
                              json_output=args.json,
                              collapsed_output=args.collapsed,
                              top=args.top)
    except ValueError:
        known = profile_experiments()
        print(f"unknown experiment {args.experiment!r}; choose from:")
        for name, description in known.items():
            print(f"  {name:12s} {description}")
        return 2
    print(f"profiled {summary['experiment']}:")
    for key, value in summary["result"].items():
        print(f"  {key}: {_fmt(value)}")
    print()
    print(summary["rendered"])
    profile = summary["profile"]
    stage_sum = sum(s["events"] for s in profile["stages"].values())
    assert stage_sum == summary["engine_events"], \
        (stage_sum, summary["engine_events"])
    violations = summary["violations"]
    if violations:
        print(f"\n{len(violations)} invariant violation(s):")
        for violation in violations:
            print(f"  [{violation['rule']}] {violation['subject']}: "
                  f"{violation['detail']}")
    else:
        print("\ninvariant audit: clean")
    if args.json:
        print(f"json report: {args.json}")
    if args.collapsed:
        print(f"collapsed stacks: {args.collapsed}")
    return 1 if violations else 0


def _listing_sections() -> List[str]:
    return ["analytical sections: " + ", ".join(ANALYTICAL),
            "simulated sections:  " + ", ".join(SIMULATED)]


def _listing_experiments(header: str, experiments: Dict[str, str]) -> \
        List[str]:
    return [header] + [f"  {name:12s} {description}"
                       for name, description in experiments.items()]


def _listing_trace() -> List[str]:
    from .telemetry.runner import traceable_experiments
    return _listing_experiments(
        "traceable experiments (python -m repro trace <name> -o t.json):",
        traceable_experiments())


def _listing_latency() -> List[str]:
    from .telemetry.runner import latency_experiments
    return _listing_experiments(
        "latency attribution (python -m repro latency <name>):",
        latency_experiments())


def _listing_profile() -> List[str]:
    from .telemetry.runner import profile_experiments
    return _listing_experiments(
        "event profiles (python -m repro profile <name>):",
        profile_experiments())


def _listing_objects() -> List[str]:
    from .telemetry.runner import object_experiments
    return _listing_experiments(
        "object-table dumps (python -m repro objects <name>):",
        object_experiments())


def _listing_scale_tenants() -> List[str]:
    return ["multi-tenant scaling (python -m repro scale-tenants "
            "--tenants N): per-tenant throughput/latency on one FLD"]


def _listing_prog() -> List[str]:
    return ["match-action programs (python -m repro prog [--scenario "
            "firewall lb nat ddos]): verified datapath programs with "
            "per-verdict counters"]


class Subcommand(NamedTuple):
    """One CLI subcommand: parser wiring, dispatch and --list entry.

    The registry below is the single source of truth for the parser,
    ``main``'s legacy-path detection, dispatch, and ``--list`` output —
    adding a subcommand means adding one entry here, nothing else.
    """

    configure: Callable[[argparse._SubParsersAction], None]
    run: Callable[[argparse.Namespace], int]
    listing: Optional[Callable[[], List[str]]] = None


SUBCOMMANDS: Dict[str, Subcommand] = {
    "tables": Subcommand(
        _configure_tables,
        lambda args: _cmd_group(args.sections, args.full,
                                _TABLE_SECTIONS, _make_context(args))),
    "figures": Subcommand(
        _configure_figures,
        lambda args: _cmd_group(args.sections, args.full,
                                _FIGURE_SECTIONS, _make_context(args))),
    "trace": Subcommand(_configure_trace, _cmd_trace, _listing_trace),
    "latency": Subcommand(_configure_latency, _cmd_latency,
                          _listing_latency),
    "profile": Subcommand(_configure_profile, _cmd_profile,
                          _listing_profile),
    "objects": Subcommand(_configure_objects, _cmd_objects,
                          _listing_objects),
    "scale-tenants": Subcommand(_configure_scale_tenants,
                                _cmd_scale_tenants,
                                _listing_scale_tenants),
    "prog": Subcommand(_configure_prog, _cmd_prog, _listing_prog),
}


def _print_listing() -> None:
    for line in _listing_sections():
        print(line)
    for command in SUBCOMMANDS.values():
        if command.listing is not None:
            for line in command.listing():
                print(line)


def _legacy_main(argv: List[str]) -> int:
    """The original flat invocation: ``[--full] [section ...]``."""
    full = "--full" in argv
    requested = [a for a in argv if not a.startswith("-")]
    sections = dict(ANALYTICAL)
    if full:
        sections.update(SIMULATED)
    if requested:
        everything = {**ANALYTICAL, **SIMULATED}
        unknown = [r for r in requested if r not in everything]
        if unknown:
            print(f"unknown sections: {', '.join(unknown)}; "
                  f"choose from {', '.join(everything)}")
            return 2
        sections = {name: everything[name] for name in requested}
    for name, renderer in sections.items():
        print(renderer())
    if not full and not requested:
        print("\n(analytical tables only; add --full to re-run the "
              "simulated experiments, or name sections: "
              f"{', '.join(SIMULATED)})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Pre-subcommand invocations (``python -m repro table3 --full``)
    # keep working: anything that does not lead with a subcommand or a
    # global flag takes the legacy flat path.
    leading = argv[0] if argv else ""
    if leading not in SUBCOMMANDS and leading not in ("--list", "-h",
                                                      "--help"):
        return _legacy_main(argv)
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list:
        _print_listing()
        return 0
    command = SUBCOMMANDS.get(args.command)
    if command is not None:
        return command.run(args)
    parser.print_help()
    return 0
