"""FPGA resource accounting (Tables 1 and 5, and the §7 NICA comparison).

Synthesis results cannot be produced in Python, so this module records
the paper's published utilization numbers as structured data and derives
the comparisons the paper makes from them: FLD's area versus prior
architectures per feature set (Table 1), the per-module breakdown
(Table 5), and the NICA-vs-(FLD + IoT offload) deltas quoted in §7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Utilization:
    """One design's FPGA resource usage."""

    lut: int
    ff: int
    bram: int
    uram: int = 0

    def plus(self, other: "Utilization") -> "Utilization":
        return Utilization(self.lut + other.lut, self.ff + other.ff,
                           self.bram + other.bram, self.uram + other.uram)


@dataclass(frozen=True)
class Architecture:
    """A row of Table 1."""

    category: str
    solution: str
    gbps: List[int]
    utilization: Utilization
    stateless_offloads: bool
    tunneling: str        # "yes" / "no" / "host-nic-only"
    hardware_transport: str  # "yes" / "no" / "host-nic-only" / "n/a"


#: Table 1, as published (utilization at the highest listed rate).
TABLE1: List[Architecture] = [
    Architecture("CPU-mediated", "VN2F", [10],
                 Utilization(5_700, 1_100, 233),
                 True, "host-nic-only", "n/a"),
    Architecture("Accelerator-hosted", "Corundum", [25, 100],
                 Utilization(62_400, 76_800, 331, 20),
                 True, "no", "no"),
    Architecture("Accelerator-hosted", "StRoM", [10, 100],
                 Utilization(122_000, 214_000, 402),
                 True, "no", "host-nic-only"),
    Architecture("BITW", "NICA", [40],
                 Utilization(232_000, 299_000, 584),
                 True, "host-nic-only", "host-nic-only"),
    Architecture("BITW", "Innova-1 shell", [40],
                 Utilization(169_000, 212_000, 152),
                 True, "host-nic-only", "host-nic-only"),
    Architecture("FlexDriver", "FLD", [100],
                 Utilization(62_000, 89_000, 79, 44),
                 True, "yes", "yes"),
]


#: Table 5: per-module utilization and hardware LOC of the prototype.
@dataclass(frozen=True)
class HardwareModule:
    name: str
    clock_mhz: int
    utilization: Utilization
    loc: Optional[int] = None


TABLE5: List[HardwareModule] = [
    HardwareModule("FLD", 250, Utilization(50_000, 66_000, 35, 44), 11_000),
    HardwareModule("PCIe core", 250, Utilization(12_000, 23_000, 44, 0)),
    HardwareModule("ZUC", 200, Utilization(38_000, 37_000, 242, 0), 6_000),
    HardwareModule("IP defrag.", 250, Utilization(17_000, 16_000, 984, 64),
                   2_000),
    HardwareModule("IoT auth.", 200, Utilization(118_000, 138_000, 293, 0),
                   8_000),
]


def module(name: str) -> HardwareModule:
    for entry in TABLE5:
        if entry.name == name:
            return entry
    raise KeyError(name)


def fld_total_utilization(include_pcie: bool = True) -> Utilization:
    """FLD + its PCIe core: the networking footprint Table 1 reports."""
    total = module("FLD").utilization
    if include_pcie:
        total = total.plus(module("PCIe core").utilization)
    return total


def nica_comparison() -> Dict[str, float]:
    """§7: NICA's area relative to FLD + the IoT auth offload.

    The paper quotes NICA needing ~36% more LUTs, ~40% more FFs and
    ~63% more BRAMs — because NICA reimplements flow steering and QoS
    that FLD borrows from the NIC — while running 5.7x slower.
    """
    nica = next(a for a in TABLE1 if a.solution == "NICA").utilization
    ours = (module("FLD").utilization
            .plus(module("PCIe core").utilization)
            .plus(module("IoT auth.").utilization))
    return {
        "lut_overhead": nica.lut / ours.lut - 1.0,
        "ff_overhead": nica.ff / ours.ff - 1.0,
        "bram_overhead": nica.bram / ours.bram - 1.0,
        "nica_slowdown": 5.7,  # measured in the NICA paper's workload
    }


def area_per_feature() -> List[Dict]:
    """Table 1 normalized: area of each design vs its feature coverage."""
    rows = []
    for arch in TABLE1:
        features = sum([
            arch.stateless_offloads,
            arch.tunneling == "yes",
            arch.hardware_transport == "yes",
        ])
        rows.append({
            "solution": arch.solution,
            "category": arch.category,
            "lut": arch.utilization.lut,
            "ff": arch.utilization.ff,
            "bram": arch.utilization.bram,
            "full_features": features,
        })
    return rows
