"""The paper's NIC-driver memory model (§4.3, §5.2, Tables 2-3, Fig. 4).

Reimplements the analytical model the authors published alongside the
paper ([27], github.com/acsl-technion/flexdriver-model): given a line
rate, buffer lifetimes and a queue count, compute how much memory a
conventional software driver needs for NIC control structures versus
FLD's compressed/translated/shared organization.

With the default parameters the model reproduces the paper's numbers:
85.3 MiB software vs 832.7 KiB FLD — a 105x reduction (Table 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

KIB = 1024
MIB = 1024 * 1024

# NIC / FLD structure sizes (Table 2b).
S_TXDESC_SW = 64      # software transmit WQE
S_TXDESC_FLD = 8      # FLD compressed transmit descriptor
S_RXDESC = 16         # receive descriptor
S_CQE_SW = 64         # NIC completion entry
S_CQE_FLD = 15        # FLD compressed completion
S_PI = 4              # producer index

ETHERNET_OVERHEAD = 20  # preamble/IFG bytes the paper's R formula uses

# Translation-table entry sizes, in bits (calibrated to the paper's
# reported overheads: 15.5 KiB for the descriptor table, 33 KiB for the
# data table at the Table 3 configuration).
DESC_XLT_ENTRY_BITS = 31
DATA_XLT_ENTRY_BITS = 33
XLT_PROVISIONING = 2   # tables doubled for cuckoo load factor 1/2 (§5.2)
DATA_CHUNK = 256       # data translation granularity (bytes)


def round_pow2(n: int) -> int:
    """f(n) = 2^ceil(log2 n): ring allocations round up to powers of 2."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


@dataclass
class DriverParameters:
    """Table 2a: the workload a driver must be provisioned for."""

    bandwidth_bps: float = 100e9
    min_packet: int = 256
    max_packet: int = 16 * KIB
    rx_lifetime: float = 5e-6
    tx_lifetime: float = 25e-6
    num_tx_queues: int = 512

    @property
    def packet_rate(self) -> float:
        """R = B / (M_min + 20 B), the worst-case packet rate."""
        return self.bandwidth_bps / ((self.min_packet + ETHERNET_OVERHEAD) * 8)

    @property
    def n_txdesc(self) -> int:
        """Minimum in-flight transmit descriptors to cover the lifetime."""
        return math.ceil(self.packet_rate * self.tx_lifetime)

    @property
    def n_rxdesc(self) -> int:
        return math.ceil(self.packet_rate * self.rx_lifetime)

    @property
    def tx_bdp_bytes(self) -> int:
        """Bandwidth x delay product of the transmit path."""
        return int(self.bandwidth_bps * self.tx_lifetime / 8)

    @property
    def rx_bdp_bytes(self) -> int:
        return int(self.bandwidth_bps * self.rx_lifetime / 8)

    def table2a(self) -> Dict[str, float]:
        """The derived rows of Table 2a."""
        return {
            "packet_rate_mpps": self.packet_rate / 1e6,
            "n_txdesc": self.n_txdesc,
            "n_rxdesc": self.n_rxdesc,
            "tx_bdp_kib": self.tx_bdp_bytes / KIB,
            "rx_bdp_kib": self.rx_bdp_bytes / KIB,
        }


def table2a(**overrides) -> Dict[str, float]:
    """Module-level Table 2a entry point (sweep-addressable)."""
    return DriverParameters(**overrides).table2a()


def software_memory(p: DriverParameters) -> Dict[str, int]:
    """Table 3, 'Software' column: a conventional driver's footprint."""
    txq = p.num_tx_queues * round_pow2(p.n_txdesc) * S_TXDESC_SW
    txdata = p.max_packet * p.n_txdesc
    rxdata = p.max_packet * p.n_rxdesc
    cq = (round_pow2(p.n_txdesc) + round_pow2(p.n_rxdesc)) * S_CQE_SW
    srq = round_pow2(p.n_rxdesc) * S_RXDESC
    pi = (p.num_tx_queues + 1) * S_PI
    return {
        "tx_rings": txq,
        "tx_buffers": txdata,
        "rx_buffers": rxdata,
        "completion_queues": cq,
        "rx_ring": srq,
        "producer_indices": pi,
        "total": txq + txdata + rxdata + cq + srq + pi,
    }


def desc_translation_bytes(p: DriverParameters) -> int:
    """S_xltTx: the cuckoo table over the shared descriptor pool."""
    slots = XLT_PROVISIONING * round_pow2(p.n_txdesc)
    return slots * DESC_XLT_ENTRY_BITS // 8


def data_translation_bytes(p: DriverParameters) -> int:
    """S_xltData: the per-chunk data window translation table."""
    chunks = math.ceil(2 * p.tx_bdp_bytes / DATA_CHUNK)
    slots = XLT_PROVISIONING * round_pow2(chunks)
    return slots * DATA_XLT_ENTRY_BITS // 8


def fld_memory(p: DriverParameters) -> Dict[str, int]:
    """Table 3, 'FLD' column: the on-die footprint after §5.2."""
    txq = round_pow2(p.n_txdesc) * S_TXDESC_FLD + desc_translation_bytes(p)
    txdata = 2 * p.tx_bdp_bytes + data_translation_bytes(p)
    rxdata = 2 * p.rx_bdp_bytes
    cq = (round_pow2(p.n_txdesc) + round_pow2(p.n_rxdesc)) * S_CQE_FLD
    srq = 0  # the receive ring lives in host memory (§5.2)
    pi = (p.num_tx_queues + 1) * S_PI
    return {
        "tx_rings": txq,
        "tx_buffers": txdata,
        "rx_buffers": rxdata,
        "completion_queues": cq,
        "rx_ring": srq,
        "producer_indices": pi,
        "total": txq + txdata + rxdata + cq + srq + pi,
    }


def shrink_ratios(p: DriverParameters) -> Dict[str, float]:
    """Table 3's rightmost column: software / FLD per structure."""
    software = software_memory(p)
    fld = fld_memory(p)
    ratios = {}
    for key, value in software.items():
        if fld[key] > 0:
            ratios[key] = value / fld[key]
    return ratios


def table3(p: DriverParameters = None) -> Dict[str, Dict[str, float]]:
    """The full Table 3 as nested dicts (bytes and ratios)."""
    p = p or DriverParameters()
    return {
        "software": software_memory(p),
        "fld": fld_memory(p),
        "ratios": shrink_ratios(p),
    }


#: On-chip memory of the prototype FPGA (Fig. 4's XCKU15P line): the
#: Kintex UltraScale+ KU15P has 34.6 Mb BRAM + 36 Mb URAM plus
#: distributed RAM ~= 10.05 MiB usable (§4.3).
XCKU15P_ON_CHIP_BYTES = int(10.05 * MIB)


def figure4_bandwidth_sweep(bandwidths=(25e9, 50e9, 100e9, 200e9, 400e9),
                            num_tx_queues: int = 512):
    """Fig. 4 (left): memory vs line rate for both designs."""
    rows = []
    for bandwidth in bandwidths:
        p = DriverParameters(bandwidth_bps=bandwidth,
                             num_tx_queues=num_tx_queues)
        rows.append({
            "bandwidth_gbps": bandwidth / 1e9,
            "software_bytes": software_memory(p)["total"],
            "fld_bytes": fld_memory(p)["total"],
        })
    return rows


def figure4_queue_sweep(queue_counts=(64, 128, 256, 512, 1024, 2048),
                        bandwidth_bps: float = 100e9):
    """Fig. 4 (right): memory vs transmit queue count."""
    rows = []
    for queues in queue_counts:
        p = DriverParameters(bandwidth_bps=bandwidth_bps,
                             num_tx_queues=queues)
        rows.append({
            "num_tx_queues": queues,
            "software_bytes": software_memory(p)["total"],
            "fld_bytes": fld_memory(p)["total"],
        })
    return rows
