"""The paper's FLD performance model (§8.1, Fig. 7a, and the model
curves of Fig. 7b / Fig. 8a).

FLD talks to the NIC over PCIe, so every network packet is accompanied
by control traffic: descriptor/doorbell writes, data TLP headers, and
completion writes.  The model computes the PCIe bytes each direction
carries per packet and derives the achievable packet rate, compared to a
raw Ethernet port of the same nominal rate (what an accelerator-hosted
or BITW design would see).

Per echoed packet of wire-visible size S (plus 24 B Ethernet overhead on
the wire comparison):

NIC -> FLD direction:
  * received packet data, split at the max payload size (24 B/TLP),
  * one receive CQE write (64 B + TLP overhead),
  * the transmit-side data *read requests* (header-only TLPs),
  * one transmit CQE write, amortized by selective signalling (§6).

FLD -> NIC direction:
  * the WQE-by-MMIO doorbell (a 64 B write; §6),
  * transmit data read completions, split at the RCB,
  * the receive-ring producer-index write, amortized per MPRQ buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..pcie.tlp import (
    COMPLETION_HEADER,
    DLLP_FRAMING,
    MEM_REQUEST_HEADER,
    read_wire_bytes,
    write_wire_bytes,
)

ETHERNET_OVERHEAD = 24  # preamble + FCS + IFG
CQE_BYTES = 64
WQE_BYTES = 64
DOORBELL_BYTES = 4

WRITE_TLP_OVERHEAD = MEM_REQUEST_HEADER + DLLP_FRAMING      # 24 B
READ_REQUEST_BYTES = MEM_REQUEST_HEADER + DLLP_FRAMING      # 24 B
COMPLETION_TLP_OVERHEAD = COMPLETION_HEADER + DLLP_FRAMING  # 20 B


@dataclass
class FldPerfModel:
    """PCIe overhead accounting for the FLD data path."""

    pcie_bps: float = 50e9          # usable PCIe rate, each direction
    max_payload_size: int = 256
    read_completion_boundary: int = 256
    max_read_request: int = 512
    wqe_by_mmio: bool = True        # §6 optimization
    tx_signal_interval: int = 16    # selective completion signalling
    mprq_packets_per_buffer: int = 64
    # §8.1 lists receive-CQE compression as a further (unused) NIC
    # optimization: several completions coalesce into one CQE-sized
    # write.  1 = off (the paper's configuration).
    rx_cqe_compression_ratio: int = 1

    # -- per-packet PCIe bytes -------------------------------------------

    def rx_bytes_to_fld(self, size: int) -> float:
        """NIC->FLD bytes to deliver one received packet."""
        data = write_wire_bytes(size, self.max_payload_size)
        cqe = (write_wire_bytes(CQE_BYTES, self.max_payload_size)
               / max(1, self.rx_cqe_compression_ratio))
        return data + cqe

    def rx_bytes_from_fld(self, size: int) -> float:
        """FLD->NIC bytes per received packet (buffer recycling)."""
        doorbell = write_wire_bytes(DOORBELL_BYTES, self.max_payload_size)
        return doorbell / self.mprq_packets_per_buffer

    def tx_bytes_from_fld(self, size: int) -> float:
        """FLD->NIC bytes to transmit one packet."""
        total = 0.0
        if self.wqe_by_mmio:
            total += write_wire_bytes(WQE_BYTES, self.max_payload_size)
        else:
            total += write_wire_bytes(DOORBELL_BYTES, self.max_payload_size)
        _requests, completions = read_wire_bytes(
            size, self.read_completion_boundary, self.max_read_request)
        total += completions
        return total

    def tx_bytes_to_fld(self, size: int) -> float:
        """NIC->FLD bytes per transmitted packet."""
        total = 0.0
        if not self.wqe_by_mmio:
            # The NIC reads the WQE from the FLD BAR.
            requests, completions = read_wire_bytes(
                WQE_BYTES, self.read_completion_boundary)
            total += completions  # (requests go the other way)
        requests, _completions = read_wire_bytes(
            size, self.read_completion_boundary, self.max_read_request)
        total += requests
        total += (write_wire_bytes(CQE_BYTES, self.max_payload_size)
                  / self.tx_signal_interval)
        return total

    # -- achievable rates ---------------------------------------------------

    def echo_packet_rate(self, size: int) -> float:
        """Packets/s for an echo accelerator (receive + transmit each)."""
        to_fld = self.rx_bytes_to_fld(size) + self.tx_bytes_to_fld(size)
        from_fld = self.rx_bytes_from_fld(size) + self.tx_bytes_from_fld(size)
        per_packet = max(to_fld, from_fld)  # full duplex: worst direction
        return self.pcie_bps / (per_packet * 8)

    def echo_throughput_bps(self, size: int) -> float:
        """Goodput (packet bytes/s, excluding Ethernet overhead)."""
        return self.echo_packet_rate(size) * size * 8


def ethernet_packet_rate(size: int, line_bps: float) -> float:
    """Raw Ethernet: what a direct-attached port moves at this size."""
    return line_bps / ((size + ETHERNET_OVERHEAD) * 8)


def ethernet_throughput_bps(size: int, line_bps: float) -> float:
    return ethernet_packet_rate(size, line_bps) * size * 8


def expected_echo_gbps(size: int, line_bps: float,
                       pcie_bps: float) -> float:
    """The model line of Fig. 7b: min(wire, PCIe) at this packet size."""
    model = FldPerfModel(pcie_bps=pcie_bps)
    return min(
        ethernet_throughput_bps(size, line_bps),
        model.echo_throughput_bps(size),
    ) / 1e9


def figure7a(sizes: List[int] = None,
             configs: List[Dict] = None) -> List[Dict]:
    """Fig. 7a: PCIe-attached FLD vs raw Ethernet across packet sizes.

    Each config pairs an Ethernet line rate with a PCIe rate; the paper
    shows 25/50 (the prototype: remote and local ceilings) and
    100/100 Gbps.
    """
    sizes = sizes or [64, 128, 256, 512, 1024, 1500, 2048, 4096, 8192,
                      16384]
    configs = configs or [
        {"name": "25G-eth/50G-pcie", "eth_bps": 25e9, "pcie_bps": 50e9},
        {"name": "50G-eth/50G-pcie", "eth_bps": 50e9, "pcie_bps": 50e9},
        {"name": "100G-eth/100G-pcie", "eth_bps": 100e9, "pcie_bps": 100e9},
    ]
    rows = []
    for config in configs:
        model = FldPerfModel(pcie_bps=config["pcie_bps"])
        for size in sizes:
            ethernet = ethernet_throughput_bps(size, config["eth_bps"])
            fld = min(ethernet, model.echo_throughput_bps(size))
            rows.append({
                "config": config["name"],
                "size": size,
                "ethernet_gbps": ethernet / 1e9,
                "fld_gbps": fld / 1e9,
                "fraction_of_ethernet": fld / ethernet,
            })
    return rows


def zuc_model_gbps(request_size: int, line_bps: float = 25e9,
                   app_header: int = 64, roce_header: int = 58+4) -> float:
    """Fig. 8a's model line: RoCE + app header overhead on the wire.

    Each request/response carries a 64 B application header; segments
    add Eth/IP/UDP/BTH/ICRC (~62 B) per RoCE MTU (1024 B).
    """
    mtu = 1024
    message = app_header + request_size
    segments = max(1, -(-message // mtu))
    wire = message + segments * (roce_header + ETHERNET_OVERHEAD)
    return line_bps * request_size / wire / 1e9
