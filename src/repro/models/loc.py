"""Lines-of-code accounting (Table 4).

The paper reports the size of each software component (counted with
cloc).  We apply the same idea to this reproduction: a small cloc-style
counter (non-blank, non-comment lines) over the repository's own
components, mapped to the paper's component names.
"""

from __future__ import annotations

import io
import os
import tokenize
from typing import Dict, Iterable, List

import repro

_PACKAGE_ROOT = os.path.dirname(os.path.abspath(repro.__file__))


def count_python_loc(path: str) -> int:
    """Code lines in one Python file: non-blank, non-comment, and with
    docstrings excluded (cloc counts them as comments for Python)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    doc_lines = set()
    comment_lines = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except tokenize.TokenError:
        tokens = []
    previous_significant = None
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comment_lines.add(token.start[0])
        elif token.type == tokenize.STRING:
            # A string statement (docstring) follows NEWLINE/INDENT/DEDENT
            # or starts the file.
            if previous_significant in (None, tokenize.NEWLINE,
                                        tokenize.INDENT, tokenize.DEDENT):
                doc_lines.update(range(token.start[0], token.end[0] + 1))
            previous_significant = token.type
        elif token.type not in (tokenize.NL, tokenize.NEWLINE,
                                tokenize.INDENT, tokenize.DEDENT,
                                tokenize.ENCODING, tokenize.ENDMARKER):
            previous_significant = token.type
        elif token.type in (tokenize.NEWLINE, tokenize.INDENT,
                            tokenize.DEDENT):
            previous_significant = token.type
    count = 0
    for number, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if number in doc_lines:
            continue
        if number in comment_lines and stripped.startswith("#"):
            continue
        count += 1
    return count


def count_paths(paths: Iterable[str]) -> int:
    """Total LOC over files and (recursively) directories."""
    total = 0
    for path in paths:
        absolute = os.path.join(_PACKAGE_ROOT, path)
        if os.path.isfile(absolute):
            total += count_python_loc(absolute)
        elif os.path.isdir(absolute):
            for root, _dirs, files in os.walk(absolute):
                for name in sorted(files):
                    if name.endswith(".py"):
                        total += count_python_loc(os.path.join(root, name))
        else:
            raise FileNotFoundError(absolute)
    return total


#: Table 4's components mapped onto this repository's modules.
COMPONENTS: Dict[str, List[str]] = {
    "FLD runtime library": ["sw/runtime.py"],
    "FLD kernel driver": ["sw/kdriver.py"],
    "FLD-E control-plane": ["sw/flde.py"],
    "FLD-R control-plane": ["sw/fldr.py"],
    "FLD-R client library": ["sw/client.py"],
    "ZUC DPDK driver": ["sw/cryptodev.py"],
}

#: The hardware modules of Table 5, mapped onto their behavioural models.
HARDWARE_COMPONENTS: Dict[str, List[str]] = {
    "FLD": ["core"],
    "ZUC": ["accelerators/zuc"],
    "IP defrag.": ["accelerators/defrag.py", "net/fragment.py"],
    "IoT auth.": ["accelerators/iot"],
}


def table4() -> Dict[str, int]:
    """LOC per software component of this reproduction."""
    return {name: count_paths(paths) for name, paths in COMPONENTS.items()}


def hardware_loc() -> Dict[str, int]:
    return {name: count_paths(paths)
            for name, paths in HARDWARE_COMPONENTS.items()}


def repository_loc() -> int:
    """Total LOC of the whole library."""
    return count_paths(["."])
