"""Analytical models reproducing the paper's tables and model curves."""

from . import area, loc, memory, perf

__all__ = ["area", "loc", "memory", "perf"]
