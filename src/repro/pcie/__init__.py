"""Transaction-level PCIe fabric model."""

from .config import GEN5_X16_LINK, INNOVA2_LINK, PcieLinkConfig
from .endpoint import Bar, MemoryRegion, MmioRegion, PcieEndpoint, PcieError
from .fabric import PcieFabric
from .tlp import (
    COMPLETION_HEADER,
    DLLP_FRAMING,
    MEM_REQUEST_HEADER,
    Tlp,
    TlpType,
    read_wire_bytes,
    write_wire_bytes,
)

__all__ = [
    "Bar",
    "COMPLETION_HEADER",
    "DLLP_FRAMING",
    "GEN5_X16_LINK",
    "INNOVA2_LINK",
    "MEM_REQUEST_HEADER",
    "MemoryRegion",
    "MmioRegion",
    "PcieEndpoint",
    "PcieError",
    "PcieFabric",
    "PcieLinkConfig",
    "Tlp",
    "TlpType",
    "read_wire_bytes",
    "write_wire_bytes",
]
