"""PCIe Transaction Layer Packets and their wire-size accounting.

FLD's whole performance story (paper §8.1, Fig. 7a) is about the PCIe
protocol bytes that accompany every network packet: descriptor reads,
completion writes, doorbells, and the TLP framing around each of them.
This module models TLP kinds and sizes at the fidelity the paper's
performance model uses.

Sizing model (PCIe Gen 3):
  * every TLP carries physical/data-link framing: STP token (4 B) +
    LCRC (4 B) = 8 B;
  * memory request headers are 3 DW (12 B) below 4 GiB or 4 DW (16 B)
    with 64-bit addresses — we use 4 DW for requests, as device BARs in
    modern hosts sit in high memory;
  * completion headers are 3 DW (12 B);
  * a memory write's payload is capped by the link's max payload size
    (MPS); larger writes split into multiple TLPs;
  * a memory read is header-only; its data returns in completion TLPs
    split at the read completion boundary (RCB).
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

DLLP_FRAMING = 8        # STP token + LCRC per TLP
MEM_REQUEST_HEADER = 16  # 4 DW header (64-bit addressing)
COMPLETION_HEADER = 12   # 3 DW header

_sequence = itertools.count()


class TlpType(enum.Enum):
    MEM_READ = "MRd"
    MEM_WRITE = "MWr"
    COMPLETION_DATA = "CplD"
    COMPLETION = "Cpl"


class Tlp:
    """One transaction-layer packet.

    ``data`` is optional — timing-only simulations may carry just
    ``length``.  ``tag`` matches completions to their read request.

    The fields the fabric hangs on a TLP in flight (``trace_ctx``,
    ``bar``, ``on_delivered``, ``seq``) are dedicated slots rather than a
    side-band dict — a dict per TLP was measurable on the datapath.
    """

    __slots__ = ("kind", "address", "length", "data", "tag", "requester",
                 "completer", "trace_ctx", "bar", "on_delivered", "seq",
                 "_wire")

    def __init__(self, kind: TlpType, address: int = 0, length: int = 0,
                 data: Optional[bytes] = None, tag: Optional[int] = None,
                 requester: str = "", completer: str = ""):
        if data is not None:
            length = len(data)
        self.kind = kind
        self.address = address
        self.length = length
        self.data = data
        self.tag = tag if tag is not None else next(_sequence)
        self.requester = requester
        self.completer = completer
        self.trace_ctx = None    # span trace context riding this TLP
        self.bar = None          # decoded target BAR (set by the switch)
        self.on_delivered = None  # fabric write-completion callback
        self.seq = 0             # completion reassembly order
        self._wire = None

    def wire_bytes(self) -> int:
        """Bytes this single TLP occupies on the link (cached)."""
        wire = self._wire
        if wire is None:
            kind = self.kind
            if kind is TlpType.MEM_READ:
                wire = MEM_REQUEST_HEADER + DLLP_FRAMING
            elif kind is TlpType.MEM_WRITE:
                wire = MEM_REQUEST_HEADER + DLLP_FRAMING + self.length
            elif kind is TlpType.COMPLETION_DATA:
                wire = COMPLETION_HEADER + DLLP_FRAMING + self.length
            else:
                wire = COMPLETION_HEADER + DLLP_FRAMING
            self._wire = wire
        return wire

    def payload_wire_bytes(self) -> int:
        """The useful-payload share of :meth:`wire_bytes`."""
        if self.kind in (TlpType.MEM_WRITE, TlpType.COMPLETION_DATA):
            return self.length
        return 0

    def header_wire_bytes(self) -> int:
        """The protocol-overhead share (header + framing) of the TLP."""
        return self.wire_bytes() - self.payload_wire_bytes()

    def __repr__(self) -> str:
        return (
            f"Tlp({self.kind.value}, addr={self.address:#x}, "
            f"len={self.length}, tag={self.tag})"
        )


def split_write_bytes(length: int, mps: int) -> list:
    """TLP payload lengths for a write of ``length`` under MPS."""
    if length <= 0:
        return []
    sizes = []
    remaining = length
    while remaining > 0:
        chunk = min(remaining, mps)
        sizes.append(chunk)
        remaining -= chunk
    return sizes


def completion_chunks(length: int, rcb: int) -> list:
    """Completion payload lengths for a read of ``length`` under RCB."""
    return split_write_bytes(length, rcb)


def write_wire_bytes(length: int, mps: int) -> int:
    """Total link bytes to write ``length`` payload bytes."""
    chunks = split_write_bytes(length, mps)
    return sum(MEM_REQUEST_HEADER + DLLP_FRAMING + c for c in chunks)


def read_wire_bytes(length: int, rcb: int,
                    max_read_request: int = 512) -> tuple:
    """(request_bytes, completion_bytes) for reading ``length`` bytes.

    Long reads first split into max-read-request-sized requests, each
    answered by RCB-sized completions.
    """
    request_bytes = 0
    completion_bytes = 0
    for request in split_write_bytes(length, max_read_request):
        request_bytes += MEM_REQUEST_HEADER + DLLP_FRAMING
        for chunk in completion_chunks(request, rcb):
            completion_bytes += COMPLETION_HEADER + DLLP_FRAMING + chunk
    return request_bytes, completion_bytes
