"""PCIe endpoints and address windows.

An endpoint is anything with a presence in the fabric's address space:
host memory, the NIC's doorbell/UAR pages, or FLD's BAR.  Endpoints
implement ``handle_read``/``handle_write``; the fabric routes TLPs to them
by address.
"""

from __future__ import annotations

from typing import Optional


class PcieError(RuntimeError):
    """Raised on bad fabric addressing or endpoint misuse."""


class PcieEndpoint:
    """Base class: a named device function reachable over the fabric."""

    def __init__(self, name: str):
        self.name = name
        self.fabric = None  # set by PcieFabric.attach
        self._port = None   # the fabric port, cached by attach
        # Profiler owner tag: heap events whose callable is bound to
        # this endpoint are attributed here.  Subclasses refine it
        # (e.g. the FLD tags its tx and rx engines separately).
        self.profile_tag = name

    def handle_read(self, address: int, length: int) -> bytes:
        raise PcieError(f"{self.name} does not implement reads")

    def handle_write(self, address: int, data: bytes) -> None:
        raise PcieError(f"{self.name} does not implement writes")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Bar:
    """An address window [base, base+size) owned by an endpoint.

    Addresses handed to the endpoint are *BAR-relative* offsets, like a
    real device decoding its BAR hit.
    """

    __slots__ = ("base", "size", "endpoint")

    def __init__(self, base: int, size: int, endpoint: PcieEndpoint):
        if size <= 0:
            raise PcieError("BAR size must be positive")
        self.base = base
        self.size = size
        self.endpoint = endpoint

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size

    def overlaps(self, other: "Bar") -> bool:
        return self.base < other.base + other.size and other.base < self.base + self.size

    def __repr__(self) -> str:
        return (
            f"Bar({self.base:#x}..{self.base + self.size:#x} -> "
            f"{self.endpoint.name})"
        )


class MemoryRegion(PcieEndpoint):
    """Byte-addressable memory (host DRAM or a device-exposed buffer)."""

    def __init__(self, name: str, size: int):
        super().__init__(name)
        if size <= 0:
            raise PcieError("memory size must be positive")
        self.size = size
        self._data = bytearray(size)
        self.stats_reads = 0
        self.stats_writes = 0

    def handle_read(self, address: int, length: int) -> bytes:
        if address < 0 or address + length > self.size:
            raise PcieError(
                f"read [{address:#x}+{length}] outside {self.name} "
                f"(size {self.size:#x})"
            )
        self.stats_reads += 1
        return bytes(self._data[address:address + length])

    def handle_write(self, address: int, data: bytes) -> None:
        if address < 0 or address + len(data) > self.size:
            raise PcieError(
                f"write [{address:#x}+{len(data)}] outside {self.name}"
            )
        self.stats_writes += 1
        self._data[address:address + len(data)] = data

    # Local (non-PCIe) access for the CPU touching its own DRAM.
    read_local = handle_read

    def write_local(self, address: int, data: bytes) -> None:
        self.handle_write(address, data)


class MmioRegion(PcieEndpoint):
    """A write-side MMIO window dispatching to a callback (doorbells)."""

    def __init__(self, name: str, on_write, on_read=None):
        super().__init__(name)
        self._on_write = on_write
        self._on_read = on_read

    def handle_write(self, address: int, data: bytes) -> None:
        self._on_write(address, data)

    def handle_read(self, address: int, length: int) -> bytes:
        if self._on_read is None:
            raise PcieError(f"{self.name} is write-only MMIO")
        return self._on_read(address, length)
