"""The PCIe fabric: ports, a switch, and TLP routing.

Topology mirrors the Innova-2 (paper Fig. 6): every attached endpoint gets
a full-duplex port into one logical switch; peer-to-peer TLPs cross the
sender's upstream lane and the receiver's downstream lane, so a device's
link bandwidth is shared by all traffic through it — exactly the resource
the paper's §8.1 performance model budgets.

Reads are split transactions: a header-only request TLP travels to the
completer, which answers with one or more completion-with-data TLPs
(split at the RCB).  Writes are posted.  All TLP handling is functional
*and* timed: handlers run with real bytes when the initiator provides
them, and every TLP pays serialization on both lanes it crosses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim import Event, Link, Simulator
from .config import PcieLinkConfig
from .endpoint import Bar, PcieEndpoint, PcieError
from .tlp import Tlp, TlpType, completion_chunks, split_write_bytes


class _LaneCounters:
    """Per-lane TLP accounting: count, header bytes, payload bytes.

    The header/payload split is what makes Fig. 7a's claim — that small
    packets drown in PCIe protocol overhead — directly observable from a
    simulation run instead of only from the analytic model.
    """

    __slots__ = ("tlps", "header_bytes", "payload_bytes")

    def __init__(self, telemetry, prefix: str):
        self.tlps = telemetry.counter(f"{prefix}.tlps")
        self.header_bytes = telemetry.counter(f"{prefix}.header_bytes")
        self.payload_bytes = telemetry.counter(f"{prefix}.payload_bytes")

    def count(self, tlp: Tlp) -> None:
        self.tlps.inc()
        payload = tlp.payload_wire_bytes()
        self.header_bytes.inc(tlp.wire_bytes() - payload)
        self.payload_bytes.inc(payload)


class _WriteCountdown:
    """Completion countdown for a multi-TLP posted write."""

    __slots__ = ("remaining", "fabric", "span_id", "done")

    def __init__(self, remaining, fabric, span_id, done):
        self.remaining = remaining
        self.fabric = fabric
        self.span_id = span_id
        self.done = done

    def __call__(self, _=None):
        self.remaining -= 1
        if self.remaining == 0:
            fabric = self.fabric
            if self.span_id is not None:
                fabric._spans.exit(self.span_id, fabric.sim.now)
            self.done.succeed()


class _Port:
    """A device's two lanes into the switch."""

    def __init__(self, sim: Simulator, endpoint: PcieEndpoint,
                 config: PcieLinkConfig):
        rate = config.effective_data_bps
        self.endpoint = endpoint
        self.config = config
        # Split the configured one-way latency across the two hops.
        hop_latency = config.latency / 2
        self.up = Link(sim, rate, hop_latency, name=f"{endpoint.name}.up")
        self.down = Link(sim, rate, hop_latency, name=f"{endpoint.name}.down")
        self.up.trace_process = "pcie"
        self.down.trace_process = "pcie"
        telemetry = sim.telemetry
        if telemetry.enabled:
            self.tele_up = _LaneCounters(
                telemetry, f"pcie.{endpoint.name}.up")
            self.tele_down = _LaneCounters(
                telemetry, f"pcie.{endpoint.name}.down")
            telemetry.register_probe(
                f"pcie.{endpoint.name}",
                lambda: {
                    "up.bits": self.up.stats_bits,
                    "up.messages": self.up.stats_messages,
                    "down.bits": self.down.stats_bits,
                    "down.messages": self.down.stats_messages,
                },
            )
        else:
            self.tele_up = None
            self.tele_down = None


class PcieFabric:
    """Address-routed TLP switch connecting endpoints."""

    # Wire transit and switching dispatch as bound fabric methods; the
    # profiler attributes those heap events to the pcie stage.
    profile_tag = "pcie"

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._ports: Dict[str, _Port] = {}
        self._bars: List[Bar] = []
        self._pending_reads: Dict[int, dict] = {}
        self.stats_tlps: Dict[str, int] = {}
        self._spans = sim.telemetry.spans
        prof = sim.profiler
        self._prof = prof if prof.enabled else None
        # The trace context of the MEM_WRITE currently being delivered;
        # endpoints may claim it inside handle_write to re-associate a
        # packed descriptor with its packet (object identity dies at
        # the byte boundary).
        self._inbound_ctx = None

    def inbound_trace_ctx(self):
        """Context of the write TLP being delivered right now (or None)."""
        return self._inbound_ctx

    # -- topology ---------------------------------------------------------

    def attach(self, endpoint: PcieEndpoint,
               config: Optional[PcieLinkConfig] = None) -> None:
        """Give ``endpoint`` a port; required before it can initiate TLPs."""
        if endpoint.name in self._ports:
            raise PcieError(f"endpoint {endpoint.name!r} already attached")
        port = _Port(self.sim, endpoint, config or PcieLinkConfig())
        port.up.connect(self._route)
        port.down.connect(self._deliver)
        self._ports[endpoint.name] = port
        endpoint.fabric = self

    def detach(self, endpoint: PcieEndpoint) -> None:
        """Remove ``endpoint``'s port (teardown); BARs must go first."""
        for bar in self._bars:
            if bar.endpoint is endpoint:
                raise PcieError(
                    f"endpoint {endpoint.name!r} still decodes {bar}")
        if self._ports.pop(endpoint.name, None) is None:
            raise PcieError(f"endpoint {endpoint.name!r} not attached")

    def map_window(self, base: int, size: int, endpoint: PcieEndpoint) -> Bar:
        """Claim [base, base+size) in the fabric address space."""
        bar = Bar(base, size, endpoint)
        for existing in self._bars:
            if bar.overlaps(existing):
                raise PcieError(f"{bar} overlaps {existing}")
        self._bars.append(bar)
        return bar

    def unmap_window(self, base: int) -> Bar:
        """Release the BAR claimed at ``base`` (teardown path)."""
        for i, bar in enumerate(self._bars):
            if bar.base == base:
                del self._bars[i]
                return bar
        raise PcieError(f"no window mapped at {base:#x}")

    def decode(self, address: int) -> Bar:
        for bar in self._bars:
            if bar.contains(address):
                return bar
        raise PcieError(f"address {address:#x} does not decode to any BAR")

    def port_of(self, endpoint: PcieEndpoint) -> _Port:
        try:
            return self._ports[endpoint.name]
        except KeyError:
            raise PcieError(f"endpoint {endpoint.name!r} not attached") from None

    def link_utilization_bits(self, endpoint_name: str) -> float:
        """Total bits that have crossed this endpoint's two lanes."""
        port = self._ports[endpoint_name]
        return port.up.stats_bits + port.down.stats_bits

    # -- transactions -------------------------------------------------------

    def post_write(self, requester: PcieEndpoint, address: int,
                   data: bytes = None, length: int = None,
                   trace_ctx=None, trace_stage: str = "pcie.write") -> Event:
        """A posted memory write; the event fires when the last TLP lands.

        Pass ``data`` for functional writes or just ``length`` for
        timing-only traffic.  With ``trace_ctx`` the write is recorded
        as a ``trace_stage`` span on the packet's trace, and the
        context rides the TLPs so the receiving endpoint can claim it
        (``inbound_trace_ctx``) across the byte boundary.
        """
        port = self.port_of(requester)
        if data is None and length is None:
            raise PcieError("write needs data or length")
        total = len(data) if data is not None else length
        mps = port.config.max_payload_size
        done = Event(self.sim)
        span_id = self._spans.enter(trace_ctx, trace_stage, self.sim.now)

        if 0 < total <= mps:
            # Single-TLP fast path — the common case for descriptors,
            # CQEs, doorbells and small-packet payloads.
            tlp = Tlp(TlpType.MEM_WRITE, address, total, data,
                      requester=requester.name)
            tlp.trace_ctx = trace_ctx
            if span_id is None:
                tlp.on_delivered = done.succeed
            else:
                tlp.on_delivered = _WriteCountdown(1, self, span_id, done)
            self._send(port, tlp)
            return done

        cursor = 0
        chunks = split_write_bytes(total, mps) or [0]
        finish = _WriteCountdown(len(chunks), self, span_id, done)
        for chunk in chunks:
            payload = data[cursor:cursor + chunk] if data is not None else None
            tlp = Tlp(TlpType.MEM_WRITE, address + cursor, chunk, payload,
                      requester=requester.name)
            tlp.trace_ctx = trace_ctx
            cursor += chunk
            tlp.on_delivered = finish
            self._send(port, tlp)
        return done

    def read(self, requester: PcieEndpoint, address: int,
             length: int, trace_ctx=None,
             trace_stage: str = "pcie.read") -> Event:
        """A memory read; the event fires with the data bytes."""
        if length <= 0:
            raise PcieError("read length must be positive")
        port = self.port_of(requester)
        done = Event(self.sim)
        request = Tlp(TlpType.MEM_READ, address, length,
                      requester=requester.name)
        request.trace_ctx = trace_ctx
        self._pending_reads[request.tag] = {
            "event": done,
            "requester": requester.name,
            "chunks": [],
            "remaining": None,
        }
        if trace_ctx is not None:
            span_id = self._spans.enter(trace_ctx, trace_stage,
                                        self.sim.now)
            done.add_callback(
                lambda _event: self._spans.exit(span_id, self.sim.now))
        self._send(port, request)
        return done

    # -- internals -----------------------------------------------------------

    def _send(self, port: _Port, tlp: Tlp) -> None:
        kind = tlp.kind.value
        stats = self.stats_tlps
        stats[kind] = stats.get(kind, 0) + 1
        if port.tele_up is not None:
            port.tele_up.count(tlp)
        port.up.send(tlp, tlp.wire_bytes() * 8)

    def _route(self, tlp: Tlp) -> None:
        """Switch stage: forward a TLP down its target's lane."""
        kind = tlp.kind
        if kind is TlpType.COMPLETION_DATA or kind is TlpType.COMPLETION:
            target = self._ports[tlp.completer]
        else:
            bar = self.decode(tlp.address)
            target = self.port_of(bar.endpoint)
            tlp.bar = bar
        if target.tele_down is not None:
            target.tele_down.count(tlp)
        target.down.send(tlp, tlp.wire_bytes() * 8)

    def _deliver(self, tlp: Tlp) -> None:
        """Endpoint ingress: run the handler / complete the transaction."""
        kind = tlp.kind
        prof = self._prof
        if kind is TlpType.MEM_WRITE:
            bar = tlp.bar
            offset = tlp.address - bar.base
            if tlp.data is not None:
                # Work the handler pushes (and its own execution, for
                # wall-clock nesting) belongs to the receiving endpoint,
                # not to the fabric lane that carried the TLP.
                if prof is not None:
                    prof.current_tag = bar.endpoint.profile_tag
                ctx = tlp.trace_ctx
                if ctx is None:
                    bar.endpoint.handle_write(offset, tlp.data)
                else:
                    # Expose the TLP's trace context for the duration of
                    # the handler so the endpoint can re-attach it to
                    # whatever object it unpacks from the payload bytes.
                    self._inbound_ctx = ctx
                    try:
                        bar.endpoint.handle_write(offset, tlp.data)
                    finally:
                        self._inbound_ctx = None
                if prof is not None:
                    prof.current_tag = "pcie"
            on_delivered = tlp.on_delivered
            if on_delivered is not None:
                on_delivered()
            return

        if kind is TlpType.MEM_READ:
            bar = tlp.bar
            offset = tlp.address - bar.base
            if prof is not None:
                prof.current_tag = bar.endpoint.profile_tag
            data = bar.endpoint.handle_read(offset, tlp.length)
            if prof is not None:
                prof.current_tag = "pcie"
            completer_port = self.port_of(bar.endpoint)
            rcb = completer_port.config.read_completion_boundary
            chunks = completion_chunks(tlp.length, rcb)
            state = self._pending_reads[tlp.tag]
            state["remaining"] = len(chunks)
            cursor = 0
            for index, chunk in enumerate(chunks):
                completion = Tlp(
                    TlpType.COMPLETION_DATA, tlp.address + cursor, chunk,
                    data[cursor:cursor + chunk], tag=tlp.tag,
                    requester=tlp.requester, completer=tlp.requester,
                )
                completion.seq = index
                cursor += chunk
                self._send(completer_port, completion)
            return

        if kind is TlpType.COMPLETION_DATA:
            state = self._pending_reads.get(tlp.tag)
            if state is None:
                raise PcieError(f"orphan completion {tlp!r}")
            state["chunks"].append((tlp.seq, tlp.data))
            if len(state["chunks"]) == state["remaining"]:
                del self._pending_reads[tlp.tag]
                data = b"".join(
                    part for _seq, part in sorted(state["chunks"])
                )
                state["event"].succeed(data)
            return

        raise PcieError(f"unroutable TLP {tlp!r}")
