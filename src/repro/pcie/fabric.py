"""The PCIe fabric: ports, a switch, and TLP routing.

Topology mirrors the Innova-2 (paper Fig. 6): every attached endpoint gets
a full-duplex port into one logical switch; peer-to-peer TLPs cross the
sender's upstream lane and the receiver's downstream lane, so a device's
link bandwidth is shared by all traffic through it — exactly the resource
the paper's §8.1 performance model budgets.

Reads are split transactions: a header-only request TLP travels to the
completer, which answers with one or more completion-with-data TLPs
(split at the RCB).  Writes are posted.  All TLP handling is functional
*and* timed: handlers run with real bytes when the initiator provides
them, and every TLP pays serialization on both lanes it crosses.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional

from ..sim import Event, Link, Simulator
from .config import PcieLinkConfig
from .endpoint import Bar, PcieEndpoint, PcieError
from .tlp import (
    COMPLETION_HEADER,
    DLLP_FRAMING,
    Tlp,
    TlpType,
    completion_chunks,
    split_write_bytes,
)


class _LaneCounters:
    """Per-lane TLP accounting: count, header bytes, payload bytes.

    The header/payload split is what makes Fig. 7a's claim — that small
    packets drown in PCIe protocol overhead — directly observable from a
    simulation run instead of only from the analytic model.
    """

    __slots__ = ("tlps", "header_bytes", "payload_bytes")

    def __init__(self, telemetry, prefix: str):
        self.tlps = telemetry.counter(f"{prefix}.tlps")
        self.header_bytes = telemetry.counter(f"{prefix}.header_bytes")
        self.payload_bytes = telemetry.counter(f"{prefix}.payload_bytes")

    def count(self, tlp: Tlp) -> None:
        self.tlps.inc()
        payload = tlp.payload_wire_bytes()
        self.header_bytes.inc(tlp.wire_bytes() - payload)
        self.payload_bytes.inc(payload)


class _WriteCountdown:
    """Completion countdown for a multi-TLP posted write."""

    __slots__ = ("remaining", "fabric", "span_id", "done")

    def __init__(self, remaining, fabric, span_id, done):
        self.remaining = remaining
        self.fabric = fabric
        self.span_id = span_id
        self.done = done

    def __call__(self, _=None):
        self.remaining -= 1
        if self.remaining == 0:
            fabric = self.fabric
            if self.span_id is not None:
                fabric._spans.exit(self.span_id, fabric.sim._now)
            self.done.succeed()


class _CallbackDone:
    """Duck-typed stand-in for a completion :class:`Event`.

    Flattened initiators pass ``on_done`` to :meth:`PcieFabric.post_write`;
    the write machinery only ever calls ``done.succeed()``, so a bare
    callable slot replaces the Event allocation on the hot path.
    """

    __slots__ = ("succeed",)

    def __init__(self, callback):
        self.succeed = callback


class DeferredWrite:
    """A posted write whose delivery the initiator folds into its own
    continuation event (cut-through mode only).

    ``delivery`` is the TLP's arrival time at the endpoint — re-read it
    at fire time, since shared-lane arbitration may repair it later.
    The owner must call :meth:`commit` from its continuation event at
    (or after) ``delivery``; that retires the lane reservation and runs
    the endpoint's write handler, exactly what the fabric's own delivery
    event would have done.
    """

    __slots__ = ("_fabric", "_tlp", "_link", "_record")

    def __init__(self, fabric, tlp, link, record):
        self._fabric = fabric
        self._tlp = tlp
        self._link = link
        self._record = record

    @property
    def delivery(self) -> float:
        return self._record.delivery

    def commit(self) -> None:
        self._fabric._retire_path(self._link, self._record)
        self._fabric._deliver_write(self._tlp)

    def retire(self) -> None:
        """Release the lane reservation without running the handler —
        for owners that already applied the write's effects themselves
        (e.g. a CQE decoded at issue time)."""
        self._fabric._retire_path(self._link, self._record)


class _Port:
    """A device's two lanes into the switch."""

    def __init__(self, sim: Simulator, endpoint: PcieEndpoint,
                 config: PcieLinkConfig):
        rate = config.effective_data_bps
        self.endpoint = endpoint
        self.config = config
        # Split the configured one-way latency across the two hops.
        hop_latency = config.latency / 2
        self.up = Link(sim, rate, hop_latency, name=f"{endpoint.name}.up")
        self.down = Link(sim, rate, hop_latency, name=f"{endpoint.name}.down")
        self.up.trace_process = "pcie"
        self.down.trace_process = "pcie"
        telemetry = sim.telemetry
        if telemetry.enabled:
            self.tele_up = _LaneCounters(
                telemetry, f"pcie.{endpoint.name}.up")
            self.tele_down = _LaneCounters(
                telemetry, f"pcie.{endpoint.name}.down")
            telemetry.register_probe(
                f"pcie.{endpoint.name}",
                lambda: {
                    "up.bits": self.up.stats_bits,
                    "up.messages": self.up.stats_messages,
                    "down.bits": self.down.stats_bits,
                    "down.messages": self.down.stats_messages,
                },
            )
        else:
            self.tele_up = None
            self.tele_down = None


class PcieFabric:
    """Address-routed TLP switch connecting endpoints."""

    # Wire transit and switching dispatch as bound fabric methods; the
    # profiler attributes those heap events to the pcie stage.
    profile_tag = "pcie"

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._ports: Dict[str, _Port] = {}
        self._bars: List[Bar] = []
        self._decode_bases: List[int] = []
        self._decode_bars: List[Bar] = []
        self._pending_reads: Dict[int, dict] = {}
        self.stats_tlps: Dict[str, int] = {}
        self._spans = sim.telemetry.spans
        prof = sim.profiler
        self._prof = prof if prof.enabled else None
        # Cut-through transit: resolve the route and reserve both lanes
        # at issue time, with one delivery event per TLP (and one per
        # multi-TLP train) instead of the per-hop send→route→deliver
        # event chain.  Lane arbitration stays exact: reservations apply
        # in switch-arrival (time, seq) order (see Link.reserve).  The
        # Chrome tracer records lane spans as they serialize, which
        # post-hoc reservation repair would falsify, so traced runs keep
        # the per-hop chain.
        self._cut_through = not sim.telemetry.tracer.enabled
        # Arrival-order tie-break: monotonic per-TLP issue sequence,
        # mirroring the dispatch order the per-hop chain's switch events
        # would have had for same-instant arrivals.
        self._issue_seq = 0
        # The trace context of the MEM_WRITE currently being delivered;
        # endpoints may claim it inside handle_write to re-associate a
        # packed descriptor with its packet (object identity dies at
        # the byte boundary).
        self._inbound_ctx = None

    def inbound_trace_ctx(self):
        """Context of the write TLP being delivered right now (or None)."""
        return self._inbound_ctx

    # -- topology ---------------------------------------------------------

    def attach(self, endpoint: PcieEndpoint,
               config: Optional[PcieLinkConfig] = None) -> None:
        """Give ``endpoint`` a port; required before it can initiate TLPs."""
        if endpoint.name in self._ports:
            raise PcieError(f"endpoint {endpoint.name!r} already attached")
        port = _Port(self.sim, endpoint, config or PcieLinkConfig())
        port.up.connect(self._route)
        port.down.connect(self._deliver)
        self._ports[endpoint.name] = port
        endpoint.fabric = self
        endpoint._port = port

    def detach(self, endpoint: PcieEndpoint) -> None:
        """Remove ``endpoint``'s port (teardown); BARs must go first."""
        for bar in self._bars:
            if bar.endpoint is endpoint:
                raise PcieError(
                    f"endpoint {endpoint.name!r} still decodes {bar}")
        if self._ports.pop(endpoint.name, None) is None:
            raise PcieError(f"endpoint {endpoint.name!r} not attached")
        if endpoint.fabric is self:
            endpoint.fabric = None
            endpoint._port = None

    def map_window(self, base: int, size: int, endpoint: PcieEndpoint) -> Bar:
        """Claim [base, base+size) in the fabric address space."""
        bar = Bar(base, size, endpoint)
        for existing in self._bars:
            if bar.overlaps(existing):
                raise PcieError(f"{bar} overlaps {existing}")
        self._bars.append(bar)
        self._rebuild_decode_index()
        return bar

    def unmap_window(self, base: int) -> Bar:
        """Release the BAR claimed at ``base`` (teardown path)."""
        for i, bar in enumerate(self._bars):
            if bar.base == base:
                del self._bars[i]
                self._rebuild_decode_index()
                return bar
        raise PcieError(f"no window mapped at {base:#x}")

    def _rebuild_decode_index(self) -> None:
        """Base-sorted decode index; BARs never overlap so a bisect on
        bases finds the unique candidate window for any address."""
        ordered = sorted(self._bars, key=lambda bar: bar.base)
        self._decode_bases = [bar.base for bar in ordered]
        self._decode_bars = ordered

    def decode(self, address: int) -> Bar:
        index = bisect_right(self._decode_bases, address) - 1
        if index >= 0:
            bar = self._decode_bars[index]
            if address < bar.base + bar.size:
                return bar
        raise PcieError(f"address {address:#x} does not decode to any BAR")

    def port_of(self, endpoint: PcieEndpoint) -> _Port:
        # Attached initiators carry their port (set by attach) — one
        # identity check instead of a name hash on every transaction.
        if endpoint.fabric is self:
            return endpoint._port
        try:
            return self._ports[endpoint.name]
        except KeyError:
            raise PcieError(f"endpoint {endpoint.name!r} not attached") from None

    def link_utilization_bits(self, endpoint_name: str) -> float:
        """Total bits that have crossed this endpoint's two lanes."""
        port = self._ports[endpoint_name]
        return port.up.stats_bits + port.down.stats_bits

    # -- transactions -------------------------------------------------------

    def post_write(self, requester: PcieEndpoint, address: int,
                   data: bytes = None, length: int = None,
                   trace_ctx=None, trace_stage: str = "pcie.write",
                   on_done=None) -> Event:
        """A posted memory write; the event fires when the last TLP lands.

        Pass ``data`` for functional writes or just ``length`` for
        timing-only traffic.  With ``trace_ctx`` the write is recorded
        as a ``trace_stage`` span on the packet's trace, and the
        context rides the TLPs so the receiving endpoint can claim it
        (``inbound_trace_ctx``) across the byte boundary.

        Flattened initiators that only need a completion *callback* pass
        ``on_done`` (a zero-argument callable) instead of chaining on
        the returned event: the write then skips the Event allocation
        entirely and invokes the callback at the exact instant the
        event would have fired.  The return value is not an Event in
        that case and must be ignored.
        """
        port = self.port_of(requester)
        if data is None and length is None:
            raise PcieError("write needs data or length")
        total = len(data) if data is not None else length
        mps = port.config.max_payload_size
        span_id = self._spans.enter(trace_ctx, trace_stage, self.sim._now)
        if on_done is not None and span_id is None:
            done = _CallbackDone(on_done)
        else:
            done = Event(self.sim)

        if 0 < total <= mps:
            # Single-TLP fast path — the common case for descriptors,
            # CQEs, doorbells and small-packet payloads.
            tlp = Tlp(TlpType.MEM_WRITE, address, total, data,
                      requester=requester.name)
            tlp.trace_ctx = trace_ctx
            if span_id is None:
                tlp.on_delivered = done.succeed
            else:
                tlp.on_delivered = _WriteCountdown(1, self, span_id, done)
            self._send(port, tlp)
            return done

        cursor = 0
        chunks = split_write_bytes(total, mps) or [0]
        if self._cut_through and self.decode(address).contains(
                address + max(total, 1) - 1):
            # Whole train decodes to one endpoint: reserve every TLP's
            # lane occupancy now and deliver the train in one aggregate
            # event at the last chunk's arrival (per-TLP stats stay
            # exact; nothing observes the target between chunk times —
            # any dependent TLP orders behind the last chunk on the
            # same lane anyway).
            tlps = []
            for chunk in chunks:
                payload = (data[cursor:cursor + chunk]
                           if data is not None else None)
                tlp = Tlp(TlpType.MEM_WRITE, address + cursor, chunk, payload,
                          requester=requester.name)
                tlp.trace_ctx = trace_ctx
                cursor += chunk
                tlps.append(tlp)
            self._send_train(port, tlps, span_id, done)
            return done
        finish = _WriteCountdown(len(chunks), self, span_id, done)
        for chunk in chunks:
            payload = data[cursor:cursor + chunk] if data is not None else None
            tlp = Tlp(TlpType.MEM_WRITE, address + cursor, chunk, payload,
                      requester=requester.name)
            tlp.trace_ctx = trace_ctx
            cursor += chunk
            tlp.on_delivered = finish
            self._send(port, tlp)
        return done

    def read(self, requester: PcieEndpoint, address: int,
             length: int, trace_ctx=None,
             trace_stage: str = "pcie.read",
             on_done=None) -> Event:
        """A memory read; the event fires with the data bytes.

        As with :meth:`post_write`, flattened initiators that only need
        the data pass ``on_done`` (called with the bytes at completion
        time) and the Event allocation is skipped; the return value must
        then be ignored.
        """
        if length <= 0:
            raise PcieError("read length must be positive")
        port = self.port_of(requester)
        if on_done is not None and trace_ctx is None:
            done = _CallbackDone(on_done)
        else:
            done = Event(self.sim)
        request = Tlp(TlpType.MEM_READ, address, length,
                      requester=requester.name)
        request.trace_ctx = trace_ctx
        self._pending_reads[request.tag] = {
            "event": done,
            "requester": requester.name,
            "chunks": [],
            "remaining": None,
        }
        if trace_ctx is not None:
            span_id = self._spans.enter(trace_ctx, trace_stage,
                                        self.sim._now)
            done.add_callback(
                lambda _event: self._spans.exit(span_id, self.sim._now))
        self._send(port, request)
        return done

    def post_write_deferred(self, requester: PcieEndpoint, address: int,
                            data: bytes) -> Optional[DeferredWrite]:
        """A single-TLP posted write without its own delivery event.

        Cut-through fast path for initiators that already schedule a
        continuation at/after the write's arrival (e.g. a CQE write
        fused with the consumer's processing delay): lanes are reserved
        and per-TLP stats counted exactly as :meth:`post_write`, but the
        caller owns delivery via the returned handle's ``commit()``.
        Returns ``None`` (caller falls back to :meth:`post_write`) in
        per-hop mode or when the write doesn't fit one TLP.
        """
        if not self._cut_through:
            return None
        port = self.port_of(requester)
        if not 0 < len(data) <= port.config.max_payload_size:
            return None
        tlp = Tlp(TlpType.MEM_WRITE, address, len(data), data,
                  requester=requester.name)
        stats = self.stats_tlps
        stats["MWr"] = stats.get("MWr", 0) + 1
        if port.tele_up is not None:
            port.tele_up.count(tlp)
        target, record = self._reserve_path(port, tlp)
        return DeferredWrite(self, tlp, target.down, record)

    def post_write_at(self, requester: PcieEndpoint, address: int,
                      data: bytes, arrival: float) -> Event:
        """A single-TLP posted write arbitrating as if issued at ``arrival``.

        Fused pipeline stages resolve a future write early (cut-through
        mode only): both lanes are reserved under the future arrival key
        — the reservation model replays the reference arbitration
        exactly (see :class:`~repro.sim.resources.Reservation`) — and
        the write delivers through the normal cut-through event at its
        computed arrival.
        """
        port = self.port_of(requester)
        if not 0 < len(data) <= port.config.max_payload_size:
            raise PcieError("post_write_at needs a single-TLP payload")
        done = Event(self.sim)
        tlp = Tlp(TlpType.MEM_WRITE, address, len(data), data,
                  requester=requester.name)
        tlp.on_delivered = done.succeed
        stats = self.stats_tlps
        stats["MWr"] = stats.get("MWr", 0) + 1
        if port.tele_up is not None:
            port.tele_up.count(tlp)
        target, record = self._reserve_path(port, tlp, arrival)
        sim = self.sim
        sim.call_later(record.delivery - sim._now, self._arrive,
                       (tlp, target.down, record))
        return done

    # -- internals -----------------------------------------------------------

    def _send(self, port: _Port, tlp: Tlp) -> None:
        kind = tlp.kind.value
        stats = self.stats_tlps
        stats[kind] = stats.get(kind, 0) + 1
        if port.tele_up is not None:
            port.tele_up.count(tlp)
        if self._cut_through:
            target, record = self._reserve_path(port, tlp)
            sim = self.sim
            sim.call_later(record.delivery - sim._now, self._arrive,
                           (tlp, target.down, record))
            return
        port.up.send(tlp, tlp.wire_bytes() * 8)

    # -- cut-through transit -------------------------------------------------

    def _reserve_path(self, port: _Port, tlp: Tlp,
                      arrival: Optional[float] = None):
        """Resolve the route and reserve both lanes; returns the target
        port and the downstream reservation (whose ``delivery`` is the
        TLP's arrival at the endpoint, subject to repair).  ``arrival``
        keys the upstream lane at a future instant for writes resolved
        ahead of their issue time (:meth:`post_write_at`)."""
        bar = self.decode(tlp.address)
        target = self.port_of(bar.endpoint)
        tlp.bar = bar
        if target.tele_down is not None:
            target.tele_down.count(tlp)
        bits = tlp.wire_bytes() * 8
        seq = self._issue_seq
        self._issue_seq = seq + 1
        up = port.up
        if arrival is None:
            now = self.sim._now
            if (up._ctr_bits is None
                    and (not up._lane_keys
                         or up._lane_keys[-1] <= (now, seq))):
                # Stable up lane (see Link.reserve): the occupancy
                # recurrence runs inline with no Reservation handle —
                # retiring one would be a no-op prune anyway, so the
                # downstream record carries no upstream pointer.
                keys = up._lane_keys
                if keys:
                    up._busy_until = up._lane_fin[-1]
                    keys.clear()
                    up._lane_fin.clear()
                    up._lane_recs.clear()
                prev = up._busy_until
                start = now if now > prev else prev
                rate = up.rate_bps
                finish = start if rate is None else start + bits / rate
                up._busy_until = finish
                up.stats_bits += bits
                up.stats_messages += 1
                return target, target.down.reserve(
                    bits, finish + up.latency, seq)
            arrival = now
        up_record = up.reserve(bits, arrival, seq)
        down = target.down.reserve(bits, up_record.delivery, seq)
        down.upstream = (up, up_record)
        return target, down

    @staticmethod
    def _retire_path(link, record) -> None:
        """Retire a delivered TLP's reservations on both lanes.

        By delivery time the upstream occupancy is strictly in the past
        (no later issue can precede it — arrival keys are >= now), so
        retiring it is pure pruning: without this the upstream pending
        lists only ever grow and every out-of-order insert degrades to
        a linear scan."""
        upstream = record.upstream
        if upstream is not None:
            upstream[0].retire(upstream[1])
        link.retire(record)

    def _send_train(self, port: _Port, tlps: List[Tlp], span_id,
                    done: Event) -> None:
        """Reserve a multi-TLP posted-write train; one delivery event."""
        stats = self.stats_tlps
        records = []
        target = None
        for tlp in tlps:
            stats[tlp.kind.value] = stats.get(tlp.kind.value, 0) + 1
            if port.tele_up is not None:
                port.tele_up.count(tlp)
            target, record = self._reserve_path(port, tlp)
            records.append(record)
        sim = self.sim
        entry = (tlps, target.down, records, span_id, done)
        sim.call_later(records[-1].delivery - sim._now,
                       self._train_arrived, entry)

    def _arrive(self, entry) -> None:
        """Single-TLP delivery event (cut-through path)."""
        tlp, link, record = entry
        sim = self.sim
        if record.delivery > sim._now:
            # An out-of-order arrival on the shared lane pushed this TLP
            # later after the event was scheduled; fire again on time.
            sim.call_later(record.delivery - sim._now, self._arrive, entry)
            return
        self._retire_path(link, record)
        kind = tlp.kind
        if kind is TlpType.MEM_WRITE:
            self._deliver_write(tlp)
        elif kind is TlpType.MEM_READ:
            self._read_arrived(tlp)
        else:
            raise PcieError(f"unroutable TLP {tlp!r}")

    def _train_arrived(self, entry) -> None:
        """Aggregate delivery of a posted-write train (last chunk lands)."""
        tlps, link, records, span_id, done = entry
        sim = self.sim
        last = records[-1]
        if last.delivery > sim._now:
            sim.call_later(last.delivery - sim._now, self._train_arrived,
                           entry)
            return
        for record in records:
            record.done = True
            upstream = record.upstream
            if upstream is not None:
                upstream[0].retire(upstream[1])
        link.retire(last)
        for tlp in tlps:
            self._deliver_write(tlp)
        if span_id is not None:
            self._spans.exit(span_id, sim._now)
        done.succeed()

    def _deliver_write(self, tlp: Tlp) -> None:
        """Run a MEM_WRITE's endpoint handler and completion callback."""
        bar = tlp.bar
        offset = tlp.address - bar.base
        if tlp.data is not None:
            prof = self._prof
            # Work the handler pushes (and its own execution, for
            # wall-clock nesting) belongs to the receiving endpoint,
            # not to the fabric lane that carried the TLP.
            if prof is not None:
                prof.current_tag = bar.endpoint.profile_tag
            ctx = tlp.trace_ctx
            try:
                if ctx is None:
                    bar.endpoint.handle_write(offset, tlp.data)
                else:
                    self._inbound_ctx = ctx
                    try:
                        bar.endpoint.handle_write(offset, tlp.data)
                    finally:
                        self._inbound_ctx = None
            finally:
                if prof is not None:
                    prof.current_tag = "pcie"
        on_delivered = tlp.on_delivered
        if on_delivered is not None:
            on_delivered()

    def _read_arrived(self, tlp: Tlp) -> None:
        """A read request landed: run the handler and reserve the whole
        completion train, completing in one aggregate event."""
        bar = tlp.bar
        offset = tlp.address - bar.base
        prof = self._prof
        if prof is not None:
            prof.current_tag = bar.endpoint.profile_tag
        try:
            data = bar.endpoint.handle_read(offset, tlp.length)
        finally:
            if prof is not None:
                prof.current_tag = "pcie"
        completer_port = self.port_of(bar.endpoint)
        requester_port = self._ports[tlp.requester]
        rcb = completer_port.config.read_completion_boundary
        chunks = completion_chunks(tlp.length, rcb)
        state = self._pending_reads[tlp.tag]
        state["remaining"] = len(chunks)
        parts = state["chunks"]
        sim = self.sim
        now = sim._now
        stats = self.stats_tlps
        tele_up = completer_port.tele_up
        tele_down = requester_port.tele_down
        down = requester_port.down
        up = completer_port.up
        seq = self._issue_seq
        if (tele_up is None and tele_down is None
                and up._ctr_bits is None
                and (not up._lane_keys or up._lane_keys[-1] <= (now, seq))):
            # Fused fast path.  The completion TLPs are never routed or
            # delivered as objects — only their lane occupancy and data
            # slices matter — so skip allocating them.  The up lane is
            # keyed at (now, seq..): provably stable (see Link.reserve),
            # so its whole occupancy recurrence runs inline with no
            # Reservation handles; per-chunk reservations survive only
            # on the shared down lane, where later-issued traffic can
            # still interleave with the train and force a replay.
            up_keys = up._lane_keys
            if up_keys:
                up._busy_until = up._lane_fin[-1]
                up_keys.clear()
                up._lane_fin.clear()
                up._lane_recs.clear()
            rate_up = up.rate_bps
            lat_up = up.latency
            prev = up._busy_until
            header_bits = (COMPLETION_HEADER + DLLP_FRAMING) * 8
            n = len(chunks)
            stats["CplD"] = stats.get("CplD", 0) + n
            append_part = parts.append
            bits_list = []
            arrivals = []
            total_bits = 0
            cursor = 0
            for index, chunk in enumerate(chunks):
                bits = header_bits + chunk * 8
                bits_list.append(bits)
                total_bits += bits
                start = now if now > prev else prev
                prev = start if rate_up is None else start + bits / rate_up
                arrivals.append(prev + lat_up)
                append_part((index, data[cursor:cursor + chunk]))
                cursor += chunk
            self._issue_seq = seq + n
            up._busy_until = prev
            up.stats_bits += total_bits
            up.stats_messages += n
            # The whole completion burst is ONE down-lane entry; a
            # later-issued message keying inside the train splits it
            # back into per-chunk records (see Link.reserve_train).
            train = down.reserve_train(bits_list, arrivals, seq)
            entry = (tlp.tag, down, (train,))
            sim.call_later(train.delivery - now,
                           self._read_completed, entry)
            return
        records = []
        cursor = 0
        for index, chunk in enumerate(chunks):
            completion = Tlp(
                TlpType.COMPLETION_DATA, tlp.address + cursor, chunk,
                data[cursor:cursor + chunk], tag=tlp.tag,
                requester=tlp.requester, completer=tlp.requester,
            )
            completion.seq = index
            cursor += chunk
            stats["CplD"] = stats.get("CplD", 0) + 1
            if tele_up is not None:
                tele_up.count(completion)
            if tele_down is not None:
                tele_down.count(completion)
            bits = completion.wire_bytes() * 8
            seq = self._issue_seq
            self._issue_seq = seq + 1
            up_record = up.reserve(bits, now, seq)
            down_record = down.reserve(bits, up_record.delivery, seq)
            down_record.upstream = (up, up_record)
            records.append(down_record)
            parts.append((index, completion.data))
        entry = (tlp.tag, down, records)
        sim.call_later(records[-1].delivery - now, self._read_completed,
                       entry)

    def _read_completed(self, entry) -> None:
        """Aggregate arrival of a completion train (last chunk lands)."""
        tag, link, records = entry
        sim = self.sim
        last = records[-1]
        if last.delivery > sim._now:
            sim.call_later(last.delivery - sim._now, self._read_completed,
                           entry)
            return
        # Batch retire: mark the whole train done, then prune the lane
        # prefix once instead of once per chunk.
        for record in records:
            record.done = True
            upstream = record.upstream
            if upstream is not None:
                upstream[0].retire(upstream[1])
        link.retire(last)
        state = self._pending_reads.pop(tag)
        data = b"".join(part for _seq, part in sorted(state["chunks"]))
        state["event"].succeed(data)

    # -- per-hop transit (traced runs) ---------------------------------------

    def _route(self, tlp: Tlp) -> None:
        """Switch stage: forward a TLP down its target's lane."""
        kind = tlp.kind
        if kind is TlpType.COMPLETION_DATA or kind is TlpType.COMPLETION:
            target = self._ports[tlp.completer]
        else:
            bar = self.decode(tlp.address)
            target = self.port_of(bar.endpoint)
            tlp.bar = bar
        if target.tele_down is not None:
            target.tele_down.count(tlp)
        target.down.send(tlp, tlp.wire_bytes() * 8)

    def _deliver(self, tlp: Tlp) -> None:
        """Endpoint ingress: run the handler / complete the transaction."""
        kind = tlp.kind
        prof = self._prof
        if kind is TlpType.MEM_WRITE:
            self._deliver_write(tlp)
            return

        if kind is TlpType.MEM_READ:
            bar = tlp.bar
            offset = tlp.address - bar.base
            if prof is not None:
                prof.current_tag = bar.endpoint.profile_tag
            try:
                data = bar.endpoint.handle_read(offset, tlp.length)
            finally:
                if prof is not None:
                    prof.current_tag = "pcie"
            completer_port = self.port_of(bar.endpoint)
            rcb = completer_port.config.read_completion_boundary
            chunks = completion_chunks(tlp.length, rcb)
            state = self._pending_reads[tlp.tag]
            state["remaining"] = len(chunks)
            cursor = 0
            for index, chunk in enumerate(chunks):
                completion = Tlp(
                    TlpType.COMPLETION_DATA, tlp.address + cursor, chunk,
                    data[cursor:cursor + chunk], tag=tlp.tag,
                    requester=tlp.requester, completer=tlp.requester,
                )
                completion.seq = index
                cursor += chunk
                self._send(completer_port, completion)
            return

        if kind is TlpType.COMPLETION_DATA:
            state = self._pending_reads.get(tlp.tag)
            if state is None:
                raise PcieError(f"orphan completion {tlp!r}")
            state["chunks"].append((tlp.seq, tlp.data))
            if len(state["chunks"]) == state["remaining"]:
                del self._pending_reads[tlp.tag]
                data = b"".join(
                    part for _seq, part in sorted(state["chunks"])
                )
                state["event"].succeed(data)
            return

        raise PcieError(f"unroutable TLP {tlp!r}")
