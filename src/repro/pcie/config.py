"""PCIe link configurations and effective data rates.

Rates follow the spec: Gen 3 runs 8 GT/s per lane with 128b/130b encoding,
Gen 4 doubles it, Gen 5 doubles again.  ``effective_data_bps`` further
derates the raw rate for DLLP traffic (flow-control updates, ACK/NAK),
which the paper's model treats as a fixed efficiency factor.
"""

from __future__ import annotations

from dataclasses import dataclass

# Raw per-lane rates after line coding, in bits/second.
_LANE_RATE_BPS = {
    3: 8e9 * (128 / 130),
    4: 16e9 * (128 / 130),
    5: 32e9 * (128 / 130),
}

# Fraction of raw bandwidth left after DLLP overhead (ACK/NAK + FC).
DLLP_EFFICIENCY = 0.95


@dataclass(frozen=True)
class PcieLinkConfig:
    """A link's generation, width and transaction parameters."""

    generation: int = 3
    lanes: int = 8
    max_payload_size: int = 256      # MPS for writes
    read_completion_boundary: int = 256  # RCB for read completions
    max_read_request: int = 512
    latency: float = 500e-9          # one-way TLP latency through the fabric

    def __post_init__(self):
        if self.generation not in _LANE_RATE_BPS:
            raise ValueError(f"unsupported PCIe generation {self.generation}")
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ValueError(f"invalid lane count {self.lanes}")

    @property
    def raw_bps(self) -> float:
        """Raw encoded bandwidth of the link, one direction."""
        return _LANE_RATE_BPS[self.generation] * self.lanes

    @property
    def effective_data_bps(self) -> float:
        """Usable TLP bandwidth after DLLP overhead, one direction."""
        return self.raw_bps * DLLP_EFFICIENCY


#: The Innova-2 configuration: NIC<->FPGA over PCIe Gen 3 x8.  The paper
#: quotes the usable rate as "50 Gbps" (§6), i.e. the practical ceiling
#: of a Gen3 x8 link once TLP and DLLP overheads for realistic traffic
#: are paid; our config reproduces the raw 62.9 Gbps link from which that
#: ceiling emerges.
INNOVA2_LINK = PcieLinkConfig(generation=3, lanes=8)

#: A future 400 Gbps-era link (Gen 5 x16), used in scalability analysis.
GEN5_X16_LINK = PcieLinkConfig(generation=5, lanes=16)
