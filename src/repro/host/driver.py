"""The software NIC driver baseline (§2.2).

This is the conventional design FLD is compared against: descriptor rings
and data buffers live in *host memory*; the CPU writes WQEs and rings
doorbells over PCIe; the NIC DMA-reads descriptors/buffers and DMA-writes
packet data and CQEs back.  It provides:

* :class:`EthQueuePair` — raw Ethernet tx/rx queues (the testpmd data path),
* :class:`RcEndpoint` — a host RDMA RC endpoint (verbs-like post_send /
  message receive), used by the FLD-R clients.

The driver's memory consumption is the quantity Table 3 analyses; its
``memory_footprint`` method reports the same buckets.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from ..nic import (
    CQE_FLAG_MSG_LAST,
    Cqe,
    Nic,
    OP_ETH_SEND,
    OP_RDMA_SEND,
    OP_RDMA_WRITE,
    RxDesc,
    TxWqe,
    WQE_FLAG_CSUM_L4,
    WQE_FLAG_LSO,
    WQE_FLAG_SIGNALED,
    WQE_MMIO_BASE,
    WQE_MMIO_STRIDE,
    WQE_SIZE,
)
from ..nic import CommandChannel
from ..nic.device import DOORBELL_STRIDE, _POISON
from ..nic.queues import ReceiveQueue
from ..sim import Event, Simulator, Store, fused_dispatch_ok
from ..topology.addrmap import CMD_MAILBOX_OFFSET, NIC_CMD_DOORBELL
from .cpu import CpuCore, HostCpuPort
from .memory import BumpAllocator, HostMemory


class QueueFullError(RuntimeError):
    """Raised when a send queue has no free slots."""


class EthQueuePair:
    """A raw Ethernet send/receive queue pair over host-memory rings."""

    def __init__(self, driver: "SoftwareDriver", vport: int,
                 sq_entries: int = 1024, rq_entries: int = 1024,
                 buffer_size: int = 2048, use_mmio_wqe: bool = False,
                 signal_interval: int = 16, core=None,
                 register_default: bool = True):
        self.driver = driver
        self.sim = driver.sim
        self.buffer_size = buffer_size
        self.use_mmio_wqe = use_mmio_wqe
        # The core servicing this queue's receive path; multi-queue apps
        # (RSS experiments) give each queue its own core.
        self.core = core if core is not None else driver.core
        # Selective completion signalling (§6): request a CQE only every
        # N WQEs; one completion retires the whole preceding batch.
        self.signal_interval = signal_interval
        self._tx_completed = 0
        self._allocs: List[tuple] = []
        self._vport = vport
        self._registered_default = register_default
        self._closed = False
        ctrl = driver.ctrl

        self.tx_cq = ctrl.alloc_cq(self._take(sq_entries * 64), sq_entries)
        self.rx_cq = ctrl.alloc_cq(self._take(rq_entries * 64), rq_entries)
        self.sq = ctrl.alloc_sq(self._take(sq_entries * WQE_SIZE),
                                sq_entries, self.tx_cq, vport=vport)
        self.rq = ctrl.alloc_rq(self._take(rq_entries * 16), rq_entries,
                                self.rx_cq)
        if register_default:
            ctrl.set_default_queue(vport, self.rq)
        # Transmit buffers: one slot per WQE (DPDK-style worst case).
        self._tx_buffers = [self._take(buffer_size)
                            for _ in range(sq_entries)]
        self._rx_buffers: Dict[int, int] = {}
        self.on_receive: Optional[Callable[[bytes, Cqe], None]] = None
        self.received = Store(self.sim, name="ethqp.rx")
        self._pi = 0
        self.stats_tx = 0
        self.stats_rx = 0
        self._spans = self.sim.telemetry.spans
        # Events this queue pair schedules directly (fused rx dispatch)
        # attribute to the same profiler stage as its processes.
        self.profile_tag = f"ethqp{self.sq.qpn}.rx"
        self.sim.spawn(self._rx_dispatcher(), name=f"ethqp{self.sq.qpn}.rx")
        # Completion retirement: in cut-through (fused) mode the loop is
        # pure bookkeeping — no timeouts — so a flat notify consumer
        # replaces the generator; traced/spanned runs keep the process.
        if fused_dispatch_ok(self.sim, driver.fabric):
            _TxRetireWorker(self)
        else:
            self.sim.spawn(self._tx_retire(),
                           name=f"ethqp{self.sq.qpn}.txc")
        # Fused receive dispatch: in cut-through fabric mode the NIC
        # hands rx CQEs (with their in-flight write handle) straight to
        # _rx_fused, which folds PCIe delivery and this core's
        # per-packet processing delay into ONE event per packet — the
        # timing (a serial dispatcher starting each packet at
        # max(cqe_arrival, previous_done) and working packet_cost()
        # seconds) is exactly the generator loop's.  Span-traced runs
        # keep the generator so per-stage span records are unchanged.
        self._fused_planned = 0.0   # planned end of the dispatch chain
        self._fused_done = 0.0      # actual end (>= planned under repair)
        self._fused_queue = deque()
        if self.core is not None and fused_dispatch_ok(self.sim,
                                                       driver.fabric):
            self.rx_cq.fused_rx = self._rx_fused

    def _take(self, size: int) -> int:
        """Allocate host memory, remembered for release on close()."""
        addr = self.driver.allocator.alloc(size)
        self._allocs.append((addr, size))
        return addr

    def close(self) -> None:
        """Destroy the queue pair through the command channel.

        Releases the NIC objects (default route, RQ, SQ, both CQs) and
        returns every host ring and buffer to the driver allocator.
        """
        if self._closed:
            return
        self._closed = True
        ctrl = self.driver.ctrl
        if self._registered_default:
            ctrl.clear_default_queue(self._vport)
        ctrl.destroy(self.rq)
        ctrl.destroy(self.sq)
        ctrl.destroy(self.rx_cq)
        ctrl.destroy(self.tx_cq)
        alloc = self.driver.allocator
        for addr, size in self._allocs:
            alloc.free(addr, size)
        self._allocs.clear()

    # -- transmit ----------------------------------------------------------

    def tx_space(self) -> int:
        """Free SQ slots, judged by retired (signalled) completions."""
        return self.sq.entries - (self._pi - self._tx_completed)

    def _tx_retire(self):
        while True:
            cqe = yield self.tx_cq.notify.get()
            if cqe is _POISON:
                return
            # Completions are cumulative under selective signalling: a
            # CQE for index i retires everything up to i.
            base = self._tx_completed & ~0xFFFF
            completed = base | cqe.wqe_counter
            if completed < self._tx_completed:
                completed += 1 << 16
            self._tx_completed = completed + 1

    def wait_for_tx_space(self, slots: int = 1, poll: float = 100e-9):
        """Generator: spin (as a PMD would) until the SQ has room."""
        while self.tx_space() < slots:
            yield self.sim.timeout(poll)

    def send_tso(self, frame: bytes, mss: int,
                 signaled: bool = False) -> None:
        """Post one oversized TCP frame; the NIC segments it at ``mss``.

        The host pays ONE descriptor and one doorbell for the whole
        burst — the CPU saving TSO exists for.
        """
        self._post(frame, signaled,
                   extra_flags=WQE_FLAG_LSO | WQE_FLAG_CSUM_L4, mss=mss)

    def send(self, frame: bytes, signaled: bool = False,
             trace_ctx=None) -> None:
        """Queue one frame for transmission (CPU side, non-blocking)."""
        self._post(frame, signaled, trace_ctx=trace_ctx)

    def _post(self, frame: bytes, signaled: bool,
              extra_flags: int = 0, mss: int = 0, trace_ctx=None) -> None:
        if self.tx_space() < 1:
            raise QueueFullError(
                f"SQ {self.sq.qpn} full: use wait_for_tx_space()"
            )
        index = self._pi
        self._pi += 1
        slot = index % self.sq.entries
        buffer_addr = self._tx_buffers[slot]
        if len(frame) > self.buffer_size:
            raise ValueError(
                f"frame of {len(frame)} B exceeds buffer {self.buffer_size} B"
            )
        if (index + 1) % self.signal_interval == 0:
            signaled = True
        flags = (WQE_FLAG_SIGNALED if signaled else 0) | extra_flags
        wqe = TxWqe(OP_ETH_SEND, self.sq.qpn, index, buffer_addr,
                    len(frame), flags, mss=mss)
        driver = self.driver
        driver.memory.write_local(buffer_addr - driver.mem_base, frame)
        if self.use_mmio_wqe:
            # WQE-by-MMIO: push the whole descriptor through the doorbell
            # window, saving the NIC's descriptor DMA read (§6).
            driver.mmio_write(
                driver.nic_bar_base + WQE_MMIO_BASE
                + self.sq.qpn * WQE_MMIO_STRIDE,
                wqe.pack(), trace_ctx=trace_ctx,
            )
        else:
            if trace_ctx is not None:
                # The NIC fetches this WQE from host memory later; park
                # the context for its fetch loop to claim.
                self._spans.stash(
                    ("wqe", driver.nic.name, self.sq.qpn, index), trace_ctx)
            driver.memory.write_local(
                self.sq.slot_addr(index) - driver.mem_base, wqe.pack()
            )
            driver.ring_doorbell(self.sq.qpn, index + 1,
                                 trace_ctx=trace_ctx)
        self.stats_tx += 1

    # -- receive -----------------------------------------------------------

    def post_rx_buffers(self, count: int) -> None:
        driver = self.driver
        for _ in range(count):
            index = self.rq.pi
            buffer_addr = self._take(self.buffer_size)
            self._rx_buffers[index % self.rq.entries] = buffer_addr
            desc = RxDesc(buffer_addr, self.buffer_size)
            driver.memory.write_local(
                self.rq.slot_addr(index) - driver.mem_base, desc.pack()
            )
            self.rq.post(1)

    def _repost(self, index: int) -> None:
        """Recycle the consumed descriptor's buffer at the ring tail."""
        driver = self.driver
        buffer_addr = self._rx_buffers.pop(index % self.rq.entries)
        new_index = self.rq.pi
        self._rx_buffers[new_index % self.rq.entries] = buffer_addr
        desc = RxDesc(buffer_addr, self.buffer_size)
        driver.memory.write_local(
            self.rq.slot_addr(new_index) - driver.mem_base, desc.pack()
        )
        self.rq.post(1)

    def _rx_dispatcher(self):
        driver = self.driver
        while True:
            cqe = yield self.rx_cq.notify.get()
            if cqe is _POISON:
                return
            started = self.sim._now
            if self.core is not None:
                yield self.sim.timeout(self.core.packet_cost())
            slot = cqe.wqe_counter % self.rq.entries
            buffer_addr = self._rx_buffers[slot]
            data = driver.memory.read_local(
                buffer_addr - driver.mem_base, cqe.byte_count
            )
            self._repost(cqe.wqe_counter)
            self.stats_rx += 1
            if cqe.trace_ctx is not None:
                self._spans.record(cqe.trace_ctx, "host.rx", started,
                                   self.sim._now)
            if self.on_receive is not None:
                self.on_receive(data, cqe)
            else:
                self.received.try_put((data, cqe))

    # -- fused receive dispatch (cut-through fabric mode) ------------------

    def _rx_fused(self, handle, cqe) -> None:
        """NIC-side CQE issue: plan this packet's dispatch completion.

        The processing cost is drawn here — same per-queue draw order as
        the generator loop, since CQEs arrive (and were consumed) in
        issue order on the host's down lane.
        """
        cost = self.core.packet_cost()
        planned = max(handle.delivery, self._fused_planned) + cost
        self._fused_planned = planned
        # [handle, cqe, cost, committed, fired_early]
        entry = [handle, cqe, cost, False, False]
        self._fused_queue.append(entry)
        sim = self.sim
        sim.call_later(planned - sim._now, self._rx_fused_fire, entry)

    def _rx_fused_fire(self, entry) -> None:
        """The per-packet dispatch event: delivery + processing done."""
        if entry[3]:
            return
        queue = self._fused_queue
        if queue[0] is not entry:
            # A lane repair pushed an earlier packet past our planned
            # time; the head's commit re-drives us in order.
            entry[4] = True
            return
        sim = self.sim
        done = max(entry[0].delivery, self._fused_done) + entry[2]
        if done > sim._now:
            sim.call_later(done - sim._now, self._rx_fused_fire, entry)
            return
        self._commit_fused(entry)
        # Re-drive any successors whose events fired early and bailed.
        while queue and queue[0][4]:
            head = queue[0]
            done = max(head[0].delivery, self._fused_done) + head[2]
            if done > sim._now:
                sim.call_later(done - sim._now, self._rx_fused_fire, head)
                return
            self._commit_fused(head)

    def _commit_fused(self, entry) -> None:
        """The generator loop's post-timeout body, in callback form."""
        handle, cqe = entry[0], entry[1]
        entry[3] = True
        self._fused_queue.popleft()
        self._fused_done = self.sim._now
        handle.commit()
        driver = self.driver
        slot = cqe.wqe_counter % self.rq.entries
        buffer_addr = self._rx_buffers[slot]
        data = driver.memory.read_local(
            buffer_addr - driver.mem_base, cqe.byte_count
        )
        self._repost(cqe.wqe_counter)
        self.stats_rx += 1
        if self.on_receive is not None:
            self.on_receive(data, cqe)
        else:
            self.received.try_put((data, cqe))


class _TxRetireWorker:
    """Flat form of :meth:`EthQueuePair._tx_retire` (fused fast path).

    The retire loop never sleeps — it only waits on the tx CQ notify
    store and updates the cumulative completion counter — so in
    cut-through mode it runs as a plain callback chain.  Arming is
    deferred through a zero-delay scheduled step to mirror the
    generator spawn exactly (same scheduler pushes, same lazy start).
    """

    __slots__ = ("qp", "notify", "profile_tag")

    def __init__(self, qp: "EthQueuePair"):
        self.qp = qp
        self.notify = qp.tx_cq.notify
        self.profile_tag = f"ethqp{qp.sq.qpn}.txc"
        qp.sim.schedule(0.0, self._next)

    def _next(self) -> None:
        notify = self.notify
        while True:
            cqe = notify.try_get()
            if cqe is None:
                notify.get().add_callback(self._on_cqe)
                return
            if cqe is _POISON:
                return
            self._retire(cqe)

    def _on_cqe(self, event) -> None:
        cqe = event.value
        if cqe is _POISON:
            return
        self._retire(cqe)
        self._next()

    def _retire(self, cqe) -> None:
        # Completions are cumulative under selective signalling: a CQE
        # for index i retires everything up to i (16-bit wrap aware).
        qp = self.qp
        base = qp._tx_completed & ~0xFFFF
        completed = base | cqe.wqe_counter
        if completed < qp._tx_completed:
            completed += 1 << 16
        qp._tx_completed = completed + 1


class RcEndpoint:
    """A host-side RDMA RC endpoint: post_send + message reception."""

    def __init__(self, driver: "SoftwareDriver", vport: int,
                 local_mac, local_ip, sq_entries: int = 1024,
                 rq_entries: int = 1024, buffer_size: int = 2048):
        self.driver = driver
        self.sim = driver.sim
        self.buffer_size = buffer_size
        self._allocs: List[tuple] = []
        self._closed = False
        ctrl = driver.ctrl
        self.cq = ctrl.alloc_cq(self._take(sq_entries * 64), sq_entries)
        self.rx_cq = ctrl.alloc_cq(self._take(rq_entries * 64), rq_entries)
        self.rq = ctrl.alloc_rq(self._take(rq_entries * 16), rq_entries,
                                self.rx_cq)
        self.qp = ctrl.alloc_rc_qp(
            self._take(sq_entries * WQE_SIZE), sq_entries, self.cq,
            self.rq, vport, local_mac, local_ip,
        )
        self._tx_buffers = [self._take(max(buffer_size, 16 * 1024))
                            for _ in range(sq_entries)]
        self._rx_buffers: Dict[int, int] = {}
        self._pi = 0
        self._send_waiters: Dict[int, Event] = {}
        self.messages = Store(self.sim, name=f"rc{self.qp.qpn}.messages")
        self._assembly: List[bytes] = []
        self.stats_messages_sent = 0
        self.stats_messages_received = 0
        self._spans = self.sim.telemetry.spans
        self.sim.spawn(self._rx_dispatcher(), name=f"rc{self.qp.qpn}.rx")
        self.sim.spawn(self._tx_completions(), name=f"rc{self.qp.qpn}.txc")

    @property
    def qpn(self) -> int:
        return self.qp.qpn

    def _take(self, size: int) -> int:
        """Allocate host memory, remembered for release on close()."""
        addr = self.driver.allocator.alloc(size)
        self._allocs.append((addr, size))
        return addr

    def connect(self, remote_mac, remote_ip, remote_qpn: int) -> None:
        """Walk the QP to RTS against the remote (verbs state machine)."""
        self.driver.ctrl.connect_qp(self.qp, remote_mac, remote_ip,
                                    remote_qpn)

    def close(self) -> None:
        """Destroy the endpoint's QP, RQ and CQs; free host memory."""
        if self._closed:
            return
        self._closed = True
        ctrl = self.driver.ctrl
        ctrl.destroy(self.qp)
        ctrl.destroy(self.rq)
        ctrl.destroy(self.rx_cq)
        ctrl.destroy(self.cq)
        alloc = self.driver.allocator
        for addr, size in self._allocs:
            alloc.free(addr, size)
        self._allocs.clear()

    def post_rx_buffers(self, count: int) -> None:
        driver = self.driver
        for _ in range(count):
            index = self.rq.pi
            buffer_addr = self._take(self.buffer_size)
            self._rx_buffers[index % self.rq.entries] = buffer_addr
            desc = RxDesc(buffer_addr, self.buffer_size)
            driver.memory.write_local(
                self.rq.slot_addr(index) - driver.mem_base, desc.pack()
            )
            self.rq.post(1)

    def register_mr(self, size: int):
        """Register a host buffer as an RDMA WRITE target.

        Returns (fabric address, rkey, read) where ``read(n)`` fetches the
        buffer's current contents for verification.
        """
        driver = self.driver
        base = self._take(size)
        region = driver.nic.rdma.register_mr(base, size)

        def read(nbytes: int = size, offset: int = 0) -> bytes:
            return driver.memory.read_local(
                base - driver.mem_base + offset, nbytes)

        return base, region.rkey, read

    def post_write(self, data: bytes, remote_addr: int, rkey: int,
                   signaled: bool = True, trace_ctx=None) -> Event:
        """One-sided RDMA WRITE of ``data`` to (remote_addr, rkey)."""
        index = self._pi
        self._pi += 1
        slot = index % self.qp.sq.entries
        buffer_addr = self._tx_buffers[slot]
        driver = self.driver
        driver.memory.write_local(buffer_addr - driver.mem_base, data)
        flags = WQE_FLAG_SIGNALED if signaled else 0
        wqe = TxWqe(OP_RDMA_WRITE, self.qp.qpn, index, buffer_addr,
                    len(data), flags, remote_addr=remote_addr, rkey=rkey)
        if trace_ctx is not None:
            self._spans.stash(
                ("wqe", driver.nic.name, self.qp.qpn, index), trace_ctx)
        driver.memory.write_local(
            self.qp.sq.slot_addr(index) - driver.mem_base, wqe.pack()
        )
        driver.ring_doorbell(self.qp.qpn, index + 1, trace_ctx=trace_ctx)
        done = Event(self.sim)
        if signaled:
            self._send_waiters[index & 0xFFFF] = done
        else:
            done.succeed()
        return done

    def post_send(self, message: bytes, signaled: bool = True,
                  trace_ctx=None) -> Event:
        """Send a message; the returned event fires on the remote ack."""
        index = self._pi
        self._pi += 1
        slot = index % self.qp.sq.entries
        buffer_addr = self._tx_buffers[slot]
        driver = self.driver
        driver.memory.write_local(buffer_addr - driver.mem_base, message)
        flags = WQE_FLAG_SIGNALED if signaled else 0
        wqe = TxWqe(OP_RDMA_SEND, self.qp.qpn, index, buffer_addr,
                    len(message), flags)
        if trace_ctx is not None:
            self._spans.stash(
                ("wqe", driver.nic.name, self.qp.qpn, index), trace_ctx)
        driver.memory.write_local(
            self.qp.sq.slot_addr(index) - driver.mem_base, wqe.pack()
        )
        driver.ring_doorbell(self.qp.qpn, index + 1, trace_ctx=trace_ctx)
        done = Event(self.sim)
        if signaled:
            self._send_waiters[index & 0xFFFF] = done
        else:
            done.succeed()
        self.stats_messages_sent += 1
        return done

    def _tx_completions(self):
        while True:
            cqe = yield self.cq.notify.get()
            if cqe is _POISON:
                return
            waiter = self._send_waiters.pop(cqe.wqe_counter, None)
            if waiter is not None:
                waiter.succeed(cqe)

    def _rx_dispatcher(self):
        driver = self.driver
        while True:
            cqe = yield self.rx_cq.notify.get()
            if cqe is _POISON:
                return
            started = self.sim._now
            if driver.core is not None:
                yield self.sim.timeout(driver.core.packet_cost())
            slot = cqe.wqe_counter % self.rq.entries
            buffer_addr = self._rx_buffers[slot]
            data = driver.memory.read_local(
                buffer_addr - driver.mem_base, cqe.byte_count
            )
            if cqe.trace_ctx is not None:
                self._spans.record(cqe.trace_ctx, "host.rx", started,
                                   self.sim._now)
            self._recycle(cqe.wqe_counter)
            self._assembly.append(data)
            if cqe.flags & CQE_FLAG_MSG_LAST:
                message = b"".join(self._assembly)
                self._assembly = []
                self.stats_messages_received += 1
                self.messages.try_put((message, cqe))

    def _recycle(self, index: int) -> None:
        driver = self.driver
        buffer_addr = self._rx_buffers.pop(index % self.rq.entries)
        new_index = self.rq.pi
        self._rx_buffers[new_index % self.rq.entries] = buffer_addr
        desc = RxDesc(buffer_addr, self.buffer_size)
        driver.memory.write_local(
            self.rq.slot_addr(new_index) - driver.mem_base, desc.pack()
        )
        self.rq.post(1)


class SoftwareDriver:
    """Host-resident driver instance for one NIC."""

    def __init__(self, sim: Simulator, fabric, nic: Nic,
                 memory: HostMemory, mem_base: int, nic_bar_base: int,
                 core: Optional[CpuCore] = None, name: str = "cpu"):
        self.sim = sim
        self.fabric = fabric
        self.nic = nic
        self.memory = memory
        self.mem_base = mem_base
        self.nic_bar_base = nic_bar_base
        self.core = core
        self.cpu_port = HostCpuPort(name)
        fabric.attach(self.cpu_port)
        self.allocator = BumpAllocator(mem_base + (1 << 20), (1 << 30))
        # The firmware command channel: mailbox in host DRAM (below the
        # allocator arena), doorbell at the base of the NIC BAR.
        self.channel = CommandChannel(
            nic, memory=memory, mem_base=mem_base,
            mailbox_offset=CMD_MAILBOX_OFFSET,
            doorbell_addr=nic_bar_base + NIC_CMD_DOORBELL,
            fabric=fabric, requester=self.cpu_port,
        )
        # Deferred import: repro.sw pulls in the topology layer, which
        # imports this module while repro.host is still initializing.
        from ..sw.control import ControlPlane
        self.ctrl = ControlPlane(self.channel)

    # -- PCIe initiators ---------------------------------------------------

    def ring_doorbell(self, qpn: int, pi: int, trace_ctx=None) -> None:
        self.fabric.post_write(
            self.cpu_port, self.nic_bar_base + qpn * DOORBELL_STRIDE,
            pi.to_bytes(4, "big"),
            trace_ctx=trace_ctx, trace_stage="pcie.doorbell",
        )

    def mmio_write(self, address: int, data: bytes, trace_ctx=None) -> None:
        self.fabric.post_write(self.cpu_port, address, data,
                               trace_ctx=trace_ctx,
                               trace_stage="pcie.doorbell")

    # -- factories ----------------------------------------------------------

    def create_eth_qp(self, vport: int, **kwargs) -> EthQueuePair:
        return EthQueuePair(self, vport, **kwargs)

    def create_rc_endpoint(self, vport: int, local_mac, local_ip,
                           **kwargs) -> RcEndpoint:
        return RcEndpoint(self, vport, local_mac, local_ip, **kwargs)

    # -- memory accounting (Table 3's software column, measured) ------------

    def memory_footprint(self) -> Dict[str, int]:
        """Bytes the driver has allocated for NIC communication."""
        return {"allocated": self.allocator.used}
