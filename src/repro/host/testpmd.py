"""DPDK-testpmd-style applications: echo forwarding and load generation.

These drive the experiments of §8.1: a load generator stamps sequence
numbers into payloads and measures echo round-trips; the echo app is the
CPU baseline FLD-E is compared against (Table 6, Fig. 7b).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from .. import batching
from ..net import Ethernet, Flow, Ipv4, Packet, Tcp, Udp
from ..net.ip import PROTO_TCP
from ..net.parse import parse_frame
from ..sim import Event, LatencyCollector, Simulator, ThroughputMeter
from ..sim.fastpath import fused_dispatch_ok
from .driver import EthQueuePair

_SEQ_FORMAT = "!Q"
_SEQ_SIZE = struct.calcsize(_SEQ_FORMAT)

# Byte offsets inside a non-TCP load-gen frame (Eth 14 + IPv4 20 + UDP 8):
# the only bytes that change from one frame to the next on a given flow.
_IP_IDENT_OFF = 18
_IP_CSUM_OFF = 24
_PAYLOAD_OFF = 42


def swap_directions(packet: Packet) -> Packet:
    """Reverse a frame's MACs/IPs/ports — the essence of an echo app."""
    eth = packet.find(Ethernet)
    if eth is not None:
        eth.src, eth.dst = eth.dst, eth.src
    ip = packet.find(Ipv4)
    if ip is not None:
        ip.src, ip.dst = ip.dst, ip.src
    l4 = packet.find(Tcp) or packet.find(Udp)
    if l4 is not None:
        l4.src_port, l4.dst_port = l4.dst_port, l4.src_port
    return packet


class EchoApp:
    """CPU echo server: receive, swap addresses, transmit back."""

    def __init__(self, qp: EthQueuePair):
        from ..sim import Store
        self.qp = qp
        self.qp.on_receive = self._on_receive
        # Bounded app queue: a real run-to-completion PMD would stop
        # polling the RQ instead, with the same drop-at-overrun effect.
        self._pending = Store(qp.sim, capacity=4096, name="echo.pending")
        self._spans = qp.sim.telemetry.spans
        self.stats_echoed = 0
        qp.sim.spawn(self._worker(), name="echo.tx")

    @property
    def stats_dropped(self) -> int:
        return self._pending.stats_dropped

    def _on_receive(self, data: bytes, cqe) -> None:
        # Thread the trace context through the app queue alongside the
        # enqueue time, so the worker can split app-queueing from the
        # echo turnaround itself.
        self._pending.try_put((data, cqe.trace_ctx, self.qp.sim.now))

    def _worker(self):
        sim = self.qp.sim
        while True:
            data, ctx, enqueued = yield self._pending.get()
            started = sim.now
            if ctx is not None and started > enqueued:
                self._spans.record(ctx, "host.tx", enqueued, started,
                                   kind="queue")
            packet = swap_directions(parse_frame(data))
            yield from self.qp.wait_for_tx_space()
            self.qp.send(packet.to_bytes(), trace_ctx=ctx)
            if ctx is not None:
                self._spans.record(ctx, "host.tx", started, sim.now)
            self.stats_echoed += 1


class _FlatPacer:
    """Flat continuation form of the open-loop send loop.

    One scheduler entry per pacing tick — the same ``(time, seq)``
    instants the generator loop's per-packet ``timeout`` produced, with
    no Event allocation or generator resume in between.  Frames are
    built and posted by the same :meth:`LoadGenerator._send_frame`, so
    per-packet traces/spans are untouched; only the pacing trampoline
    is flattened.  A full SQ is re-polled at the same 100 ns PMD
    granularity ``wait_for_tx_space`` spins at.
    """

    __slots__ = ("gen", "sizes", "interval", "done", "flows", "labels",
                 "_index")

    _TX_POLL = 100e-9  # EthQueuePair.wait_for_tx_space default

    def __init__(self, gen: "LoadGenerator", sizes: List[int],
                 interval: float, done: Event,
                 flows: Optional[List[Flow]] = None,
                 labels: Optional[List[str]] = None):
        self.gen = gen
        self.sizes = sizes
        self.interval = interval
        self.done = done
        self.flows = flows
        self.labels = labels
        self._index = 0

    def _tick(self, _arg=None) -> None:
        gen = self.gen
        sim = gen.sim
        if gen.qp.tx_space() < 1:
            sim.call_later(self._TX_POLL, self._tick, None)
            return
        index = self._index
        flows = self.flows
        if flows is not None:
            gen.flow = flows[index % len(flows)]
            labels = self.labels
            if labels is not None:
                gen.trace_label = labels[index % len(flows)]
        gen._send_frame(self.sizes[index])
        gen.stats_sent += 1
        index += 1
        self._index = index
        if index < len(self.sizes):
            sim.call_later(self.interval, self._tick, None)
        else:
            # The generator loop paced once more after the last frame
            # before returning to its caller; fire the completion event
            # at that same instant.
            sim.call_later(self.interval, self.done.succeed, None)


class LoadGenerator:
    """Sends sized frames on a flow and measures echoed responses."""

    def __init__(self, sim: Simulator, qp: EthQueuePair, flow: Flow):
        self.sim = sim
        self.qp = qp
        self.flow = flow
        self.qp.on_receive = self._on_receive
        self.latency = LatencyCollector("echo-rtt")
        self.rx_meter = ThroughputMeter("echo-rx")
        self._sent_at: Dict[int, float] = {}
        self._seq = 0
        self.stats_sent = 0
        self.stats_received = 0
        self._spans = sim.telemetry.spans
        #: Prefix for per-packet trace names (``<label>.seq<n>``); the
        #: N-tenant experiment swaps it per flow so the tenant's name
        #: flows into the span layer.
        self.trace_label = "echo"

    def _make_frame(self, frame_size: int) -> bytes:
        if batching.BATCH_ENABLED:
            frame = self._frame_from_template(frame_size)
            if frame is not None:
                self._sent_at[self._seq] = self.sim.now
                self._seq += 1
                return frame
        packet = self.flow.make_sized_packet(frame_size)
        payload = bytearray(packet.payload)
        if len(payload) < _SEQ_SIZE:
            payload.extend(bytes(_SEQ_SIZE - len(payload)))
        struct.pack_into(_SEQ_FORMAT, payload, 0, self._seq)
        packet.payload = bytes(payload)
        self._sent_at[self._seq] = self.sim.now
        self._seq += 1
        return packet.to_bytes()

    def _frame_from_template(self, frame_size: int) -> Optional[bytes]:
        """Stamp the next frame from a cached per-(flow, size) template.

        Consecutive frames on one UDP flow differ only in the IP ident,
        the IP header checksum and the payload sequence stamp, so the
        frame is built once through the ordinary packet path and the
        three fields are patched in place — bit-identical to rebuilding
        it.  TCP flows (whose seq advances with every payload byte)
        return None and take the scalar builder.
        """
        flow = self.flow
        if flow.proto == PROTO_TCP:
            return None
        cache = getattr(flow, "_frame_templates", None)
        if cache is None:
            cache = flow._frame_templates = {}
        identity = (flow.src_mac.value, flow.dst_mac.value,
                    flow.src_ip.value, flow.dst_ip.value,
                    flow.src_port, flow.dst_port, flow.proto)
        entry = cache.get(frame_size)
        if entry is None or entry[0] != identity:
            # Building the template consumes one ident on the flow;
            # restore it so the build is invisible to the sequence the
            # scalar path would produce.
            saved_ident = flow._ident
            packet = flow.make_sized_packet(frame_size)
            flow._ident = saved_ident
            payload = bytearray(packet.payload)
            if len(payload) < _SEQ_SIZE:
                payload.extend(bytes(_SEQ_SIZE - len(payload)))
            packet.payload = bytes(payload)
            template = bytearray(packet.to_bytes())
            # One's-complement sum of the IP header words minus the
            # ident and checksum fields; each frame's checksum is then
            # ~fold(base + ident), exactly what Ipv4.pack computes.
            base = 0
            for off in range(14, 34, 2):
                if off != _IP_IDENT_OFF and off != _IP_CSUM_OFF:
                    base += (template[off] << 8) | template[off + 1]
            entry = (identity, template, base)
            cache[frame_size] = entry
        template = entry[1]
        ident = flow.next_ident()
        total = entry[2] + ident
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        struct.pack_into("!H", template, _IP_IDENT_OFF, ident)
        struct.pack_into("!H", template, _IP_CSUM_OFF, (~total) & 0xFFFF)
        struct.pack_into(_SEQ_FORMAT, template, _PAYLOAD_OFF, self._seq)
        return bytes(template)

    def _send_frame(self, frame_size: int) -> None:
        """Build one stamped frame, start its trace and hand it to the QP."""
        spans = self._spans
        started = self.sim.now
        ctx = (spans.start_trace(f"{self.trace_label}.seq{self._seq}",
                                 started)
               if spans.enabled else None)
        frame = self._make_frame(frame_size)
        self.qp.send(frame, trace_ctx=ctx)
        if ctx is not None:
            spans.record(ctx, "host.tx", started, self.sim.now)

    def _on_receive(self, data: bytes, cqe) -> None:
        packet = parse_frame(data)
        if len(packet.payload) >= _SEQ_SIZE:
            (seq,) = struct.unpack_from(_SEQ_FORMAT, packet.payload, 0)
            sent = self._sent_at.pop(seq, None)
            if sent is not None:
                self.latency.add(self.sim.now - sent)
        self.stats_received += 1
        self.rx_meter.record(self.sim.now, len(data))
        if cqe.trace_ctx is not None:
            self._spans.end_trace(cqe.trace_ctx, self.sim.now)

    # -- traffic patterns --------------------------------------------------

    def run_closed_loop(self, frame_size: int, count: int, window: int = 1):
        """Generator process: keep ``window`` requests in flight."""
        self.rx_meter.start(self.sim.now)
        outstanding = 0
        sent = 0
        while sent < count:
            while outstanding < window and sent < count:
                yield from self.qp.wait_for_tx_space()
                self._send_frame(frame_size)
                self.stats_sent += 1
                sent += 1
                outstanding += 1
            received_target = sent - window + 1
            while self.stats_received < received_target:
                yield self.sim.timeout(200e-9)  # poll loop granularity
            outstanding = sent - self.stats_received
        while self.stats_received < count and self.sim.now < 10.0:
            yield self.sim.timeout(1e-6)

    def run_open_loop(self, sizes: List[int], rate_pps: Optional[float] = None,
                      gap: Optional[float] = None):
        """Generator process: send one frame per ``sizes`` entry.

        ``rate_pps`` paces packets; ``gap`` overrides with a fixed gap;
        neither means best-effort back-to-back (the NIC/driver become the
        bottleneck).
        """
        self.rx_meter.start(self.sim.now)
        interval = gap if gap is not None else (
            1.0 / rate_pps if rate_pps else 0.0
        )
        if sizes and fused_dispatch_ok(self.sim, self.qp.driver.fabric):
            # Flat pacing: back-to-back still yields to the event loop
            # once per packet (1 ns), exactly as the generator path does.
            done = Event(self.sim)
            _FlatPacer(self, list(sizes),
                       interval if interval > 0 else 1e-9, done)._tick()
            yield done
            return
        for size in sizes:
            yield from self.qp.wait_for_tx_space()
            self._send_frame(size)
            self.stats_sent += 1
            if interval > 0:
                yield self.sim.timeout(interval)
            else:
                # Back-to-back, but don't outrun the simulated wire by an
                # unbounded queue: yield to the event loop each packet.
                yield self.sim.timeout(1e-9)

    def run_open_loop_flows(self, flows: List[Flow], sizes: List[int],
                            rate_pps: Optional[float] = None,
                            gap: Optional[float] = None,
                            labels: Optional[List[str]] = None):
        """Generator process: like :meth:`run_open_loop`, cycling frame
        ``i`` onto ``flows[i % len(flows)]``.

        With one flow this is event-for-event identical to
        :meth:`run_open_loop` — the N-tenant scaling experiment leans on
        that for its N=1 equivalence to the single-tenant echo.
        ``labels`` (parallel to ``flows``) names each flow's traces.
        """
        self.rx_meter.start(self.sim.now)
        interval = gap if gap is not None else (
            1.0 / rate_pps if rate_pps else 0.0
        )
        if sizes and fused_dispatch_ok(self.sim, self.qp.driver.fabric):
            done = Event(self.sim)
            _FlatPacer(self, list(sizes),
                       interval if interval > 0 else 1e-9, done,
                       flows=list(flows), labels=labels)._tick()
            yield done
            return
        for i, size in enumerate(sizes):
            self.flow = flows[i % len(flows)]
            if labels is not None:
                self.trace_label = labels[i % len(flows)]
            yield from self.qp.wait_for_tx_space()
            self._send_frame(size)
            self.stats_sent += 1
            if interval > 0:
                yield self.sim.timeout(interval)
            else:
                yield self.sim.timeout(1e-9)

    def drain(self, quiet_period: float = 50e-6, limit: float = 1.0):
        """Generator: wait until responses stop arriving."""
        last = -1
        start = self.sim.now
        while self.sim.now - start < limit:
            if self.stats_received == last:
                return
            last = self.stats_received
            yield self.sim.timeout(quiet_period)
