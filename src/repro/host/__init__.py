"""Host-side software: memory, CPU model, software driver, testpmd apps."""

from .cpu import CpuComputeCost, CpuCore, HostCpuPort
from .driver import EthQueuePair, RcEndpoint, SoftwareDriver
from .memory import BumpAllocator, HostMemory, PAGE_SIZE
from .testpmd import EchoApp, LoadGenerator, swap_directions

__all__ = [
    "BumpAllocator",
    "CpuComputeCost",
    "CpuCore",
    "EchoApp",
    "EthQueuePair",
    "HostCpuPort",
    "HostMemory",
    "LoadGenerator",
    "PAGE_SIZE",
    "RcEndpoint",
    "SoftwareDriver",
    "swap_directions",
]
