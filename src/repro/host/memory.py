"""Host DRAM: a sparse, page-backed PCIe-addressable memory.

Big enough for driver rings and DPDK-style buffer pools without
allocating gigabytes of real Python memory — pages materialize on first
touch.  Includes a bump allocator for carving rings and pools out of the
region.
"""

from __future__ import annotations

from typing import Dict

from ..pcie.endpoint import PcieEndpoint, PcieError

PAGE_SIZE = 4096


class HostMemory(PcieEndpoint):
    """Sparse byte-addressable memory."""

    def __init__(self, name: str, size: int = 1 << 34):
        super().__init__(name)
        if size <= 0:
            raise PcieError("memory size must be positive")
        self.size = size
        self._pages: Dict[int, bytearray] = {}
        self.stats_reads = 0
        self.stats_writes = 0

    def _check(self, address: int, length: int) -> None:
        if address < 0 or address + length > self.size:
            raise PcieError(
                f"access [{address:#x}+{length}] outside {self.name}"
            )

    def handle_read(self, address: int, length: int) -> bytes:
        self._check(address, length)
        self.stats_reads += 1
        page_no, offset = divmod(address, PAGE_SIZE)
        if offset + length <= PAGE_SIZE:
            # Fast path: the access fits in one page (rings, MTU-sized
            # buffers) — a single slice, no chunking loop.
            page = self._pages.get(page_no)
            if page is None:
                return bytes(length)
            return bytes(page[offset:offset + length])
        out = bytearray(length)
        cursor = 0
        while cursor < length:
            page_no, offset = divmod(address + cursor, PAGE_SIZE)
            chunk = min(length - cursor, PAGE_SIZE - offset)
            page = self._pages.get(page_no)
            if page is not None:
                out[cursor:cursor + chunk] = page[offset:offset + chunk]
            cursor += chunk
        return bytes(out)

    def handle_write(self, address: int, data: bytes) -> None:
        length = len(data)
        self._check(address, length)
        self.stats_writes += 1
        page_no, offset = divmod(address, PAGE_SIZE)
        if offset + length <= PAGE_SIZE:
            page = self._pages.get(page_no)
            if page is None:
                page = self._pages[page_no] = bytearray(PAGE_SIZE)
            page[offset:offset + length] = data
            return
        cursor = 0
        while cursor < length:
            page_no, offset = divmod(address + cursor, PAGE_SIZE)
            chunk = min(length - cursor, PAGE_SIZE - offset)
            page = self._pages.get(page_no)
            if page is None:
                page = self._pages[page_no] = bytearray(PAGE_SIZE)
            page[offset:offset + chunk] = data[cursor:cursor + chunk]
            cursor += chunk

    # CPU-local access: same operation, but models no PCIe traffic.
    read_local = handle_read
    write_local = handle_write

    @property
    def resident_bytes(self) -> int:
        """Physical footprint actually allocated (for tests)."""
        return len(self._pages) * PAGE_SIZE


class BumpAllocator:
    """Carves aligned regions out of an address window.

    Freed regions go on a sorted, coalesced free list and are reused
    first-fit; while nothing is freed the allocator behaves exactly like
    the historical bump pointer (identical addresses, bit-identical runs).
    """

    def __init__(self, base: int, size: int):
        self.base = base
        self.size = size
        self._cursor = base
        self._free: list = []  # sorted (start, size) blocks

    def alloc(self, size: int, align: int = 64) -> int:
        if size <= 0:
            raise ValueError("allocation size must be positive")
        for i, (start, free) in enumerate(self._free):
            aligned = (start + align - 1) // align * align
            waste = aligned - start
            if free - waste >= size:
                # Return alignment slack and the tail to the free list.
                del self._free[i]
                if waste:
                    self._free.append((start, waste))
                tail = free - waste - size
                if tail:
                    self._free.append((aligned + size, tail))
                self._free.sort()
                return aligned
        start = (self._cursor + align - 1) // align * align
        if start + size > self.base + self.size:
            raise MemoryError(
                f"allocator exhausted: need {size} at {start:#x}, "
                f"window ends {self.base + self.size:#x}"
            )
        if start != self._cursor:
            # Keep the alignment gap on the free list so accounting is
            # exact.  A gap starts unaligned and is shorter than one
            # alignment unit, so it can never serve a future aligned
            # request — bump-path addresses stay identical.
            self._free.append((self._cursor, start - self._cursor))
            self._free.sort()
        self._cursor = start + size
        return start

    def free(self, addr: int, size: int) -> None:
        """Return [addr, addr+size) to the allocator."""
        if size <= 0:
            return
        self._free.append((addr, size))
        self._free.sort()
        merged: list = []
        for start, block in self._free:
            if merged and merged[-1][0] + merged[-1][1] >= start:
                merged[-1] = (merged[-1][0],
                              max(merged[-1][1], start + block - merged[-1][0]))
            else:
                merged.append((start, block))
        # Retract the cursor over a trailing free block.
        while merged and merged[-1][0] + merged[-1][1] == self._cursor:
            self._cursor = merged.pop()[0]
        self._free = merged

    @property
    def used(self) -> int:
        """Bytes live inside the window (excludes freed blocks)."""
        return (self._cursor - self.base
                - sum(size for _s, size in self._free))
