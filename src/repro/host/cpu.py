"""Host CPU cost model.

The paper's baselines run DPDK on host cores.  We model a core as a
per-packet processing cost plus rare OS interference spikes — the spikes
are what inflate the CPU's 99.9th-percentile echo latency to 11.18 µs in
Table 6 while FLD-E (no OS) stays at 4.34 µs.

Calibration: testpmd io-forwarding on one Haswell core moves ~9.6 Mpps
(§8.1.1) → ~104 ns/packet.  The software ZUC baseline's throughput
(Fig. 8a) comes from its cycles-per-byte cost.
"""

from __future__ import annotations

import random
from typing import Optional

from ..pcie.endpoint import PcieEndpoint
from ..sim import Simulator


class HostCpuPort(PcieEndpoint):
    """The CPU's initiator identity on the PCIe fabric (MMIO source)."""

    def handle_read(self, address, length):
        raise NotImplementedError("CPUs are not PCIe targets here")


class CpuCore:
    """One core's timing behaviour."""

    def __init__(self, sim: Simulator, frequency_hz: float = 2.3e9,
                 per_packet_cycles: int = 240,
                 os_jitter_probability: float = 5e-4,
                 os_jitter_scale: float = 12e-6,
                 seed: Optional[int] = 0):
        self.sim = sim
        self.frequency_hz = frequency_hz
        self.per_packet_cycles = per_packet_cycles
        self.os_jitter_probability = os_jitter_probability
        self.os_jitter_scale = os_jitter_scale
        self._rng = random.Random(seed)
        self.stats_packets = 0
        self.stats_jitter_events = 0

    @property
    def per_packet_seconds(self) -> float:
        return self.per_packet_cycles / self.frequency_hz

    def seconds_for_cycles(self, cycles: float) -> float:
        return cycles / self.frequency_hz

    def packet_cost(self) -> float:
        """Per-packet software time, occasionally hit by OS interference."""
        self.stats_packets += 1
        cost = self.per_packet_seconds
        if self._rng.random() < self.os_jitter_probability:
            self.stats_jitter_events += 1
            cost += self._rng.expovariate(1.0 / self.os_jitter_scale)
        return cost

    def work(self, packets: int = 1):
        """An event that fires after processing ``packets`` packets."""
        total = sum(self.packet_cost() for _ in range(packets))
        return self.sim.timeout(total)


class CpuComputeCost:
    """Cycles-per-byte model for software data-path kernels.

    Used for the software ZUC cipher baseline (Intel IPsec-MB class
    performance: a few cycles/byte) and software defragmentation.
    """

    def __init__(self, core: CpuCore, cycles_per_byte: float,
                 cycles_per_call: float = 500):
        self.core = core
        self.cycles_per_byte = cycles_per_byte
        self.cycles_per_call = cycles_per_call

    def seconds_for(self, nbytes: int) -> float:
        cycles = self.cycles_per_call + self.cycles_per_byte * nbytes
        return self.core.seconds_for_cycles(cycles)

    def throughput_bps(self, nbytes: int) -> float:
        """Steady-state one-core throughput for requests of ``nbytes``."""
        return nbytes * 8 / self.seconds_for(nbytes)
