"""FLD BAR layout (§5.1): "FLD's address space, exposed over its PCIe BAR,
is partitioned according to the various NIC data structures."

The regions are what the NIC believes it is talking to:

====================  ==========  ====================================
region                offset      backing
====================  ==========  ====================================
TX rings (virtual)    0x00_0000   generated on-the-fly from the shared
                                  descriptor pool via translation
TX data (virtual)     0x40_0000   gathered from the shared buffer pool
                                  via the data translation table
RX buffers            0x80_0000   real on-die SRAM the NIC DMA-writes
CQs                   0xC0_0000   decoded on write, stored compressed
Producer indices      0xE0_0000   per-queue PI registers
====================  ==========  ====================================
"""

from __future__ import annotations

TX_RING_REGION = 0x00_0000
TX_DATA_REGION = 0x40_0000
RX_BUFFER_REGION = 0x80_0000
CQ_REGION = 0xC0_0000
PI_REGION = 0xE0_0000
FLD_BAR_SIZE = 0x100_0000  # 16 MiB of address space (not of SRAM!)

# Span reserved per queue inside the virtual regions.
TX_RING_SPAN = 0x1_0000   # 64 KiB: up to 1024 WQEs of 64 B
TX_DATA_SPAN = 0x8_0000   # 512 KiB virtual data window per queue

# CQ sub-layout: tx CQ ring first, rx CQ ring after.
CQ_SPAN = 0x1_0000


class BarRegion:
    """A decoded BAR access."""

    __slots__ = ("region", "queue", "offset")

    def __init__(self, region: str, queue: int, offset: int):
        self.region = region
        self.queue = queue
        self.offset = offset

    def __repr__(self) -> str:
        return f"BarRegion({self.region}, q={self.queue}, off={self.offset:#x})"


def decode(address: int) -> BarRegion:
    """Classify a BAR-relative address."""
    if address < TX_DATA_REGION:
        offset = address - TX_RING_REGION
        return BarRegion("tx_ring", offset // TX_RING_SPAN,
                         offset % TX_RING_SPAN)
    if address < RX_BUFFER_REGION:
        offset = address - TX_DATA_REGION
        return BarRegion("tx_data", offset // TX_DATA_SPAN,
                         offset % TX_DATA_SPAN)
    if address < CQ_REGION:
        return BarRegion("rx_buffer", 0, address - RX_BUFFER_REGION)
    if address < PI_REGION:
        offset = address - CQ_REGION
        return BarRegion("cq", offset // CQ_SPAN, offset % CQ_SPAN)
    if address < FLD_BAR_SIZE:
        return BarRegion("pi", 0, address - PI_REGION)
    raise ValueError(f"address {address:#x} outside the FLD BAR")


def tx_ring_address(queue: int, wqe_index: int = 0, entries: int = 1024) -> int:
    """BAR offset of a queue's virtual WQE ring slot."""
    return TX_RING_REGION + queue * TX_RING_SPAN + (wqe_index % entries) * 64


def tx_data_address(queue: int, virt_offset: int = 0) -> int:
    """BAR offset inside a queue's virtual data window."""
    return TX_DATA_REGION + queue * TX_DATA_SPAN + (virt_offset % TX_DATA_SPAN)


def cq_address(cq_index: int) -> int:
    """BAR offset of a completion ring (0 = tx CQ, 1 = rx CQ, ...)."""
    return CQ_REGION + cq_index * CQ_SPAN


def rx_buffer_address(offset: int = 0) -> int:
    return RX_BUFFER_REGION + offset
