"""FLD's compressed internal descriptor formats (§5.2 "Compression").

The NIC's descriptor formats are general: 64-bit addresses, 32-bit
lengths, many flag fields.  FLD's queues always point into small on-chip
buffer pools addressed by a handle of a few bits, so FLD stores a
compressed form and *expands it on the fly* when the NIC's PCIe read
arrives.  Sizes follow the paper's Table 2b:

=====================  ========  =====
structure              software  FLD
=====================  ========  =====
Tx descriptor           64 B      8 B
Rx descriptor           16 B      —  (ring lives in host memory)
Completion queue entry  64 B     15 B
=====================  ========  =====
"""

from __future__ import annotations

import struct

from ..nic.wqe import (
    Cqe,
    OP_ETH_SEND,
    OP_RDMA_SEND,
    TxWqe,
    WQE_FLAG_SIGNALED,
)

COMPRESSED_TX_DESC_SIZE = 8
COMPRESSED_CQE_SIZE = 15

# Compressed opcodes (2 bits would do; we spend a byte for clarity).
_OPCODES = {OP_ETH_SEND: 0, OP_RDMA_SEND: 1}
_OPCODES_REVERSE = {v: k for k, v in _OPCODES.items()}


class CompressedTxDescriptor:
    """8-byte internal transmit descriptor.

    Layout::

        0  handle      u16   buffer-pool handle (chunk index)
        2  length      u16   payload bytes (<= 16 KiB fits 14 bits)
        4  context_id  u24   FLD-E resume/tenant tag
        7  op_flags    u8    bits 0-1 opcode, bit 2 signaled
    """

    _FORMAT = "!HH3sB"

    __slots__ = ("handle", "length", "context_id", "opcode", "signaled")

    def __init__(self, handle: int, length: int, context_id: int = 0,
                 opcode: int = OP_ETH_SEND, signaled: bool = True):
        if not 0 <= handle < (1 << 16):
            raise ValueError(f"buffer handle {handle} out of range")
        if not 0 <= length < (1 << 16):
            raise ValueError(f"length {length} out of range")
        self.handle = handle
        self.length = length
        self.context_id = context_id & 0xFFFFFF
        self.opcode = opcode
        self.signaled = signaled

    def pack(self) -> bytes:
        op_flags = _OPCODES[self.opcode] | (0x4 if self.signaled else 0)
        return struct.pack(
            self._FORMAT, self.handle, self.length,
            self.context_id.to_bytes(3, "big"), op_flags,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "CompressedTxDescriptor":
        handle, length, context, op_flags = struct.unpack(
            cls._FORMAT, data[:COMPRESSED_TX_DESC_SIZE]
        )
        return cls(
            handle, length, int.from_bytes(context, "big"),
            _OPCODES_REVERSE[op_flags & 0x3], bool(op_flags & 0x4),
        )

    def expand(self, qpn: int, wqe_index: int, buffer_addr: int) -> TxWqe:
        """Produce the 64 B NIC WQE the PCIe read expects.

        ``buffer_addr`` is the *virtual* fabric address FLD advertises for
        this queue's data window; the NIC's subsequent data read comes
        back through FLD's address translation.
        """
        flags = WQE_FLAG_SIGNALED if self.signaled else 0
        return TxWqe(
            self.opcode, qpn, wqe_index, buffer_addr, self.length,
            flags=flags, context_id=self.context_id,
        )


class CompressedCqe:
    """15-byte internal completion record.

    Keeps only what FLD's ring managers and the accelerator metadata
    need from the NIC's 64 B CQE::

        0   opcode       u8
        1   flags        u8
        2   wqe_counter  u16
        4   qpn          u24
        7   byte_count   u16
        9   flow_tag     u32
        13  stride       u16
    """

    _FORMAT = "!BBH3sHIH"

    __slots__ = ("opcode", "flags", "wqe_counter", "qpn", "byte_count",
                 "flow_tag", "stride_index")

    def __init__(self, opcode: int, qpn: int, wqe_counter: int,
                 byte_count: int, flags: int = 0, flow_tag: int = 0,
                 stride_index: int = 0):
        self.opcode = opcode
        self.flags = flags
        self.wqe_counter = wqe_counter & 0xFFFF
        self.qpn = qpn & 0xFFFFFF
        self.byte_count = byte_count & 0xFFFF
        self.flow_tag = flow_tag
        self.stride_index = stride_index

    @classmethod
    def compress(cls, cqe: Cqe) -> "CompressedCqe":
        return cls(cqe.opcode, cqe.qpn, cqe.wqe_counter, cqe.byte_count,
                   cqe.flags, cqe.flow_tag, cqe.stride_index)

    def pack(self) -> bytes:
        return struct.pack(
            self._FORMAT, self.opcode, self.flags, self.wqe_counter,
            self.qpn.to_bytes(3, "big"), self.byte_count, self.flow_tag,
            self.stride_index,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "CompressedCqe":
        (opcode, flags, counter, qpn, count, tag, stride) = struct.unpack(
            cls._FORMAT, data[:COMPRESSED_CQE_SIZE]
        )
        return cls(opcode, int.from_bytes(qpn, "big"), counter, count,
                   flags, tag, stride)
