"""FLD's compressed internal descriptor formats (§5.2 "Compression").

The NIC's descriptor formats are general: 64-bit addresses, 32-bit
lengths, many flag fields.  FLD's queues always point into small on-chip
buffer pools addressed by a handle of a few bits, so FLD stores a
compressed form and *expands it on the fly* when the NIC's PCIe read
arrives.  Sizes follow the paper's Table 2b:

=====================  ========  =====
structure              software  FLD
=====================  ========  =====
Tx descriptor           64 B      8 B
Rx descriptor           16 B      —  (ring lives in host memory)
Completion queue entry  64 B     15 B
=====================  ========  =====
"""

from __future__ import annotations

import struct

from .. import batching
from ..nic.wqe import (
    Cqe,
    OP_ETH_SEND,
    OP_RDMA_SEND,
    TxWqe,
    WQE_FLAG_SIGNALED,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

COMPRESSED_TX_DESC_SIZE = 8
COMPRESSED_CQE_SIZE = 15

# Compressed opcodes (2 bits would do; we spend a byte for clarity).
_OPCODES = {OP_ETH_SEND: 0, OP_RDMA_SEND: 1}
_OPCODES_REVERSE = {v: k for k, v in _OPCODES.items()}

# Structured dtypes for the batched codecs.  The 24-bit fields split
# into a high byte + low u16 at adjacent offsets (big-endian, so the
# concatenation reads back as the original 3-byte integer).
if _np is not None:
    _TX_DESC_DTYPE = _np.dtype({
        "names": ["handle", "length", "ctx_hi", "ctx_lo", "op_flags"],
        "offsets": [0, 2, 4, 5, 7],
        "formats": [">u2", ">u2", ">u1", ">u2", ">u1"],
        "itemsize": COMPRESSED_TX_DESC_SIZE,
    })
    _CCQE_DTYPE = _np.dtype({
        "names": ["opcode", "flags", "wqe_counter", "qpn_hi", "qpn_lo",
                  "byte_count", "flow_tag", "stride_index"],
        "offsets": [0, 1, 2, 4, 5, 7, 9, 13],
        "formats": [">u1", ">u1", ">u2", ">u1", ">u2", ">u2", ">u4",
                    ">u2"],
        "itemsize": COMPRESSED_CQE_SIZE,
    })
else:  # pragma: no cover
    _TX_DESC_DTYPE = _CCQE_DTYPE = None


class CompressedTxDescriptor:
    """8-byte internal transmit descriptor.

    Layout::

        0  handle      u16   buffer-pool handle (chunk index)
        2  length      u16   payload bytes (<= 16 KiB fits 14 bits)
        4  context_id  u24   FLD-E resume/tenant tag
        7  op_flags    u8    bits 0-1 opcode, bit 2 signaled
    """

    _FORMAT = "!HH3sB"

    __slots__ = ("handle", "length", "context_id", "opcode", "signaled")

    def __init__(self, handle: int, length: int, context_id: int = 0,
                 opcode: int = OP_ETH_SEND, signaled: bool = True):
        if not 0 <= handle < (1 << 16):
            raise ValueError(f"buffer handle {handle} out of range")
        if not 0 <= length < (1 << 16):
            raise ValueError(f"length {length} out of range")
        self.handle = handle
        self.length = length
        self.context_id = context_id & 0xFFFFFF
        self.opcode = opcode
        self.signaled = signaled

    def pack(self) -> bytes:
        op_flags = _OPCODES[self.opcode] | (0x4 if self.signaled else 0)
        return struct.pack(
            self._FORMAT, self.handle, self.length,
            self.context_id.to_bytes(3, "big"), op_flags,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "CompressedTxDescriptor":
        handle, length, context, op_flags = struct.unpack(
            cls._FORMAT, data[:COMPRESSED_TX_DESC_SIZE]
        )
        return cls(
            handle, length, int.from_bytes(context, "big"),
            _OPCODES_REVERSE[op_flags & 0x3], bool(op_flags & 0x4),
        )

    @classmethod
    def unpack_many(cls, data, count: int = None):
        """Decode ``count`` consecutive 8 B descriptors, bit-identical
        to per-record :meth:`unpack` calls."""
        if count is None:
            count = len(data) // COMPRESSED_TX_DESC_SIZE
        if len(data) < count * COMPRESSED_TX_DESC_SIZE:
            raise ValueError("truncated descriptor batch")
        if count >= 2 and _np is not None and batching.BATCH_ENABLED:
            rows = _np.frombuffer(data, dtype=_TX_DESC_DTYPE,
                                  count=count).tolist()
            out = []
            new = cls.__new__
            reverse = _OPCODES_REVERSE
            for handle, length, ctx_hi, ctx_lo, op_flags in rows:
                desc = new(cls)
                desc.handle = handle
                desc.length = length
                desc.context_id = (ctx_hi << 16) | ctx_lo
                desc.opcode = reverse[op_flags & 0x3]
                desc.signaled = bool(op_flags & 0x4)
                out.append(desc)
            return out
        size = COMPRESSED_TX_DESC_SIZE
        return [cls.unpack(data[i * size:(i + 1) * size])
                for i in range(count)]

    @classmethod
    def pack_many(cls, descs) -> bytes:
        """``b"".join(d.pack() for d in descs)``, vectorized."""
        if len(descs) >= 2 and _np is not None and batching.BATCH_ENABLED:
            rec = _np.zeros(len(descs), dtype=_TX_DESC_DTYPE)
            rec["handle"] = [d.handle for d in descs]
            rec["length"] = [d.length for d in descs]
            rec["ctx_hi"] = [d.context_id >> 16 for d in descs]
            rec["ctx_lo"] = [d.context_id & 0xFFFF for d in descs]
            rec["op_flags"] = [
                _OPCODES[d.opcode] | (0x4 if d.signaled else 0)
                for d in descs
            ]
            return rec.tobytes()
        return b"".join(d.pack() for d in descs)

    def expand(self, qpn: int, wqe_index: int, buffer_addr: int) -> TxWqe:
        """Produce the 64 B NIC WQE the PCIe read expects.

        ``buffer_addr`` is the *virtual* fabric address FLD advertises for
        this queue's data window; the NIC's subsequent data read comes
        back through FLD's address translation.
        """
        flags = WQE_FLAG_SIGNALED if self.signaled else 0
        return TxWqe(
            self.opcode, qpn, wqe_index, buffer_addr, self.length,
            flags=flags, context_id=self.context_id,
        )


class CompressedCqe:
    """15-byte internal completion record.

    Keeps only what FLD's ring managers and the accelerator metadata
    need from the NIC's 64 B CQE::

        0   opcode       u8
        1   flags        u8
        2   wqe_counter  u16
        4   qpn          u24
        7   byte_count   u16
        9   flow_tag     u32
        13  stride       u16
    """

    _FORMAT = "!BBH3sHIH"

    __slots__ = ("opcode", "flags", "wqe_counter", "qpn", "byte_count",
                 "flow_tag", "stride_index")

    def __init__(self, opcode: int, qpn: int, wqe_counter: int,
                 byte_count: int, flags: int = 0, flow_tag: int = 0,
                 stride_index: int = 0):
        self.opcode = opcode
        self.flags = flags
        self.wqe_counter = wqe_counter & 0xFFFF
        self.qpn = qpn & 0xFFFFFF
        self.byte_count = byte_count & 0xFFFF
        self.flow_tag = flow_tag
        self.stride_index = stride_index

    @classmethod
    def compress(cls, cqe: Cqe) -> "CompressedCqe":
        return cls(cqe.opcode, cqe.qpn, cqe.wqe_counter, cqe.byte_count,
                   cqe.flags, cqe.flow_tag, cqe.stride_index)

    def pack(self) -> bytes:
        return struct.pack(
            self._FORMAT, self.opcode, self.flags, self.wqe_counter,
            self.qpn.to_bytes(3, "big"), self.byte_count, self.flow_tag,
            self.stride_index,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "CompressedCqe":
        (opcode, flags, counter, qpn, count, tag, stride) = struct.unpack(
            cls._FORMAT, data[:COMPRESSED_CQE_SIZE]
        )
        return cls(opcode, int.from_bytes(qpn, "big"), counter, count,
                   flags, tag, stride)

    @classmethod
    def unpack_many(cls, data, count: int = None):
        """Decode ``count`` consecutive 15 B records, bit-identical to
        per-record :meth:`unpack` calls."""
        if count is None:
            count = len(data) // COMPRESSED_CQE_SIZE
        if len(data) < count * COMPRESSED_CQE_SIZE:
            raise ValueError("truncated compressed-CQE batch")
        if count >= 2 and _np is not None and batching.BATCH_ENABLED:
            rows = _np.frombuffer(data, dtype=_CCQE_DTYPE,
                                  count=count).tolist()
            out = []
            new = cls.__new__
            for (opcode, flags, counter, qpn_hi, qpn_lo, nbytes, tag,
                 stride) in rows:
                cqe = new(cls)
                cqe.opcode = opcode
                cqe.flags = flags
                cqe.wqe_counter = counter
                cqe.qpn = (qpn_hi << 16) | qpn_lo
                cqe.byte_count = nbytes
                cqe.flow_tag = tag
                cqe.stride_index = stride
                out.append(cqe)
            return out
        size = COMPRESSED_CQE_SIZE
        return [cls.unpack(data[i * size:(i + 1) * size])
                for i in range(count)]

    @classmethod
    def pack_many(cls, cqes) -> bytes:
        """``b"".join(c.pack() for c in cqes)``, vectorized."""
        if len(cqes) >= 2 and _np is not None and batching.BATCH_ENABLED:
            rec = _np.zeros(len(cqes), dtype=_CCQE_DTYPE)
            rec["opcode"] = [c.opcode for c in cqes]
            rec["flags"] = [c.flags for c in cqes]
            rec["wqe_counter"] = [c.wqe_counter for c in cqes]
            rec["qpn_hi"] = [c.qpn >> 16 for c in cqes]
            rec["qpn_lo"] = [c.qpn & 0xFFFF for c in cqes]
            rec["byte_count"] = [c.byte_count for c in cqes]
            rec["flow_tag"] = [c.flow_tag for c in cqes]
            rec["stride_index"] = [c.stride_index for c in cqes]
            return rec.tobytes()
        return b"".join(c.pack() for c in cqes)
