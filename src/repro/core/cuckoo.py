"""4-bank cuckoo hash table with a 4-entry stash (§5.2 "Address Translation").

FLD virtualizes the NIC-visible descriptor rings and data windows through
translation tables implemented as cuckoo hash tables:

* 4 banks, each probed with an independent hash — a lookup is one
  parallel probe of all banks (constant time, as in hardware);
* insertion that collides in every bank evicts a victim into a 4-entry
  **stash**; the stash retries the victim into another bank, looping
  until placement succeeds;
* a full stash stalls further insertions (counted; the paper avoids the
  stall by doubling the table — load factor ½ — which our default sizing
  reproduces).
"""

from __future__ import annotations

from typing import Any, Hashable, List, Optional, Sequence, Tuple

from .. import batching

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

NUM_BANKS = 4
STASH_SIZE = 4
MAX_KICKS = 64  # safety bound on eviction chains per insertion

# Odd multipliers for the per-bank multiply-shift hash family.
_BANK_SALTS = (0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F,
               0x165667B19E3779F9, 0x27D4EB2F165667C5)

_SLOT_MULT = 0x2545F4914F6CDD1D

# CPython's hash() is emulated in uint64 for the vectorized lookup path:
# ints below the hash modulus hash to themselves, and tuples mix their
# element hashes with the xxHash-style scheme below (pyhash constants).
# Only the low 64 bits matter — the slot mix masks to 64 bits anyway.
_HASH_MODULUS = (1 << 61) - 1
_XXPRIME_1 = 11400714785074694791
_XXPRIME_2 = 14029467366897019727
_XXPRIME_5 = 2870177450012600261
_TUPLE2_LEN_MANGLE = (2 ^ (_XXPRIME_5 ^ 3527539)) & 0xFFFFFFFFFFFFFFFF


def _vector_hashes(keys: Sequence[Hashable]):
    """uint64 array equal (mod 2**64) to ``hash(k)`` per key, or None.

    Covers the two key shapes the datapath uses: plain non-negative
    ints below the hash modulus, and 2-tuples of such ints (the
    translation tables key by ``(queue, index)``).  Anything else
    falls back to the scalar path.
    """
    first = keys[0]
    if type(first) is int:
        for k in keys:
            if type(k) is not int or not 0 <= k < _HASH_MODULUS:
                return None
        return _np.array(keys, dtype=_np.uint64)
    if type(first) is tuple and len(first) == 2:
        left = []
        right = []
        for k in keys:
            if type(k) is not tuple or len(k) != 2:
                return None
            a, b = k
            if (type(a) is not int or not 0 <= a < _HASH_MODULUS
                    or type(b) is not int or not 0 <= b < _HASH_MODULUS):
                return None
            left.append(a)
            right.append(b)
        acc = _np.full(len(keys), _XXPRIME_5, dtype=_np.uint64)
        for lane in (_np.array(left, dtype=_np.uint64),
                     _np.array(right, dtype=_np.uint64)):
            acc += lane * _np.uint64(_XXPRIME_2)
            acc = (acc << _np.uint64(31)) | (acc >> _np.uint64(33))
            acc *= _np.uint64(_XXPRIME_1)
        acc += _np.uint64(_TUPLE2_LEN_MANGLE)
        # CPython maps the reserved -1 to 1546275796.
        acc[acc == _np.uint64(0xFFFFFFFFFFFFFFFF)] = _np.uint64(1546275796)
        return acc
    return None


class CuckooFullError(RuntimeError):
    """Raised when an insertion stalls: all banks and the stash are full."""


class CuckooHashTable:
    """A fixed-capacity hardware-style cuckoo hash.

    ``capacity`` is the number of *entries provisioned for use*; the table
    allocates ``capacity / load_factor`` slots across the banks (the paper
    doubles, i.e. load factor ½, to guarantee insertion convergence).
    """

    def __init__(self, capacity: int, load_factor: float = 0.5,
                 entry_size: int = 8):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < load_factor <= 1:
            raise ValueError("load factor must be in (0, 1]")
        self.capacity = capacity
        self.load_factor = load_factor
        self.entry_size = entry_size
        total_slots = int(capacity / load_factor)
        self.bank_size = max(1, -(-total_slots // NUM_BANKS))
        self._banks: List[List[Optional[Tuple[Hashable, Any]]]] = [
            [None] * self.bank_size for _ in range(NUM_BANKS)
        ]
        self._stash: List[Tuple[Hashable, Any]] = []
        self._count = 0
        self.stats_lookups = 0
        self.stats_inserts = 0
        self.stats_kicks = 0
        self.stats_stash_peak = 0
        self.stats_stalls = 0

    # -- hashing -----------------------------------------------------------

    def _slot(self, bank: int, key: Hashable) -> int:
        mixed = (hash(key) ^ _BANK_SALTS[bank]) * 0x2545F4914F6CDD1D
        return (mixed & 0xFFFFFFFFFFFFFFFF) % self.bank_size

    # -- operations --------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: Hashable) -> bool:
        return self.lookup(key) is not None or any(
            k == key for k, _v in self._stash
        )

    def lookup(self, key: Hashable) -> Optional[Any]:
        """Constant-time lookup: probe all banks + the stash."""
        self.stats_lookups += 1
        for bank in range(NUM_BANKS):
            entry = self._banks[bank][self._slot(bank, key)]
            if entry is not None and entry[0] == key:
                return entry[1]
        for k, v in self._stash:
            if k == key:
                return v
        return None

    def lookup_many(self, keys: Sequence[Hashable]) -> List[Optional[Any]]:
        """Batch lookup: exactly ``[self.lookup(k) for k in keys]``.

        With numpy and the batched datapath enabled, the per-bank slot
        computation for the whole batch happens in four uint64 array
        expressions (one per bank) instead of 4*N Python hash mixes.
        The results — including every table counter — match the scalar
        loop.
        """
        n = len(keys)
        if n == 0:
            return []
        self.stats_lookups += n
        hashes = None
        if n >= 2 and _np is not None and batching.BATCH_ENABLED:
            hashes = _vector_hashes(keys)
        banks = self._banks
        stash = self._stash
        results: List[Optional[Any]] = []
        if hashes is None:
            slot = self._slot
            for key in keys:
                for bank in range(NUM_BANKS):
                    entry = banks[bank][slot(bank, key)]
                    if entry is not None and entry[0] == key:
                        results.append(entry[1])
                        break
                else:
                    for k, v in stash:
                        if k == key:
                            results.append(v)
                            break
                    else:
                        results.append(None)
            return results
        size = _np.uint64(self.bank_size)
        mult = _np.uint64(_SLOT_MULT)
        slot_cols = [
            (((hashes ^ _np.uint64(salt)) * mult) % size).tolist()
            for salt in _BANK_SALTS
        ]
        c0, c1, c2, c3 = slot_cols
        b0, b1, b2, b3 = banks
        for i, key in enumerate(keys):
            entry = b0[c0[i]]
            if entry is not None and entry[0] == key:
                results.append(entry[1])
                continue
            entry = b1[c1[i]]
            if entry is not None and entry[0] == key:
                results.append(entry[1])
                continue
            entry = b2[c2[i]]
            if entry is not None and entry[0] == key:
                results.append(entry[1])
                continue
            entry = b3[c3[i]]
            if entry is not None and entry[0] == key:
                results.append(entry[1])
                continue
            for k, v in stash:
                if k == key:
                    results.append(v)
                    break
            else:
                results.append(None)
        return results

    def insert(self, key: Hashable, value: Any) -> None:
        """Insert; raises :class:`CuckooFullError` on a stash stall.

        A colliding insertion evicts a victim *into the stash* — the
        stash is part of the table's storage, so nothing is ever lost —
        and the stash drains back into banks as slots free up (§5.2).
        A stall (all banks colliding while the stash is full) raises,
        leaving the table unchanged; the caller retries after a release.
        """
        if key in self:
            raise KeyError(f"duplicate key {key!r}")
        if self._count >= self.capacity:
            self.stats_stalls += 1
            raise CuckooFullError("table at provisioned capacity")
        self.stats_inserts += 1
        item: Tuple[Hashable, Any] = (key, value)
        # Fast path: an empty slot in any bank.
        for bank in range(NUM_BANKS):
            slot = self._slot(bank, key)
            if self._banks[bank][slot] is None:
                self._banks[bank][slot] = item
                self._count += 1
                self._drain_stash()
                return
        # All banks collide: evict a rotating victim into the stash and
        # take its slot.
        if len(self._stash) >= STASH_SIZE:
            self.stats_stalls += 1
            raise CuckooFullError("stash full; insertion stalled")
        bank = self.stats_kicks % NUM_BANKS
        slot = self._slot(bank, key)
        victim = self._banks[bank][slot]
        self._banks[bank][slot] = item
        self._stash.append(victim)
        self._count += 1
        self.stats_kicks += 1
        self.stats_stash_peak = max(self.stats_stash_peak, len(self._stash))
        self._drain_stash()

    def _drain_stash(self) -> None:
        """Move stash entries back into any bank slot that opened up."""
        if not self._stash:
            return
        remaining: List[Tuple[Hashable, Any]] = []
        for key, value in self._stash:
            placed = False
            for bank in range(NUM_BANKS):
                slot = self._slot(bank, key)
                if self._banks[bank][slot] is None:
                    self._banks[bank][slot] = (key, value)
                    placed = True
                    break
            if not placed:
                remaining.append((key, value))
        self._stash = remaining

    def remove(self, key: Hashable) -> Any:
        for bank in range(NUM_BANKS):
            slot = self._slot(bank, key)
            entry = self._banks[bank][slot]
            if entry is not None and entry[0] == key:
                self._banks[bank][slot] = None
                self._count -= 1
                self._drain_stash()
                return entry[1]
        for index, (k, v) in enumerate(self._stash):
            if k == key:
                del self._stash[index]
                self._count -= 1
                return v
        raise KeyError(key)

    # -- accounting ---------------------------------------------------------

    def stats_dict(self) -> dict:
        """One flat snapshot of the table's counters (telemetry probe)."""
        return {
            "entries": self._count,
            "lookups": self.stats_lookups,
            "inserts": self.stats_inserts,
            "kicks": self.stats_kicks,
            "stash_depth": len(self._stash),
            "stash_peak": self.stats_stash_peak,
            "stalls": self.stats_stalls,
        }

    @property
    def memory_bytes(self) -> int:
        """On-die SRAM for the banks + stash."""
        return (NUM_BANKS * self.bank_size + STASH_SIZE) * self.entry_size

    @property
    def occupancy(self) -> float:
        return self._count / (NUM_BANKS * self.bank_size)
