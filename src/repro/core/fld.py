"""FlexDriver top level: the on-accelerator NIC data-plane driver (§5).

One :class:`FlexDriver` is a PCIe endpoint exposing the BAR of
:mod:`repro.core.bar`; it composes the Tx and Rx ring managers, the
accelerator-facing streams, the credit interface and the error channel.

Data flow:

* **transmit** — the accelerator calls :meth:`send` (credits permitting);
  the Tx manager buffers the payload on-die and rings the NIC; the NIC's
  PCIe reads of descriptors and data arrive at :meth:`handle_read` and are
  answered from compressed state on the fly.
* **receive** — the NIC DMA-writes packet data and CQEs into the BAR
  (:meth:`handle_write`); FLD decodes the CQE, streams the packet with
  metadata to the accelerator after its pipeline latency, and recycles
  buffers/descriptors.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Tuple

from ..nic.wqe import (
    CQE_ERROR,
    CQE_RECV_COMPLETION,
    CQE_SEND_COMPLETION,
    CQE_SIZE,
    Cqe,
    OP_ETH_SEND,
)
from ..pcie import PcieEndpoint, PcieError
from ..sim import Simulator, fused_dispatch_ok
from . import bar
from .axis import AxisMetadata, AxisStream
from .buffers import BufferPool
from .descriptors import COMPRESSED_CQE_SIZE, CompressedCqe
from .errors import ErrorReporter, FldError
from .rx import RxRingManager
from .tx import TxRingManager


@dataclass
class FldConfig:
    """FLD sizing, defaulting to the prototype of §6: two transmit
    queues, 256 KiB transmit and receive buffers, a 4096-entry shared
    descriptor pool, logic at 250 MHz."""

    tx_buffer_bytes: int = 256 * 1024
    rx_buffer_bytes: int = 256 * 1024
    chunk_size: int = 256
    descriptor_pool_size: int = 4096
    clock_hz: float = 250e6
    # End-to-end latency through FLD's internal pipeline, each direction
    # (~50 FPGA cycles of decode/steering/SRAM access).
    pipeline_latency: float = 200e-9
    rx_stream_depth: int = 256
    cq_entries: int = 1024          # per completion ring, for accounting

    def cycles(self, count: float) -> float:
        return count / self.clock_hz


class FlexDriver(PcieEndpoint):
    """The FLD hardware module."""

    # CQ index space: transmit CQs at 0..15, receive CQs at 16+.
    RX_CQ_BASE = 16

    def __init__(self, sim: Simulator, fabric, name: str = "fld",
                 config: Optional[FldConfig] = None, bar_base: int = 0,
                 link_config=None):
        super().__init__(name)
        self.sim = sim
        self.config = config or FldConfig()
        self.bar_base = bar_base
        fabric.attach(self, link_config)
        tx_pool = BufferPool(self.config.tx_buffer_bytes,
                             self.config.chunk_size, name=f"{name}.txpool")
        self.tx = TxRingManager(
            sim, tx_pool, self.config.descriptor_pool_size,
            mmio_writer=self._mmio_write, bar_base=bar_base,
        )
        self.rx = RxRingManager(
            sim, self.config.rx_buffer_bytes,
            mmio_writer=self._mmio_write, emit=self._emit_rx,
        )
        self.rx_stream = AxisStream(sim, f"{name}.rx_stream",
                                    depth=self.config.rx_stream_depth)
        self.errors = ErrorReporter(sim)
        # cq index -> ("tx", _) or ("rx", binding_id)
        self._cq_route: Dict[int, Tuple[str, int]] = {}
        # Match-action layer (repro.prog): the engine is created lazily
        # at first program attach — an FLD that never loads a program
        # never pays for one.  vport_tx_routes maps an eswitch vPort to
        # the tx queue bound for it, resolving redirect verdicts.
        self.prog = None
        self.vport_tx_routes: Dict[int, int] = {}
        # Chunks promised to sends that passed the resource check but
        # whose pipeline-latency submission has not landed yet.
        self._pending_chunks = 0
        self.stats_cqe_writes = 0
        self.stats_tx_packets = 0
        self.stats_tx_bytes = 0
        # Counters are no-op singletons when telemetry is disabled;
        # probes are sampled only at export time (§5.2's translation
        # tables and pools cost nothing to watch).
        tele = sim.telemetry
        self._tracer = tele.tracer
        self._spans = tele.spans
        # Profiler stage tags: the tx and rx engines account separately.
        # Inbound fabric deliveries (rx-buffer DMA, CQEs) default to the
        # rx engine; handle_read and the tx-CQE route refine to tx.
        prof = sim.profiler
        self._prof = prof if prof.enabled else None
        self._ptag_tx = f"{name}.tx"
        self._ptag_rx = f"{name}.rx"
        self.profile_tag = self._ptag_rx
        prof.declare(self._ptag_tx, "fld.tx")
        prof.declare(self._ptag_rx, "fld.rx")
        self._ctr_tx_packets = tele.counter(f"fld.{name}.tx.packets")
        self._ctr_tx_bytes = tele.counter(f"fld.{name}.tx.bytes")
        self._ctr_cqe_writes = tele.counter(f"fld.{name}.cqe_writes")
        self._ctr_rx_stream = tele.counter(f"fld.{name}.rx.stream_pushes")
        if tele.enabled:
            tele.register_probe(f"fld.{name}.xlt.descriptors",
                                self.tx.descriptors.cuckoo_stats)
            tele.register_probe(f"fld.{name}.xlt.data",
                                self.tx.data_xlt.cuckoo_stats)
            tele.register_probe(f"fld.{name}.tx", lambda: {
                "wqe_reads": self.tx.stats_wqe_reads,
                "data_read_bytes": self.tx.stats_data_read_bytes,
                "free_chunks": self.tx.buffers.free_chunks,
                "free_descriptor_slots": self.tx.descriptors.free_slots,
            })
            tele.register_probe(f"fld.{name}.rx", lambda: {
                "cqes": self.rx.stats_cqes,
                "sram_writes": self.rx.stats_sram_writes,
            })

    # ------------------------------------------------------------------
    # Configuration (called by the FLD runtime library, §5.3)
    # ------------------------------------------------------------------

    def bind_tx_queue(self, queue_id: int, qpn: int, entries: int,
                      doorbell_addr: int, mmio_addr: int, cq_index: int,
                      use_mmio: bool = True, opcode: int = OP_ETH_SEND,
                      credits: Optional[int] = None,
                      vport: Optional[int] = None) -> None:
        self.tx.add_queue(queue_id, qpn, entries, doorbell_addr, mmio_addr,
                          use_mmio=use_mmio, credits=credits, opcode=opcode)
        self._cq_route[cq_index] = ("tx", queue_id)
        if vport is not None:
            self.vport_tx_routes[vport] = queue_id

    def bind_rx_queue(self, binding_id: int, cq_index: int,
                      ring_entries: int, strides_per_buffer: int,
                      stride_size: int, rq_doorbell_addr: int) -> int:
        """Returns the BAR offset of the binding's buffer slice."""
        offset = self.rx.add_binding(
            binding_id, ring_entries, strides_per_buffer, stride_size,
            rq_doorbell_addr,
        )
        self._cq_route[cq_index] = ("rx", binding_id)
        return bar.RX_BUFFER_REGION + offset

    def unbind_tx_queue(self, queue_id: int) -> None:
        """Tear down a tx queue binding and its CQE route."""
        self.tx.remove_queue(queue_id)
        for cq_index, route in list(self._cq_route.items()):
            if route == ("tx", queue_id):
                del self._cq_route[cq_index]
        for vport, routed in list(self.vport_tx_routes.items()):
            if routed == queue_id:
                del self.vport_tx_routes[vport]

    def prog_engine(self):
        """The match-action engine, created on first use (firmware-only)."""
        if self.prog is None:
            from ..prog.engine import ProgEngine
            self.prog = ProgEngine(self)
        return self.prog

    def unbind_rx_queue(self, binding_id: int) -> None:
        """Tear down an rx binding, releasing its SRAM slice."""
        self.rx.remove_binding(binding_id)
        for cq_index, route in list(self._cq_route.items()):
            if route == ("rx", binding_id):
                del self._cq_route[cq_index]

    # ------------------------------------------------------------------
    # Accelerator-facing interface (§5.5)
    # ------------------------------------------------------------------

    def try_send(self, data: bytes, meta: AxisMetadata) -> bool:
        """Non-blocking transmit; False when the queue has no credit.

        Drop-capable accelerators use this directly (§5.5 lets them shed
        load); others use :meth:`send` to wait for credit.
        """
        needed = self.tx.buffers.chunks_for(len(data))
        if not self.tx.can_submit(meta.queue_id, len(data)):
            return False
        if (self.tx.buffers.free_chunks - self._pending_chunks < needed
                or self.tx.descriptors.free_slots <= self._pending_chunks):
            return False
        self._submit(data, meta)
        return True

    def send(self, data: bytes, meta: AxisMetadata):
        """Generator: wait for a credit, then transmit.

        The caller is held only for the pipeline's *occupancy* (the
        datapath is 512 bits wide at the FLD clock, §9's 100 Gbps
        figure); the pipeline *latency* to the doorbell is modelled
        without blocking, so back-to-back sends stream at line rate.
        """
        wait_started = self.sim._now
        yield self.tx.credits.acquire(meta.queue_id)
        needed = self.tx.buffers.chunks_for(len(data))
        while not (
            self.tx.buffers.free_chunks - self._pending_chunks >= needed
            and self.tx.descriptors.free_slots > self._pending_chunks
        ):
            yield self.sim.timeout(self.config.cycles(16))
        if meta.trace_ctx is not None and self.sim._now > wait_started:
            self._spans.record(meta.trace_ctx, "fld.tx", wait_started,
                               self.sim._now, kind="queue")
        service_started = self.sim._now
        self._pending_chunks += needed
        yield self.sim.timeout(self.config.cycles(max(1, len(data) // 64)))
        prof = self._prof
        if prof is None:
            self.sim.schedule(
                self.config.pipeline_latency,
                lambda: self._submit_now(data, meta, needed, service_started),
            )
        else:
            # The pipeline-latency hop is tx-engine work even though the
            # accelerator's process is the one scheduling it.
            prev = prof.current_tag
            prof.current_tag = self._ptag_tx
            self.sim.schedule(
                self.config.pipeline_latency,
                lambda: self._submit_now(data, meta, needed, service_started),
            )
            prof.current_tag = prev

    def _submit(self, data: bytes, meta: AxisMetadata) -> None:
        self.tx.credits.try_consume(meta.queue_id, 1)
        self._pending_chunks += self.tx.buffers.chunks_for(len(data))
        started = self.sim._now
        prof = self._prof
        prev = None
        if prof is not None:
            prev = prof.current_tag
            prof.current_tag = self._ptag_tx
        self.sim.schedule(
            self.config.pipeline_latency,
            lambda: self._submit_now(
                data, meta, self.tx.buffers.chunks_for(len(data)), started),
        )
        if prof is not None:
            prof.current_tag = prev

    def _submit_now(self, data: bytes, meta: AxisMetadata,
                    reserved_chunks: int = 0,
                    trace_started: Optional[float] = None) -> None:
        self._pending_chunks -= reserved_chunks
        if trace_started is not None and meta.trace_ctx is not None:
            self._spans.record(meta.trace_ctx, "fld.tx", trace_started,
                               self.sim._now)
        if self.tx.submit(meta.queue_id, data, meta) is None:
            return  # an egress program dropped it; credit already refunded
        self.stats_tx_packets += 1
        self.stats_tx_bytes += len(data)
        self._ctr_tx_packets.inc()
        self._ctr_tx_bytes.inc(len(data))
        tracer = self._tracer
        if tracer.enabled:
            tracer.instant(f"fld.{self.name}", f"txq{meta.queue_id}",
                           "submit", self.sim._now, {"bytes": len(data)})

    def credits_available(self, queue_id: int) -> int:
        return self.tx.credits.available(queue_id)

    # ------------------------------------------------------------------
    # PCIe BAR handlers
    # ------------------------------------------------------------------

    def handle_read(self, offset: int, length: int) -> bytes:
        prof = self._prof
        if prof is not None:
            # Ring/data reads are the NIC DMAing from the tx engine.
            prof.current_tag = self._ptag_tx
        region = bar.decode(offset)
        if region.region == "tx_ring":
            return self.tx.handle_ring_read(region.queue, region.offset,
                                            length)
        if region.region == "tx_data":
            return self.tx.handle_data_read(region.queue, region.offset,
                                            length)
        raise PcieError(f"{self.name}: unreadable region {region!r}")

    def handle_write(self, offset: int, data: bytes) -> None:
        region = bar.decode(offset)
        if region.region == "rx_buffer":
            self.rx.handle_buffer_write(region.offset, data)
            return
        if region.region == "cq":
            self._on_cqe_write(region.queue, data)
            return
        if region.region == "pi":
            return  # producer-index mirror writes: accepted, uninterpreted
        raise PcieError(f"{self.name}: unwritable region {region!r}")

    def install_rx_fastpath(self, cq, cq_index: int) -> None:
        """Fuse the NIC's rx-CQE delivery with the rx pipeline hop.

        With cut-through transit and tracing off, the CQE's PCIe
        arrival event and the rx engine's pipeline-latency push
        collapse into one: the CQE is decoded at issue time (the packet
        data's write has already delivered — the NIC posts the CQE from
        that write's completion callback, so the receive SRAM holds the
        bytes), a single event at arrival + pipeline latency pushes the
        packet onto the stream, and — when a buffer closes — recycle
        doorbells issue from one continuation at the CQE's arrival
        instant, exactly as the reference delivery would issue them.
        """
        if not fused_dispatch_ok(self.sim, self.fabric):
            return
        cq.fused_rx = partial(self._rx_cqe_fused, cq_index)

    def _rx_cqe_fused(self, cq_index: int, handle, cqe) -> None:
        route = self._cq_route.get(cq_index)
        if (route is None or route[0] != "rx"
                or cqe.opcode != CQE_RECV_COMPLETION
                or self.rx.prog_hook is not None):
            # Rare/slow cases (unbound ring, error CQEs, match-action
            # programs): replay the reference delivery in its own event
            # at the write's arrival.
            self.sim.call_later(handle.delivery - self.sim._now,
                                self._rx_cqe_arrive, handle)
            return
        self.stats_cqe_writes += 1
        self._ctr_cqe_writes.inc()
        recycles: list = []
        self.rx.deliver_fused(
            route[1], CompressedCqe.compress(cqe),
            partial(self._emit_rx_fused, handle),
            lambda addr, payload: recycles.append((addr, payload)))
        if recycles:
            # Recycle doorbells must be *issued* at the CQE's arrival
            # instant, not merely keyed there: an early reservation
            # carries an early sequence number, which reorders
            # same-instant ties on the NIC side (observable when the
            # receive inbox is dropping).  Buffers close on a fraction
            # of CQEs under MPRQ, so this event is the exception, not
            # the per-packet cost.
            self.sim.call_later(handle.delivery - self.sim._now,
                                partial(self._recycle_at_arrival, handle,
                                        recycles), None)

    def _recycle_at_arrival(self, handle, recycles, _arg) -> None:
        sim = self.sim
        if handle.delivery > sim._now:
            # Shared-lane arbitration repaired the CQE's arrival after
            # this continuation was scheduled; fire again on time.
            sim.call_later(handle.delivery - sim._now,
                           partial(self._recycle_at_arrival, handle,
                                   recycles), None)
            return
        for addr, payload in recycles:
            self.fabric.post_write(self, addr, payload,
                                   trace_ctx=self.tx.outbound_trace_ctx,
                                   trace_stage="pcie.doorbell")

    def _rx_cqe_arrive(self, handle) -> None:
        """Fallback continuation: deliver a deferred CQE write exactly
        as the fabric's own event would have."""
        sim = self.sim
        if handle.delivery > sim._now:
            sim.call_later(handle.delivery - sim._now, self._rx_cqe_arrive,
                           handle)
            return
        handle.commit()

    def _emit_rx_fused(self, handle, data: bytes, meta: AxisMetadata) -> None:
        self._ctr_rx_stream.inc()
        sim = self.sim
        done = handle.delivery + self.config.pipeline_latency
        sim.call_later(done - sim._now, self._rx_push_fused,
                       (handle, data, meta))

    def _rx_push_fused(self, entry) -> None:
        handle, data, meta = entry
        sim = self.sim
        done = handle.delivery + self.config.pipeline_latency
        if done > sim._now:
            # Shared-lane arbitration repaired the CQE's arrival after
            # this continuation was scheduled; fire again on time.
            sim.call_later(done - sim._now, self._rx_push_fused, entry)
            return
        handle.retire()
        self.rx_stream.push(data, meta)

    def _on_cqe_write(self, cq_index: int, data: bytes) -> None:
        if len(data) < CQE_SIZE:
            raise PcieError(f"{self.name}: short CQE write ({len(data)} B)")
        self.stats_cqe_writes += 1
        self._ctr_cqe_writes.inc()
        # Claim the trace context riding the CQE's write TLP — the 64 B
        # on the wire carry no room for it (object identity dies at the
        # byte boundary).
        trace_ctx = self.fabric.inbound_trace_ctx()
        cqe = Cqe.unpack(data)
        compressed = CompressedCqe.compress(cqe)
        route = self._cq_route.get(cq_index)
        if route is None:
            self.errors.report(FldError.CQE_ERROR, cq_index,
                               detail="CQE on unbound completion ring")
            return
        if cqe.opcode == CQE_ERROR:
            self.errors.report(FldError.CQE_ERROR, cq_index, cqe.syndrome)
            return
        kind, binding = route
        if kind == "tx":
            prof = self._prof
            if prof is not None:
                prof.current_tag = self._ptag_tx
            if cqe.opcode == CQE_SEND_COMPLETION:
                self.tx.on_send_completion(cqe.qpn, cqe.wqe_counter)
        else:
            if cqe.opcode == CQE_RECV_COMPLETION:
                self.rx.on_recv_completion(binding, compressed,
                                           trace_ctx=trace_ctx)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _mmio_write(self, address: int, data: bytes) -> None:
        # The tx manager parks the submission's trace context out-of-band
        # (the writer signature is frozen); rx recycle doorbells leave it
        # None and go untraced.
        self.fabric.post_write(self, address, data,
                               trace_ctx=self.tx.outbound_trace_ctx,
                               trace_stage="pcie.doorbell")

    def _emit_rx(self, data: bytes, meta: AxisMetadata) -> None:
        self._ctr_rx_stream.inc()
        if meta.trace_ctx is not None:
            started = self.sim._now

            def push(ctx=meta.trace_ctx):
                self._spans.record(ctx, "fld.rx", started, self.sim._now)
                meta.trace_enqueued = self.sim._now
                self.rx_stream.push(data, meta)

            self.sim.schedule(self.config.pipeline_latency, push)
        else:
            self.sim.schedule(
                self.config.pipeline_latency,
                lambda: self.rx_stream.push(data, meta),
            )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def on_die_memory(self) -> Dict[str, int]:
        """Bytes of on-die SRAM in use, by component (cf. Table 3)."""
        memory = {}
        memory.update(self.tx.memory_bytes())
        memory.update(self.rx.memory_bytes())
        memory["cq_storage"] = (
            len(self._cq_route) * self.config.cq_entries
            * COMPRESSED_CQE_SIZE
        )
        memory["total"] = sum(memory.values())
        return memory
