"""On-chip buffer pools with reference counting (§5.1).

FLD's Tx and Rx data buffers are small on-die SRAMs divided into
fixed-size *chunks*.  The ring managers allocate chunks per packet (a
packet may span several), keep reference counts, and recycle chunks when
the NIC's completion or the accelerator's consumption releases them.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class BufferPoolError(RuntimeError):
    """Raised on pool exhaustion misuse (double free, bad handle)."""


class BufferPool:
    """A chunked on-die memory pool.

    ``capacity_bytes`` total SRAM, carved into ``chunk_size`` chunks.
    Chunks are identified by integer handles (their index).
    """

    def __init__(self, capacity_bytes: int, chunk_size: int = 256,
                 name: str = ""):
        if capacity_bytes <= 0 or chunk_size <= 0:
            raise ValueError("capacity and chunk size must be positive")
        if capacity_bytes % chunk_size:
            raise ValueError("capacity must be a multiple of the chunk size")
        self.name = name
        self.chunk_size = chunk_size
        self.num_chunks = capacity_bytes // chunk_size
        self._data = bytearray(capacity_bytes)
        self._free: List[int] = list(range(self.num_chunks))
        self._refcount: Dict[int, int] = {}
        self.stats_allocs = 0
        self.stats_frees = 0
        self.stats_alloc_failures = 0
        self.stats_min_free = self.num_chunks

    @property
    def capacity_bytes(self) -> int:
        return self.num_chunks * self.chunk_size

    @property
    def free_chunks(self) -> int:
        return len(self._free)

    @property
    def free_bytes(self) -> int:
        return len(self._free) * self.chunk_size

    def chunks_for(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.chunk_size))

    # -- allocation ---------------------------------------------------------

    def alloc(self, nbytes: int) -> Optional[List[int]]:
        """Allocate chunks covering ``nbytes``; ``None`` when exhausted."""
        needed = self.chunks_for(nbytes)
        if needed > len(self._free):
            self.stats_alloc_failures += 1
            return None
        handles = [self._free.pop(0) for _ in range(needed)]
        for handle in handles:
            self._refcount[handle] = 1
        self.stats_allocs += 1
        self.stats_min_free = min(self.stats_min_free, len(self._free))
        return handles

    def add_ref(self, handle: int) -> None:
        if handle not in self._refcount:
            raise BufferPoolError(f"add_ref on free chunk {handle}")
        self._refcount[handle] += 1

    def release(self, handle: int) -> None:
        """Drop one reference; the chunk returns to the pool at zero."""
        count = self._refcount.get(handle)
        if count is None:
            raise BufferPoolError(f"release of free chunk {handle}")
        if count == 1:
            del self._refcount[handle]
            self._free.append(handle)
            self.stats_frees += 1
        else:
            self._refcount[handle] = count - 1

    def release_all(self, handles: List[int]) -> None:
        for handle in handles:
            self.release(handle)

    # -- data access ----------------------------------------------------------

    def _bounds(self, handle: int) -> int:
        if not 0 <= handle < self.num_chunks:
            raise BufferPoolError(f"bad chunk handle {handle}")
        return handle * self.chunk_size

    def write(self, handle: int, offset: int, data: bytes) -> None:
        if offset + len(data) > self.chunk_size:
            raise BufferPoolError("write crosses chunk boundary")
        base = self._bounds(handle)
        self._data[base + offset:base + offset + len(data)] = data

    def read(self, handle: int, offset: int, length: int) -> bytes:
        if offset + length > self.chunk_size:
            raise BufferPoolError("read crosses chunk boundary")
        base = self._bounds(handle)
        return bytes(self._data[base + offset:base + offset + length])

    def write_scattered(self, handles: List[int], data: bytes) -> None:
        """Spread ``data`` across an allocated chunk list."""
        cursor = 0
        for handle in handles:
            chunk = data[cursor:cursor + self.chunk_size]
            if not chunk:
                break
            self.write(handle, 0, chunk)
            cursor += len(chunk)

    def read_scattered(self, handles: List[int], length: int) -> bytes:
        out = bytearray()
        remaining = length
        for handle in handles:
            take = min(remaining, self.chunk_size)
            out.extend(self.read(handle, 0, take))
            remaining -= take
            if remaining <= 0:
                break
        return bytes(out)
