"""Address translation: virtual rings/windows onto shared physical pools.

Two layers, both from §5.2:

* :class:`DescriptorPool` — the NIC sees a full-size descriptor ring per
  queue (``Nq x f(N_desc)`` WQEs of virtual address space), but FLD keeps
  a single shared pool of ``N_txdesc`` compressed descriptors; a cuckoo
  table maps (queue, wqe-index) to the pool slot.  This is the 2080x
  reduction of Table 3's Tx-rings row.

* :class:`DataTranslationTable` — each queue advertises a virtual data
  window; a second cuckoo table maps (queue, chunk-of-window) to on-chip
  buffer chunks so queues share one small buffer pool at fine granularity
  with bounded fragmentation (the 28.2x reduction of the Tx-buffer row).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .buffers import BufferPool
from .cuckoo import CuckooFullError, CuckooHashTable
from .descriptors import COMPRESSED_TX_DESC_SIZE, CompressedTxDescriptor

# Translation entry sizes (key + value + valid bits, rounded to bytes),
# chosen to land at the paper's reported table overheads (~15.5 KiB for
# descriptors, ~33 KiB for data at the Table 3 configuration).
DESC_XLT_ENTRY_SIZE = 4
DATA_XLT_ENTRY_SIZE = 8


class TranslationError(RuntimeError):
    """Raised on unmapped lookups and double mappings."""


class DescriptorPool:
    """Shared pool of compressed Tx descriptors behind virtual rings."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._slots: List[Optional[CompressedTxDescriptor]] = [None] * capacity
        self._free: List[int] = list(range(capacity))
        self._xlt = CuckooHashTable(capacity, load_factor=0.5,
                                    entry_size=DESC_XLT_ENTRY_SIZE)
        self.stats_stored = 0
        self.stats_failures = 0

    @property
    def free_slots(self) -> int:
        return len(self._free)

    def store(self, queue: int, wqe_index: int,
              descriptor: CompressedTxDescriptor) -> Optional[int]:
        """Place a descriptor for (queue, index); ``None`` when full."""
        if not self._free:
            self.stats_failures += 1
            return None
        slot = self._free.pop(0)
        try:
            self._xlt.insert((queue, wqe_index), slot)
        except CuckooFullError:
            self._free.insert(0, slot)
            self.stats_failures += 1
            return None
        self._slots[slot] = descriptor
        self.stats_stored += 1
        return slot

    def lookup(self, queue: int, wqe_index: int) -> CompressedTxDescriptor:
        slot = self._xlt.lookup((queue, wqe_index))
        if slot is None:
            raise TranslationError(
                f"no descriptor mapped for queue {queue} index {wqe_index}"
            )
        return self._slots[slot]

    def lookup_many(self, queue: int,
                    wqe_indices) -> List[CompressedTxDescriptor]:
        """Batched :meth:`lookup` — one vectorized cuckoo probe for a
        whole ring read."""
        slots = self._xlt.lookup_many(
            [(queue, index) for index in wqe_indices])
        out = []
        for index, slot in zip(wqe_indices, slots):
            if slot is None:
                raise TranslationError(
                    f"no descriptor mapped for queue {queue} index {index}"
                )
            out.append(self._slots[slot])
        return out

    def remove(self, queue: int, wqe_index: int) -> CompressedTxDescriptor:
        slot = self._xlt.remove((queue, wqe_index))
        descriptor = self._slots[slot]
        self._slots[slot] = None
        self._free.append(slot)
        return descriptor

    def cuckoo_stats(self) -> dict:
        """Translation-table counters (telemetry probe)."""
        stats = self._xlt.stats_dict()
        stats["stored"] = self.stats_stored
        stats["failures"] = self.stats_failures
        return stats

    @property
    def memory_bytes(self) -> int:
        """Pool SRAM + translation table SRAM."""
        return (self.capacity * COMPRESSED_TX_DESC_SIZE
                + self._xlt.memory_bytes)


class DataTranslationTable:
    """Maps per-queue virtual window chunks onto buffer-pool chunks."""

    def __init__(self, pool: BufferPool, window_bytes: int,
                 max_mappings: Optional[int] = None):
        if window_bytes % pool.chunk_size:
            raise ValueError("window must be a multiple of the chunk size")
        self.pool = pool
        self.window_bytes = window_bytes
        capacity = max_mappings or pool.num_chunks
        self._xlt = CuckooHashTable(capacity, load_factor=0.5,
                                    entry_size=DATA_XLT_ENTRY_SIZE)
        self.stats_mappings = 0
        self.stats_failures = 0

    def chunks_per_window(self) -> int:
        return self.window_bytes // self.pool.chunk_size

    def map_range(self, queue: int, virt_offset: int,
                  handles: List[int]) -> None:
        """Bind ``handles`` to the window chunks starting at virt_offset."""
        if virt_offset % self.pool.chunk_size:
            raise TranslationError("virtual offset must be chunk-aligned")
        start = virt_offset // self.pool.chunk_size
        inserted = []
        try:
            for i, handle in enumerate(handles):
                chunk = (start + i) % self.chunks_per_window()
                self._xlt.insert((queue, chunk), handle)
                inserted.append((queue, chunk))
        except (CuckooFullError, KeyError):
            for key in inserted:
                self._xlt.remove(key)
            self.stats_failures += 1
            raise
        self.stats_mappings += len(handles)

    def unmap_range(self, queue: int, virt_offset: int, count: int) -> List[int]:
        """Remove ``count`` chunk mappings, returning the handles."""
        start = virt_offset // self.pool.chunk_size
        handles = []
        for i in range(count):
            chunk = (start + i) % self.chunks_per_window()
            handles.append(self._xlt.remove((queue, chunk)))
        return handles

    def cuckoo_stats(self) -> dict:
        """Translation-table counters (telemetry probe)."""
        stats = self._xlt.stats_dict()
        stats["mappings"] = self.stats_mappings
        stats["failures"] = self.stats_failures
        return stats

    def resolve(self, queue: int, virt_offset: int) -> Tuple[int, int]:
        """(chunk handle, offset inside the chunk) for a virtual address."""
        window_offset = virt_offset % self.window_bytes
        chunk = window_offset // self.pool.chunk_size
        handle = self._xlt.lookup((queue, chunk))
        if handle is None:
            raise TranslationError(
                f"queue {queue} virt {virt_offset:#x} not mapped"
            )
        return handle, window_offset % self.pool.chunk_size

    def read_virtual(self, queue: int, virt_offset: int, length: int) -> bytes:
        """Gather a read that may span several translated chunks."""
        out = bytearray()
        cursor = virt_offset
        remaining = length
        while remaining > 0:
            handle, inner = self.resolve(queue, cursor)
            take = min(remaining, self.pool.chunk_size - inner)
            out.extend(self.pool.read(handle, inner, take))
            cursor += take
            remaining -= take
        return bytes(out)

    @property
    def memory_bytes(self) -> int:
        return self._xlt.memory_bytes
