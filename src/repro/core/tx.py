"""FLD transmit ring manager (§5.1, §5.2).

Owns the shared compressed-descriptor pool, the shared transmit buffer
pool, and the two translation tables.  For every packet the accelerator
pushes it:

1. allocates buffer chunks and copies the payload on-die,
2. maps the chunks into the queue's *virtual data window*,
3. stores an 8 B compressed descriptor in the shared pool, keyed by
   (queue, wqe-index) in the descriptor translation table,
4. rings the NIC — by default with WQE-by-MMIO (§6), writing the
   expanded 64 B WQE straight into the NIC's doorbell window so the NIC
   never reads the ring.

When the NIC does read the virtual ring (plain doorbell mode, or
re-fetch), :meth:`handle_ring_read` *generates* the 64 B WQEs on the fly
from the compressed pool — the core idea of §5.2.  Data reads gather
through the translation table.  Send completions retire descriptors
cumulatively, recycle chunks and refund credits.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .. import batching
from ..nic.wqe import OP_ETH_SEND, TxWqe, WQE_SIZE
from ..sim import Simulator
from .axis import AxisMetadata, CreditInterface
from .bar import TX_DATA_SPAN, tx_data_address, tx_ring_address
from .buffers import BufferPool
from .descriptors import CompressedTxDescriptor
from .translation import DataTranslationTable, DescriptorPool, TranslationError


class TxQueueError(RuntimeError):
    """Raised on tx-queue misuse (overflow, unknown queue)."""


class _TxQueueState:
    __slots__ = ("queue_id", "qpn", "entries", "pi", "ci", "data_cursor",
                 "doorbell_addr", "mmio_addr", "use_mmio", "window_chunks",
                 "opcode", "outstanding", "stats_submitted",
                 "stats_completed")

    def __init__(self, queue_id: int, qpn: int, entries: int,
                 doorbell_addr: int, mmio_addr: int, use_mmio: bool,
                 window_chunks: int, opcode: int = OP_ETH_SEND):
        self.queue_id = queue_id
        self.qpn = qpn
        self.entries = entries
        self.pi = 0
        self.ci = 0
        self.data_cursor = 0  # in chunks, within the virtual window
        self.doorbell_addr = doorbell_addr
        self.mmio_addr = mmio_addr
        self.use_mmio = use_mmio
        self.window_chunks = window_chunks
        self.opcode = opcode
        # wqe_index -> (chunk handles, virt chunk offset, chunk count)
        self.outstanding: Dict[int, Tuple[List[int], int, int]] = {}
        self.stats_submitted = 0
        self.stats_completed = 0


class TxRingManager:
    """The transmit half of FLD."""

    def __init__(self, sim: Simulator, buffer_pool: BufferPool,
                 descriptor_pool_size: int = 4096,
                 mmio_writer: Optional[Callable] = None,
                 bar_base: int = 0):
        self.sim = sim
        self.buffers = buffer_pool
        self.descriptors = DescriptorPool(descriptor_pool_size)
        self.data_xlt = DataTranslationTable(buffer_pool, TX_DATA_SPAN)
        self.credits = CreditInterface(sim)
        self.mmio_writer = mmio_writer  # callable(addr, bytes) -> posts PCIe
        self.bar_base = bar_base
        # Match-action hook (repro.prog): set by the program engine when
        # an egress program is attached, None otherwise.
        self.prog_hook: Optional[Callable] = None
        self._queues: Dict[int, _TxQueueState] = {}
        self._qpn_to_queue: Dict[int, int] = {}
        self.stats_wqe_reads = 0
        self.stats_data_read_bytes = 0
        self._spans = sim.telemetry.spans
        # ``mmio_writer`` has a frozen (addr, bytes) signature, so the
        # trace context of the submission being rung travels out-of-band:
        # set around the call for the writer to read.
        self.outbound_trace_ctx = None
        # Stash-key scope for doorbell-mode submissions — the *NIC's*
        # endpoint name, so the NIC's ring fetch can claim the context
        # under the same ("wqe", scope, qpn, index) key.  Set by the FLD
        # runtime; None leaves doorbell-mode WQEs untraced past the ring.
        self.trace_scope: Optional[str] = None

    # -- configuration -------------------------------------------------------

    def add_queue(self, queue_id: int, qpn: int, entries: int,
                  doorbell_addr: int, mmio_addr: int,
                  use_mmio: bool = True, credits: Optional[int] = None,
                  opcode: int = OP_ETH_SEND) -> None:
        if queue_id in self._queues:
            raise TxQueueError(f"queue {queue_id} exists")
        state = _TxQueueState(
            queue_id, qpn, entries, doorbell_addr, mmio_addr, use_mmio,
            window_chunks=TX_DATA_SPAN // self.buffers.chunk_size,
            opcode=opcode,
        )
        self._queues[queue_id] = state
        self._qpn_to_queue[qpn] = queue_id
        self.credits.configure(queue_id, credits or entries)

    def remove_queue(self, queue_id: int) -> None:
        """Tear a queue down, flushing any in-flight submissions.

        Flushed descriptors release their buffer chunks, translation
        windows and credits exactly as a completion would, so the
        invariant auditor sees a clean FLD afterwards.
        """
        state = self.queue(queue_id)
        for index in sorted(state.outstanding):
            self.descriptors.remove(queue_id, index)
            handles, virt_chunk, count = state.outstanding[index]
            self.data_xlt.unmap_range(
                queue_id, virt_chunk * self.buffers.chunk_size, count)
            self.buffers.release_all(handles)
        state.outstanding.clear()
        state.ci = state.pi
        del self._queues[queue_id]
        self._qpn_to_queue.pop(state.qpn, None)
        self.credits.remove(queue_id)

    def queue(self, queue_id: int) -> _TxQueueState:
        try:
            return self._queues[queue_id]
        except KeyError:
            raise TxQueueError(f"unknown tx queue {queue_id}") from None

    # -- the accelerator-facing submit path -----------------------------------

    def can_submit(self, queue_id: int, nbytes: int) -> bool:
        state = self.queue(queue_id)
        return (
            self.credits.available(queue_id) >= 1
            and self.buffers.free_chunks >= self.buffers.chunks_for(nbytes)
            and self.descriptors.free_slots >= 1
            and state.pi - state.ci < state.entries
        )

    def submit(self, queue_id: int, data: bytes,
               meta: AxisMetadata) -> Optional[int]:
        """Enqueue one packet/message; returns its wqe index.

        The caller (FLD top) is responsible for holding a credit; this
        method asserts physical resources, which credits guarantee.
        An attached egress program runs before any resource is taken:
        a ``drop`` verdict refunds the caller's credit and returns
        ``None`` — the packet never existed as far as buffers,
        descriptors and the NIC are concerned.
        """
        state = self.queue(queue_id)
        hook = self.prog_hook
        if hook is not None:
            data = hook(queue_id, data, meta)
            if data is None:
                self.credits.refund(queue_id, 1)
                return None
        if state.pi - state.ci >= state.entries:
            raise TxQueueError(f"queue {queue_id} ring overflow")
        handles = self.buffers.alloc(len(data))
        if handles is None:
            raise TxQueueError(
                f"buffer pool exhausted for {len(data)} B on queue {queue_id}"
            )
        self.buffers.write_scattered(handles, data)

        index = state.pi
        state.pi += 1
        # Chunk-aligned virtual placement at the rotating cursor.
        virt_chunk = state.data_cursor
        state.data_cursor = (state.data_cursor + len(handles)) % state.window_chunks
        virt_offset = virt_chunk * self.buffers.chunk_size
        self.data_xlt.map_range(queue_id, virt_offset, handles)

        descriptor = CompressedTxDescriptor(
            handle=handles[0], length=len(data),
            context_id=meta.context_id, opcode=state.opcode,
            signaled=meta.signaled,
        )
        slot = self.descriptors.store(queue_id, index, descriptor)
        if slot is None:
            self.data_xlt.unmap_range(queue_id, virt_offset, len(handles))
            self.buffers.release_all(handles)
            state.pi -= 1
            raise TxQueueError("descriptor pool exhausted")
        state.outstanding[index] = (handles, virt_chunk, len(handles))
        state.stats_submitted += 1
        self._ring_nic(state, index, descriptor, virt_offset,
                       trace_ctx=meta.trace_ctx)
        return index

    def _ring_nic(self, state: _TxQueueState, index: int,
                  descriptor: CompressedTxDescriptor, virt_offset: int,
                  trace_ctx=None) -> None:
        if self.mmio_writer is None:
            return  # standalone/unit-test mode
        if state.use_mmio:
            wqe = descriptor.expand(
                state.qpn, index,
                self.bar_base + tx_data_address(state.queue_id, virt_offset),
            )
            self.outbound_trace_ctx = trace_ctx
            try:
                self.mmio_writer(state.mmio_addr, wqe.pack())
            finally:
                self.outbound_trace_ctx = None
        else:
            if trace_ctx is not None and self.trace_scope is not None:
                # The NIC will fetch this WQE from the virtual ring later;
                # park the context where its fetch loop can claim it.
                self._spans.stash(
                    ("wqe", self.trace_scope, state.qpn, index), trace_ctx)
            self.outbound_trace_ctx = trace_ctx
            try:
                self.mmio_writer(state.doorbell_addr,
                                 (index + 1).to_bytes(4, "big"))
            finally:
                self.outbound_trace_ctx = None

    # -- the NIC-facing PCIe handlers ------------------------------------------

    def handle_ring_read(self, queue_id: int, offset: int,
                         length: int) -> bytes:
        """Generate WQE bytes for a NIC read of the virtual ring."""
        state = self.queue(queue_id)
        if offset % WQE_SIZE or length % WQE_SIZE:
            raise TxQueueError("unaligned WQE ring read")
        count = length // WQE_SIZE
        first_slot = offset // WQE_SIZE
        if count >= 2 and batching.BATCH_ENABLED:
            # Batched expansion: one vectorized translation probe for
            # the burst, one vectorized WQE encode.  Byte-identical to
            # the scalar loop below.
            indices = [self._slot_to_index(state, first_slot + i)
                       for i in range(count)]
            descriptors = self.descriptors.lookup_many(queue_id, indices)
            chunk_size = self.buffers.chunk_size
            base = self.bar_base
            wqes = []
            for index, descriptor in zip(indices, descriptors):
                _handles, virt_chunk, _count = state.outstanding[index]
                wqes.append(descriptor.expand(
                    state.qpn, index,
                    base + tx_data_address(queue_id,
                                           virt_chunk * chunk_size),
                ))
            self.stats_wqe_reads += count
            return TxWqe.pack_many(wqes)
        out = bytearray()
        for i in range(count):
            slot = first_slot + i
            # The ring is virtual: resolve the slot to the outstanding
            # wqe index that currently occupies it.
            index = self._slot_to_index(state, slot)
            descriptor = self.descriptors.lookup(queue_id, index)
            _handles, virt_chunk, _count = state.outstanding[index]
            wqe = descriptor.expand(
                state.qpn, index,
                self.bar_base + tx_data_address(
                    queue_id, virt_chunk * self.buffers.chunk_size),
            )
            out.extend(wqe.pack())
            self.stats_wqe_reads += 1
        return bytes(out)

    @staticmethod
    def _slot_to_index(state: _TxQueueState, slot: int) -> int:
        """Map a ring slot back to the in-flight wqe index occupying it."""
        base = state.ci - (state.ci % state.entries)
        index = base + slot
        if index < state.ci:
            index += state.entries
        if index >= state.pi:
            raise TranslationError(
                f"NIC read of unposted slot {slot} on queue {state.queue_id}"
            )
        return index

    def handle_data_read(self, queue_id: int, offset: int,
                         length: int) -> bytes:
        """Gather a NIC data read through the translation table."""
        self.stats_data_read_bytes += length
        return self.data_xlt.read_virtual(queue_id, offset, length)

    # -- completion handling -----------------------------------------------------

    def on_send_completion(self, qpn: int, wqe_counter: int) -> int:
        """Cumulatively retire up to ``wqe_counter`` (selective signalling).

        Returns the number of descriptors retired.
        """
        queue_id = self._qpn_to_queue.get(qpn)
        if queue_id is None:
            raise TxQueueError(f"send completion for unknown qpn {qpn}")
        state = self._queues[queue_id]
        # Recover the full index from the 16-bit CQE counter.
        target = (state.ci & ~0xFFFF) | wqe_counter
        if target < state.ci:
            target += 1 << 16
        retired = 0
        while state.ci <= target and state.ci < state.pi:
            index = state.ci
            state.ci += 1
            self.descriptors.remove(queue_id, index)
            handles, virt_chunk, count = state.outstanding.pop(index)
            self.data_xlt.unmap_range(
                queue_id, virt_chunk * self.buffers.chunk_size, count)
            self.buffers.release_all(handles)
            self.credits.refund(queue_id, 1)
            retired += 1
            state.stats_completed += 1
        return retired

    # -- accounting -----------------------------------------------------------------

    def memory_bytes(self) -> Dict[str, int]:
        """On-die SRAM used by the transmit side (Table 3's FLD column)."""
        return {
            "tx_descriptor_pool": self.descriptors.memory_bytes,
            "tx_data_translation": self.data_xlt.memory_bytes,
            "tx_buffers": self.buffers.capacity_bytes,
            "tx_producer_indices": 4 * max(1, len(self._queues)),
        }
