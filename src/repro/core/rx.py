"""FLD receive ring manager (§5.1, §5.2).

The receive side leans on three of the paper's memory optimizations:

* **MPRQ** — the NIC fills multi-packet buffers (strides) in FLD's small
  on-die receive SRAM, bounding fragmentation to half a buffer;
* **receive ring in host memory** — the descriptors pointing at FLD's
  buffers live in *host* DRAM, written once by software; FLD recycles
  buffers in the order they were posted, so the descriptors are never
  modified and FLD keeps no descriptor copies at all (the "-" in
  Table 3's Rx-ring row);
* **compressed completions** — the NIC's 64 B CQE is reduced to 15 B of
  internal state the moment it lands.

On each receive completion FLD streams the packet (with metadata) to the
accelerator and, when a buffer closes, returns it to the NIC by bumping
the RQ producer index over PCIe.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..nic.wqe import CQE_FLAG_MSG_LAST
from ..sim import Simulator
from .axis import AxisMetadata
from .descriptors import COMPRESSED_CQE_SIZE, CompressedCqe


class RxError(RuntimeError):
    """Raised on receive-side misconfiguration."""


class _RxBinding:
    """One receive queue's buffer slice and recycle state."""

    __slots__ = ("binding_id", "ring_entries", "strides_per_buffer",
                 "stride_size", "sram_offset", "rq_doorbell_addr", "pi",
                 "recycled", "stats_packets", "stats_bytes",
                 "stats_recycled")

    def __init__(self, binding_id: int, ring_entries: int,
                 strides_per_buffer: int, stride_size: int,
                 sram_offset: int, rq_doorbell_addr: int):
        self.binding_id = binding_id
        self.ring_entries = ring_entries
        self.strides_per_buffer = strides_per_buffer
        self.stride_size = stride_size
        self.sram_offset = sram_offset
        self.rq_doorbell_addr = rq_doorbell_addr
        self.pi = ring_entries       # software posts the full ring at setup
        self.recycled = 0            # buffers already returned to the NIC
        self.stats_packets = 0
        self.stats_bytes = 0
        self.stats_recycled = 0

    @property
    def buffer_size(self) -> int:
        return self.strides_per_buffer * self.stride_size

    @property
    def slice_bytes(self) -> int:
        return self.ring_entries * self.buffer_size


class RxRingManager:
    """The receive half of FLD."""

    def __init__(self, sim: Simulator, capacity_bytes: int = 256 * 1024,
                 mmio_writer: Optional[Callable] = None,
                 emit: Optional[Callable[[bytes, AxisMetadata], None]] = None):
        self.sim = sim
        self.capacity_bytes = capacity_bytes
        self._sram = bytearray(capacity_bytes)
        self._sram_cursor = 0
        # Released slices, kept sorted by offset and coalesced; reused
        # first-fit so a churning testbed doesn't exhaust the SRAM.
        # While nothing is ever removed the allocator degenerates to the
        # historical bump cursor (identical offsets, bit-identical runs).
        self._sram_free: List[Tuple[int, int]] = []
        self.mmio_writer = mmio_writer
        self.emit = emit
        # Match-action hook (repro.prog): set by the program engine when
        # a program is attached to any binding, None otherwise — the
        # NULL fast path is a single attribute test.
        self.prog_hook: Optional[Callable] = None
        self._bindings: Dict[int, _RxBinding] = {}
        self.stats_cqes = 0
        self.stats_sram_writes = 0

    # -- SRAM slice allocator ------------------------------------------------

    def _alloc_sram(self, size: int) -> int:
        for i, (offset, free) in enumerate(self._sram_free):
            if free >= size:
                if free == size:
                    del self._sram_free[i]
                else:
                    self._sram_free[i] = (offset + size, free - size)
                return offset
        if self._sram_cursor + size > self.capacity_bytes:
            raise RxError(
                f"rx SRAM exhausted: need {size} B, "
                f"{self.capacity_bytes - self._sram_cursor} B left"
            )
        offset = self._sram_cursor
        self._sram_cursor += size
        return offset

    def _free_sram(self, offset: int, size: int) -> None:
        self._sram_free.append((offset, size))
        self._sram_free.sort()
        # Coalesce adjacent blocks.
        merged: List[Tuple[int, int]] = []
        for block_offset, block_size in self._sram_free:
            if merged and merged[-1][0] + merged[-1][1] == block_offset:
                merged[-1] = (merged[-1][0], merged[-1][1] + block_size)
            else:
                merged.append((block_offset, block_size))
        # Retract the bump cursor over a trailing free block, so a fully
        # drained manager allocates from offset 0 again.
        while merged and merged[-1][0] + merged[-1][1] == self._sram_cursor:
            self._sram_cursor = merged.pop()[0]
        self._sram_free = merged

    @property
    def sram_bytes_in_use(self) -> int:
        """Bytes currently backing live bindings (leak auditing)."""
        return self._sram_cursor - sum(size for _o, size in self._sram_free)

    # -- configuration -------------------------------------------------------

    def add_binding(self, binding_id: int, ring_entries: int,
                    strides_per_buffer: int, stride_size: int,
                    rq_doorbell_addr: int) -> int:
        """Carve a buffer slice; returns its offset in the RX BAR region.

        Software points the host-memory receive descriptors at
        ``FLD_BAR + RX_BUFFER_REGION + offset + i * buffer_size``.
        """
        if binding_id in self._bindings:
            raise RxError(f"binding {binding_id} exists")
        slice_bytes = ring_entries * strides_per_buffer * stride_size
        sram_offset = self._alloc_sram(slice_bytes)
        binding = _RxBinding(binding_id, ring_entries, strides_per_buffer,
                             stride_size, sram_offset,
                             rq_doorbell_addr)
        self._bindings[binding_id] = binding
        return binding.sram_offset

    def remove_binding(self, binding_id: int) -> _RxBinding:
        """Release a binding's SRAM slice back to the allocator."""
        binding = self.binding(binding_id)
        del self._bindings[binding_id]
        self._free_sram(binding.sram_offset, binding.slice_bytes)
        return binding

    def binding(self, binding_id: int) -> _RxBinding:
        try:
            return self._bindings[binding_id]
        except KeyError:
            raise RxError(f"unknown rx binding {binding_id}") from None

    # -- NIC-facing PCIe handlers ----------------------------------------------

    def handle_buffer_write(self, offset: int, data: bytes) -> None:
        """The NIC DMA-writing packet data into receive SRAM."""
        if offset + len(data) > self.capacity_bytes:
            raise RxError(f"rx buffer write beyond SRAM: {offset:#x}")
        self._sram[offset:offset + len(data)] = data
        self.stats_sram_writes += 1

    def on_recv_completion(self, binding_id: int, cqe: CompressedCqe,
                           trace_ctx=None) -> None:
        """Decode a receive CQE: stream the packet out, recycle buffers."""
        self._deliver(binding_id, self.binding(binding_id), cqe, trace_ctx)

    def on_recv_completions(self, binding_id: int, cqes, trace_ctxs=None):
        """Burst variant of :meth:`on_recv_completion`.

        Exactly equivalent to the serial calls, with the binding lookup
        hoisted out of the per-CQE loop.
        """
        binding = self.binding(binding_id)
        if trace_ctxs is None:
            for cqe in cqes:
                self._deliver(binding_id, binding, cqe, None)
        else:
            for cqe, ctx in zip(cqes, trace_ctxs):
                self._deliver(binding_id, binding, cqe, ctx)

    def deliver_fused(self, binding_id: int, cqe: CompressedCqe,
                      emit: Callable, recycle_writer: Callable) -> None:
        """Decode a receive CQE ahead of its PCIe arrival (fused mode).

        State effects are identical to :meth:`on_recv_completion`, with
        the continuation plumbing supplied by the caller: ``emit(data,
        meta)`` replaces ``self.emit`` (invoked before recycling, as in
        :meth:`_deliver`) and recycle doorbells go through
        ``recycle_writer`` (a future-keyed PCIe writer).  The caller
        gates out tracing and match-action programs.
        """
        binding = self.binding(binding_id)
        self.stats_cqes += 1
        desc_index = self._full_desc_index(binding, cqe.wqe_counter)
        slot = desc_index % binding.ring_entries
        offset = (binding.sram_offset + slot * binding.buffer_size
                  + cqe.stride_index * binding.stride_size)
        data = bytes(self._sram[offset:offset + cqe.byte_count])
        binding.stats_packets += 1
        binding.stats_bytes += cqe.byte_count
        emit(data, AxisMetadata(
            queue_id=binding_id,
            context_id=cqe.flow_tag,
            flags=cqe.flags,
            msg_last=bool(cqe.flags & CQE_FLAG_MSG_LAST),
            src_qpn=cqe.qpn,
            trace_ctx=None,
        ))
        while binding.recycled < desc_index:
            binding.recycled += 1
            binding.pi += 1
            binding.stats_recycled += 1
            recycle_writer(binding.rq_doorbell_addr,
                           (binding.pi & 0xFFFFFFFF).to_bytes(4, "big"))

    def _deliver(self, binding_id: int, binding: _RxBinding,
                 cqe: CompressedCqe, trace_ctx) -> None:
        self.stats_cqes += 1
        desc_index = self._full_desc_index(binding, cqe.wqe_counter)
        slot = desc_index % binding.ring_entries
        offset = (binding.sram_offset + slot * binding.buffer_size
                  + cqe.stride_index * binding.stride_size)
        data = bytes(self._sram[offset:offset + cqe.byte_count])
        binding.stats_packets += 1
        binding.stats_bytes += cqe.byte_count
        if self.emit is not None:
            meta = AxisMetadata(
                queue_id=binding_id,
                context_id=cqe.flow_tag,
                flags=cqe.flags,
                msg_last=bool(cqe.flags & CQE_FLAG_MSG_LAST),
                src_qpn=cqe.qpn,
                trace_ctx=trace_ctx,
            )
            hook = self.prog_hook
            if hook is None:
                self.emit(data, meta)
            else:
                hook(binding_id, data, meta, self.emit)
        self._recycle_before(binding, desc_index)

    # -- recycle-in-order (§5.2 "Receive Ring in Host Memory") ------------------

    def _full_desc_index(self, binding: _RxBinding, counter16: int) -> int:
        base = binding.recycled & ~0xFFFF
        index = base | counter16
        if index < binding.recycled:
            index += 1 << 16
        return index

    def _recycle_before(self, binding: _RxBinding, desc_index: int) -> None:
        """Buffers before the one now filling are complete: return them.

        Recycling is strictly in posting order, which is what lets the
        host-memory descriptors stay immutable.
        """
        while binding.recycled < desc_index:
            binding.recycled += 1
            binding.pi += 1
            binding.stats_recycled += 1
            if self.mmio_writer is not None:
                self.mmio_writer(binding.rq_doorbell_addr,
                                 (binding.pi & 0xFFFFFFFF).to_bytes(4, "big"))

    # -- accounting ---------------------------------------------------------------

    def memory_bytes(self) -> Dict[str, int]:
        return {
            "rx_buffers": self.capacity_bytes,
            "rx_ring": 0,  # lives in host memory by design
            "rx_producer_indices": 4 * max(1, len(self._bindings)),
        }
