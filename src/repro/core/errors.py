"""FLD data-plane error detection and reporting (§5.3 "Error Handling").

FLD detects data-plane errors (NIC error completions, protocol
violations) and reports them to software through its kernel driver; like
RDMA Verbs, recovery is left to the control-plane application.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator, Store


class FldError:
    """One reported error record."""

    __slots__ = ("kind", "queue", "syndrome", "detail", "time")

    CQE_ERROR = "cqe_error"
    RING_OVERFLOW = "ring_overflow"
    TRANSLATION_MISS = "translation_miss"
    BUFFER_EXHAUSTED = "buffer_exhausted"

    def __init__(self, kind: str, queue: int = 0, syndrome: int = 0,
                 detail: str = "", time: float = 0.0):
        self.kind = kind
        self.queue = queue
        self.syndrome = syndrome
        self.detail = detail
        self.time = time

    def __repr__(self) -> str:
        return (
            f"FldError({self.kind}, q={self.queue}, "
            f"syndrome={self.syndrome}, t={self.time:.6f})"
        )


class ErrorReporter:
    """The hardware side of the error channel to the kernel driver."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.channel = Store(sim, name="fld.errors")
        self.stats_reported = 0

    def report(self, kind: str, queue: int = 0, syndrome: int = 0,
               detail: str = "") -> FldError:
        error = FldError(kind, queue, syndrome, detail, self.sim.now)
        self.channel.try_put(error)
        self.stats_reported += 1
        return error
