"""The FLD<->accelerator interface: AXI4-Stream-like buses + credits (§5.5).

Two streams carry packets with sideband metadata:

* **rx stream** (FLD -> accelerator): the accelerator must *not*
  backpressure it (§5.5) — a slow accelerator must drop or flow-control at
  the application layer.  We model this with a bounded store whose
  overflow counts as accelerator-inflicted drops.

* **tx stream** (accelerator -> FLD): guarded by the per-queue *credit
  interface* — a credit covers one descriptor slot plus the buffer chunks
  a packet needs, so the accelerator can apportion resources between its
  queues and FLD buffers can never overflow.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim import Simulator, Store


class AxisMetadata:
    """Sideband metadata accompanying each packet on the streams.

    On receive it carries the completion-derived fields (§5.5): context
    ID, offload flags (checksum ok...), RSS hash, message position.  On
    transmit the accelerator sets the queue and context (the context's
    upper bits select the FLD-E resume table, §5.3).
    """

    __slots__ = ("queue_id", "context_id", "flags", "rss_hash", "msg_first",
                 "msg_last", "signaled", "src_qpn", "trace_ctx",
                 "trace_enqueued", "prog_skip")

    def __init__(self, queue_id: int = 0, context_id: int = 0,
                 flags: int = 0, rss_hash: int = 0, msg_first: bool = True,
                 msg_last: bool = True, signaled: bool = True,
                 src_qpn: int = 0, trace_ctx=None):
        self.queue_id = queue_id
        self.context_id = context_id
        self.flags = flags
        self.rss_hash = rss_hash
        self.msg_first = msg_first
        self.msg_last = msg_last
        self.signaled = signaled
        # The NIC queue (QP) the packet arrived on — from the CQE's QPN
        # field; FLD-R accelerators route replies by it when several QPs
        # share one receive queue (§6).
        self.src_qpn = src_qpn
        # Sim-only span sideband (repro.telemetry.spans): the packet's
        # trace handle and the time it entered the stream it rides on
        # (lets the consumer split queueing from service time).
        self.trace_ctx = trace_ctx
        self.trace_enqueued = 0.0
        # Set on packets a match-action program already redirected, so
        # the egress hook runs a program at most once per packet (no
        # redirect ping-pong between attached programs).
        self.prog_skip = False

    def __repr__(self) -> str:
        return (
            f"AxisMetadata(q={self.queue_id}, ctx={self.context_id:#x}, "
            f"flags={self.flags:#x})"
        )


class AxisStream:
    """A unidirectional packet stream (data bytes + metadata)."""

    def __init__(self, sim: Simulator, name: str,
                 depth: Optional[int] = None):
        self.sim = sim
        self.name = name
        self._store = Store(sim, capacity=depth, name=name)

    def push(self, data: bytes, meta: AxisMetadata) -> bool:
        """Non-blocking enqueue; False = overflow drop."""
        return self._store.try_put((data, meta))

    def get(self):
        """Event yielding the next (data, metadata) pair."""
        return self._store.get()

    def __len__(self) -> int:
        return len(self._store)

    @property
    def stats_dropped(self) -> int:
        return self._store.stats_dropped

    @property
    def stats_delivered(self) -> int:
        return self._store.stats_put


class CreditInterface:
    """Per-queue transmit credits (§5.5).

    A queue's credit pool reflects its share of descriptor slots and data
    chunks; the accelerator consumes credits when pushing and FLD returns
    them when the NIC's completion frees the resources.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._credits: Dict[int, int] = {}
        self._capacity: Dict[int, int] = {}
        self._waiters: Dict[int, list] = {}
        self.stats_waits = 0

    def configure(self, queue_id: int, credits: int) -> None:
        self._credits[queue_id] = credits
        self._capacity[queue_id] = credits
        self._waiters.setdefault(queue_id, [])

    def remove(self, queue_id: int) -> None:
        """Drop a queue's credit pool (its tx queue was destroyed)."""
        self._credits.pop(queue_id, None)
        self._capacity.pop(queue_id, None)
        self._waiters.pop(queue_id, None)

    def available(self, queue_id: int) -> int:
        return self._credits.get(queue_id, 0)

    def capacity(self, queue_id: int) -> int:
        return self._capacity.get(queue_id, 0)

    def try_consume(self, queue_id: int, amount: int = 1) -> bool:
        if self._credits.get(queue_id, 0) >= amount:
            self._credits[queue_id] -= amount
            return True
        return False

    def acquire(self, queue_id: int, amount: int = 1):
        """Event firing once ``amount`` credits are consumed."""
        event = self.sim.event()
        if self.try_consume(queue_id, amount):
            event.succeed()
        else:
            self.stats_waits += 1
            self._waiters[queue_id].append((amount, event))
        return event

    def refund(self, queue_id: int, amount: int = 1) -> None:
        if queue_id not in self._credits:
            raise KeyError(f"unknown queue {queue_id}")
        # Serve waiters from the uncapped balance first; only the final
        # idle balance is clamped to the configured capacity.
        self._credits[queue_id] += amount
        waiters = self._waiters[queue_id]
        while waiters and self._credits[queue_id] >= waiters[0][0]:
            amount_needed, event = waiters.pop(0)
            self._credits[queue_id] -= amount_needed
            event.succeed()
        self._credits[queue_id] = min(self._capacity[queue_id],
                                      self._credits[queue_id])
