"""FlexDriver (FLD): the paper's primary contribution, modelled behaviorally."""

from . import bar
from .axis import AxisMetadata, AxisStream, CreditInterface
from .buffers import BufferPool, BufferPoolError
from .cuckoo import CuckooFullError, CuckooHashTable, NUM_BANKS, STASH_SIZE
from .descriptors import (
    COMPRESSED_CQE_SIZE,
    COMPRESSED_TX_DESC_SIZE,
    CompressedCqe,
    CompressedTxDescriptor,
)
from .errors import ErrorReporter, FldError
from .fld import FldConfig, FlexDriver
from .rx import RxError, RxRingManager
from .translation import (
    DataTranslationTable,
    DescriptorPool,
    TranslationError,
)
from .tx import TxQueueError, TxRingManager

__all__ = [
    "AxisMetadata", "AxisStream", "BufferPool", "BufferPoolError",
    "COMPRESSED_CQE_SIZE", "COMPRESSED_TX_DESC_SIZE", "CompressedCqe",
    "CompressedTxDescriptor", "CreditInterface", "CuckooFullError",
    "CuckooHashTable", "DataTranslationTable", "DescriptorPool",
    "ErrorReporter", "FldConfig", "FldError", "FlexDriver", "NUM_BANKS",
    "RxError", "RxRingManager", "STASH_SIZE", "TranslationError",
    "TxQueueError", "TxRingManager", "bar",
]
