"""Example accelerators from the paper's §7, built on the FLD streams."""

from .base import Accelerator, DroppingAccelerator
from .defrag import IpDefragAccelerator
from .echo import EchoAccelerator, RdmaEchoAccelerator
from .iot import IotAuthAccelerator
from .tenant import IotEchoAccelerator, ZucEchoAccelerator
from .zuc import ZucAccelerator

__all__ = [
    "Accelerator",
    "DroppingAccelerator",
    "EchoAccelerator",
    "IotAuthAccelerator",
    "IotEchoAccelerator",
    "IpDefragAccelerator",
    "RdmaEchoAccelerator",
    "ZucAccelerator",
    "ZucEchoAccelerator",
]
