"""CoAP message encoding/decoding (RFC 7252), the IoT carrier protocol.

The IoT authentication offload (§7) extracts JSON Web Tokens from
CoAP-encoded UDP messages; this module implements the subset of CoAP the
offload parses: the 4-byte fixed header, token, options with extended
deltas/lengths, and the 0xFF payload marker.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

VERSION = 1

TYPE_CONFIRMABLE = 0
TYPE_NON_CONFIRMABLE = 1
TYPE_ACK = 2
TYPE_RESET = 3

# Method codes (class 0).
GET, POST, PUT, DELETE = 1, 2, 3, 4

OPTION_URI_PATH = 11
OPTION_CONTENT_FORMAT = 12
OPTION_URI_QUERY = 15

PAYLOAD_MARKER = 0xFF


class CoapError(ValueError):
    """Raised on malformed CoAP messages."""


def _encode_option_part(value: int) -> Tuple[int, bytes]:
    """(nibble, extended bytes) for an option delta or length."""
    if value < 13:
        return value, b""
    if value < 269:
        return 13, bytes([value - 13])
    if value < 65805:
        return 14, (value - 269).to_bytes(2, "big")
    raise CoapError(f"option field {value} too large")


def _decode_option_part(nibble: int, data: bytes, offset: int) -> Tuple[int, int]:
    if nibble < 13:
        return nibble, offset
    if nibble == 13:
        return data[offset] + 13, offset + 1
    if nibble == 14:
        return int.from_bytes(data[offset:offset + 2], "big") + 269, offset + 2
    raise CoapError("reserved option nibble 15")


class CoapMessage:
    """A CoAP message: header, token, options, payload."""

    def __init__(self, code: int = POST, mtype: int = TYPE_NON_CONFIRMABLE,
                 message_id: int = 0, token: bytes = b"",
                 options: Optional[List[Tuple[int, bytes]]] = None,
                 payload: bytes = b""):
        if len(token) > 8:
            raise CoapError("token longer than 8 bytes")
        self.code = code
        self.mtype = mtype
        self.message_id = message_id & 0xFFFF
        self.token = token
        self.options = sorted(options or [], key=lambda o: o[0])
        self.payload = payload

    def add_option(self, number: int, value: bytes) -> "CoapMessage":
        self.options.append((number, value))
        self.options.sort(key=lambda o: o[0])
        return self

    def option(self, number: int) -> Optional[bytes]:
        for num, value in self.options:
            if num == number:
                return value
        return None

    def pack(self) -> bytes:
        out = bytearray()
        out.append((VERSION << 6) | (self.mtype << 4) | len(self.token))
        out.append(self.code)
        out.extend(self.message_id.to_bytes(2, "big"))
        out.extend(self.token)
        previous = 0
        for number, value in self.options:
            delta_nibble, delta_ext = _encode_option_part(number - previous)
            length_nibble, length_ext = _encode_option_part(len(value))
            out.append((delta_nibble << 4) | length_nibble)
            out.extend(delta_ext)
            out.extend(length_ext)
            out.extend(value)
            previous = number
        if self.payload:
            out.append(PAYLOAD_MARKER)
            out.extend(self.payload)
        return bytes(out)

    @classmethod
    def unpack(cls, data: bytes) -> "CoapMessage":
        if len(data) < 4:
            raise CoapError("message shorter than the CoAP header")
        version = data[0] >> 6
        if version != VERSION:
            raise CoapError(f"unsupported CoAP version {version}")
        mtype = (data[0] >> 4) & 0x3
        token_length = data[0] & 0xF
        if token_length > 8:
            raise CoapError("token length nibble > 8")
        code = data[1]
        message_id = int.from_bytes(data[2:4], "big")
        offset = 4
        if len(data) < offset + token_length:
            raise CoapError("truncated token")
        token = data[offset:offset + token_length]
        offset += token_length
        options: List[Tuple[int, bytes]] = []
        number = 0
        while offset < len(data):
            if data[offset] == PAYLOAD_MARKER:
                offset += 1
                if offset >= len(data):
                    raise CoapError("payload marker with empty payload")
                break
            byte = data[offset]
            offset += 1
            delta, offset = _decode_option_part(byte >> 4, data, offset)
            length, offset = _decode_option_part(byte & 0xF, data, offset)
            number += delta
            if len(data) < offset + length:
                raise CoapError("truncated option value")
            options.append((number, data[offset:offset + length]))
            offset += length
        else:
            return cls(code, mtype, message_id, token, options, b"")
        return cls(code, mtype, message_id, token, options, data[offset:])
