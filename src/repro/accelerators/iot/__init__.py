"""IoT token-authentication offload: CoAP + JWT + the accelerator (§7)."""

from .accel import IotAuthAccelerator
from .coap import CoapError, CoapMessage, GET, POST, TYPE_NON_CONFIRMABLE
from .jwt import JwtError, parse_token, sign_token, verify_token

__all__ = [
    "CoapError",
    "CoapMessage",
    "GET",
    "IotAuthAccelerator",
    "JwtError",
    "POST",
    "TYPE_NON_CONFIRMABLE",
    "parse_token",
    "sign_token",
    "verify_token",
]
