"""JSON Web Tokens (RFC 7519) with HMAC-SHA256 (HS256) signatures.

The IoT offload validates the JWT each client message carries; invalid
signatures mean the packet is dropped before it ever costs host CPU
(the DDoS-protection story of §7).
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
from typing import Any, Dict, Optional, Tuple


class JwtError(ValueError):
    """Raised on malformed tokens."""


def _b64url_encode(data: bytes) -> bytes:
    return base64.urlsafe_b64encode(data).rstrip(b"=")


def _b64url_decode(data: bytes) -> bytes:
    padding = (-len(data)) % 4
    try:
        return base64.urlsafe_b64decode(data + b"=" * padding)
    except Exception as exc:
        raise JwtError(f"bad base64url segment: {exc}") from exc


def sign_token(claims: Dict[str, Any], key: bytes) -> bytes:
    """Produce an HS256-signed JWT."""
    header = _b64url_encode(
        json.dumps({"alg": "HS256", "typ": "JWT"},
                   separators=(",", ":")).encode()
    )
    payload = _b64url_encode(
        json.dumps(claims, separators=(",", ":")).encode()
    )
    signing_input = header + b"." + payload
    signature = hmac.new(key, signing_input, hashlib.sha256).digest()
    return signing_input + b"." + _b64url_encode(signature)


def parse_token(token: bytes) -> Tuple[Dict[str, Any], Dict[str, Any], bytes]:
    """(header, claims, signature) of a compact JWT; validates structure."""
    parts = token.split(b".")
    if len(parts) != 3:
        raise JwtError("JWT must have three dot-separated segments")
    try:
        header = json.loads(_b64url_decode(parts[0]))
        claims = json.loads(_b64url_decode(parts[1]))
    except json.JSONDecodeError as exc:
        raise JwtError(f"bad JSON in token: {exc}") from exc
    signature = _b64url_decode(parts[2])
    return header, claims, signature


def verify_token(token: bytes, key: bytes) -> Optional[Dict[str, Any]]:
    """Claims when the HS256 signature verifies, else ``None``."""
    try:
        header, claims, signature = parse_token(token)
    except JwtError:
        return None
    if header.get("alg") != "HS256":
        return None  # the offload only implements HMAC-SHA256
    signing_input = token.rsplit(b".", 1)[0]
    expected = hmac.new(key, signing_input, hashlib.sha256).digest()
    if not hmac.compare_digest(signature, expected):
        return None
    return claims
