"""The IoT token-authentication offload (§7, §8.2.3).

Validates the JWT carried in each CoAP message and drops packets with
invalid HMAC-SHA256 signatures.  The design leans on the NIC for
everything NICA had to reimplement (§7's comparison):

* the NIC's steering classifies flows and *tags* them with the tenant's
  context ID (§5.4) — the accelerator only keeps a **linear table of
  HMAC keys indexed by the tag**;
* per-tenant bandwidth caps come from the NIC's traffic shaper;
* valid packets return to the pipeline (resume table) for RSS/host
  delivery.

8 processing units sustain ~20 Mpps for 256 B packets (paper §7).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ...core import AxisMetadata
from ...net.parse import parse_frame
from ..base import DroppingAccelerator, Output
from .coap import CoapError, CoapMessage
from .jwt import verify_token

# 20 Mpps across 8 units at 256 B -> 400 ns per packet per unit.
_UNIT_SECONDS_PER_PACKET = 400e-9
_SECONDS_PER_BYTE = 0.4e-9  # SHA-256 pipeline cost beyond the fixed part


class IotAuthAccelerator(DroppingAccelerator):
    """Per-tenant JWT validation behind FLD-E."""

    MAX_TENANTS = 1024

    def __init__(self, sim, fld, units: int = 8, tx_queue: int = 0,
                 name: str = "iot-auth", **kwargs):
        super().__init__(sim, fld, units=units, name=name,
                         tx_queue=tx_queue, **kwargs)
        # The linear key table, indexed by the NIC-provided tenant tag.
        self._keys: List[Optional[bytes]] = [None] * self.MAX_TENANTS
        self.stats_valid = 0
        self.stats_invalid = 0
        self.stats_unknown_tenant = 0
        self.stats_tenant_valid_bytes: Dict[int, int] = {}
        # Optional throughput cap (bits/s) across all units — §8.2.3
        # configures the accelerator to accept only 12 Gbps.
        self.capacity_bps: Optional[float] = None

    # -- key management (control-plane calls) --------------------------------

    def set_tenant_key(self, tenant_id: int, key: bytes) -> None:
        if not 0 <= tenant_id < self.MAX_TENANTS:
            raise ValueError(f"tenant id {tenant_id} out of table range")
        self._keys[tenant_id] = key

    def clear_tenant(self, tenant_id: int) -> None:
        self._keys[tenant_id] = None

    # -- data plane --------------------------------------------------------------

    def processing_time(self, data: bytes, meta: AxisMetadata) -> float:
        if self.capacity_bps is not None:
            return len(data) * 8 * self.units / self.capacity_bps
        return _UNIT_SECONDS_PER_PACKET + len(data) * _SECONDS_PER_BYTE

    def process(self, data: bytes, meta: AxisMetadata) -> Iterable[Output]:
        tenant_id = meta.context_id & 0xFFFF
        key = self._keys[tenant_id] if tenant_id < self.MAX_TENANTS else None
        if key is None:
            self.stats_unknown_tenant += 1
            return  # unknown tenant: drop
        packet = parse_frame(data)
        try:
            coap = CoapMessage.unpack(packet.payload)
        except CoapError:
            self.stats_invalid += 1
            return
        token = self._extract_token(coap)
        if token is None or verify_token(token, key) is None:
            self.stats_invalid += 1
            return  # invalid HMAC: the DDoS packet dies here
        self.stats_valid += 1
        self.stats_tenant_valid_bytes[tenant_id] = (
            self.stats_tenant_valid_bytes.get(tenant_id, 0) + len(data))
        yield data, self.reply_meta(meta)

    @staticmethod
    def _extract_token(coap: CoapMessage) -> Optional[bytes]:
        """The JWT travels as the CoAP payload up to the first NUL."""
        if not coap.payload:
            return None
        token = coap.payload.split(b"\x00", 1)[0]
        return token if token.count(b".") == 2 else None
