"""The echo accelerator used by the paper's microbenchmarks (§8.1).

FLD-E mode: receives raw Ethernet frames, swaps the L2/L3/L4 directions
and transmits them back — the hardware analogue of testpmd.

FLD-R mode: receives RDMA messages and sends each one back on its QP.
"""

from __future__ import annotations

from typing import Iterable

from ..core import AxisMetadata
from ..host.testpmd import swap_directions
from ..net.parse import parse_frame
from .base import Accelerator, Output


class EchoAccelerator(Accelerator):
    """FLD-E echo: reflect every Ethernet frame back to its sender."""

    def process(self, data: bytes, meta: AxisMetadata) -> Iterable[Output]:
        packet = swap_directions(parse_frame(data))
        yield packet.to_bytes(), self.reply_meta(meta)


class RdmaEchoAccelerator(Accelerator):
    """FLD-R echo: send each received message back on the reply queue.

    Messages may arrive as multiple interleaved segments (the shared
    MPRQ delivers per-packet completions, §6); the echo reassembles per
    context before replying.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._assembly = {}

    def process(self, data: bytes, meta: AxisMetadata) -> Iterable[Output]:
        key = (meta.queue_id, meta.src_qpn, meta.context_id)
        parts = self._assembly.setdefault(key, [])
        parts.append(data)
        if not meta.msg_last:
            return
        message = b"".join(parts)
        del self._assembly[key]
        yield message, self.reply_meta(meta)
