"""128-EIA3: the LTE integrity algorithm built on ZUC.

Computes a 32-bit MAC over a bit string using a sliding 32-bit window of
ZUC keystream (ETSI/SAGE Document 1).
"""

from __future__ import annotations

from .zuc_core import Zuc


def _eia3_iv(count: int, bearer: int, direction: int) -> bytes:
    if not 0 <= bearer < 32:
        raise ValueError("bearer is a 5-bit field")
    if direction not in (0, 1):
        raise ValueError("direction is 0 or 1")
    count_bytes = (count & 0xFFFFFFFF).to_bytes(4, "big")
    iv = bytearray(16)
    iv[0:4] = count_bytes
    iv[4] = (bearer << 3) & 0xF8
    iv[8] = iv[0] ^ (direction << 7)
    iv[9:14] = iv[1:6]
    iv[14] = iv[6] ^ (direction << 7)
    iv[15] = iv[7]
    return bytes(iv)


def _get_bit(message: bytes, index: int) -> int:
    return (message[index // 8] >> (7 - index % 8)) & 1


def eia3_mac(key: bytes, count: int, bearer: int, direction: int,
             message: bytes, nbits: int = None) -> int:
    """The 32-bit 128-EIA3 MAC of ``message``."""
    if nbits is None:
        nbits = len(message) * 8
    if nbits > len(message) * 8:
        raise ValueError("nbits exceeds the message length")
    zuc = Zuc(key, _eia3_iv(count, bearer, direction))
    nwords = -(-nbits // 32) + 2  # L = ceil(LENGTH/32) + 2
    words = zuc.keystream(nwords)
    # One long integer holds the whole keystream; GET_WORD(z, i) is a
    # 32-bit window starting at bit i.
    stream = 0
    for word in words:
        stream = (stream << 32) | word
    total_bits = 32 * nwords

    def window(i: int) -> int:
        return (stream >> (total_bits - 32 - i)) & 0xFFFFFFFF

    tag = 0
    for i in range(nbits):
        if _get_bit(message, i):
            tag ^= window(i)
    tag ^= window(nbits)
    tag ^= words[-1]
    return tag & 0xFFFFFFFF


def eia3_verify(key: bytes, count: int, bearer: int, direction: int,
                message: bytes, mac: int, nbits: int = None) -> bool:
    return eia3_mac(key, count, bearer, direction, message, nbits) == mac
