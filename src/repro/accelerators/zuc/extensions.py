"""ZUC accelerator extensions: key storage and request batching.

§8.2.1 ends: "This result can be further improved by adding on-FPGA key
storage and request batching, which we leave to future work."  This
module builds that future work:

* **on-FPGA key storage** — a client installs its key once
  (``OP_SET_KEY``); subsequent requests reference an 8-bit key *slot*
  through a **16 B compact header** instead of shipping the 64 B
  key-carrying header with every request;
* **request batching** — many compact requests ride one RDMA message
  (``BATCH_MAGIC`` framing), amortizing the per-message RoCE and
  completion overhead that dominates small requests.

Both compose with the unmodified FLD data path: they are purely an
application-protocol change above the FLD-R byte stream.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Tuple

from ...core import AxisMetadata
from ..base import Output
from .accel import (
    HEADER_SIZE,
    OP_EEA3,
    OP_EIA3,
    STATUS_BAD_OP,
    STATUS_BAD_REQUEST,
    STATUS_OK,
    ZucAccelerator,
    ZucRequest,
)
from .eea3 import eea3_encrypt
from .eia3 import eia3_mac

# Extension opcodes (disjoint from OP_EEA3/OP_EIA3).
OP_SET_KEY = 0x10
OP_EEA3_CACHED = 0x11
OP_EIA3_CACHED = 0x12

BATCH_MAGIC = 0xB7
COMPACT_HEADER_SIZE = 16
COMPACT_FORMAT = "!BBBBIII"  # op, slot, bearer, direction, count, len, id

KEY_SLOTS = 256


class CompactRequest:
    """The 16 B cached-key request header."""

    __slots__ = ("op", "slot", "bearer", "direction", "count",
                 "length_bits", "request_id")

    def __init__(self, op: int, slot: int, count: int = 0, bearer: int = 0,
                 direction: int = 0, length_bits: int = 0,
                 request_id: int = 0):
        if not 0 <= slot < KEY_SLOTS:
            raise ValueError(f"key slot {slot} out of range")
        self.op = op
        self.slot = slot
        self.bearer = bearer
        self.direction = direction
        self.count = count
        self.length_bits = length_bits
        self.request_id = request_id

    def pack(self) -> bytes:
        return struct.pack(COMPACT_FORMAT, self.op, self.slot, self.bearer,
                           self.direction, self.count, self.length_bits,
                           self.request_id)

    @classmethod
    def unpack(cls, data: bytes) -> "CompactRequest":
        if len(data) < COMPACT_HEADER_SIZE:
            raise ValueError("truncated compact request")
        op, slot, bearer, direction, count, nbits, rid = struct.unpack_from(
            COMPACT_FORMAT, data)
        return cls(op, slot, count, bearer, direction, nbits, rid)


def make_set_key(slot: int, key: bytes, request_id: int = 0) -> bytes:
    """A key-installation message (compact header + 16 B key)."""
    header = CompactRequest(OP_SET_KEY, slot, request_id=request_id)
    return header.pack() + key


def make_compact_request(op: int, slot: int, payload: bytes, count: int = 0,
                         bearer: int = 0, direction: int = 0,
                         request_id: int = 0) -> bytes:
    header = CompactRequest(op, slot, count, bearer, direction,
                            length_bits=len(payload) * 8,
                            request_id=request_id)
    return header.pack() + payload


def pack_batch(requests: List[bytes]) -> bytes:
    """Frame compact requests into one batch message.

    Layout: magic u8, count u8, then per entry a u16 length + the bytes.
    """
    if not 0 < len(requests) <= 255:
        raise ValueError("batch must hold 1..255 requests")
    out = bytearray(struct.pack("!BB", BATCH_MAGIC, len(requests)))
    for request in requests:
        if len(request) > 0xFFFF:
            raise ValueError("batched request too large")
        out.extend(struct.pack("!H", len(request)))
        out.extend(request)
    return bytes(out)


def unpack_batch(message: bytes) -> Optional[List[bytes]]:
    """The framed entries, or ``None`` when not a batch message."""
    if len(message) < 2 or message[0] != BATCH_MAGIC:
        return None
    count = message[1]
    entries = []
    offset = 2
    for _ in range(count):
        if offset + 2 > len(message):
            raise ValueError("truncated batch entry header")
        (length,) = struct.unpack_from("!H", message, offset)
        offset += 2
        if offset + length > len(message):
            raise ValueError("truncated batch entry")
        entries.append(message[offset:offset + length])
        offset += length
    return entries


class CachedKeyZucAccelerator(ZucAccelerator):
    """The extended accelerator: key slots + batch processing.

    Remains wire-compatible with the baseline protocol — 64 B headers
    still work — so clients can adopt the extensions incrementally.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Per-source-QP key tables: clients must not share slots.
        self._key_slots: Dict[Tuple[int, int], bytes] = {}
        self.stats_set_key = 0
        self.stats_cached_requests = 0
        self.stats_batches = 0
        self.stats_unknown_slot = 0

    def processing_time(self, data: bytes, meta: AxisMetadata) -> float:
        entries = unpack_batch(data)
        if entries is None:
            return super().processing_time(data, meta)
        # A batch is processed back-to-back in one unit: the fixed
        # key-schedule setup is paid per entry, the per-message engine
        # scheduling only once.
        total = 0.0
        for entry in entries:
            payload = max(0, len(entry) - COMPACT_HEADER_SIZE)
            total += self.SETUP_SECONDS + payload * self.SECONDS_PER_BYTE
        return total

    def process(self, data: bytes, meta: AxisMetadata) -> Iterable[Output]:
        entries = unpack_batch(data)
        if entries is None:
            if data[:1] and data[0] in (OP_SET_KEY, OP_EEA3_CACHED,
                                        OP_EIA3_CACHED):
                yield from self._process_compact(data, meta)
            else:
                yield from super().process(data, meta)
            return
        self.stats_batches += 1
        responses = []
        for entry in entries:
            for response, _meta in self._process_compact(entry, meta):
                responses.append(response)
        reply_queue = self.queue_map.get(meta.src_qpn, self.tx_queue)
        yield pack_batch(responses), self.reply_meta(meta, reply_queue)

    def _process_compact(self, data: bytes,
                         meta: AxisMetadata) -> Iterable[Output]:
        reply_queue = self.queue_map.get(meta.src_qpn, self.tx_queue)
        try:
            request = CompactRequest.unpack(data)
        except ValueError:
            self.stats_bad_requests += 1
            error = CompactRequest(STATUS_BAD_REQUEST, 0)
            yield error.pack(), self.reply_meta(meta, reply_queue)
            return
        payload = data[COMPACT_HEADER_SIZE:]
        slot_key = (meta.src_qpn, request.slot)

        if request.op == OP_SET_KEY:
            if len(payload) < 16:
                self.stats_bad_requests += 1
                return
            self._key_slots[slot_key] = payload[:16]
            self.stats_set_key += 1
            ack = CompactRequest(OP_SET_KEY, request.slot,
                                 request_id=request.request_id)
            yield ack.pack(), self.reply_meta(meta, reply_queue)
            return

        key = self._key_slots.get(slot_key)
        if key is None:
            self.stats_unknown_slot += 1
            return
        self.stats_cached_requests += 1
        nbits = min(request.length_bits, len(payload) * 8)
        if request.op == OP_EEA3_CACHED:
            result = eea3_encrypt(key, request.count, request.bearer,
                                  request.direction, payload, nbits=nbits)
            header = CompactRequest(OP_EEA3_CACHED, request.slot,
                                    request.count, request.bearer,
                                    request.direction, nbits,
                                    request.request_id)
            yield header.pack() + result, self.reply_meta(meta, reply_queue)
        elif request.op == OP_EIA3_CACHED:
            mac = eia3_mac(key, request.count, request.bearer,
                           request.direction, payload, nbits=nbits)
            header = CompactRequest(OP_EIA3_CACHED, request.slot,
                                    request.count, request.bearer,
                                    request.direction, nbits,
                                    request.request_id)
            yield header.pack() + mac.to_bytes(4, "big"), \
                self.reply_meta(meta, reply_queue)
        else:
            self.stats_bad_requests += 1
