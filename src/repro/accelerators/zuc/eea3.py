"""128-EEA3: the LTE confidentiality algorithm built on ZUC.

ETSI/SAGE specification of the 3GPP confidentiality algorithm
(Document 1).  The key/IV schedule folds COUNT, BEARER and DIRECTION
into the ZUC IV; encryption is keystream XOR.
"""

from __future__ import annotations

from .zuc_core import Zuc

UPLINK = 0
DOWNLINK = 1


def _eea3_iv(count: int, bearer: int, direction: int) -> bytes:
    if not 0 <= bearer < 32:
        raise ValueError("bearer is a 5-bit field")
    if direction not in (0, 1):
        raise ValueError("direction is 0 or 1")
    count_bytes = (count & 0xFFFFFFFF).to_bytes(4, "big")
    head = count_bytes + bytes([
        ((bearer << 3) | (direction << 2)) & 0xFC, 0, 0, 0,
    ])
    return head + head


def eea3_keystream(key: bytes, count: int, bearer: int, direction: int,
                   nbits: int) -> bytes:
    """Raw keystream covering ``nbits`` bits (rounded up to words)."""
    zuc = Zuc(key, _eea3_iv(count, bearer, direction))
    nwords = -(-nbits // 32)
    return b"".join(w.to_bytes(4, "big") for w in zuc.keystream(nwords))


def eea3_encrypt(key: bytes, count: int, bearer: int, direction: int,
                 message: bytes, nbits: int = None) -> bytes:
    """Encrypt (or decrypt — XOR is symmetric) ``message``.

    ``nbits`` defaults to the full byte length; when given, trailing bits
    beyond ``nbits`` are zeroed per the specification.
    """
    if nbits is None:
        nbits = len(message) * 8
    if nbits > len(message) * 8:
        raise ValueError("nbits exceeds the message length")
    keystream = eea3_keystream(key, count, bearer, direction, nbits)
    out = bytearray(
        m ^ k for m, k in zip(message, keystream[:len(message)])
    )
    # Zero any bits past nbits in the last byte and drop whole bytes
    # beyond the bit length.
    nbytes = -(-nbits // 8)
    out = out[:nbytes]
    tail_bits = nbits % 8
    if tail_bits and out:
        out[-1] &= (0xFF << (8 - tail_bits)) & 0xFF
    return bytes(out) + bytes(len(message) - len(out))


eea3_decrypt = eea3_encrypt  # stream cipher: same operation
