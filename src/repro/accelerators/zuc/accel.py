"""The disaggregated ZUC cipher accelerator (§7, §8.2.1).

A remote, FLD-R-attached cryptographic service: clients send requests
over RDMA SENDs; the accelerator en/decrypts (128-EEA3) or authenticates
(128-EIA3) and SENDs the response back.  The design mirrors the paper's:
8 ZUC engine units behind a front-end load-balancing/reassembly stage,
each unit running at ~4.76 Gbps for 512 B messages.

Request/response wire format: a 64 B header followed by the payload.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, Optional

from ...core import AxisMetadata
from ..base import Accelerator, Output
from .eea3 import eea3_encrypt
from .eia3 import eia3_mac

HEADER_SIZE = 64
HEADER_FORMAT = "!BBBBIII16s16sI"  # 48 bytes packed + 16 reserved

OP_EEA3 = 0
OP_EIA3 = 1

STATUS_OK = 0
STATUS_BAD_REQUEST = 1
STATUS_BAD_OP = 2


class ZucRequest:
    """The 64 B request/response header (paper: key + IV + metadata)."""

    __slots__ = ("version", "op", "bearer", "direction", "count",
                 "length_bits", "request_id", "key", "iv", "mac", "status")

    def __init__(self, op: int, key: bytes, count: int = 0, bearer: int = 0,
                 direction: int = 0, length_bits: int = 0,
                 request_id: int = 0, iv: bytes = bytes(16), mac: int = 0,
                 status: int = STATUS_OK, version: int = 1):
        self.version = version
        self.op = op
        self.bearer = bearer
        self.direction = direction
        self.count = count
        self.length_bits = length_bits
        self.request_id = request_id
        self.key = key
        self.iv = iv
        self.mac = mac
        self.status = status

    def pack(self) -> bytes:
        body = struct.pack(
            HEADER_FORMAT, self.version, self.op,
            self.bearer, self.direction, self.count, self.length_bits,
            self.request_id, self.key, self.iv, self.mac,
        )
        body += bytes([self.status])
        return body + bytes(HEADER_SIZE - len(body))

    @classmethod
    def unpack(cls, data: bytes) -> "ZucRequest":
        if len(data) < HEADER_SIZE:
            raise ValueError("truncated ZUC request header")
        (version, op, bearer, direction, count, length_bits, request_id,
         key, iv, mac) = struct.unpack_from(HEADER_FORMAT, data)
        status = data[struct.calcsize(HEADER_FORMAT)]
        return cls(op, key, count, bearer, direction, length_bits,
                   request_id, iv, mac, status, version)


def make_request(op: int, key: bytes, payload: bytes, count: int = 0,
                 bearer: int = 0, direction: int = 0,
                 request_id: int = 0) -> bytes:
    """A complete request message: header + payload."""
    header = ZucRequest(op, key, count, bearer, direction,
                        length_bits=len(payload) * 8, request_id=request_id)
    return header.pack() + payload


def parse_response(message: bytes):
    """(header, payload) of a response message."""
    header = ZucRequest.unpack(message)
    return header, message[HEADER_SIZE:]


class ZucAccelerator(Accelerator):
    """8 ZUC units + front-end reassembly, served over FLD-R."""

    # Unit timing calibrated to the paper: ~4.76 Gbps per unit at 512 B
    # messages, with a fixed key-schedule cost (ZUC's 33 init rounds).
    SETUP_SECONDS = 165e-9
    SECONDS_PER_BYTE = 1.36e-9

    def __init__(self, sim, fld, units: int = 8, tx_queue: int = 0,
                 queue_map: Optional[Dict[int, int]] = None, **kwargs):
        super().__init__(sim, fld, units=units, name="zuc",
                         tx_queue=tx_queue, reassemble=True, **kwargs)
        # source QPN -> tx queue id, for multi-QP deployments behind
        # the shared receive queue.  The mapping is shared by reference
        # with the control plane, which fills it as connections arrive.
        self.queue_map = queue_map if queue_map is not None else {}
        self.stats_bad_requests = 0

    def processing_time(self, data: bytes, meta: AxisMetadata) -> float:
        payload = max(0, len(data) - HEADER_SIZE)
        return self.SETUP_SECONDS + payload * self.SECONDS_PER_BYTE

    def process(self, data: bytes, meta: AxisMetadata) -> Iterable[Output]:
        reply_queue = self.queue_map.get(meta.src_qpn, self.tx_queue)
        try:
            request = ZucRequest.unpack(data)
        except ValueError:
            self.stats_bad_requests += 1
            error = ZucRequest(OP_EEA3, bytes(16), status=STATUS_BAD_REQUEST)
            yield error.pack(), self.reply_meta(meta, reply_queue)
            return
        payload = data[HEADER_SIZE:]
        if request.op == OP_EEA3:
            nbits = min(request.length_bits, len(payload) * 8)
            result = eea3_encrypt(request.key, request.count,
                                  request.bearer, request.direction,
                                  payload, nbits=nbits)
            request.status = STATUS_OK
            yield request.pack() + result, self.reply_meta(meta, reply_queue)
        elif request.op == OP_EIA3:
            nbits = min(request.length_bits, len(payload) * 8)
            request.mac = eia3_mac(request.key, request.count,
                                   request.bearer, request.direction,
                                   payload, nbits=nbits)
            request.status = STATUS_OK
            yield request.pack(), self.reply_meta(meta, reply_queue)
        else:
            self.stats_bad_requests += 1
            request.status = STATUS_BAD_OP
            yield request.pack(), self.reply_meta(meta, reply_queue)
