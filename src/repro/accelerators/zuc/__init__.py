"""ZUC cipher (128-EEA3/EIA3) and the disaggregated accelerator (§7)."""

from .extensions import (
    CachedKeyZucAccelerator,
    CompactRequest,
    OP_EEA3_CACHED,
    OP_EIA3_CACHED,
    OP_SET_KEY,
    make_compact_request,
    make_set_key,
    pack_batch,
    unpack_batch,
)
from .accel import (
    HEADER_SIZE,
    OP_EEA3,
    OP_EIA3,
    STATUS_OK,
    ZucAccelerator,
    ZucRequest,
    make_request,
    parse_response,
)
from .eea3 import DOWNLINK, UPLINK, eea3_decrypt, eea3_encrypt
from .eia3 import eia3_mac, eia3_verify
from .zuc_core import Zuc

__all__ = [
    "CachedKeyZucAccelerator", "CompactRequest", "DOWNLINK", "HEADER_SIZE", "OP_EEA3", "OP_EIA3", "STATUS_OK", "UPLINK",
    "Zuc", "ZucAccelerator", "ZucRequest", "eea3_decrypt", "eea3_encrypt",
    "eia3_mac", "eia3_verify", "make_compact_request", "make_request",
    "make_set_key", "OP_EEA3_CACHED", "OP_EIA3_CACHED", "OP_SET_KEY",
    "pack_batch", "parse_response", "unpack_batch",
]
