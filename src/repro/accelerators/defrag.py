"""The inline IP-defragmentation accelerator (§7, §8.2.2).

A NIC packet-processing extension that intervenes *mid-pipeline*: the
FLD-E control plane steers fragmented IP packets (optionally after the
NIC's VXLAN decapsulation offload) to this accelerator; it reassembles
datagrams and returns them tagged with the resume-table ID, so NIC
offloads that fragmentation broke — RSS on L4 ports, L4 checksum — run
on the *whole* datagram afterwards.

Drops (rather than stalls) on overload, per §5.5's contract for inline
accelerators.
"""

from __future__ import annotations

from typing import Iterable

from ..core import AxisMetadata
from ..net import Ipv4, Reassembler
from ..net.parse import parse_frame
from .base import DroppingAccelerator, Output


class IpDefragAccelerator(DroppingAccelerator):
    """Hardware IP reassembly with a bounded context table."""

    def __init__(self, sim, fld, units: int = 1, tx_queue: int = 0,
                 contexts: int = 1024, timeout: float = 2.0, **kwargs):
        super().__init__(sim, fld, units=units, name="ipdefrag",
                         tx_queue=tx_queue, **kwargs)
        # The fixed-size reassembly context table of the RTL design.
        self.reassembler = Reassembler(timeout=timeout, capacity=contexts)
        self.stats_fragments = 0
        self.stats_reassembled = 0
        self.stats_passthrough = 0

    def processing_time(self, data: bytes, meta: AxisMetadata) -> float:
        # Streaming reassembly: a hash lookup plus an SRAM copy of the
        # fragment (32 B/cycle datapath at the FLD clock).
        cycles = 24 + len(data) // 32
        return self.fld.config.cycles(cycles)

    def process(self, data: bytes, meta: AxisMetadata) -> Iterable[Output]:
        packet = parse_frame(data)
        ip = packet.find(Ipv4)
        if ip is None or not ip.is_fragment:
            # Shouldn't be steered here, but forward unharmed.
            self.stats_passthrough += 1
            yield data, self.reply_meta(meta)
            return
        self.stats_fragments += 1
        whole = self.reassembler.add(packet, now=self.sim.now)
        if whole is None:
            return  # incomplete: nothing leaves the accelerator yet
        self.stats_reassembled += 1
        yield whole.to_bytes(), self.reply_meta(meta)
