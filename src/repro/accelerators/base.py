"""Accelerator framework: fixed-function engines behind FLD's streams.

An :class:`Accelerator` pulls packets (data + metadata) from FLD's
receive stream with one or more parallel *processing units* — modelling
the replicated engine blocks of the paper's examples (8 ZUC cores, 8
HMAC units) behind a front-end load balancer — transforms them, and
pushes results back through FLD's credit-guarded transmit path.

Subclasses implement :meth:`process` (the function) and
:meth:`processing_time` (the per-packet latency of one unit).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..core import AxisMetadata, FlexDriver
from ..sim import Simulator

Output = Tuple[bytes, AxisMetadata]


class Accelerator:
    """Base class for FLD-attached fixed-function accelerators."""

    def __init__(self, sim: Simulator, fld: FlexDriver, units: int = 1,
                 name: str = "accel", tx_queue: int = 0,
                 reassemble: bool = False, source=None):
        if units < 1:
            raise ValueError("need at least one processing unit")
        self.sim = sim
        self.fld = fld
        self.units = units
        self.name = name
        self.tx_queue = tx_queue
        self.stats_processed = 0
        self.stats_emitted = 0
        self.stats_dropped = 0
        self.stats_errors = 0
        self._spans = sim.telemetry.spans
        # Per-function throughput accounting: the component name flows
        # into the metric labels, so an N-tenant testbed reads one
        # counter pair per accelerator function.
        self._ctr_packets = sim.telemetry.counter(
            f"accel.{name}.packets")
        self._ctr_bytes = sim.telemetry.counter(f"accel.{name}.bytes")
        # ``source`` overrides the input stream: a per-function Store a
        # demultiplexer fills when several functions share one FLD
        # (see repro.topology.build).  Default: FLD's raw rx stream.
        self._upstream = source if source is not None else fld.rx_stream
        if reassemble:
            # Front-end load balancer (the paper's ZUC/IoT designs): a
            # single stage reassembles multi-segment messages — required
            # because the shared MPRQ interleaves segments of different
            # queues (§6) — then hands whole messages to the units.
            from ..sim import Store
            self._messages = Store(sim, name=f"{name}.frontend")
            self._assembly = {}
            sim.spawn(self._front_end(), name=f"{name}.fe")
            self._source = self._messages.get
        else:
            self._source = self._upstream.get
        for unit in range(units):
            sim.spawn(self._unit_worker(unit), name=f"{name}.unit{unit}")

    def _front_end(self):
        while True:
            data, meta = yield self._upstream.get()
            key = (meta.queue_id, meta.src_qpn, meta.context_id)
            parts = self._assembly.setdefault(key, [])
            parts.append(data)
            if meta.msg_last:
                del self._assembly[key]
                self._messages.try_put((b"".join(parts), meta))

    # -- override points -----------------------------------------------------

    def process(self, data: bytes, meta: AxisMetadata) -> Iterable[Output]:
        """Transform one input packet into zero or more outputs."""
        raise NotImplementedError

    def processing_time(self, data: bytes, meta: AxisMetadata) -> float:
        """Seconds one unit spends on this packet (default: one cycle/16B,
        a 128-bit datapath at the FLD clock)."""
        cycles = max(1, len(data) // 16)
        return self.fld.config.cycles(cycles)

    # -- the engine ------------------------------------------------------------

    def _trace_dequeue(self, meta: AxisMetadata) -> None:
        """Attribute the wait on the input stream as accel queueing."""
        if meta.trace_ctx is not None and self.sim.now > meta.trace_enqueued:
            self._spans.record(meta.trace_ctx, "accel", meta.trace_enqueued,
                               self.sim.now, kind="queue")

    def _trace_service(self, meta: AxisMetadata, started: float,
                       outputs: List[Output]) -> None:
        if meta.trace_ctx is None:
            return
        self._spans.record(meta.trace_ctx, "accel", started, self.sim.now)
        for _data, out_meta in outputs:
            if out_meta.trace_ctx is None:
                out_meta.trace_ctx = meta.trace_ctx

    def _unit_worker(self, unit: int):
        while True:
            data, meta = yield self._source()
            self._trace_dequeue(meta)
            started = self.sim.now
            yield self.sim.timeout(self.processing_time(data, meta))
            try:
                outputs = list(self.process(data, meta))
            except Exception:
                self.stats_errors += 1
                continue
            self.stats_processed += 1
            self._ctr_packets.inc()
            self._ctr_bytes.inc(len(data))
            self._trace_service(meta, started, outputs)
            for out_data, out_meta in outputs:
                if out_meta.queue_id is None:
                    out_meta.queue_id = self.tx_queue
                yield from self.fld.send(out_data, out_meta)
                self.stats_emitted += 1

    # -- helpers ------------------------------------------------------------------

    def reply_meta(self, meta: AxisMetadata,
                   queue_id: Optional[int] = None) -> AxisMetadata:
        """Metadata for a response: same context (resume table + tenant)."""
        return AxisMetadata(
            queue_id=self.tx_queue if queue_id is None else queue_id,
            context_id=meta.context_id,
            trace_ctx=meta.trace_ctx,
        )


class DroppingAccelerator(Accelerator):
    """A variant that sheds load instead of waiting for credits (§5.5).

    Appropriate for inline accelerators that must never stall the NIC:
    when the transmit queue has no credit the packet is dropped and
    counted, mirroring 'selectively drop exceeding traffic on their own'.
    """

    def _unit_worker(self, unit: int):
        while True:
            data, meta = yield self._source()
            self._trace_dequeue(meta)
            started = self.sim.now
            yield self.sim.timeout(self.processing_time(data, meta))
            try:
                outputs = list(self.process(data, meta))
            except Exception:
                self.stats_errors += 1
                continue
            self.stats_processed += 1
            self._ctr_packets.inc()
            self._ctr_bytes.inc(len(data))
            self._trace_service(meta, started, outputs)
            for out_data, out_meta in outputs:
                if out_meta.queue_id is None:
                    out_meta.queue_id = self.tx_queue
                if self.fld.try_send(out_data, out_meta):
                    self.stats_emitted += 1
                else:
                    self.stats_dropped += 1
