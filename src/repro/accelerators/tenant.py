"""Ethernet-mode tenant accelerator functions (§8/§9 multi-tenancy).

The N-tenant scaling experiment multiplexes a *mix* of accelerator
functions behind one FLD: plain echo, a ZUC crypto bump-in-the-wire,
and an IoT-style HMAC authenticator.  These two classes adapt the
paper's ZUC (§8.2.1) and IoT (§8.2.3) workloads to the FLD-E echo
shape the load generator measures: each does its real per-packet work
(ZUC keystream passes / HMAC-SHA256), charges the calibrated unit
time, then reflects the frame so round-trip latency is measurable
per tenant.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable

from ..core import AxisMetadata
from ..host.testpmd import swap_directions
from ..net.parse import parse_frame
from .base import Accelerator, Output
from .zuc.accel import ZucAccelerator
from .zuc.eea3 import eea3_encrypt

#: Default per-tenant secrets; a real deployment provisions these via
#: the control plane (the linear key table of §5.4).
DEFAULT_ZUC_KEY = b"tenant-zuc-key-16"[:16]
DEFAULT_HMAC_KEY = b"tenant-hmac-secret-key"


class ZucEchoAccelerator(Accelerator):
    """Inline 128-EEA3 encrypt + decrypt, then echo (crypto offload).

    Models a bump-in-the-wire cipher tenant: every frame's payload runs
    through the ZUC keystream twice (encrypt for the backend, decrypt
    the verification read-back), so the echoed frame — and the load
    generator's sequence stamp — survives intact while the unit pays
    two real passes of keystream generation.
    """

    SETUP_SECONDS = ZucAccelerator.SETUP_SECONDS
    SECONDS_PER_BYTE = ZucAccelerator.SECONDS_PER_BYTE

    def __init__(self, sim, fld, units: int = 2, tx_queue: int = 0,
                 name: str = "zuc-echo", key: bytes = DEFAULT_ZUC_KEY,
                 **kwargs):
        super().__init__(sim, fld, units=units, name=name,
                         tx_queue=tx_queue, **kwargs)
        if len(key) != 16:
            raise ValueError("ZUC needs a 128-bit key")
        self.key = key
        self.stats_cipher_bytes = 0

    def processing_time(self, data: bytes, meta: AxisMetadata) -> float:
        # Two keystream passes over the payload, one key schedule.
        return self.SETUP_SECONDS + 2 * len(data) * self.SECONDS_PER_BYTE

    def process(self, data: bytes, meta: AxisMetadata) -> Iterable[Output]:
        packet = parse_frame(data)
        ciphertext = eea3_encrypt(self.key, 0, 0, 0, packet.payload)
        packet.payload = eea3_encrypt(self.key, 0, 0, 0, ciphertext)
        self.stats_cipher_bytes += 2 * len(ciphertext)
        yield swap_directions(packet).to_bytes(), self.reply_meta(meta)


class IotEchoAccelerator(Accelerator):
    """HMAC-SHA256 authentication, then echo (attestation offload).

    Models an IoT authenticator tenant in the echo shape: each frame's
    payload is MACed with the tenant key (the §8.2.3 HMAC units) before
    the frame is reflected, charging the calibrated fixed + per-byte
    SHA-256 pipeline cost.
    """

    # §7: 8 units sustain ~20 Mpps at 256 B -> 400 ns/packet/unit.
    UNIT_SECONDS_PER_PACKET = 400e-9
    SECONDS_PER_BYTE = 0.4e-9

    def __init__(self, sim, fld, units: int = 2, tx_queue: int = 0,
                 name: str = "iot-echo", key: bytes = DEFAULT_HMAC_KEY,
                 **kwargs):
        super().__init__(sim, fld, units=units, name=name,
                         tx_queue=tx_queue, **kwargs)
        self.key = key
        self.stats_authenticated = 0

    def processing_time(self, data: bytes, meta: AxisMetadata) -> float:
        return (self.UNIT_SECONDS_PER_PACKET
                + len(data) * self.SECONDS_PER_BYTE)

    def process(self, data: bytes, meta: AxisMetadata) -> Iterable[Output]:
        packet = parse_frame(data)
        hmac.new(self.key, packet.payload, hashlib.sha256).digest()
        self.stats_authenticated += 1
        yield swap_directions(packet).to_bytes(), self.reply_meta(meta)
