"""The four example programs (ISSUE 6): firewall, LB, NAT, DDoS filter.

Each is a builder returning a :class:`~repro.prog.isa.Program` over the
testbed's Eth/IPv4/UDP packets (14 + 20 + 8 byte headers):

========  ======  =====================================
offset     width  field
========  ======  =====================================
0          6      Ethernet destination MAC
6          6      Ethernet source MAC
34         2      UDP source port
36         2      UDP destination port
42         —      payload
========  ======  =====================================

All programs declare ``min_packet_len=42`` (full headers present), so
the verifier admits the header accesses and runts bypass the program.
State lives in firmware-owned maps, referenced by position: the builder
documents what each map index must contain and the experiment populates
them through ``SetMapEntry`` commands.
"""

from __future__ import annotations

from .isa import (
    ACT_DROP, ACT_PASS, ACT_REDIRECT, Alu, JmpIf, LdMeta, LdPkt,
    MapLookup, MapUpdate, Mov, Program, Ret, StPkt,
)

__all__ = ["ddos_filter", "firewall", "load_balancer", "mac_to_int",
           "nat", "passthrough"]

UDP_SRC_PORT_OFF = 34
UDP_DST_PORT_OFF = 36
MIN_UDP_PACKET = 42


def mac_to_int(mac: str) -> int:
    """``"02:00:00:00:00:99"`` → 48-bit integer (map-value encoding)."""
    return int(mac.replace(":", ""), 16)


def passthrough() -> Program:
    """Pass every packet — the no-op used by the bit-identity check."""
    return Program("passthrough", (Ret(ACT_PASS),))


def firewall() -> Program:
    """Stateless firewall: drop UDP destination ports on a blocklist.

    Map 0: blocked dst port → 1 (value unused; presence is the match).
    """
    return Program("firewall", (
        LdPkt(1, UDP_DST_PORT_OFF, 2),
        MapLookup(2, 0, key=1, miss=1),   # miss: not blocked, skip drop
        Ret(ACT_DROP),
        Ret(ACT_PASS),
    ), min_packet_len=MIN_UDP_PACKET)


def load_balancer(backends: int, vport: int) -> Program:
    """L4 load balancer: pick a backend by dst port, rewrite the dst
    MAC and hairpin the packet back out of this function's vPort — the
    eswitch FDB then steers it to the chosen backend.

    Map 0: backend index (0..backends-1) → backend MAC as a 48-bit int.
    An unpopulated backend slot drops (no silent blackholing).
    """
    return Program("lb", (
        LdPkt(1, UDP_DST_PORT_OFF, 2),
        Mov(2, imm=backends),
        Alu("mod", 1, src=2),             # R1 = dst_port % backends
        MapLookup(3, 0, key=1, miss=5),   # R3 = backend MAC; miss -> drop
        Mov(4, src=3),
        Alu("rsh", 4, imm=32),
        StPkt(0, 4, 2),                   # dst MAC bytes 0..2 (high 16)
        StPkt(2, 3, 4),                   # dst MAC bytes 2..6 (low 32)
        Ret(ACT_REDIRECT, vport=vport),
        Ret(ACT_DROP),
    ), min_packet_len=MIN_UDP_PACKET)


def nat() -> Program:
    """Static NAT: rewrite the UDP destination port by translation map.

    Map 0: external dst port → internal dst port.  Unmapped ports pass
    untouched.
    """
    return Program("nat", (
        LdPkt(1, UDP_DST_PORT_OFF, 2),
        MapLookup(2, 0, key=1, miss=2),   # miss: no translation -> pass
        StPkt(UDP_DST_PORT_OFF, 2, 2),
        Ret(ACT_PASS),
        Ret(ACT_PASS),
    ), min_packet_len=MIN_UDP_PACKET)


def ddos_filter(rate_pps: int, burst: int) -> Program:
    """Token-bucket DDoS filter, one bucket per UDP destination port.

    Map 0: dst port → remaining tokens.  Map 1: dst port → time of the
    last refill (ns).  A flow's first packet seeds a full bucket; each
    later packet adds ``elapsed * rate_pps / 1e9`` tokens (clamped to
    ``burst``, timestamp advanced only when at least one whole token
    accrued, so fractional credit keeps accumulating) and spends one
    token or drops.
    """
    return Program("ddos", (
        LdPkt(1, UDP_DST_PORT_OFF, 2),           # 0: R1 = flow key
        LdMeta(2, "now_ns"),                     # 1: R2 = now
        MapLookup(3, 1, key=1, miss=18),         # 2: R3 = last; miss->init
        MapLookup(4, 0, key=1),                  # 3: R4 = tokens
        Mov(5, src=2),                           # 4
        Alu("sub", 5, src=3),                    # 5: R5 = now - last
        Mov(6, imm=rate_pps),                    # 6
        Alu("mul", 5, src=6),                    # 7
        Mov(6, imm=1_000_000_000),               # 8
        Alu("div", 5, src=6),                    # 9: R5 = tokens earned
        JmpIf("eq", 5, off=2, imm=0),            # 10: none earned -> 13
        Alu("add", 4, src=5),                    # 11: refill
        MapUpdate(1, key=1, value=2),            # 12: last = now
        JmpIf("le", 4, off=1, imm=burst),        # 13: clamp?
        Mov(4, imm=burst),                       # 14
        JmpIf("ge", 4, off=2, imm=1),            # 15: can spend -> 18
        MapUpdate(0, key=1, value=4),            # 16
        Ret(ACT_DROP),                           # 17
        Alu("sub", 4, imm=1),                    # 18: spend one token
        MapUpdate(0, key=1, value=4),            # 19
        Ret(ACT_PASS),                           # 20
        MapUpdate(1, key=1, value=2),            # 21: init: last = now
        Mov(4, imm=burst),                       # 22
        Alu("sub", 4, imm=1),                    # 23
        MapUpdate(0, key=1, value=4),            # 24
        Ret(ACT_PASS),                           # 25
    ), min_packet_len=MIN_UDP_PACKET)
