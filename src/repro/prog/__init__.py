"""hXDP-style match-action programs for the FLD datapath.

The subsystem, bottom to top:

* :mod:`repro.prog.isa` — the instruction set and :class:`Program`;
* :mod:`repro.prog.verifier` — load-time checks (budget, bounds,
  forward-only jumps) with typed rejection sub-codes;
* :mod:`repro.prog.maps` — cuckoo-backed 64-bit key/value maps;
* :mod:`repro.prog.engine` — attachment tables + the interpreter the
  FLD rx/tx hooks call per packet;
* :mod:`repro.prog.programs` — the four example programs.

Programs and maps are firmware objects: create them through the
command channel (``repro.sw.ControlPlane.create_prog`` & co.), never by
constructing these classes directly — the AST conformance guard
enforces it.
"""

from .isa import (
    ACT_DROP, ACT_PASS, ACT_REDIRECT, Alu, Instruction, Jmp, JmpIf,
    LdMeta, LdPkt, LdStack, MAX_INSNS, MapDelete, MapLookup, MapUpdate,
    Mov, NUM_REGS, Program, Ret, STACK_BYTES, StPkt, StStack,
)
from .verifier import (
    E_BUDGET, E_JUMP, E_MAP, E_OPCODE, E_PKT_BOUNDS, E_REGISTER,
    E_STACK_BOUNDS, E_TERMINATION, E_WIDTH, ProgVerifyError, verify,
)
from .maps import ProgMap
from .engine import LoadedProgram, ProgEngine, load_program
from .programs import (
    ddos_filter, firewall, load_balancer, mac_to_int, nat, passthrough,
)

__all__ = [
    "ACT_DROP", "ACT_PASS", "ACT_REDIRECT", "Alu", "E_BUDGET", "E_JUMP",
    "E_MAP", "E_OPCODE", "E_PKT_BOUNDS", "E_REGISTER", "E_STACK_BOUNDS",
    "E_TERMINATION", "E_WIDTH", "Instruction", "Jmp", "JmpIf", "LdMeta",
    "LdPkt", "LdStack", "LoadedProgram", "MAX_INSNS", "MapDelete",
    "MapLookup", "MapUpdate", "Mov", "NUM_REGS", "Program", "ProgEngine",
    "ProgMap", "ProgVerifyError", "Ret", "STACK_BYTES", "StPkt",
    "StStack", "ddos_filter", "firewall", "load_balancer", "load_program",
    "mac_to_int", "nat", "passthrough", "verify",
]
