"""Load-time verification of FLD match-action programs.

The firmware refuses to create a ``prog`` object unless the program
passes this verifier; the datapath interpreter then runs with **no**
runtime checks at all.  The soundness argument mirrors hXDP's (and the
kernel eBPF verifier's, shrunk to this ISA):

* **Bounded budget** — at most :data:`~repro.prog.isa.MAX_INSNS`
  instructions per program.
* **Forward-only branches** — every jump target is strictly ahead of
  the branch, so the program counter strictly increases and execution
  takes at most ``len(insns)`` steps.  No loops, guaranteed
  termination.
* **Static bounds** — packet accesses must fit inside the program's
  declared ``min_packet_len`` (shorter packets bypass the program),
  stack accesses inside :data:`~repro.prog.isa.STACK_BYTES`, registers
  inside :data:`~repro.prog.isa.NUM_REGS`, map indices inside the map
  list bound at load time.
* **Guaranteed verdict** — the last instruction is a :class:`Ret` and
  no branch can jump past the end, so every path produces a verdict.

Failures raise :class:`ProgVerifyError` carrying a numeric sub-code
(``E_*``); the firmware maps it to ``CmdStatus.VERIFY_FAILED`` with the
sub-code in the response syndrome field.
"""

from __future__ import annotations

from .isa import (
    ACTIONS, ALU_OPS, Alu, CONDS, Instruction, Jmp, JmpIf, LdMeta,
    LdPkt, LdStack, MAX_INSNS, META_FIELDS, MapDelete, MapLookup,
    MapUpdate, Mov, NUM_REGS, Program, Ret, STACK_BYTES, StPkt,
    StStack, WIDTHS,
)

__all__ = [
    "E_BUDGET", "E_JUMP", "E_MAP", "E_OPCODE", "E_PKT_BOUNDS",
    "E_REGISTER", "E_STACK_BOUNDS", "E_TERMINATION", "E_WIDTH",
    "ProgVerifyError", "verify",
]

#: Verifier rejection sub-codes (surface as the CmdResult syndrome).
E_BUDGET = 1        # empty program or instruction budget exceeded
E_TERMINATION = 2   # last instruction is not a Ret
E_JUMP = 3          # backward or out-of-range branch target
E_REGISTER = 4      # register index out of range / bad operand combo
E_PKT_BOUNDS = 5    # packet access outside min_packet_len
E_STACK_BOUNDS = 6  # stack access outside STACK_BYTES
E_WIDTH = 7         # access width not in WIDTHS
E_MAP = 8           # map index outside the bound map list
E_OPCODE = 9        # unknown instruction / op / cond / action


class ProgVerifyError(Exception):
    """A program failed load-time verification.

    ``code`` is one of the ``E_*`` sub-codes above; the firmware
    forwards it as the command-response syndrome so callers can tell
    *why* a load was rejected without parsing message strings.
    """

    def __init__(self, code: int, message: str):
        super().__init__(message)
        self.code = code


def _fail(code: int, pc: int, message: str):
    raise ProgVerifyError(code, f"insn {pc}: {message}")


def _check_reg(pc: int, reg, what: str):
    if not isinstance(reg, int) or not 0 <= reg < NUM_REGS:
        _fail(E_REGISTER, pc, f"{what} register {reg!r} out of range "
                              f"(0..{NUM_REGS - 1})")


def _check_src_imm(pc: int, insn, src, imm):
    if (src is None) == (imm is None):
        _fail(E_REGISTER, pc,
              f"{type(insn).__name__} needs exactly one of src/imm")
    if src is not None:
        _check_reg(pc, src, "src")
    elif not isinstance(imm, int):
        _fail(E_REGISTER, pc, f"immediate {imm!r} is not an integer")


def _check_branch(pc: int, off, n_insns: int, what: str):
    if not isinstance(off, int) or off < 0:
        _fail(E_JUMP, pc, f"{what} offset {off!r} is backward or invalid "
                          "(forward-only branches)")
    target = pc + 1 + off
    if target > n_insns - 1:
        _fail(E_JUMP, pc, f"{what} target {target} past program end "
                          f"({n_insns} insns)")


def _check_pkt(pc: int, off, width, limit: int):
    if width not in WIDTHS:
        _fail(E_WIDTH, pc, f"width {width!r} not in {WIDTHS}")
    if not isinstance(off, int) or off < 0 or off + width > limit:
        _fail(E_PKT_BOUNDS, pc,
              f"packet access [{off}:{off}+{width}] outside "
              f"min_packet_len={limit}")


def _check_stack(pc: int, off, width):
    if width not in WIDTHS:
        _fail(E_WIDTH, pc, f"width {width!r} not in {WIDTHS}")
    if not isinstance(off, int) or off < 0 or off + width > STACK_BYTES:
        _fail(E_STACK_BOUNDS, pc,
              f"stack access [{off}:{off}+{width}] outside "
              f"{STACK_BYTES}-byte stack")


def _check_map(pc: int, index, num_maps: int):
    if not isinstance(index, int) or not 0 <= index < num_maps:
        _fail(E_MAP, pc, f"map index {index!r} outside bound maps "
                         f"(have {num_maps})")


def verify(program: Program, num_maps: int) -> int:
    """Validate ``program`` against ``num_maps`` bound maps.

    Returns the instruction count on success; raises
    :class:`ProgVerifyError` on the first violation.
    """
    if not isinstance(program, Program):
        raise ProgVerifyError(
            E_OPCODE, f"not a Program: {type(program).__name__}")
    insns = program.insns
    n = len(insns)
    if n == 0:
        raise ProgVerifyError(E_BUDGET, "empty program")
    if n > MAX_INSNS:
        raise ProgVerifyError(
            E_BUDGET, f"{n} insns exceeds budget of {MAX_INSNS}")
    limit = program.min_packet_len
    if not isinstance(limit, int) or limit < 0:
        raise ProgVerifyError(
            E_PKT_BOUNDS, f"bad min_packet_len {limit!r}")

    for pc, insn in enumerate(insns):
        if isinstance(insn, LdPkt):
            _check_reg(pc, insn.dst, "dst")
            _check_pkt(pc, insn.off, insn.width, limit)
        elif isinstance(insn, StPkt):
            _check_reg(pc, insn.src, "src")
            _check_pkt(pc, insn.off, insn.width, limit)
        elif isinstance(insn, LdStack):
            _check_reg(pc, insn.dst, "dst")
            _check_stack(pc, insn.off, insn.width)
        elif isinstance(insn, StStack):
            _check_reg(pc, insn.src, "src")
            _check_stack(pc, insn.off, insn.width)
        elif isinstance(insn, LdMeta):
            _check_reg(pc, insn.dst, "dst")
            if insn.meta not in META_FIELDS:
                _fail(E_OPCODE, pc, f"unknown meta field {insn.meta!r}")
        elif isinstance(insn, Mov):
            _check_reg(pc, insn.dst, "dst")
            _check_src_imm(pc, insn, insn.src, insn.imm)
        elif isinstance(insn, Alu):
            if insn.op not in ALU_OPS:
                _fail(E_OPCODE, pc, f"unknown ALU op {insn.op!r}")
            _check_reg(pc, insn.dst, "dst")
            _check_src_imm(pc, insn, insn.src, insn.imm)
        elif isinstance(insn, Jmp):
            _check_branch(pc, insn.off, n, "jmp")
        elif isinstance(insn, JmpIf):
            if insn.cond not in CONDS:
                _fail(E_OPCODE, pc, f"unknown condition {insn.cond!r}")
            _check_reg(pc, insn.a, "a")
            _check_src_imm(pc, insn, insn.b, insn.imm)
            _check_branch(pc, insn.off, n, "jmp-if")
        elif isinstance(insn, MapLookup):
            _check_reg(pc, insn.dst, "dst")
            _check_reg(pc, insn.key, "key")
            _check_map(pc, insn.map, num_maps)
            if insn.miss is not None:
                _check_branch(pc, insn.miss, n, "miss")
        elif isinstance(insn, MapUpdate):
            _check_reg(pc, insn.key, "key")
            _check_reg(pc, insn.value, "value")
            _check_map(pc, insn.map, num_maps)
        elif isinstance(insn, MapDelete):
            _check_reg(pc, insn.key, "key")
            _check_map(pc, insn.map, num_maps)
        elif isinstance(insn, Ret):
            if insn.action not in ACTIONS:
                _fail(E_OPCODE, pc, f"unknown action {insn.action!r}")
            if not isinstance(insn.vport, int) or insn.vport < 0:
                _fail(E_OPCODE, pc, f"bad redirect vport {insn.vport!r}")
        elif isinstance(insn, Instruction):
            _fail(E_OPCODE, pc,
                  f"unhandled instruction {type(insn).__name__}")
        else:
            _fail(E_OPCODE, pc, f"not an instruction: {insn!r}")

    if not isinstance(insns[-1], Ret):
        raise ProgVerifyError(
            E_TERMINATION, "last instruction must be a Ret "
                           "(every path needs a verdict)")
    return n
