"""Program maps: 64-bit key/value state backed by the cuckoo tables.

A :class:`ProgMap` is a firmware object (kind ``"map"`` in the
``ObjectTable``) shared between the control plane — which populates it
through ``SetMapEntry``/``DelMapEntry`` commands — and attached
programs, which read and write it per packet.  The storage is the same
:class:`~repro.core.cuckoo.CuckooHashTable` the steering engine uses,
so the capacity/occupancy behaviour the NIC model exhibits for flow
rules applies to program state as well.

Two update surfaces with different failure semantics:

* :meth:`set` — the control path.  A full table raises
  :class:`~repro.core.cuckoo.CuckooFullError`, which the firmware maps
  to ``CmdStatus.NO_RESOURCES``.
* :meth:`try_set` — the datapath.  A full table drops the update and
  returns ``False``; the interpreter counts it and carries on (the
  datapath never faults).
"""

from __future__ import annotations

from typing import Optional

from ..core.cuckoo import CuckooFullError, CuckooHashTable

__all__ = ["ProgMap"]

_M64 = 0xFFFFFFFFFFFFFFFF


class ProgMap:
    """A 64-bit → 64-bit key/value map for datapath programs."""

    def __init__(self, capacity: int = 64):
        if not isinstance(capacity, int) or capacity <= 0:
            raise ValueError(f"map capacity must be positive, got "
                             f"{capacity!r}")
        self.capacity = capacity
        self._table = CuckooHashTable(capacity)
        self.stats_sets = 0
        self.stats_deletes = 0
        self.stats_lookups = 0
        self.stats_hits = 0
        self.stats_full_drops = 0

    def __len__(self) -> int:
        return len(self._table)

    def get(self, key: int) -> Optional[int]:
        self.stats_lookups += 1
        value = self._table.lookup(key & _M64)
        if value is not None:
            self.stats_hits += 1
        return value

    def set(self, key: int, value: int):
        """Insert or replace; raises ``CuckooFullError`` at capacity."""
        key &= _M64
        value &= _M64
        old = self._table.lookup(key)
        if old is not None:
            self._table.remove(key)
        try:
            self._table.insert(key, value)
        except CuckooFullError:
            if old is not None:
                # The slot we just vacated is free again; restore it so
                # a failed replace never loses the previous value.
                self._table.insert(key, old)
            self.stats_full_drops += 1
            raise
        self.stats_sets += 1

    def try_set(self, key: int, value: int) -> bool:
        """Datapath insert-or-replace; ``False`` (never raises) when full."""
        try:
            self.set(key, value)
        except CuckooFullError:
            return False
        return True

    def delete(self, key: int) -> bool:
        try:
            self._table.remove(key & _M64)
        except KeyError:
            return False
        self.stats_deletes += 1
        return True

    def stats_dict(self) -> dict:
        stats = {"capacity": self.capacity, "entries": len(self._table),
                 "sets": self.stats_sets, "deletes": self.stats_deletes,
                 "lookups": self.stats_lookups, "hits": self.stats_hits,
                 "full_drops": self.stats_full_drops}
        stats.update({f"table_{k}": v
                      for k, v in self._table.stats_dict().items()})
        return stats
