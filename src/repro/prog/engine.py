"""The FLD program engine: per-packet interpretation of verified programs.

One :class:`ProgEngine` hangs off an FLD (created lazily by the firmware
at first attach — an FLD that never loads a program never constructs
one).  It owns the attachment tables:

* **rx** — keyed by receive binding id; runs between the CQE decode and
  the accelerator stream (the packet is inspected *before* the
  accelerator sees it, like an XDP program before the kernel stack).
* **tx** — keyed by transmit queue id; runs at submit time, before
  buffer-chunk allocation (a dropped packet consumes no FLD resources).

The datapath hooks in :class:`~repro.core.rx.RxRingManager` and
:class:`~repro.core.tx.TxRingManager` are a single attribute test when
no program is attached — the NULL fast path — and the engine restores
them to ``None`` when its last program detaches, so program-free runs
schedule exactly the same events as a build without this subsystem.

Execution cost is modelled as one FLD clock cycle per interpreted
instruction (``config.cycles(executed)``), charged as extra pipeline
latency on rx and folded into the submit path on tx; the per-packet
span ``prog.<name>`` makes it visible to the latency attribution layer.

Verdicts: ``pass`` (emit/submit unchanged), ``drop`` (count and end the
packet's trace), ``redirect`` (re-inject on the transmit queue bound to
the target vPort; the re-injected packet skips egress programs so two
programs can never ping-pong a packet).  ``modify`` is derived: a
``pass`` of a packet the program wrote to.

Only the firmware command unit may call :func:`load_program` — the AST
guard in ``tests/nic/test_cmd_guard.py`` enforces it — so every live
program went through the verifier and holds firmware-owned maps.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.axis import AxisMetadata
from .isa import (
    ACT_DROP, ACT_PASS, ACT_REDIRECT, Alu, Jmp, JmpIf, LdMeta, LdPkt,
    LdStack, MapDelete, MapLookup, MapUpdate, Mov, NUM_REGS, Program,
    Ret, STACK_BYTES, StPkt, StStack,
)
from .isa import M64
from .maps import ProgMap
from .verifier import verify

__all__ = ["LoadedProgram", "ProgEngine", "load_program"]


class LoadedProgram:
    """A verified program bound to its maps, with datapath counters."""

    def __init__(self, program: Program, maps: Tuple[ProgMap, ...]):
        self.program = program
        self.name = program.name
        self.insns = program.insns
        self.min_packet_len = program.min_packet_len
        self.maps = tuple(maps)
        self.stats_runs = 0        # packets that executed the program
        self.stats_pass = 0
        self.stats_drop = 0
        self.stats_redirect = 0
        self.stats_modify = 0      # pass verdicts that rewrote the packet
        self.stats_short = 0       # packets below min_packet_len (auto-pass)
        self.stats_insns = 0       # instructions interpreted, total
        self.stats_map_full = 0    # datapath map updates dropped (full)
        self.stats_redirect_drops = 0  # no route / no credit on redirect

    def counters(self) -> dict:
        return {
            "runs": self.stats_runs, "pass": self.stats_pass,
            "drop": self.stats_drop, "redirect": self.stats_redirect,
            "modify": self.stats_modify, "short": self.stats_short,
            "insns": self.stats_insns, "map_full": self.stats_map_full,
            "redirect_drops": self.stats_redirect_drops,
        }


def load_program(program: Program, maps) -> LoadedProgram:
    """Verify and instantiate a program (firmware-only entry point).

    Raises :class:`~repro.prog.verifier.ProgVerifyError` on rejection;
    the command unit maps it to ``CmdStatus.VERIFY_FAILED`` with the
    sub-code as syndrome.
    """
    maps = tuple(maps)
    verify(program, len(maps))
    return LoadedProgram(program, maps)


class ProgEngine:
    """Per-FLD attachment state and the interpreter itself."""

    def __init__(self, fld):
        self.fld = fld
        self._rx: Dict[int, LoadedProgram] = {}   # binding id -> program
        self._tx: Dict[int, LoadedProgram] = {}   # tx queue id -> program
        self._spans = fld.sim.telemetry.spans

    # -- attachment ---------------------------------------------------------

    def attached(self, direction: str, target: int) -> Optional[LoadedProgram]:
        table = self._rx if direction == "rx" else self._tx
        return table.get(target)

    def attach(self, direction: str, target: int,
               loaded: LoadedProgram) -> None:
        if direction == "rx":
            try:
                self.fld.rx.binding(target)
            except Exception as exc:
                raise ValueError(f"no rx binding {target}: {exc}") from exc
            self._rx[target] = loaded
            self.fld.rx.prog_hook = self.on_rx_packet
        elif direction == "tx":
            try:
                self.fld.tx.queue(target)
            except Exception as exc:
                raise ValueError(f"no tx queue {target}: {exc}") from exc
            self._tx[target] = loaded
            self.fld.tx.prog_hook = self.on_tx_packet
        else:
            raise ValueError(f"direction must be rx or tx, got {direction!r}")

    def detach(self, direction: str, target: int) -> LoadedProgram:
        if direction == "rx":
            loaded = self._rx.pop(target, None)
            if loaded is None:
                raise ValueError(f"no program attached to rx {target}")
            if not self._rx:
                self.fld.rx.prog_hook = None   # restore the NULL fast path
        elif direction == "tx":
            loaded = self._tx.pop(target, None)
            if loaded is None:
                raise ValueError(f"no program attached to tx {target}")
            if not self._tx:
                self.fld.tx.prog_hook = None
        else:
            raise ValueError(f"direction must be rx or tx, got {direction!r}")
        return loaded

    # -- datapath hooks -----------------------------------------------------

    def on_rx_packet(self, binding_id: int, data: bytes,
                     meta: AxisMetadata, emit) -> None:
        """Hook between CQE decode and the accelerator stream."""
        loaded = self._rx.get(binding_id)
        if loaded is None:
            emit(data, meta)
            return
        fld = self.fld
        now = fld.sim.now
        action, vport, out, executed, modified = self._execute(
            loaded, data, now, binding_id)
        if not executed:                       # below min_packet_len
            emit(out, meta)
            return
        lat = fld.config.cycles(executed)
        ctx = meta.trace_ctx
        if ctx is not None:
            self._spans.record(ctx, f"prog.{loaded.name}", now, now + lat)
        if action == ACT_PASS:
            if modified:
                loaded.stats_modify += 1
            else:
                loaded.stats_pass += 1
            fld.sim.schedule(lat, lambda: emit(out, meta))
        elif action == ACT_DROP:
            loaded.stats_drop += 1
            if ctx is not None:
                self._spans.end_trace(ctx, now + lat)
        else:  # redirect
            loaded.stats_redirect += 1
            fld.sim.schedule(
                lat, lambda: self._redirect(loaded, out, meta, vport))

    def on_tx_packet(self, queue_id: int, data: bytes,
                     meta: AxisMetadata) -> Optional[bytes]:
        """Hook at submit entry; ``None`` drops the submission."""
        if meta.prog_skip:
            return data                       # redirected packet: run once
        loaded = self._tx.get(queue_id)
        if loaded is None:
            return data
        fld = self.fld
        now = fld.sim.now
        action, vport, out, executed, modified = self._execute(
            loaded, data, now, queue_id)
        if not executed:
            return out
        ctx = meta.trace_ctx
        if ctx is not None:
            lat = fld.config.cycles(executed)
            self._spans.record(ctx, f"prog.{loaded.name}",
                               max(0.0, now - lat), now)
        if action == ACT_PASS:
            if modified:
                loaded.stats_modify += 1
            else:
                loaded.stats_pass += 1
            return out
        if action == ACT_DROP:
            loaded.stats_drop += 1
            if ctx is not None:
                self._spans.end_trace(ctx, now)
            return None
        loaded.stats_redirect += 1
        self._redirect(loaded, out, meta, vport)
        return None                            # original submission dropped

    def _redirect(self, loaded: LoadedProgram, data: bytes,
                  meta: AxisMetadata, vport: int) -> None:
        """Re-inject a packet on the tx queue bound to ``vport``."""
        fld = self.fld
        ctx = meta.trace_ctx
        txq = fld.vport_tx_routes.get(vport)
        if txq is None:
            loaded.stats_redirect_drops += 1
            if ctx is not None:
                self._spans.end_trace(ctx, fld.sim.now)
            return
        out_meta = AxisMetadata(queue_id=txq, context_id=meta.context_id,
                                trace_ctx=ctx)
        out_meta.prog_skip = True
        if not fld.try_send(data, out_meta):
            loaded.stats_redirect_drops += 1
            if ctx is not None:
                self._spans.end_trace(ctx, fld.sim.now)

    # -- the interpreter ----------------------------------------------------

    def _execute(self, loaded: LoadedProgram, data: bytes, now: float,
                 queue: int):
        """Run one packet; returns (action, vport, data, executed, modified).

        No runtime checks: the verifier proved every access in bounds
        for any packet of at least ``min_packet_len`` bytes, and
        forward-only branches bound the step count by the instruction
        count.
        """
        n = len(data)
        if n < loaded.min_packet_len:
            loaded.stats_short += 1
            return ACT_PASS, 0, data, 0, False
        loaded.stats_runs += 1
        regs = [0] * NUM_REGS
        stack = bytearray(STACK_BYTES)
        buf = None                  # copy-on-write packet buffer
        insns = loaded.insns
        maps = loaded.maps
        now_ns = int(now * 1e9)
        pc = 0
        executed = 0
        while True:
            insn = insns[pc]
            executed += 1
            t = type(insn)
            if t is LdPkt:
                src = data if buf is None else buf
                regs[insn.dst] = int.from_bytes(
                    src[insn.off:insn.off + insn.width], "big")
            elif t is StPkt:
                if buf is None:
                    buf = bytearray(data)
                value = regs[insn.src] & ((1 << (8 * insn.width)) - 1)
                buf[insn.off:insn.off + insn.width] = value.to_bytes(
                    insn.width, "big")
            elif t is Mov:
                regs[insn.dst] = (regs[insn.src] if insn.src is not None
                                  else insn.imm) & M64
            elif t is Alu:
                a = regs[insn.dst]
                b = (regs[insn.src] if insn.src is not None
                     else insn.imm & M64)
                op = insn.op
                if op == "add":
                    r = a + b
                elif op == "sub":
                    r = a - b
                elif op == "mul":
                    r = a * b
                elif op == "div":
                    r = a // b if b else 0
                elif op == "mod":
                    r = a % b if b else 0
                elif op == "and":
                    r = a & b
                elif op == "or":
                    r = a | b
                elif op == "xor":
                    r = a ^ b
                elif op == "lsh":
                    r = a << (b & 63)
                else:  # rsh
                    r = a >> (b & 63)
                regs[insn.dst] = r & M64
            elif t is JmpIf:
                a = regs[insn.a]
                b = (regs[insn.b] if insn.b is not None
                     else insn.imm & M64)
                c = insn.cond
                if ((c == "eq" and a == b) or (c == "ne" and a != b)
                        or (c == "lt" and a < b) or (c == "le" and a <= b)
                        or (c == "gt" and a > b) or (c == "ge" and a >= b)):
                    pc += insn.off
            elif t is Jmp:
                pc += insn.off
            elif t is MapLookup:
                value = maps[insn.map].get(regs[insn.key])
                if value is None:
                    if insn.miss is not None:
                        pc += insn.miss
                    else:
                        regs[insn.dst] = 0
                else:
                    regs[insn.dst] = value
            elif t is MapUpdate:
                if not maps[insn.map].try_set(regs[insn.key],
                                              regs[insn.value]):
                    loaded.stats_map_full += 1
            elif t is MapDelete:
                maps[insn.map].delete(regs[insn.key])
            elif t is LdStack:
                regs[insn.dst] = int.from_bytes(
                    stack[insn.off:insn.off + insn.width], "big")
            elif t is StStack:
                value = regs[insn.src] & ((1 << (8 * insn.width)) - 1)
                stack[insn.off:insn.off + insn.width] = value.to_bytes(
                    insn.width, "big")
            elif t is LdMeta:
                if insn.meta == "len":
                    regs[insn.dst] = n
                elif insn.meta == "now_ns":
                    regs[insn.dst] = now_ns
                else:  # queue
                    regs[insn.dst] = queue
            else:  # Ret — the verifier guarantees we get here
                loaded.stats_insns += executed
                modified = buf is not None
                out = bytes(buf) if modified else data
                return insn.action, insn.vport, out, executed, modified
            pc += 1
