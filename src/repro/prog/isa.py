"""The FLD match-action instruction set (hXDP-style, see PAPERS.md).

A *program* is a tuple of frozen-dataclass instructions interpreted per
packet by the FLD datapath hook (:mod:`repro.prog.engine`).  The set is
deliberately tiny — the eBPF/XDP subset a NIC-resident match-action
stage actually needs:

* packet byte loads/stores (big-endian, immediate offsets),
* a small scratch stack and 8 general registers (64-bit, wrapping),
* ALU and move operations,
* map lookup/update/delete against firmware-owned cuckoo-backed maps,
* forward-only branches,
* a terminal verdict: ``pass``, ``drop`` or ``redirect`` to a vPort.

Every packet offset is an *immediate*, and the program declares
``min_packet_len``: packets shorter than that take an automatic ``pass``
(counted), so the verifier can prove every access in bounds statically
and the interpreter never faults at runtime.  ``modify`` is a derived
verdict — a ``pass`` of a packet the program wrote to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "ACT_DROP", "ACT_PASS", "ACT_REDIRECT", "ALU_OPS", "Alu", "CONDS",
    "Instruction", "Jmp", "JmpIf", "LdMeta", "LdPkt", "LdStack",
    "MAX_INSNS", "MapDelete", "MapLookup", "MapUpdate", "META_FIELDS",
    "Mov", "NUM_REGS", "Program", "Ret", "STACK_BYTES", "StPkt",
    "StStack", "WIDTHS",
]

#: Architectural limits the verifier enforces.
NUM_REGS = 8
STACK_BYTES = 64
MAX_INSNS = 256
WIDTHS = (1, 2, 4, 8)

#: 64-bit unsigned wrap-around mask for every register value.
M64 = 0xFFFFFFFFFFFFFFFF

ACT_PASS = "pass"
ACT_DROP = "drop"
ACT_REDIRECT = "redirect"
ACTIONS = (ACT_PASS, ACT_DROP, ACT_REDIRECT)

ALU_OPS = ("add", "sub", "mul", "div", "mod", "and", "or", "xor",
           "lsh", "rsh")
CONDS = ("eq", "ne", "lt", "le", "gt", "ge")
META_FIELDS = ("len", "now_ns", "queue")


@dataclass(frozen=True)
class Instruction:
    """Base class for all program instructions."""


@dataclass(frozen=True)
class LdPkt(Instruction):
    """``dst = packet[off : off+width]`` (big-endian)."""

    dst: int
    off: int
    width: int = 1


@dataclass(frozen=True)
class StPkt(Instruction):
    """``packet[off : off+width] = src`` (big-endian, truncating)."""

    off: int
    src: int
    width: int = 1


@dataclass(frozen=True)
class LdStack(Instruction):
    """``dst = stack[off : off+width]`` (big-endian)."""

    dst: int
    off: int
    width: int = 8


@dataclass(frozen=True)
class StStack(Instruction):
    """``stack[off : off+width] = src`` (big-endian, truncating)."""

    off: int
    src: int
    width: int = 8


@dataclass(frozen=True)
class LdMeta(Instruction):
    """Load packet metadata: ``len``, ``now_ns`` or ``queue``."""

    dst: int
    meta: str = "len"


@dataclass(frozen=True)
class Mov(Instruction):
    """``dst = src`` or ``dst = imm`` (exactly one operand)."""

    dst: int
    src: Optional[int] = None
    imm: Optional[int] = None


@dataclass(frozen=True)
class Alu(Instruction):
    """``dst = dst <op> (src | imm)``; 64-bit unsigned wrapping.

    ``div``/``mod`` by zero yield 0 (the eBPF convention); shifts mask
    the count to 63.
    """

    op: str
    dst: int
    src: Optional[int] = None
    imm: Optional[int] = None


@dataclass(frozen=True)
class Jmp(Instruction):
    """Skip the next ``off`` instructions (forward only; 0 = no-op)."""

    off: int


@dataclass(frozen=True)
class JmpIf(Instruction):
    """Skip ``off`` instructions when ``a <cond> (b | imm)`` holds."""

    cond: str
    a: int
    off: int
    b: Optional[int] = None
    imm: Optional[int] = None


@dataclass(frozen=True)
class MapLookup(Instruction):
    """``dst = maps[map][key-register]``.

    On a miss: when ``miss`` is given, skip that many instructions
    (a forward branch, like :class:`JmpIf`); otherwise ``dst = 0`` and
    fall through.
    """

    dst: int
    map: int
    key: int
    miss: Optional[int] = None


@dataclass(frozen=True)
class MapUpdate(Instruction):
    """``maps[map][key-register] = value-register`` (insert or replace).

    A full map drops the update and bumps the program's
    ``stats_map_full`` counter — the datapath never faults.
    """

    map: int
    key: int
    value: int


@dataclass(frozen=True)
class MapDelete(Instruction):
    """Remove ``key-register`` from ``maps[map]`` (no-op when absent)."""

    map: int
    key: int


@dataclass(frozen=True)
class Ret(Instruction):
    """Terminal verdict: ``pass``, ``drop`` or ``redirect`` (to vport)."""

    action: str
    vport: int = 0


@dataclass(frozen=True)
class Program:
    """A named instruction sequence plus its packet-length contract.

    Packets shorter than ``min_packet_len`` bypass the program with an
    automatic ``pass`` (counted as ``short``); the verifier requires
    every packet access to fit inside ``min_packet_len``, which is what
    makes load-time verification sound.
    """

    name: str
    insns: Tuple[Instruction, ...] = field(default_factory=tuple)
    min_packet_len: int = 0

    def __post_init__(self):
        # Accept lists for convenience; store a tuple (hashable, frozen).
        if not isinstance(self.insns, tuple):
            object.__setattr__(self, "insns", tuple(self.insns))
