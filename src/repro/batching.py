"""Global scalar/batched datapath switch.

The batched datapath (vectorized WQE/CQE codecs, cuckoo ``lookup_many``,
template-based frame encoding, bulk store drains) is bit-identical to the
scalar path by construction — every batched routine computes exactly the
bytes/values its scalar twin would.  This module is the seam the
differential test harness uses to *prove* that: ``tests/batching/`` runs
every experiment once per mode and asserts fingerprint equality.

Mode resolution:

* the ``REPRO_BATCH`` environment variable at import time
  (``0``/``off``/``false`` select the scalar path; default is batched);
* :func:`set_batch_enabled` at runtime (tests flip modes in-process).

Hot paths read :data:`BATCH_ENABLED` through the module attribute
(``batching.BATCH_ENABLED``) so runtime flips are always observed.
"""

from __future__ import annotations

import os

#: True when the batched fast paths are active.
BATCH_ENABLED = os.environ.get("REPRO_BATCH", "1").lower() not in (
    "0", "off", "false", "no")


def batch_enabled() -> bool:
    """Current mode (True = batched fast paths, False = scalar)."""
    return BATCH_ENABLED


def set_batch_enabled(enabled: bool) -> bool:
    """Switch modes at runtime; returns the previous mode."""
    global BATCH_ENABLED
    previous = BATCH_ENABLED
    BATCH_ENABLED = bool(enabled)
    return previous
