"""Testbed builders: assemble nodes (fabric + memory + NIC + driver).

Mirrors the paper's two setups (§8 Setup):

* **local** — one node whose NIC loops traffic between two vPorts through
  the embedded switch (stressing the PCIe path);
* **remote** — two nodes back-to-back over a 25 GbE wire.

FLD-equipped nodes add the FPGA module via :func:`repro.sw.runtime`
helpers; this module only knows about the vanilla host/NIC plumbing so
the baselines can exist without FLD.
"""

from __future__ import annotations

from typing import Optional

from .host import CpuCore, HostMemory, SoftwareDriver
from .nic import BAR_SIZE, ForwardToVport, MatchSpec, Nic, NicConfig
from .pcie import PcieFabric, PcieLinkConfig
from .sim import Simulator

HOST_MEM_BASE = 0x0
HOST_MEM_SIZE = 1 << 34
NIC_BAR_BASE = 0x10_0000_0000
FLD_BAR_BASE = 0x18_0000_0000


class Node:
    """One server: PCIe fabric, host memory, NIC, software driver."""

    def __init__(self, sim: Simulator, name: str,
                 nic_config: Optional[NicConfig] = None,
                 core: Optional[CpuCore] = None,
                 pcie_latency: float = 300e-9, host_lanes: int = 8):
        self.sim = sim
        self.name = name
        self.pcie_latency = pcie_latency
        self.fabric = PcieFabric(sim)
        self.memory = HostMemory(f"{name}.mem", HOST_MEM_SIZE)
        self.fabric.attach(self.memory,
                           PcieLinkConfig(lanes=host_lanes,
                                          latency=pcie_latency))
        self.fabric.map_window(HOST_MEM_BASE, HOST_MEM_SIZE, self.memory)
        self.nic = Nic(sim, self.fabric, f"{name}.nic", nic_config,
                       PcieLinkConfig(lanes=16, latency=pcie_latency))
        self.fabric.map_window(NIC_BAR_BASE, BAR_SIZE, self.nic)
        self.core = core if core is not None else CpuCore(sim)
        self.driver = SoftwareDriver(
            sim, self.fabric, self.nic, self.memory, HOST_MEM_BASE,
            NIC_BAR_BASE, core=self.core, name=f"{name}.cpu",
        )

    def add_vport_for_mac(self, vport: int, mac) -> None:
        """Create a vPort and steer frames for ``mac`` to it (FDB rule)."""
        if vport not in self.nic.eswitch.vports:
            self.nic.eswitch.add_vport(vport)
        self.nic.steering.table("fdb").add_rule(
            MatchSpec(dst_mac=mac), [ForwardToVport(vport)], priority=10,
        )


def connect(a: Node, b: Node) -> None:
    """Cable two nodes' Ethernet ports back-to-back."""
    a.nic.port.connect(b.nic.port)


def make_local_node(sim: Simulator, name: str = "local",
                    nic_config: Optional[NicConfig] = None,
                    core: Optional[CpuCore] = None,
                    pcie_latency: float = 300e-9) -> Node:
    """A single node for local (PCIe-stressing) experiments."""
    return Node(sim, name, nic_config, core, pcie_latency)


def make_remote_pair(sim: Simulator,
                     nic_config: Optional[NicConfig] = None,
                     client_core: Optional[CpuCore] = None,
                     server_core: Optional[CpuCore] = None,
                     pcie_latency: float = 300e-9,
                     host_lanes: int = 8):
    """Client + server nodes connected by a 25 GbE wire."""
    client = Node(sim, "client", nic_config, client_core, pcie_latency,
                  host_lanes)
    server = Node(sim, "server", nic_config, server_core, pcie_latency,
                  host_lanes)
    connect(client, server)
    return client, server
