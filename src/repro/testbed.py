"""Testbed builders: assemble nodes (fabric + memory + NIC + driver).

Mirrors the paper's two setups (§8 Setup):

* **local** — one node whose NIC loops traffic between two vPorts through
  the embedded switch (stressing the PCIe path);
* **remote** — two nodes back-to-back over a 25 GbE wire.

This module is now a thin compatibility layer over
:mod:`repro.topology`: :class:`Node`, :func:`connect` and the address
constants live there, and the two helpers below elaborate one-line
:class:`~repro.topology.TopologySpec` descriptions.  New code should
write specs directly and call :func:`repro.topology.build`.
"""

from __future__ import annotations

from typing import Optional

from .host import CpuCore
from .nic import NicConfig
from .sim import Simulator
from .topology import (
    FLD_BAR_BASE,
    HOST_MEM_BASE,
    HOST_MEM_SIZE,
    LinkSpec,
    NIC_BAR_BASE,
    Node,
    NodeSpec,
    TopologySpec,
    build,
    connect,
)

__all__ = [
    "FLD_BAR_BASE",
    "HOST_MEM_BASE",
    "HOST_MEM_SIZE",
    "NIC_BAR_BASE",
    "Node",
    "connect",
    "make_local_node",
    "make_remote_pair",
]


def make_local_node(sim: Simulator, name: str = "local",
                    nic_config: Optional[NicConfig] = None,
                    core: Optional[CpuCore] = None,
                    pcie_latency: float = 300e-9) -> Node:
    """A single node for local (PCIe-stressing) experiments."""
    spec = TopologySpec(
        name=f"local:{name}",
        nodes=[NodeSpec(name=name, pcie_latency=pcie_latency)],
    )
    testbed = build(sim, spec, cores={name: core},
                    nic_configs={name: nic_config})
    return testbed.node(name)


def make_remote_pair(sim: Simulator,
                     nic_config: Optional[NicConfig] = None,
                     client_core: Optional[CpuCore] = None,
                     server_core: Optional[CpuCore] = None,
                     pcie_latency: float = 300e-9,
                     host_lanes: int = 8):
    """Client + server nodes connected by a 25 GbE wire."""
    spec = TopologySpec(
        name="remote-pair",
        nodes=[
            NodeSpec(name="client", host_lanes=host_lanes,
                     pcie_latency=pcie_latency),
            NodeSpec(name="server", host_lanes=host_lanes,
                     pcie_latency=pcie_latency),
        ],
        links=[LinkSpec(a="client", b="server")],
    )
    testbed = build(
        sim, spec,
        cores={"client": client_core, "server": server_core},
        nic_configs={"client": nic_config, "server": nic_config},
    )
    return testbed.node("client"), testbed.node("server")
