"""The per-node physical address map: one allocator, no magic numbers.

Every device window a node exposes — host DRAM, the NIC BAR, each FLD
instance's BAR, auxiliary accelerator BARs — used to be a constant
scattered across ``testbed.py`` / ``sw/runtime.py`` / experiment
modules.  They now live here, and each :class:`repro.topology.Node`
carries an :class:`AddressMap` that *checks* every window it maps:
overlapping windows raise at build time instead of silently aliasing
reads in the PCIe fabric.

The constants keep their historical values so that address-derived
behaviour (and therefore simulated results) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Host DRAM window (the software driver's allocator arena).
HOST_MEM_BASE = 0x0
HOST_MEM_SIZE = 1 << 34
#: The NIC's register/doorbell BAR.
NIC_BAR_BASE = 0x10_0000_0000
#: First FLD instance's BAR; additional instances stack above it at
#: ``FLD_BAR_BASE + index * FLD_BAR_SIZE`` (§9 scaling).
FLD_BAR_BASE = 0x18_0000_0000
#: Staging BAR of the CPU-mediated "dumb" accelerator (§3, Fig. 2a).
ACCEL_BAR_BASE = 0x20_0000_0000

# -- NIC BAR internal layout -------------------------------------------------
#
# One register file for every NIC consumer (``nic/device.py`` decodes
# writes against these, ``sw/runtime.py`` and ``host/driver.py`` compute
# doorbell/MMIO addresses from them).  Regions, low to high:
#
#   [0x00_0000)            firmware command doorbell (qpn 0 is never
#                          allocated, so SQ doorbells never land here)
#   [0x00_0040, 0x08_0000) per-SQ doorbells, one 64 B stride per qpn
#   [0x08_0000, 0x10_0000) per-RQ doorbells
#   [0x10_0000, 0x20_0000) MMIO WQE slots, 256 B per qpn

#: Firmware command doorbell (offset within the NIC BAR).
NIC_CMD_DOORBELL = 0x0
#: Bytes between consecutive SQ doorbell registers.
DOORBELL_STRIDE = 64
#: Start of the receive-queue doorbell region.
RQ_DOORBELL_BASE = 0x8_0000
#: Start of the MMIO WQE region (one slot per send queue).
WQE_MMIO_BASE = 0x10_0000
#: Bytes between consecutive MMIO WQE slots.
WQE_MMIO_STRIDE = 256
#: Total NIC BAR size.
BAR_SIZE = 0x20_0000

#: Firmware command mailbox: a fixed scratch buffer in host DRAM, below
#: the software driver's allocator arena (which starts 1 MiB up).
CMD_MAILBOX_OFFSET = 0x1000
CMD_MAILBOX_SIZE = 512


def nic_bar_layout() -> "AddressMap":
    """The NIC BAR's internal regions as an overlap-checked map.

    Built fresh on each call; importing modules use the module-level
    constants, this exists so a test (and the CI conformance job) can
    assert the regions never alias as the layout evolves.
    """
    layout = AddressMap("nic-bar")
    layout.reserve("cmd-doorbell", NIC_CMD_DOORBELL, DOORBELL_STRIDE)
    layout.reserve("sq-doorbells", DOORBELL_STRIDE,
                   RQ_DOORBELL_BASE - DOORBELL_STRIDE)
    layout.reserve("rq-doorbells", RQ_DOORBELL_BASE,
                   WQE_MMIO_BASE - RQ_DOORBELL_BASE)
    layout.reserve("mmio-wqe", WQE_MMIO_BASE, BAR_SIZE - WQE_MMIO_BASE)
    return layout


class AddressMapError(ValueError):
    """Raised when a window would overlap an existing one."""


@dataclass(frozen=True)
class Window:
    """One mapped device window."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def overlaps(self, other: "Window") -> bool:
        return self.base < other.end and other.base < self.end


class AddressMap:
    """Allocates and validates non-overlapping windows for one node."""

    def __init__(self, name: str = ""):
        self.name = name
        self._windows: Dict[str, Window] = {}

    def reserve(self, name: str, base: int, size: int) -> Window:
        """Claim ``[base, base+size)`` for ``name``; reject overlaps."""
        if size <= 0:
            raise AddressMapError(
                f"{self.name}: window {name!r} has non-positive size "
                f"{size}")
        window = Window(name, base, size)
        if name in self._windows:
            raise AddressMapError(
                f"{self.name}: window {name!r} already mapped at "
                f"{self._windows[name].base:#x}")
        for other in self._windows.values():
            if window.overlaps(other):
                raise AddressMapError(
                    f"{self.name}: window {name!r} "
                    f"[{window.base:#x}, {window.end:#x}) overlaps "
                    f"{other.name!r} [{other.base:#x}, {other.end:#x})")
        self._windows[name] = window
        return window

    def release(self, name: str) -> Window:
        """Unmap ``name``; its range becomes reservable again."""
        if name not in self._windows:
            raise AddressMapError(
                f"{self.name}: cannot release unmapped window {name!r}")
        return self._windows.pop(name)

    def fld_bar(self, index: int) -> int:
        """BAR base of the ``index``-th FLD instance on this node."""
        if index < 0:
            raise AddressMapError(f"negative FLD index {index}")
        from ..core import bar as fld_bar
        return FLD_BAR_BASE + index * fld_bar.FLD_BAR_SIZE

    def windows(self) -> List[Window]:
        return sorted(self._windows.values(), key=lambda w: w.base)

    def lookup(self, name: str) -> Window:
        return self._windows[name]

    def __contains__(self, name: str) -> bool:
        return name in self._windows
