"""The per-node physical address map: one allocator, no magic numbers.

Every device window a node exposes — host DRAM, the NIC BAR, each FLD
instance's BAR, auxiliary accelerator BARs — used to be a constant
scattered across ``testbed.py`` / ``sw/runtime.py`` / experiment
modules.  They now live here, and each :class:`repro.topology.Node`
carries an :class:`AddressMap` that *checks* every window it maps:
overlapping windows raise at build time instead of silently aliasing
reads in the PCIe fabric.

The constants keep their historical values so that address-derived
behaviour (and therefore simulated results) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Host DRAM window (the software driver's allocator arena).
HOST_MEM_BASE = 0x0
HOST_MEM_SIZE = 1 << 34
#: The NIC's register/doorbell BAR.
NIC_BAR_BASE = 0x10_0000_0000
#: First FLD instance's BAR; additional instances stack above it at
#: ``FLD_BAR_BASE + index * FLD_BAR_SIZE`` (§9 scaling).
FLD_BAR_BASE = 0x18_0000_0000
#: Staging BAR of the CPU-mediated "dumb" accelerator (§3, Fig. 2a).
ACCEL_BAR_BASE = 0x20_0000_0000


class AddressMapError(ValueError):
    """Raised when a window would overlap an existing one."""


@dataclass(frozen=True)
class Window:
    """One mapped device window."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def overlaps(self, other: "Window") -> bool:
        return self.base < other.end and other.base < self.end


class AddressMap:
    """Allocates and validates non-overlapping windows for one node."""

    def __init__(self, name: str = ""):
        self.name = name
        self._windows: Dict[str, Window] = {}

    def reserve(self, name: str, base: int, size: int) -> Window:
        """Claim ``[base, base+size)`` for ``name``; reject overlaps."""
        if size <= 0:
            raise AddressMapError(
                f"{self.name}: window {name!r} has non-positive size "
                f"{size}")
        window = Window(name, base, size)
        if name in self._windows:
            raise AddressMapError(
                f"{self.name}: window {name!r} already mapped at "
                f"{self._windows[name].base:#x}")
        for other in self._windows.values():
            if window.overlaps(other):
                raise AddressMapError(
                    f"{self.name}: window {name!r} "
                    f"[{window.base:#x}, {window.end:#x}) overlaps "
                    f"{other.name!r} [{other.base:#x}, {other.end:#x})")
        self._windows[name] = window
        return window

    def fld_bar(self, index: int) -> int:
        """BAR base of the ``index``-th FLD instance on this node."""
        if index < 0:
            raise AddressMapError(f"negative FLD index {index}")
        from ..core import bar as fld_bar
        return FLD_BAR_BASE + index * fld_bar.FLD_BAR_SIZE

    def windows(self) -> List[Window]:
        return sorted(self._windows.values(), key=lambda w: w.base)

    def lookup(self, name: str) -> Window:
        return self._windows[name]

    def __contains__(self, name: str) -> bool:
        return name in self._windows
