"""Declarative testbed descriptions: topology as data, not code.

A :class:`TopologySpec` is a JSON-able description of a testbed —
nodes, links, vPorts with their steered MACs, FLD instances, the
accelerator functions behind them, and host queue pairs.  The
:func:`repro.topology.build.build` elaborator turns a spec into live
simulation objects in a fixed, documented order, so two runs of the
same spec construct (and therefore schedule) identically.

Because a spec round-trips through JSON canonically
(:meth:`TopologySpec.to_dict`), it can join a sweep point's cache key:
cached results are addressed by the shape they ran on.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

#: Core roles a NodeSpec may request; mapped to CpuCore factories on
#: the experiments' :class:`~repro.experiments.setups.Calibration`.
CORE_ROLES = ("default", "loadgen", "app", "app-nojitter")


class SpecError(ValueError):
    """Raised when a spec is internally inconsistent."""


@dataclass(frozen=True)
class NodeSpec:
    """One server (PCIe fabric + memory + NIC + driver).

    ``core`` selects the calibration's CPU model: ``"loadgen"`` for the
    provisioned traffic generator, ``"app"`` / ``"app-nojitter"`` for
    the DPDK server core with/without OS jitter, ``"default"`` for the
    plain :class:`~repro.host.CpuCore`.  ``port_rate_bps`` overrides
    the calibration NIC's line rate (the §9 scaling testbed is 100 GbE).
    """

    name: str
    core: str = "default"
    host_lanes: int = 8
    port_rate_bps: Optional[float] = None
    pcie_latency: float = 300e-9


@dataclass(frozen=True)
class LinkSpec:
    """A back-to-back Ethernet cable between two nodes' ports."""

    a: str
    b: str


@dataclass(frozen=True)
class VportSpec:
    """A vPort on a node's eSwitch plus the FDB rule steering ``mac``."""

    node: str
    vport: int
    mac: str


@dataclass(frozen=True)
class FldSpec:
    """One FLD instance on a node.

    ``index`` places the BAR window (``FLD_BAR_BASE + index *
    FLD_BAR_SIZE``); ``name`` defaults to the runtime's historical
    naming (``<node>.fld`` for index 0).
    """

    node: str
    index: int = 0
    name: Optional[str] = None

    def resolved_name(self) -> str:
        if self.name is not None:
            return self.name
        return f"{self.node}.fld" if self.index == 0 else \
            f"{self.node}.fld{self.index}"


@dataclass(frozen=True)
class AccelFnSpec:
    """An accelerator function multiplexed onto one FLD.

    ``kind`` names a registered factory (see
    :mod:`repro.topology.functions`); ``vport`` is where its rx/tx
    queues attach; ``rx_default`` makes its receive queue the vPort's
    default destination (exactly one function per vPort should claim
    it).  The ``rx_*`` geometry carves this function's slice of FLD's
    receive SRAM — N functions sharing one FLD must divide the 256 KiB
    between them.  ``params`` is passed through to the factory.
    """

    name: str
    fld: str
    kind: str
    vport: int
    units: int = 2
    rx_default: bool = True
    tx_entries: int = 1024
    rx_ring_entries: int = 2
    rx_strides: int = 64
    rx_stride_size: int = 2048
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class HostQpSpec:
    """A host Ethernet queue pair on a node's software driver."""

    name: str
    node: str
    vport: int
    use_mmio_wqe: bool = False
    sq_entries: int = 1024
    rq_entries: int = 1024
    register_default: bool = True
    post_rx: int = 0


@dataclass
class TopologySpec:
    """The complete declarative testbed."""

    name: str
    nodes: List[NodeSpec] = field(default_factory=list)
    links: List[LinkSpec] = field(default_factory=list)
    vports: List[VportSpec] = field(default_factory=list)
    flds: List[FldSpec] = field(default_factory=list)
    accel_fns: List[AccelFnSpec] = field(default_factory=list)
    host_qps: List[HostQpSpec] = field(default_factory=list)

    # -- consistency -----------------------------------------------------

    def validate(self) -> "TopologySpec":
        """Check internal references; returns self for chaining."""
        node_names = [n.name for n in self.nodes]
        if len(set(node_names)) != len(node_names):
            raise SpecError(f"{self.name}: duplicate node names")
        names = set(node_names)
        for node in self.nodes:
            if node.core not in CORE_ROLES:
                raise SpecError(
                    f"{self.name}: node {node.name!r} has unknown core "
                    f"role {node.core!r} (choose from {CORE_ROLES})")
        port_users: Dict[str, str] = {}
        for link in self.links:
            if link.a == link.b:
                raise SpecError(
                    f"{self.name}: link connects {link.a!r} to itself")
            for end in (link.a, link.b):
                if end not in names:
                    raise SpecError(
                        f"{self.name}: link references unknown node "
                        f"{end!r}")
                if end in port_users:
                    raise SpecError(
                        f"{self.name}: node {end!r} port already cabled "
                        f"(links are one per Ethernet port)")
                port_users[end] = end
        seen_vports = set()
        for vp in self.vports:
            if vp.node not in names:
                raise SpecError(f"{self.name}: vport on unknown node "
                                f"{vp.node!r}")
            if (vp.node, vp.vport, vp.mac.lower()) in seen_vports:
                raise SpecError(
                    f"{self.name}: duplicate vport entry "
                    f"({vp.node}, {vp.vport}, {vp.mac})")
            seen_vports.add((vp.node, vp.vport, vp.mac.lower()))
        fld_names = []
        fld_slots = set()
        for fld in self.flds:
            if fld.node not in names:
                raise SpecError(f"{self.name}: fld on unknown node "
                                f"{fld.node!r}")
            if (fld.node, fld.index) in fld_slots:
                raise SpecError(
                    f"{self.name}: two FLDs claim BAR index "
                    f"{fld.index} on node {fld.node!r}")
            fld_slots.add((fld.node, fld.index))
            fld_names.append(fld.resolved_name())
        if len(set(fld_names)) != len(fld_names):
            raise SpecError(f"{self.name}: duplicate FLD names")
        rx_defaults = set()
        fn_names = set()
        for fn in self.accel_fns:
            if fn.fld not in fld_names:
                raise SpecError(
                    f"{self.name}: accel fn {fn.name!r} references "
                    f"unknown FLD {fn.fld!r}")
            if fn.name in fn_names:
                raise SpecError(
                    f"{self.name}: duplicate accel fn name {fn.name!r}")
            fn_names.add(fn.name)
            node = next(f.node for f in self.flds
                        if f.resolved_name() == fn.fld)
            if fn.rx_default:
                if (node, fn.vport) in rx_defaults:
                    raise SpecError(
                        f"{self.name}: two accel fns claim the default "
                        f"rx queue of vport {fn.vport} on {node!r}")
                rx_defaults.add((node, fn.vport))
        qp_names = set()
        for qp in self.host_qps:
            if qp.node not in names:
                raise SpecError(f"{self.name}: host qp on unknown node "
                                f"{qp.node!r}")
            if qp.name in qp_names:
                raise SpecError(
                    f"{self.name}: duplicate host qp name {qp.name!r}")
            qp_names.add(qp.name)
        return self

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-able dict (canonical under ``canonical_params``)."""
        return {
            "name": self.name,
            "nodes": [asdict(n) for n in self.nodes],
            "links": [asdict(link) for link in self.links],
            "vports": [asdict(v) for v in self.vports],
            "flds": [asdict(f) for f in self.flds],
            "accel_fns": [asdict(a) for a in self.accel_fns],
            "host_qps": [asdict(q) for q in self.host_qps],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TopologySpec":
        return cls(
            name=data["name"],
            nodes=[NodeSpec(**n) for n in data.get("nodes", [])],
            links=[LinkSpec(**link) for link in data.get("links", [])],
            vports=[VportSpec(**v) for v in data.get("vports", [])],
            flds=[FldSpec(**f) for f in data.get("flds", [])],
            accel_fns=[AccelFnSpec(**a)
                       for a in data.get("accel_fns", [])],
            host_qps=[HostQpSpec(**q) for q in data.get("host_qps", [])],
        )
