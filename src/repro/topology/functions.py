"""The accelerator-function registry: spec ``kind`` -> live engine.

Each factory builds one accelerator function behind an already-bound
FLD transmit queue.  Kinds registered here are the vocabulary of
:class:`~repro.topology.spec.AccelFnSpec`; the N-tenant scaling
experiment mixes ``echo`` / ``zuc-echo`` / ``iot-echo`` tenants on one
FLD, and the single-function experiments use ``echo`` / ``iot-auth`` /
``rdma-echo``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..accelerators import (
    EchoAccelerator,
    IotAuthAccelerator,
    IotEchoAccelerator,
    RdmaEchoAccelerator,
    ZucEchoAccelerator,
)

#: factory(sim, fld, units, tx_queue, name, params) -> Accelerator
Factory = Callable[..., Any]

_REGISTRY: Dict[str, Factory] = {}


def register_kind(kind: str, factory: Factory) -> None:
    """Add (or replace) an accelerator-function kind."""
    _REGISTRY[kind] = factory


def accel_kinds() -> tuple:
    return tuple(sorted(_REGISTRY))


def make_accelerator(kind: str, sim, fld, *, units: int, tx_queue: int,
                     name: str, params: Dict[str, Any], source=None):
    """Instantiate a registered accelerator function.

    ``source`` (a Store) replaces the FLD's shared rx stream as the
    function's input — the demultiplexer feed when several functions
    share one FLD.
    """
    factory = _REGISTRY.get(kind)
    if factory is None:
        raise ValueError(
            f"unknown accelerator kind {kind!r}; registered: "
            f"{', '.join(accel_kinds())}")
    kwargs = dict(params)
    if source is not None:
        kwargs["source"] = source
    return factory(sim, fld, units=units, tx_queue=tx_queue, name=name,
                   **kwargs)


register_kind("echo", EchoAccelerator)
register_kind("zuc-echo", ZucEchoAccelerator)
register_kind("iot-echo", IotEchoAccelerator)
register_kind("iot-auth", IotAuthAccelerator)
register_kind("rdma-echo", RdmaEchoAccelerator)
