"""Elaborate a :class:`TopologySpec` into a live, queryable testbed.

Elaboration order is fixed and load-bearing: the simulator schedules
same-timestamp processes in spawn order, so two elaborations of the
same spec construct identical event sequences (this is what keeps the
spec-built single-tenant experiments bit-identical to the historical
hand-wired path).  The phases:

1. **nodes** — in spec order (fabric, memory, NIC, core, driver);
2. **links** — back-to-back cables, in spec order;
3. **vPorts** — eSwitch vPorts + FDB MAC rules, in spec order;
4. **FLDs** — per FLD (spec order): the runtime, then each of *its*
   accelerator functions in spec order (rx queue, tx queue, engine);
5. **host QPs** — queue pairs + their receive buffer posts, in order.

The result is a :class:`Testbed`: components are addressable by their
spec names, and the uniform lifecycle is ``build`` (this function),
``reset`` (zero statistics between measurement phases) and ``quiesce``
(run the invariant auditor over every FLD and NIC).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

from ..sim import Simulator, Store
from .functions import make_accelerator
from .node import Node, connect
from .spec import AccelFnSpec, SpecError, TopologySpec


class RxFunctionDemux:
    """Route an FLD's shared rx stream to per-function input stores.

    The FLD tags each received packet with its rx binding id
    (``meta.queue_id``); when several accelerator functions share one
    FLD, this dispatcher — the behavioural stand-in for the paper's
    per-context function select (§5.4) — forwards each packet to the
    owning function's bounded store.  Puts block when a function falls
    behind, so backpressure still propagates to the NIC instead of a
    slow tenant's packets leaking into its neighbours' engines.
    """

    def __init__(self, sim: Simulator, fld, name: str):
        self.sim = sim
        self.fld = fld
        self.name = name
        self._routes: dict = {}
        self.stats_unrouted = 0
        sim.spawn(self._dispatch(), name=f"{name}.demux")

    def add_route(self, binding_id: int, fn_name: str) -> Store:
        store = Store(self.sim, capacity=self.fld.config.rx_stream_depth,
                      name=f"{fn_name}.rx")
        self._routes[binding_id] = store
        return store

    def _dispatch(self):
        while True:
            data, meta = yield self.fld.rx_stream.get()
            store = self._routes.get(meta.queue_id)
            if store is None:
                self.stats_unrouted += 1
                continue
            yield store.put((data, meta))


@dataclass
class AccelFn:
    """One elaborated accelerator function and its queue plumbing."""

    spec: AccelFnSpec
    runtime: Any                 # FldRuntime
    accel: Any                   # Accelerator subclass
    rq: Any                      # MultiPacketReceiveQueue
    txq: int                     # FLD tx queue id


class Testbed:
    """Named, queryable handles over an elaborated topology."""

    def __init__(self, sim: Simulator, spec: TopologySpec):
        self.sim = sim
        self.spec = spec
        self.nodes: Dict[str, Node] = {}
        self.fld_runtimes: Dict[str, Any] = {}
        self.accel_fns: Dict[str, AccelFn] = {}
        self.host_qps: Dict[str, Any] = {}

    # -- queries ---------------------------------------------------------

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def fld(self, name: str):
        """The :class:`~repro.sw.runtime.FldRuntime` named ``name``."""
        return self.fld_runtimes[name]

    def accel(self, name: str) -> AccelFn:
        return self.accel_fns[name]

    def host_qp(self, name: str):
        return self.host_qps[name]

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Zero measurement statistics (between measurement phases)."""
        for fn in self.accel_fns.values():
            accel = fn.accel
            accel.stats_processed = 0
            accel.stats_emitted = 0
            accel.stats_dropped = 0
            accel.stats_errors = 0
        for node in self.nodes.values():
            port = node.nic.port
            port.stats_tx_packets = 0
            port.stats_rx_packets = 0
            for vport in node.nic.eswitch.vports.values():
                vport.stats_rx = 0
                vport.stats_tx = 0

    def teardown(self) -> None:
        """Destroy every constructed NIC resource, in reverse build
        order, through the firmware command channel.

        After teardown the object tables are empty and the devices are
        clean to audit: host QPs close (releasing rings and buffers),
        each FLD runtime shuts down (releasing tx/rx queues, SRAM
        slices and its BAR window), and each node's vPorts and FDB
        rules are removed.
        """
        for qp in reversed(list(self.host_qps.values())):
            qp.close()
        self.host_qps.clear()
        self.accel_fns.clear()
        for runtime in reversed(list(self.fld_runtimes.values())):
            runtime.shutdown()
        self.fld_runtimes.clear()
        for node in reversed(list(self.nodes.values())):
            node.teardown()

    def objects(self) -> Dict[str, List[dict]]:
        """Every node's firmware object table, as data (the
        ``python -m repro objects`` dump)."""
        return {name: node.nic.cmd.table.rows()
                for name, node in self.nodes.items()}

    def quiesce(self) -> List:
        """Audit FLD/NIC conservation invariants; return violations.

        Call after the simulation drains.  An empty list means every
        FLD returned its credits/buffers and no NIC queue holds
        residue (see :mod:`repro.telemetry.audit`).
        """
        from ..telemetry.audit import audit_all
        flds = [runtime.fld for runtime in self.fld_runtimes.values()]
        nics = [node.nic for node in self.nodes.values()]
        fabrics = list({id(nic.fabric): nic.fabric for nic in nics}.values())
        return audit_all(flds=flds, nics=nics, fabrics=fabrics)

    def assert_quiesced(self) -> None:
        from ..telemetry.audit import assert_clean
        assert_clean(self.quiesce())


def build(sim: Simulator, spec: TopologySpec, cal=None,
          cores: Optional[Dict[str, Any]] = None,
          nic_configs: Optional[Dict[str, Any]] = None) -> Testbed:
    """Elaborate ``spec`` on ``sim``; returns the queryable testbed.

    ``cal`` supplies the calibrated component factories
    (:class:`~repro.experiments.setups.Calibration`; defaulted lazily).
    ``cores`` / ``nic_configs`` map node names to pre-built overrides —
    the escape hatch the legacy ``repro.testbed`` helpers use to pass
    caller-constructed objects through unchanged.
    """
    spec.validate()

    def calibration():
        nonlocal cal
        if cal is None:
            from ..experiments.setups import Calibration
            cal = Calibration()
        return cal

    testbed = Testbed(sim, spec)

    # Phase 1: nodes.
    for ns in spec.nodes:
        if cores is not None and ns.name in cores:
            core = cores[ns.name]
        elif ns.core == "default":
            core = None
        elif ns.core == "loadgen":
            core = calibration().client_core(sim)
        elif ns.core == "app":
            core = calibration().server_core(sim, jitter=True)
        else:  # "app-nojitter" (validate() rejects anything else)
            core = calibration().server_core(sim, jitter=False)
        if nic_configs is not None and ns.name in nic_configs:
            nic_config = nic_configs[ns.name]
        else:
            nic_config = calibration().nic_config()
        if nic_config is not None and ns.port_rate_bps is not None:
            nic_config = replace(nic_config,
                                 port_rate_bps=ns.port_rate_bps)
        testbed.nodes[ns.name] = Node(
            sim, ns.name, nic_config, core,
            pcie_latency=ns.pcie_latency, host_lanes=ns.host_lanes,
        )

    # Phase 2: links.
    for link in spec.links:
        connect(testbed.nodes[link.a], testbed.nodes[link.b])

    # Phase 3: vPorts + FDB steering.
    for vp in spec.vports:
        testbed.nodes[vp.node].add_vport_for_mac(vp.vport, vp.mac)

    # Phase 4: FLD instances, each followed by its accelerator
    # functions (rx queue, tx queue, engine — the historical order).
    from ..sw.runtime import FldRuntime
    for fld_spec in spec.flds:
        node = testbed.nodes[fld_spec.node]
        name = fld_spec.resolved_name()
        runtime = FldRuntime(
            node, fld_config=calibration().fld_config(),
            fld_bar_base=node.addrmap.fld_bar(fld_spec.index),
            fld_name=name,
        )
        testbed.fld_runtimes[name] = runtime
        fld_fns = [fn for fn in spec.accel_fns if fn.fld == name]
        # A lone function keeps the historical direct tap on the FLD rx
        # stream (bit-identical to the hand-wired testbeds); multiple
        # functions get a demultiplexer routing on the rx binding id.
        demux = (RxFunctionDemux(sim, runtime.fld, name)
                 if len(fld_fns) > 1 else None)
        for fn in fld_fns:
            binding_id = runtime._next_rx_binding
            rq = runtime.create_rx_queue(
                vport=fn.vport, ring_entries=fn.rx_ring_entries,
                strides_per_buffer=fn.rx_strides,
                stride_size=fn.rx_stride_size,
                set_default=fn.rx_default)
            txq = runtime.create_eth_tx_queue(vport=fn.vport,
                                              entries=fn.tx_entries)
            source = (demux.add_route(binding_id, fn.name)
                      if demux is not None else None)
            accel = make_accelerator(
                fn.kind, sim, runtime.fld, units=fn.units,
                tx_queue=txq, name=fn.name, params=fn.params,
                source=source,
            )
            testbed.accel_fns[fn.name] = AccelFn(
                spec=fn, runtime=runtime, accel=accel, rq=rq, txq=txq)

    # Phase 5: host queue pairs.
    for qp_spec in spec.host_qps:
        node = testbed.nodes[qp_spec.node]
        if qp_spec.vport not in node.nic.eswitch.vports:
            raise SpecError(
                f"{spec.name}: host qp {qp_spec.name!r} targets vport "
                f"{qp_spec.vport} which no VportSpec created on "
                f"{qp_spec.node!r}")
        qp = node.driver.create_eth_qp(
            vport=qp_spec.vport,
            use_mmio_wqe=qp_spec.use_mmio_wqe,
            sq_entries=qp_spec.sq_entries,
            rq_entries=qp_spec.rq_entries,
            register_default=qp_spec.register_default,
        )
        if qp_spec.post_rx:
            qp.post_rx_buffers(qp_spec.post_rx)
        testbed.host_qps[qp_spec.name] = qp
    return testbed
