"""The node primitive: PCIe fabric + host memory + NIC + software driver.

This is the only module that assembles a :class:`Node` — experiments
describe nodes in a :class:`~repro.topology.spec.TopologySpec` and let
:func:`~repro.topology.build.build` elaborate them (``repro.testbed``
re-exports the class and thin helpers for backwards compatibility).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..host import CpuCore, HostMemory, SoftwareDriver
from ..nic import BAR_SIZE, ForwardToVport, MatchSpec, Nic, NicConfig
from ..pcie import PcieFabric, PcieLinkConfig
from ..sim import Simulator
from .addrmap import (
    AddressMap,
    HOST_MEM_BASE,
    HOST_MEM_SIZE,
    NIC_BAR_BASE,
)


class Node:
    """One server: PCIe fabric, host memory, NIC, software driver."""

    def __init__(self, sim: Simulator, name: str,
                 nic_config: Optional[NicConfig] = None,
                 core: Optional[CpuCore] = None,
                 pcie_latency: float = 300e-9, host_lanes: int = 8):
        self.sim = sim
        self.name = name
        self.pcie_latency = pcie_latency
        self.addrmap = AddressMap(name)
        self.fabric = PcieFabric(sim)
        self.memory = HostMemory(f"{name}.mem", HOST_MEM_SIZE)
        self.fabric.attach(self.memory,
                           PcieLinkConfig(lanes=host_lanes,
                                          latency=pcie_latency))
        self.map_window("dram", HOST_MEM_BASE, HOST_MEM_SIZE, self.memory)
        self.nic = Nic(sim, self.fabric, f"{name}.nic", nic_config,
                       PcieLinkConfig(lanes=16, latency=pcie_latency))
        self.map_window("nic-bar", NIC_BAR_BASE, BAR_SIZE, self.nic)
        self.core = core if core is not None else CpuCore(sim)
        self.driver = SoftwareDriver(
            sim, self.fabric, self.nic, self.memory, HOST_MEM_BASE,
            NIC_BAR_BASE, core=self.core, name=f"{name}.cpu",
        )
        # mac -> vport already steered by add_vport_for_mac (idempotency
        # guard: the N-tenant builder leans on re-entrant wiring).
        self._fdb_macs: Dict[str, int] = {}
        self._fdb_rules: Dict[str, object] = {}

    def map_window(self, name: str, base: int, size: int, device) -> None:
        """Reserve an address window (overlap-checked) and map it."""
        self.addrmap.reserve(name, base, size)
        self.fabric.map_window(base, size, device)

    def unmap_window(self, name: str) -> None:
        """Release an address window and its fabric BAR."""
        window = self.addrmap.release(name)
        self.fabric.unmap_window(window.base)

    def add_vport_for_mac(self, vport: int, mac) -> None:
        """Create a vPort and steer frames for ``mac`` to it (FDB rule).

        Idempotent: repeating the same (mac, vport) pair is a no-op;
        steering an already-claimed MAC to a *different* vPort raises.
        """
        key = str(mac).lower()
        owner = self._fdb_macs.get(key)
        if owner is not None:
            if owner != vport:
                raise ValueError(
                    f"{self.name}: mac {key} already steered to vport "
                    f"{owner}, cannot re-steer to vport {vport}")
            return
        ctrl = self.driver.ctrl
        ctrl.ensure_vport(vport)
        rule = ctrl.install_rule(
            "fdb", MatchSpec(dst_mac=mac), [ForwardToVport(vport)],
            priority=10,
        )
        self._fdb_macs[key] = vport
        self._fdb_rules[key] = rule

    def remove_vport_for_mac(self, mac) -> None:
        """Undo :meth:`add_vport_for_mac`: drop the FDB rule and destroy
        the vPort once nothing references it."""
        key = str(mac).lower()
        vport = self._fdb_macs.pop(key, None)
        if vport is None:
            return
        ctrl = self.driver.ctrl
        rule = self._fdb_rules.pop(key, None)
        if rule is not None:
            ctrl.try_destroy(rule)
        if vport in (v for v in self._fdb_macs.values()):
            return  # another MAC still steers here
        vport_obj = self.nic.eswitch.vports.get(vport)
        if vport_obj is not None and ctrl.handle_of(vport_obj) is not None:
            ctrl.destroy(vport_obj)

    def teardown(self) -> None:
        """Remove every vPort this node steered (reverse add order)."""
        for key in reversed(list(self._fdb_macs)):
            self.remove_vport_for_mac(key)


def connect(a: Node, b: Node) -> None:
    """Cable two nodes' Ethernet ports back-to-back."""
    a.nic.port.connect(b.nic.port)
