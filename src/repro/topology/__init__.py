"""Declarative topology layer: compose testbeds from one spec.

``TopologySpec`` describes a testbed as data (nodes, links, vPorts,
FLDs, accelerator functions, host QPs); :func:`build` elaborates it
into a live, queryable :class:`Testbed` in a fixed order so identical
specs schedule identically.  :mod:`repro.topology.addrmap` is the one
home of the physical address constants.
"""

from .addrmap import (
    ACCEL_BAR_BASE,
    AddressMap,
    AddressMapError,
    FLD_BAR_BASE,
    HOST_MEM_BASE,
    HOST_MEM_SIZE,
    NIC_BAR_BASE,
    Window,
)
from .build import AccelFn, Testbed, build
from .functions import accel_kinds, make_accelerator, register_kind
from .node import Node, connect
from .spec import (
    AccelFnSpec,
    CORE_ROLES,
    FldSpec,
    HostQpSpec,
    LinkSpec,
    NodeSpec,
    SpecError,
    TopologySpec,
    VportSpec,
)

__all__ = [
    "ACCEL_BAR_BASE",
    "AccelFn",
    "AccelFnSpec",
    "AddressMap",
    "AddressMapError",
    "CORE_ROLES",
    "FLD_BAR_BASE",
    "FldSpec",
    "HOST_MEM_BASE",
    "HOST_MEM_SIZE",
    "HostQpSpec",
    "LinkSpec",
    "NIC_BAR_BASE",
    "Node",
    "NodeSpec",
    "SpecError",
    "Testbed",
    "TopologySpec",
    "VportSpec",
    "Window",
    "accel_kinds",
    "build",
    "connect",
    "make_accelerator",
    "register_kind",
]
