"""Declarative topology layer: compose testbeds from one spec.

``TopologySpec`` describes a testbed as data (nodes, links, vPorts,
FLDs, accelerator functions, host QPs); :func:`build` elaborates it
into a live, queryable :class:`Testbed` in a fixed order so identical
specs schedule identically.  :mod:`repro.topology.addrmap` is the one
home of the physical address constants.

Only the leaf modules (``addrmap``, ``spec``) import eagerly; the
elaborator and :class:`Node` load on first attribute access (PEP 562)
so that :mod:`repro.nic` can take its BAR layout constants from
``addrmap`` without creating an import cycle through ``node``.
"""

from .addrmap import (
    ACCEL_BAR_BASE,
    AddressMap,
    AddressMapError,
    BAR_SIZE,
    CMD_MAILBOX_OFFSET,
    CMD_MAILBOX_SIZE,
    DOORBELL_STRIDE,
    FLD_BAR_BASE,
    HOST_MEM_BASE,
    HOST_MEM_SIZE,
    NIC_BAR_BASE,
    NIC_CMD_DOORBELL,
    RQ_DOORBELL_BASE,
    WQE_MMIO_BASE,
    WQE_MMIO_STRIDE,
    Window,
    nic_bar_layout,
)
from .spec import (
    AccelFnSpec,
    CORE_ROLES,
    FldSpec,
    HostQpSpec,
    LinkSpec,
    NodeSpec,
    SpecError,
    TopologySpec,
    VportSpec,
)

_LAZY = {
    "AccelFn": ("build", "AccelFn"),
    "Testbed": ("build", "Testbed"),
    "build": ("build", "build"),
    "accel_kinds": ("functions", "accel_kinds"),
    "make_accelerator": ("functions", "make_accelerator"),
    "register_kind": ("functions", "register_kind"),
    "Node": ("node", "Node"),
    "connect": ("node", "connect"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module
    value = getattr(import_module(f".{module_name}", __name__), attr)
    globals()[name] = value
    return value


__all__ = [
    "ACCEL_BAR_BASE",
    "AccelFn",
    "AccelFnSpec",
    "AddressMap",
    "AddressMapError",
    "BAR_SIZE",
    "CMD_MAILBOX_OFFSET",
    "CMD_MAILBOX_SIZE",
    "CORE_ROLES",
    "DOORBELL_STRIDE",
    "FLD_BAR_BASE",
    "FldSpec",
    "HOST_MEM_BASE",
    "HOST_MEM_SIZE",
    "HostQpSpec",
    "LinkSpec",
    "NIC_BAR_BASE",
    "NIC_CMD_DOORBELL",
    "Node",
    "NodeSpec",
    "RQ_DOORBELL_BASE",
    "SpecError",
    "Testbed",
    "TopologySpec",
    "VportSpec",
    "WQE_MMIO_BASE",
    "WQE_MMIO_STRIDE",
    "Window",
    "accel_kinds",
    "build",
    "connect",
    "make_accelerator",
    "nic_bar_layout",
    "register_kind",
]
