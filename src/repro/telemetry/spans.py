"""Causal per-packet span trees for latency attribution.

The paper's latency story (Table 6, Fig. 7c) is an *attribution* claim:
end-to-end latency decomposes into doorbell, descriptor fetch, DMA,
wire, and completion stages.  This module provides the mechanism for
making that decomposition observable in the simulator: each sampled
packet carries a :class:`TraceContext` through the datapath, and every
stage it crosses records a :class:`Span` (enter/exit timestamps) into
the packet's trace.

Design notes
------------

* A context is a tiny value-object handle.  Components propagate it
  side-band — in ``Packet.meta``, on live ``TxWqe``/``Cqe`` objects, in
  TLP metadata — and hand it back to the recorder together with
  timestamps.  Stages never mutate the trace directly.
* The datapath crosses two byte-serialization boundaries where object
  identity dies (WQEs packed into MMIO/host-memory rings, CQEs DMA-ed
  as bytes).  Two bridges survive them:

  - a *stash/claim* registry keyed by ``(kind, scope, qpn, index)`` for
    descriptors fetched from host-memory rings, and
  - the PCIe fabric's *inbound context* — the context attached to the
    TLP currently being delivered — which the receiving endpoint may
    claim inside ``handle_write``.

* Sampling is deterministic: the ``sample_rate``-th, ``2×sample_rate``-th,
  ... calls to :meth:`SpanRecorder.start_trace` return a context; the
  rest return ``None``.  Every instrumentation site guards on
  ``ctx is not None``, so an unsampled packet costs one attribute read
  per stage.  With spans disabled entirely, :data:`NULL_SPANS` keeps
  ``start_trace`` returning ``None`` and the fast path identical to the
  PR 1 NullSink baseline.

* When a trace's root ends, the recorder attributes the root interval
  across its spans (see :func:`attribute_trace`) and feeds per-stage
  log2 histograms in the attached metrics registry under
  ``spans.stage.<stage>.<kind>`` — which makes stage latencies merge
  across sweep points through the PR 2 result cache for free.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Span",
    "Trace",
    "TraceContext",
    "SpanRecorder",
    "NullSpanRecorder",
    "NULL_SPANS",
    "attribute_trace",
    "SPAN_SCHEMA_VERSION",
]

#: Version stamp embedded in exported span JSON (see DESIGN.md).
SPAN_SCHEMA_VERSION = 1

KIND_SERVICE = "service"
KIND_QUEUE = "queue"


class TraceContext:
    """Opaque handle carried by one packet through the datapath."""

    __slots__ = ("trace_id",)

    def __init__(self, trace_id: int):
        self.trace_id = trace_id

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id})"


class Span:
    """One stage crossing: ``[start, end)`` at ``stage``.

    ``end`` is ``None`` while the packet is inside the stage; a span
    whose trace has ended but whose ``end`` is still ``None`` is an
    *orphan* — the invariant auditor reports it.
    """

    __slots__ = ("span_id", "trace_id", "stage", "kind", "start", "end")

    def __init__(self, span_id: int, trace_id: int, stage: str,
                 kind: str, start: float, end: Optional[float] = None):
        self.span_id = span_id
        self.trace_id = trace_id
        self.stage = stage
        self.kind = kind
        self.start = start
        self.end = end

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "stage": self.stage,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
        }

    def __repr__(self) -> str:
        return (f"Span({self.stage!r}, kind={self.kind}, "
                f"[{self.start}, {self.end}])")


class Trace:
    """The span tree of one packet: a root interval plus stage spans."""

    __slots__ = ("trace_id", "name", "start", "end", "spans", "events")

    def __init__(self, trace_id: int, name: str, start: float):
        self.trace_id = trace_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.spans: List[Span] = []
        self.events: List[Tuple[float, str]] = []

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def orphan_spans(self) -> List[Span]:
        """Spans never exited although the root interval has ended."""
        if self.end is None:
            return []
        return [span for span in self.spans if span.end is None]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "spans": [span.to_dict() for span in self.spans],
            "events": [{"time": t, "name": n} for t, n in self.events],
        }


def attribute_trace(trace: Trace) -> Tuple[Dict[Tuple[str, str], float],
                                           float]:
    """Partition the root interval among its spans.

    Every instant of ``[trace.start, trace.end)`` is attributed to the
    *innermost* span open at that instant — the open span that entered
    last — so overlapping spans (a DMA read prefetched behind a
    pipeline stage, a queue wait nested in an engine span) are never
    double-counted.  Instants covered by no span fall into the
    ``unattributed`` residue.  By construction the per-stage sums plus
    the residue equal the end-to-end duration (up to float rounding),
    which is what lets the latency report reconcile exactly.

    Returns ``({(stage, kind): seconds}, unattributed_seconds)``.
    Spans are clamped to the root interval; an unfinished span is
    treated as ending at the root's end (the auditor reports it
    separately).
    """
    if trace.end is None:
        raise ValueError(f"trace {trace.trace_id} has not ended")
    root_start, root_end = trace.start, trace.end
    clamped: List[Tuple[float, float, Span]] = []
    for span in trace.spans:
        end = span.end if span.end is not None else root_end
        start = max(span.start, root_start)
        end = min(end, root_end)
        if end > start:
            clamped.append((start, end, span))

    totals: Dict[Tuple[str, str], float] = {}
    unattributed = 0.0
    boundaries = {root_start, root_end}
    for start, end, _span in clamped:
        boundaries.add(start)
        boundaries.add(end)
    cuts = sorted(boundaries)
    for left, right in zip(cuts, cuts[1:]):
        # The innermost open span: latest entry wins; ties broken by
        # creation order so back-to-back stages partition cleanly.
        innermost: Optional[Span] = None
        innermost_key = None
        for start, end, span in clamped:
            if start <= left and end >= right:
                key = (start, span.span_id)
                if innermost_key is None or key > innermost_key:
                    innermost_key = key
                    innermost = span
        width = right - left
        if innermost is None:
            unattributed += width
        else:
            stage_key = (innermost.stage, innermost.kind)
            totals[stage_key] = totals.get(stage_key, 0.0) + width
    return totals, unattributed


class SpanRecorder:
    """Records per-packet span trees with deterministic sampling.

    Parameters
    ----------
    sample_rate:
        Trace one in every ``sample_rate`` packets (1 = every packet).
    max_traces:
        Hard cap on retained traces; once reached, ``start_trace``
        returns ``None`` and bumps :attr:`dropped`.
    registry:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry`.
        When set, finished traces feed ``spans.stage.<stage>.<kind>``,
        ``spans.e2e`` and ``spans.unattributed`` histograms — the
        mergeable aggregate view used by sweeps.
    """

    enabled = True

    def __init__(self, sample_rate: int = 1, max_traces: int = 100_000,
                 registry=None):
        if sample_rate < 1:
            raise ValueError("sample_rate must be >= 1")
        self.sample_rate = sample_rate
        self.max_traces = max_traces
        self.registry = registry
        self.sampled = 0         # traces actually started
        self.skipped = 0         # offers declined by 1-in-N sampling
        self.dropped = 0         # offers declined by the max_traces cap
        self._seen = 0           # packets offered to start_trace
        self._next_trace = 1
        self._next_span = 1
        self._traces: Dict[int, Trace] = {}
        self._spans: Dict[int, Span] = {}
        self._stash: Dict[Any, TraceContext] = {}

    # -- trace lifecycle -------------------------------------------------
    def start_trace(self, name: str, now: float) -> Optional[TraceContext]:
        """Begin a trace for this packet, or ``None`` if unsampled.

        Every offer is accounted: ``sampled + skipped + dropped ==
        seen``, and the same tallies feed ``spans.sampler.*`` counters
        in the registry so sweep-merged exports say how much of the
        traffic the attribution actually observed.
        """
        self._seen += 1
        if (self._seen - 1) % self.sample_rate != 0:
            self.skipped += 1
            if self.registry is not None:
                self.registry.counter("spans.sampler.skipped").inc()
            return None
        if len(self._traces) >= self.max_traces:
            self.dropped += 1
            if self.registry is not None:
                self.registry.counter("spans.sampler.dropped").inc()
            return None
        self.sampled += 1
        if self.registry is not None:
            self.registry.counter("spans.sampler.sampled").inc()
        trace_id = self._next_trace
        self._next_trace += 1
        self._traces[trace_id] = Trace(trace_id, name, now)
        return TraceContext(trace_id)

    @property
    def seen(self) -> int:
        """Packets offered to :meth:`start_trace` so far."""
        return self._seen

    def end_trace(self, ctx: Optional[TraceContext], now: float) -> None:
        if ctx is None:
            return
        trace = self._traces.get(ctx.trace_id)
        if trace is None or trace.end is not None:
            return
        trace.end = now
        if self.registry is not None:
            self._observe(trace)

    # -- span recording --------------------------------------------------
    def enter(self, ctx: Optional[TraceContext], stage: str, now: float,
              kind: str = KIND_SERVICE) -> Optional[int]:
        """Open a span; returns a handle for :meth:`exit` (or None)."""
        if ctx is None:
            return None
        trace = self._traces.get(ctx.trace_id)
        if trace is None:
            return None
        span_id = self._next_span
        self._next_span += 1
        span = Span(span_id, trace.trace_id, stage, kind, now)
        trace.spans.append(span)
        self._spans[span_id] = span
        return span_id

    def exit(self, span_id: Optional[int], now: float) -> None:
        if span_id is None:
            return
        span = self._spans.pop(span_id, None)
        if span is not None and span.end is None:
            span.end = now

    def record(self, ctx: Optional[TraceContext], stage: str,
               start: float, end: float,
               kind: str = KIND_SERVICE) -> None:
        """Record a closed span retroactively (start/end both known)."""
        if ctx is None:
            return
        trace = self._traces.get(ctx.trace_id)
        if trace is None:
            return
        span_id = self._next_span
        self._next_span += 1
        trace.spans.append(
            Span(span_id, trace.trace_id, stage, kind, start, end))

    def event(self, ctx: Optional[TraceContext], name: str,
              now: float) -> None:
        """Attach a point annotation (e.g. ``rdma.retransmit``)."""
        if ctx is None:
            return
        trace = self._traces.get(ctx.trace_id)
        if trace is not None:
            trace.events.append((now, name))

    # -- serialization-boundary bridges ----------------------------------
    def stash(self, key: Any, ctx: Optional[TraceContext]) -> None:
        """Park a context under ``key`` across a byte boundary.

        Keys must be scoped to the consuming device (e.g.
        ``("wqe", nic_name, qpn, index)``) — the two NICs of a remote
        setup share a qpn space.
        """
        if ctx is None:
            return
        self._stash[key] = ctx

    def claim(self, key: Any) -> Optional[TraceContext]:
        """Retrieve-and-remove a stashed context (None if absent)."""
        return self._stash.pop(key, None)

    def pending_stashes(self) -> List[Any]:
        """Stash keys never claimed — a propagation leak indicator."""
        return list(self._stash)

    # -- introspection ---------------------------------------------------
    @property
    def traces(self) -> List[Trace]:
        return list(self._traces.values())

    def get_trace(self, ctx_or_id) -> Optional[Trace]:
        trace_id = getattr(ctx_or_id, "trace_id", ctx_or_id)
        return self._traces.get(trace_id)

    def finished_traces(self) -> List[Trace]:
        return [t for t in self._traces.values() if t.end is not None]

    def unfinished_traces(self) -> List[Trace]:
        return [t for t in self._traces.values() if t.end is None]

    def orphan_spans(self) -> List[Span]:
        orphans: List[Span] = []
        for trace in self._traces.values():
            orphans.extend(trace.orphan_spans())
        return orphans

    def __len__(self) -> int:
        return len(self._traces)

    def to_dict(self) -> Dict[str, Any]:
        """Export all traces (the span JSON schema in DESIGN.md)."""
        return {
            "schema": SPAN_SCHEMA_VERSION,
            "sample_rate": self.sample_rate,
            "seen": self._seen,
            "sampled": self.sampled,
            "skipped": self.skipped,
            "dropped": self.dropped,
            "traces": [t.to_dict()
                       for t in sorted(self._traces.values(),
                                       key=lambda t: t.trace_id)],
        }

    # -- aggregation -----------------------------------------------------
    def _observe(self, trace: Trace) -> None:
        """Feed a finished trace into the metrics registry."""
        totals, unattributed = attribute_trace(trace)
        registry = self.registry
        registry.histogram("spans.e2e").observe(trace.end - trace.start)
        registry.histogram("spans.unattributed").observe(unattributed)
        for (stage, kind), seconds in totals.items():
            registry.histogram(f"spans.stage.{stage}.{kind}") \
                .observe(seconds)


class NullSpanRecorder:
    """No-op twin of :class:`SpanRecorder` — the disabled fast path.

    ``start_trace`` returns ``None``, so every downstream guard
    (``ctx is not None``) short-circuits and no per-packet state is
    kept.  Mirrors the full public API (see the shared-interface test).
    """

    enabled = False
    sample_rate = 0
    max_traces = 0
    registry = None
    seen = 0
    sampled = 0
    skipped = 0
    dropped = 0

    def start_trace(self, name: str, now: float) -> Optional[TraceContext]:
        return None

    def end_trace(self, ctx, now: float) -> None:
        return None

    def enter(self, ctx, stage: str, now: float,
              kind: str = KIND_SERVICE) -> Optional[int]:
        return None

    def exit(self, span_id, now: float) -> None:
        return None

    def record(self, ctx, stage: str, start: float, end: float,
               kind: str = KIND_SERVICE) -> None:
        return None

    def event(self, ctx, name: str, now: float) -> None:
        return None

    def stash(self, key, ctx) -> None:
        return None

    def claim(self, key) -> Optional[TraceContext]:
        return None

    def pending_stashes(self) -> List[Any]:
        return []

    @property
    def traces(self) -> List[Trace]:
        return []

    def get_trace(self, ctx_or_id) -> Optional[Trace]:
        return None

    def finished_traces(self) -> List[Trace]:
        return []

    def unfinished_traces(self) -> List[Trace]:
        return []

    def orphan_spans(self) -> List[Span]:
        return []

    def __len__(self) -> int:
        return 0

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": SPAN_SCHEMA_VERSION, "sample_rate": 0,
                "seen": 0, "sampled": 0, "skipped": 0, "dropped": 0,
                "traces": []}


#: Shared no-op recorder used when span tracing is disabled.
NULL_SPANS = NullSpanRecorder()
