"""Unified tracing + metrics for the simulated datapath.

Three pieces:

* :mod:`repro.telemetry.metrics` — the :class:`MetricsRegistry` of
  hierarchically-named counters, gauges and log-bucketed histograms,
  with JSON export and snapshot-diff;
* :mod:`repro.telemetry.trace` — the :class:`Tracer` recording spans and
  instants against the simulator clock, exported as Chrome
  ``chrome://tracing`` / Perfetto JSON;
* :mod:`repro.telemetry.sink` — the :class:`Telemetry` bundle and the
  :data:`NULL_TELEMETRY` fast path used when telemetry is off;
* :mod:`repro.telemetry.spans` — causal per-packet span trees
  (:class:`SpanRecorder`) for latency attribution, with
  :mod:`repro.telemetry.latency` building Table-6-style per-stage
  reports and :mod:`repro.telemetry.audit` checking runtime invariants
  (orphaned spans, credit/buffer leaks, retransmit storms);
* :mod:`repro.telemetry.profile` — the deterministic simulator profiler
  (:class:`SimProfiler`): per-event owner tagging in the engine run
  loop, per-stage event attribution, heap-depth timeline and optional
  wall-clock callsite totals with collapsed-stack output.

Usage: build a :class:`Telemetry`, hand it to the simulator, and every
instrumented component lights up::

    from repro.sim import Simulator
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    sim = Simulator(telemetry=telemetry)
    ...  # build testbed, run experiment
    telemetry.tracer.write("trace.json")       # open in ui.perfetto.dev
    print(telemetry.metrics.to_json())

(:mod:`repro.telemetry.runner`, which drives whole experiments under a
tracer for ``python -m repro trace``, is deliberately not imported here:
it depends on the experiment layer, while this package must stay
importable from the simulation core.)
"""

from .audit import (
    AuditError,
    Violation,
    assert_clean,
    audit_all,
    audit_fabric,
    audit_fld,
    audit_nic,
    audit_spans,
)
from .latency import build_report, render_report, report_from_registry
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    Snapshot,
)
from .profile import NULL_PROFILER, NullSimProfiler, SimProfiler
from .spans import (
    NULL_SPANS,
    NullSpanRecorder,
    Span,
    SpanRecorder,
    Trace,
    TraceContext,
    attribute_trace,
)
from .sink import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    NULL_TELEMETRY,
    NullRegistry,
    NullTelemetry,
    Telemetry,
)
from .trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "AuditError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "NULL_SPANS",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullSimProfiler",
    "NullSpanRecorder",
    "NullTelemetry",
    "NullTracer",
    "SimProfiler",
    "Snapshot",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "Trace",
    "TraceContext",
    "Tracer",
    "Violation",
    "assert_clean",
    "attribute_trace",
    "audit_all",
    "audit_fabric",
    "audit_fld",
    "audit_nic",
    "audit_spans",
    "build_report",
    "render_report",
    "report_from_registry",
]
