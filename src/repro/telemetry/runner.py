"""Run one experiment under full telemetry and export its trace.

This is the implementation behind ``python -m repro trace <experiment>``:
it builds an enabled :class:`~repro.telemetry.sink.Telemetry`, hands it
to the experiment (which passes it into its :class:`repro.sim.Simulator`),
and writes the recorded span/instant events as Chrome-trace JSON that
``chrome://tracing`` or https://ui.perfetto.dev load directly.

Kept out of :mod:`repro.telemetry`'s ``__init__`` on purpose: importing
the experiments pulls in the whole simulated datapath, while the rest of
the telemetry package stays dependency-free so :mod:`repro.sim` can
import it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from .sink import Telemetry


def _run_fig7b(telemetry: Telemetry, count: int, size: int) -> Dict:
    from ..experiments.echo import echo_throughput
    return echo_throughput("flde-remote", size, count=count,
                           telemetry=telemetry)


def _run_table6(telemetry: Telemetry, count: int, size: int) -> Dict:
    from ..experiments.echo import echo_latency
    return echo_latency("flde", count=count, frame_size=size,
                        telemetry=telemetry)


def _run_forwarding(telemetry: Telemetry, count: int, size: int) -> Dict:
    from ..experiments.echo import trace_forwarding
    return trace_forwarding("flde", count=count, telemetry=telemetry)


def _run_fldr(telemetry: Telemetry, count: int, size: int) -> Dict:
    from ..experiments.echo import fldr_throughput
    return fldr_throughput(size, count=count, telemetry=telemetry)


# experiment name -> (runner, default count, default size)
TRACEABLE: Dict[str, Tuple[Callable[[Telemetry, int, int], Dict], int, int]] = {
    "fig7b": (_run_fig7b, 700, 256),
    "table6": (_run_table6, 300, 64),
    "forwarding": (_run_forwarding, 2000, 0),
    "fldr": (_run_fldr, 200, 1024),
}


def traceable_experiments() -> Dict[str, str]:
    """Name -> short description, for ``--list`` and error messages."""
    return {
        "fig7b": "FLD-E remote echo throughput (one Fig. 7b point)",
        "table6": "FLD-E closed-loop echo latency (Table 6)",
        "forwarding": "mixed-size trace forwarding (§8.1.1)",
        "fldr": "FLD-R RDMA echo throughput (§8.1.2)",
    }


def run_traced(experiment: str, output: str,
               count: Optional[int] = None, size: Optional[int] = None,
               metrics_output: Optional[str] = None,
               max_trace_events: int = 1_000_000) -> Dict:
    """Run ``experiment`` with telemetry on; write the Chrome trace.

    Returns a summary dict: the experiment's own result row plus event
    and metric counts.  ``metrics_output``, when given, receives the
    registry's JSON export alongside the trace.
    """
    try:
        runner, default_count, default_size = TRACEABLE[experiment]
    except KeyError:
        known = ", ".join(sorted(TRACEABLE))
        raise ValueError(
            f"unknown traceable experiment {experiment!r}; "
            f"choose from: {known}") from None
    telemetry = Telemetry(trace=True, max_trace_events=max_trace_events)
    result = runner(telemetry,
                    count if count is not None else default_count,
                    size if size is not None else default_size)
    telemetry.tracer.write(output)
    if metrics_output is not None:
        with open(metrics_output, "w", encoding="utf-8") as handle:
            handle.write(telemetry.metrics.to_json())
    return {
        "experiment": experiment,
        "result": result,
        "trace_events": len(telemetry.tracer),
        "trace_dropped": telemetry.tracer.dropped,
        "metrics": len(telemetry.metrics),
        "output": output,
    }
