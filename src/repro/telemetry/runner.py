"""Run one experiment under full telemetry and export its trace.

This is the implementation behind ``python -m repro trace <experiment>``:
it builds an enabled :class:`~repro.telemetry.sink.Telemetry`, hands it
to the experiment (which passes it into its :class:`repro.sim.Simulator`),
and writes the recorded span/instant events as Chrome-trace JSON that
``chrome://tracing`` or https://ui.perfetto.dev load directly.

Kept out of :mod:`repro.telemetry`'s ``__init__`` on purpose: importing
the experiments pulls in the whole simulated datapath, while the rest of
the telemetry package stays dependency-free so :mod:`repro.sim` can
import it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .sink import Telemetry


def _run_fig7b(telemetry: Telemetry, count: int, size: int) -> Dict:
    from ..experiments.echo import echo_throughput
    return echo_throughput("flde-remote", size, count=count,
                           telemetry=telemetry)


def _run_table6(telemetry: Telemetry, count: int, size: int) -> Dict:
    from ..experiments.echo import echo_latency
    return echo_latency("flde", count=count, frame_size=size,
                        telemetry=telemetry)


def _run_forwarding(telemetry: Telemetry, count: int, size: int) -> Dict:
    from ..experiments.echo import trace_forwarding
    return trace_forwarding("flde", count=count, telemetry=telemetry)


def _run_fldr(telemetry: Telemetry, count: int, size: int) -> Dict:
    from ..experiments.echo import fldr_throughput
    return fldr_throughput(size, count=count, telemetry=telemetry)


# experiment name -> (runner, default count, default size)
TRACEABLE: Dict[str, Tuple[Callable[[Telemetry, int, int], Dict], int, int]] = {
    "fig7b": (_run_fig7b, 700, 256),
    "table6": (_run_table6, 300, 64),
    "forwarding": (_run_forwarding, 2000, 0),
    "fldr": (_run_fldr, 200, 1024),
}


def traceable_experiments() -> Dict[str, str]:
    """Name -> short description, for ``--list`` and error messages."""
    return {
        "fig7b": "FLD-E remote echo throughput (one Fig. 7b point)",
        "table6": "FLD-E closed-loop echo latency (Table 6)",
        "forwarding": "mixed-size trace forwarding (§8.1.1)",
        "fldr": "FLD-R RDMA echo throughput (§8.1.2)",
    }


def run_traced(experiment: str, output: str,
               count: Optional[int] = None, size: Optional[int] = None,
               metrics_output: Optional[str] = None,
               max_trace_events: int = 1_000_000) -> Dict:
    """Run ``experiment`` with telemetry on; write the Chrome trace.

    Returns a summary dict: the experiment's own result row plus event
    and metric counts.  ``metrics_output``, when given, receives the
    registry's JSON export alongside the trace.
    """
    try:
        runner, default_count, default_size = TRACEABLE[experiment]
    except KeyError:
        known = ", ".join(sorted(TRACEABLE))
        raise ValueError(
            f"unknown traceable experiment {experiment!r}; "
            f"choose from: {known}") from None
    telemetry = Telemetry(trace=True, max_trace_events=max_trace_events)
    result = runner(telemetry,
                    count if count is not None else default_count,
                    size if size is not None else default_size)
    telemetry.tracer.write(output)
    if metrics_output is not None:
        with open(metrics_output, "w", encoding="utf-8") as handle:
            handle.write(telemetry.metrics.to_json())
    return {
        "experiment": experiment,
        "result": result,
        "trace_events": len(telemetry.tracer),
        "trace_dropped": telemetry.tracer.dropped,
        "metrics": len(telemetry.metrics),
        "output": output,
    }


# ---------------------------------------------------------------------------
# Object-table dump (``python -m repro objects <experiment>``)
# ---------------------------------------------------------------------------
#
# Every NIC resource an experiment uses is created through the firmware
# command channel, so the per-node object tables are a complete
# inventory of the control-plane state an experiment sets up.  These
# runners elaborate the experiment's testbed — construction is
# synchronous, no simulation time elapses — and dump the tables.


def object_experiments() -> Dict[str, str]:
    """Name -> short description, for ``--list`` and error messages."""
    return {
        "echo": "FLD-E remote echo testbed (client + server + FLD)",
        "cpu-echo": "CPU-baseline remote echo testbed (no FLD)",
        "forwarding": "FLD-E forwarding testbed (4 engine units)",
        "fldr": "FLD-R RDMA echo testbed (RC QP + shared RQ)",
    }


def run_objects(experiment: str) -> Dict:
    """Elaborate ``experiment``'s testbed; dump each node's firmware
    object table (no packets are sent).

    Returns ``{"experiment", "nodes": {node -> [row, ...]}}`` where each
    row is an :meth:`ObjectTable.rows` dict (handle, kind, label,
    refcount, deps).
    """
    from ..experiments.setups import Calibration, cpu_echo_remote, \
        flde_echo_remote, fldr_echo
    from ..sim import Simulator
    builders: Dict[str, Callable] = {
        "echo": lambda sim, cal: flde_echo_remote(sim, cal),
        "cpu-echo": lambda sim, cal: cpu_echo_remote(sim, cal),
        "forwarding": lambda sim, cal: flde_echo_remote(sim, cal, units=4),
        "fldr": lambda sim, cal: fldr_echo(sim, cal),
    }
    try:
        builder = builders[experiment]
    except KeyError:
        known = ", ".join(sorted(builders))
        raise ValueError(
            f"unknown objects experiment {experiment!r}; "
            f"choose from: {known}") from None
    sim = Simulator()
    setup = builder(sim, Calibration())
    return {
        "experiment": experiment,
        "nodes": setup.testbed.objects(),
    }


# ---------------------------------------------------------------------------
# Latency attribution (``python -m repro latency <experiment>``)
# ---------------------------------------------------------------------------
#
# Unlike ``run_traced``, these runners build the experiment setup
# themselves instead of calling :mod:`repro.experiments.echo`'s entry
# points: the invariant auditor needs live handles on the FLD cores and
# NICs after quiesce, and the experiment functions only return result
# rows.  The simulation driven here is the same one those entry points
# run.


def _drive(sim, process, until: float) -> None:
    sim.spawn(process)
    sim.run(until=until)


def _echo_setup(telemetry: Telemetry, mode: str):
    from ..experiments.setups import Calibration, cpu_echo_remote, \
        flde_echo_remote
    from ..sim import Simulator
    sim = Simulator(telemetry=telemetry)
    cal = Calibration()
    if mode == "flde":
        setup = flde_echo_remote(sim, cal)
        flds = [setup.runtime.fld]
    elif mode == "flde-forwarding":
        setup = flde_echo_remote(sim, cal, units=4)
        flds = [setup.runtime.fld]
    else:
        setup = cpu_echo_remote(sim, cal, jitter=True)
        flds = []
    nics = [setup.client.nic]
    if setup.server is not setup.client:
        nics.append(setup.server.nic)
    return sim, setup, flds, nics


def _lat_closed_loop(telemetry: Telemetry, count: int, size: int,
                     mode: str):
    sim, setup, flds, nics = _echo_setup(telemetry, mode)
    loadgen = setup.loadgen

    def run(sim):
        yield from loadgen.run_closed_loop(size, count, window=1)
        yield from loadgen.drain()

    _drive(sim, run(sim), until=10.0)
    summary = loadgen.latency.summary()
    result = {
        "mode": mode,
        "count": len(loadgen.latency),
        "mean_us": summary["mean"] * 1e6,
        "median_us": summary["median"] * 1e6,
        "p99_us": summary["p99"] * 1e6,
    }
    return result, flds, nics


def _lat_echo_flde(telemetry: Telemetry, count: int, size: int):
    return _lat_closed_loop(telemetry, count, size, "flde")


def _lat_echo_cpu(telemetry: Telemetry, count: int, size: int):
    return _lat_closed_loop(telemetry, count, size, "cpu")


def _lat_forwarding(telemetry: Telemetry, count: int, size: int):
    from ..net import ImcDatacenterSizes
    sim, setup, flds, nics = _echo_setup(telemetry, "flde-forwarding")
    loadgen = setup.loadgen
    sizes = ImcDatacenterSizes(seed=7).sizes(count)

    def run(sim):
        yield from loadgen.run_open_loop(sizes)
        yield from loadgen.drain()

    _drive(sim, run(sim), until=5.0)
    result = {
        "mode": "flde",
        "sent": loadgen.stats_sent,
        "received": loadgen.stats_received,
        "mpps": loadgen.rx_meter.mpps(),
    }
    return result, flds, nics


# experiment name -> (runner, default count, default size,
#                     expect fully-drained traces)
LATENCY_TRACEABLE: Dict[str, Tuple[Callable, int, int, bool]] = {
    "echo": (_lat_echo_flde, 300, 64, True),
    "cpu-echo": (_lat_echo_cpu, 300, 64, True),
    "forwarding": (_lat_forwarding, 800, 0, False),
}


def latency_experiments() -> Dict[str, str]:
    """Name -> short description, for ``--list`` and error messages."""
    return {
        "echo": "FLD-E closed-loop echo, per-stage breakdown (Table 6)",
        "cpu-echo": "CPU-baseline closed-loop echo breakdown",
        "forwarding": "mixed-size trace forwarding breakdown (open loop)",
    }


def run_latency(experiment: str, count: Optional[int] = None,
                size: Optional[int] = None, sample_rate: int = 1,
                json_output: Optional[str] = None,
                max_traces: int = 200_000) -> Dict:
    """Run ``experiment`` with span tracing; build the attribution report.

    Returns ``{"experiment", "result", "report", "violations", ...}``.
    The report is the exact-attribution kind (:func:`build_report`): for
    every traced packet the per-stage sums reconcile with its end-to-end
    latency.  ``violations`` comes from the invariant auditor run over
    the span stream, the FLD cores and the NICs after quiesce.  With
    ``json_output`` the report, the violations and the full span trees
    are written as one JSON document.
    """
    try:
        runner, default_count, default_size, expect_complete = \
            LATENCY_TRACEABLE[experiment]
    except KeyError:
        known = ", ".join(sorted(LATENCY_TRACEABLE))
        raise ValueError(
            f"unknown latency experiment {experiment!r}; "
            f"choose from: {known}") from None
    telemetry = Telemetry(trace=False, spans=True,
                          span_sample_rate=sample_rate,
                          max_traces=max_traces)
    result, flds, nics = runner(
        telemetry,
        count if count is not None else default_count,
        size if size is not None else default_size)

    from .audit import audit_all
    from .latency import build_report
    # Open-loop runs may legitimately quiesce with dropped (hence
    # unfinished) traces; closed-loop runs must drain completely.
    fabrics = list({id(nic.fabric): nic.fabric for nic in nics}.values())
    violations = audit_all(spans=telemetry.spans, flds=flds, nics=nics,
                           fabrics=fabrics,
                           expect_complete=expect_complete)
    report = build_report(telemetry.spans, registry=telemetry.metrics)
    spans = telemetry.spans
    summary = {
        "experiment": experiment,
        "sample_rate": sample_rate,
        "result": result,
        "report": report,
        "violations": [v.to_dict() for v in violations],
        "traces": len(spans),
        "sampler": {"seen": spans.seen, "sampled": spans.sampled,
                    "skipped": spans.skipped, "dropped": spans.dropped},
    }
    if json_output is not None:
        import json
        document = dict(summary)
        document["spans"] = telemetry.spans.to_dict()
        with open(json_output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
        summary["json_output"] = json_output
    return summary


# ---------------------------------------------------------------------------
# Simulator profiling (``python -m repro profile <experiment>``)
# ---------------------------------------------------------------------------
#
# Same live-handle pattern as the latency runners: the auditor needs the
# FLD cores and NICs after quiesce, and the profiler report needs the
# delivered-packet count to express events per packet.


def _prof_throughput(telemetry: Telemetry, count: int, size: int,
                     mode: str):
    sim, setup, flds, nics = _echo_setup(telemetry, mode)
    loadgen = setup.loadgen
    # Offer line rate for this size, exactly as the Fig. 7b points do.
    rate_pps = 25e9 / ((size + 24) * 8)

    def run(sim):
        yield from loadgen.run_open_loop([size] * count, rate_pps=rate_pps)
        yield from loadgen.drain()

    _drive(sim, run(sim), until=2.0)
    result = {
        "mode": mode,
        "size": size,
        "sent": loadgen.stats_sent,
        "received": loadgen.stats_received,
        "gbps": loadgen.rx_meter.gbps(wire_overhead_per_packet=24),
        "mpps": loadgen.rx_meter.mpps(),
    }
    return result, flds, nics, loadgen.stats_received


def _prof_echo(telemetry: Telemetry, count: int, size: int):
    return _prof_throughput(telemetry, count, size, "flde")


def _prof_cpu_echo(telemetry: Telemetry, count: int, size: int):
    return _prof_throughput(telemetry, count, size, "cpu")


def _prof_forwarding(telemetry: Telemetry, count: int, size: int):
    from ..net import ImcDatacenterSizes
    sim, setup, flds, nics = _echo_setup(telemetry, "flde-forwarding")
    loadgen = setup.loadgen
    sizes = ImcDatacenterSizes(seed=7).sizes(count)

    def run(sim):
        yield from loadgen.run_open_loop(sizes)
        yield from loadgen.drain()

    _drive(sim, run(sim), until=5.0)
    result = {
        "mode": "flde",
        "sent": loadgen.stats_sent,
        "received": loadgen.stats_received,
        "mpps": loadgen.rx_meter.mpps(),
    }
    return result, flds, nics, loadgen.stats_received


# experiment name -> (runner, default count, default size)
PROFILEABLE: Dict[str, Tuple[Callable, int, int]] = {
    "echo": (_prof_echo, 600, 256),
    "cpu-echo": (_prof_cpu_echo, 600, 256),
    "forwarding": (_prof_forwarding, 1500, 0),
}


def profile_experiments() -> Dict[str, str]:
    """Name -> short description, for ``--list`` and error messages."""
    return {
        "echo": "FLD-E remote echo, per-stage event accounting",
        "cpu-echo": "CPU-baseline remote echo event accounting",
        "forwarding": "mixed-size trace forwarding event accounting",
    }


def run_profile(experiment: str, count: Optional[int] = None,
                size: Optional[int] = None, wallclock: bool = False,
                json_output: Optional[str] = None,
                collapsed_output: Optional[str] = None,
                top: int = 10) -> Dict:
    """Run ``experiment`` under the simulator profiler.

    Returns ``{"experiment", "result", "profile", "violations", ...}``.
    The profile reports per-stage heap-event counts (which sum exactly
    to the engine's total event count), events per delivered packet, a
    heap-depth timeline and — with ``wallclock=True`` — per-callsite
    wall-clock totals plus collapsed-stack lines for flamegraph tools.
    ``violations`` comes from the invariant auditor run over the FLD
    cores and NICs after quiesce.
    """
    try:
        runner, default_count, default_size = PROFILEABLE[experiment]
    except KeyError:
        known = ", ".join(sorted(PROFILEABLE))
        raise ValueError(
            f"unknown profile experiment {experiment!r}; "
            f"choose from: {known}") from None
    telemetry = Telemetry(trace=False, profile=True,
                          profile_wallclock=wallclock)
    result, flds, nics, delivered = runner(
        telemetry,
        count if count is not None else default_count,
        size if size is not None else default_size)

    from .audit import audit_all
    fabrics = list({id(nic.fabric): nic.fabric for nic in nics}.values())
    violations = audit_all(flds=flds, nics=nics, fabrics=fabrics)
    profiler = telemetry.profiler
    summary = {
        "experiment": experiment,
        "result": result,
        "delivered": delivered,
        "profile": profiler.report(delivered=delivered),
        "engine_events": telemetry.metrics.counter(
            "sim.events.processed").value,
        "violations": [v.to_dict() for v in violations],
    }
    if json_output is not None:
        import json
        with open(json_output, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
        summary["json_output"] = json_output
    if collapsed_output is not None:
        with open(collapsed_output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(profiler.collapsed_stacks()) + "\n")
        summary["collapsed_output"] = collapsed_output
    # Rendered after the artifacts so the text can't drift from them.
    summary["rendered"] = profiler.render(delivered=delivered, top=top)
    return summary


def run_latency_sweep(experiment: str = "table6",
                      jobs: int = 1, cache_dir: Optional[str] = None,
                      count: Optional[int] = None) -> Dict:
    """Merged attribution across sweep points, via the result cache.

    Runs the experiment's standard sweep with ``telemetry="spans"``;
    each point feeds its ``spans.stage.*`` histograms into the cached
    metrics export, and the merged registry is folded back into an
    approximate report (:func:`report_from_registry`).  Warm runs merge
    entirely from cache without simulating.
    """
    from ..experiments.echo import fig7b_points, forwarding_points, \
        table6_points
    from ..sweep import SweepCache, run_sweep
    from .latency import report_from_registry
    builders: Dict[str, Callable[[], List]] = {
        "table6": lambda: table6_points(
            count=count if count is not None else 600,
            telemetry="spans"),
        "fig7b": lambda: fig7b_points(
            count=count if count is not None else 700,
            telemetry="spans"),
        "forwarding": lambda: forwarding_points(
            count=count if count is not None else 2000,
            telemetry="spans"),
    }
    try:
        points = builders[experiment]()
    except KeyError:
        known = ", ".join(sorted(builders))
        raise ValueError(
            f"unknown latency sweep {experiment!r}; "
            f"choose from: {known}") from None
    cache = SweepCache(cache_dir) if cache_dir is not None else None
    sweep = run_sweep(points, jobs=jobs, cache=cache)
    if sweep.metrics is None:
        raise RuntimeError("sweep produced no telemetry to merge")
    report = report_from_registry(sweep.metrics)
    return {
        "experiment": experiment,
        "points": sweep.points,
        "computed": sweep.computed,
        "cache_hits": sweep.cache_hits,
        "rows": sweep.rows,
        "report": report,
    }
