"""Table-6-style latency attribution reports from span trees.

Turns a :class:`~repro.telemetry.spans.SpanRecorder` full of finished
traces into a per-stage latency breakdown: for every datapath stage the
packets crossed, p50/p99/max of the time attributed to it, split into
*queueing* (waiting for a resource) versus *service* (being worked on).
The per-trace attribution comes from
:func:`~repro.telemetry.spans.attribute_trace`, which partitions the
root interval exactly — so for every traced packet the stage sums (plus
the unattributed residue) reconcile with its end-to-end latency.

Two sources feed the same report shape:

* :func:`build_report` — exact, from the raw traces of one
  instrumented run (the ``python -m repro latency`` path);
* :func:`report_from_registry` — approximate (log2-bucket
  percentiles), from the ``spans.stage.*`` histograms a run feeds into
  its metrics registry.  Because those histograms ride the standard
  :meth:`MetricsRegistry.merge_from` aggregation, this path merges
  attribution across sweep points through the PR 2 result cache.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .spans import SpanRecorder, attribute_trace

__all__ = ["STAGE_ORDER", "build_report", "report_from_registry",
           "render_report"]

#: Canonical datapath ordering for report rows (Table-6 style: the
#: stages appear in the order a request traverses them).  Stages not
#: listed here sort after, alphabetically.
STAGE_ORDER = [
    "host.tx",
    "pcie.doorbell",
    "pcie.wqe_fetch",
    "nic.tx",
    "pcie.dma_read",
    "nic.shaper",
    "rdma",
    "wire",
    "nic.rx",
    "pcie.dma_write",
    "fld.rx",
    "accel",
    "fld.tx",
    "pcie.cqe_write",
    "host.rx",
]

_UNATTRIBUTED = "(unattributed)"


def _stage_sort_key(stage: str, kind: str) -> Tuple:
    try:
        position = (0, STAGE_ORDER.index(stage))
    except ValueError:
        position = (1, 0)
    # Queue wait precedes service within a stage.
    return (*position, stage, 0 if kind == "queue" else 1)


def _exact_percentile(ordered: List[float], pct: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = pct / 100.0 * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * frac


def build_report(spans: SpanRecorder,
                 registry: Optional[MetricsRegistry] = None
                 ) -> Dict[str, Any]:
    """Exact attribution report from one run's finished traces.

    Returns a JSON-ready dict; see :func:`render_report` for the text
    rendering.  ``reconciliation.max_error`` is the worst per-trace
    relative difference between the attributed stage sums and the
    end-to-end duration — by construction it should sit at float
    epsilon, and the acceptance bar is 1%.
    """
    per_stage: Dict[Tuple[str, str], List[float]] = {}
    e2e: List[float] = []
    unattributed: List[float] = []
    max_error = 0.0
    finished = spans.finished_traces()
    for trace in finished:
        totals, residue = attribute_trace(trace)
        duration = trace.end - trace.start
        e2e.append(duration)
        unattributed.append(residue)
        attributed_sum = sum(totals.values()) + residue
        if duration > 0:
            error = abs(attributed_sum - duration) / duration
            if error > max_error:
                max_error = error
        for key, seconds in totals.items():
            per_stage.setdefault(key, []).append(seconds)

    rows: List[Dict[str, Any]] = []
    total_mean = sum(e2e) / len(e2e) if e2e else 0.0
    ordered_keys = sorted(per_stage, key=lambda k: _stage_sort_key(*k))
    for stage, kind in ordered_keys:
        values = sorted(per_stage[(stage, kind)])
        mean = sum(values) / len(values)
        rows.append({
            "stage": stage,
            "kind": kind,
            "count": len(values),
            "p50_us": _exact_percentile(values, 50) * 1e6,
            "p99_us": _exact_percentile(values, 99) * 1e6,
            "max_us": values[-1] * 1e6,
            "mean_us": mean * 1e6,
            "share_pct": (100.0 * mean / total_mean
                          if total_mean > 0 else 0.0),
        })
    if any(unattributed):
        values = sorted(unattributed)
        mean = sum(values) / len(values)
        rows.append({
            "stage": _UNATTRIBUTED,
            "kind": "-",
            "count": len(values),
            "p50_us": _exact_percentile(values, 50) * 1e6,
            "p99_us": _exact_percentile(values, 99) * 1e6,
            "max_us": values[-1] * 1e6,
            "mean_us": mean * 1e6,
            "share_pct": (100.0 * mean / total_mean
                          if total_mean > 0 else 0.0),
        })

    ordered_e2e = sorted(e2e)
    report = {
        "source": "traces",
        "traces": len(finished),
        "unfinished": len(spans.unfinished_traces()),
        "orphaned_spans": len(spans.orphan_spans()),
        "stages": rows,
        "e2e": {
            "count": len(ordered_e2e),
            "p50_us": _exact_percentile(ordered_e2e, 50) * 1e6,
            "p99_us": _exact_percentile(ordered_e2e, 99) * 1e6,
            "max_us": (ordered_e2e[-1] * 1e6 if ordered_e2e else 0.0),
            "mean_us": total_mean * 1e6,
        },
        "reconciliation": {
            "max_error": max_error,
            "within_1pct": max_error <= 0.01,
        },
    }
    if registry is not None:
        # The recorder already fed spans.stage.* histograms if it was
        # built with this registry; nothing further to do — but accept
        # the argument so callers can be explicit about the pairing.
        pass
    return report


_STAGE_PREFIX = "spans.stage."


def report_from_registry(registry: MetricsRegistry) -> Dict[str, Any]:
    """Approximate attribution report from merged stage histograms.

    The inverse of the recorder's aggregation: reads every
    ``spans.stage.<stage>.<kind>`` histogram (plus ``spans.e2e`` and
    ``spans.unattributed``) and estimates percentiles with
    :meth:`Histogram.percentile`.  Works on a registry assembled by
    ``run_sweep`` — i.e. merged across sweep points and cache hits.
    """
    keys: List[Tuple[str, str]] = []
    for name in registry.names():
        if not name.startswith(_STAGE_PREFIX):
            continue
        remainder = name[len(_STAGE_PREFIX):]
        stage, _, kind = remainder.rpartition(".")
        if stage:
            keys.append((stage, kind))
    keys.sort(key=lambda k: _stage_sort_key(*k))

    e2e_mean = 0.0
    if "spans.e2e" in registry:
        hist = registry.histogram("spans.e2e")
        if hist.count:
            e2e_mean = hist.mean

    rows: List[Dict[str, Any]] = []
    for stage, kind in keys:
        hist = registry.histogram(f"{_STAGE_PREFIX}{stage}.{kind}")
        if not hist.count:
            continue
        rows.append({
            "stage": stage,
            "kind": kind,
            "count": hist.count,
            "p50_us": hist.percentile(50) * 1e6,
            "p99_us": hist.percentile(99) * 1e6,
            "max_us": hist.max * 1e6,
            "mean_us": hist.mean * 1e6,
            "share_pct": (100.0 * hist.mean / e2e_mean
                          if e2e_mean > 0 else 0.0),
        })
    if "spans.unattributed" in registry:
        hist = registry.histogram("spans.unattributed")
        if hist.count and hist.total > 0:
            rows.append({
                "stage": _UNATTRIBUTED,
                "kind": "-",
                "count": hist.count,
                "p50_us": hist.percentile(50) * 1e6,
                "p99_us": hist.percentile(99) * 1e6,
                "max_us": hist.max * 1e6,
                "mean_us": hist.mean * 1e6,
                "share_pct": (100.0 * hist.mean / e2e_mean
                              if e2e_mean > 0 else 0.0),
            })

    report: Dict[str, Any] = {
        "source": "registry",
        "stages": rows,
    }
    if "spans.e2e" in registry:
        hist = registry.histogram("spans.e2e")
        if hist.count:
            report["e2e"] = {
                "count": hist.count,
                "p50_us": hist.percentile(50) * 1e6,
                "p99_us": hist.percentile(99) * 1e6,
                "max_us": hist.max * 1e6,
                "mean_us": hist.mean * 1e6,
            }
            report["traces"] = hist.count
    return report


def render_report(report: Dict[str, Any], title: str = "Latency "
                  "attribution") -> str:
    """Text table rendering (shares the reporting table formatter)."""
    from ..reporting import format_table

    def us(value: float) -> str:
        return f"{value:.3f}"

    rows = []
    for row in report["stages"]:
        rows.append({
            "stage": row["stage"],
            "kind": row["kind"],
            "count": row["count"],
            "p50 (us)": us(row["p50_us"]),
            "p99 (us)": us(row["p99_us"]),
            "max (us)": us(row["max_us"]),
            "mean (us)": us(row["mean_us"]),
            "share": f"{row['share_pct']:.1f}%",
        })
    e2e = report.get("e2e")
    if e2e:
        rows.append({
            "stage": "end-to-end",
            "kind": "=",
            "count": e2e["count"],
            "p50 (us)": us(e2e["p50_us"]),
            "p99 (us)": us(e2e["p99_us"]),
            "max (us)": us(e2e["max_us"]),
            "mean (us)": us(e2e["mean_us"]),
            "share": "100.0%",
        })
    lines = [format_table(title, rows)]
    reconciliation = report.get("reconciliation")
    if reconciliation is not None:
        lines.append(
            f"reconciliation: max per-packet error "
            f"{reconciliation['max_error'] * 100:.4f}% "
            f"({'OK' if reconciliation['within_1pct'] else 'FAIL'}, "
            f"bar is 1%)")
    if report.get("source") == "traces":
        lines.append(
            f"traces: {report['traces']} finished, "
            f"{report.get('unfinished', 0)} unfinished, "
            f"{report.get('orphaned_spans', 0)} orphaned spans")
    return "\n".join(lines)
