"""The telemetry bundle and its null fast path.

A :class:`Telemetry` couples one :class:`~repro.telemetry.metrics.MetricsRegistry`
with one :class:`~repro.telemetry.trace.Tracer`; it is handed to
:class:`repro.sim.Simulator` and reached by every component through
``sim.telemetry``.

The default is :data:`NULL_TELEMETRY`: counters/gauges/histograms are
shared no-op singletons and the tracer's ``enabled`` flag is False, so a
simulation that never asked for telemetry pays only an attribute load
and a no-op call on its hot paths.  Components that need to avoid even
that check ``telemetry.enabled`` once at construction time and skip
creating their instruments altogether.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Snapshot
from .profile import NULL_PROFILER, NullSimProfiler, SimProfiler
from .spans import NULL_SPANS, NullSpanRecorder, SpanRecorder
from .trace import NULL_TRACER, NullTracer, Tracer


class _NullCounter:
    """Shared inert counter; ``value`` stays 0 forever."""

    __slots__ = ()
    name = ""
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = ""
    value = 0
    peak = 0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = ""
    count = 0
    total = 0.0
    min = None
    max = None
    underflow = 0
    buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        pass

    def merge(self, other) -> "_NullHistogram":
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def __len__(self) -> int:
        return 0


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """A registry that forgets everything it is told."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return NULL_HISTOGRAM

    def attach(self, name: str, metric) -> None:
        pass

    def register_probe(self, name: str, probe) -> None:
        pass

    def sample_probes(self) -> Dict[str, float]:
        return {}

    def snapshot(self, include_probes: bool = True) -> Snapshot:
        return Snapshot({})

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def to_json(self, indent: int = 2) -> str:
        return "{}"

    def names(self):
        return []

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()


class Telemetry:
    """An enabled metrics + tracing bundle for one simulation.

    ``spans=True`` additionally records causal per-packet span trees
    (:mod:`repro.telemetry.spans`); ``span_sample_rate`` traces one in
    every N packets.  Finished traces feed ``spans.*`` histograms in
    :attr:`metrics`, so span-derived latency attribution merges across
    sweep points like any other metric.

    ``profile=True`` attaches a :class:`~repro.telemetry.profile.SimProfiler`
    the engine picks up for per-event/per-stage cost attribution; event
    counts flush into ``profile.*`` counters in :attr:`metrics` (and so
    merge across sweep points), while ``profile_wallclock=True`` adds
    machine-local handler timing that stays out of the registry.
    """

    enabled = True

    def __init__(self, trace: bool = True, max_trace_events: int = 1_000_000,
                 spans: bool = False, span_sample_rate: int = 1,
                 max_traces: int = 100_000, profile: bool = False,
                 profile_wallclock: bool = False):
        self.metrics = MetricsRegistry()
        self.tracer: Tracer = (Tracer(max_trace_events) if trace
                               else NULL_TRACER)
        self.spans: SpanRecorder = (
            SpanRecorder(sample_rate=span_sample_rate,
                         max_traces=max_traces, registry=self.metrics)
            if spans else NULL_SPANS)
        self.profiler: SimProfiler = (
            SimProfiler(wallclock=profile_wallclock, registry=self.metrics)
            if profile else NULL_PROFILER)

    # Registry passthroughs, so call sites read `telemetry.counter(...)`.

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.metrics.histogram(name)

    def attach(self, name: str, metric) -> None:
        self.metrics.attach(name, metric)

    def register_probe(self, name: str,
                       probe: Callable[[], Dict[str, float]]) -> None:
        self.metrics.register_probe(name, probe)

    def snapshot(self, include_probes: bool = True) -> Snapshot:
        return self.metrics.snapshot(include_probes)


class NullTelemetry:
    """The disabled bundle — the NullSink fast path.

    Every instrument it hands out is a shared no-op singleton, so
    components can be written unconditionally against the telemetry API
    and cost (almost) nothing when nobody is watching.
    """

    enabled = False
    metrics = NULL_REGISTRY
    tracer: NullTracer = NULL_TRACER
    spans: NullSpanRecorder = NULL_SPANS
    profiler: NullSimProfiler = NULL_PROFILER

    def counter(self, name: str) -> _NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return NULL_HISTOGRAM

    def attach(self, name: str, metric) -> None:
        pass

    def register_probe(self, name: str, probe) -> None:
        pass

    def snapshot(self, include_probes: bool = True) -> Snapshot:
        return Snapshot({})


NULL_TELEMETRY = NullTelemetry()
