"""Deterministic simulator profiler: per-event / per-stage cost attribution.

The profiler answers the question ROADMAP item 1 needs answered before the
event-engine rearchitecture: *which* heap events, handlers and pipeline
stages burn the ~32 events that every delivered packet currently costs.

Design mirrors the rest of the telemetry stack:

* :class:`SimProfiler` is handed to the engine through
  ``Telemetry(profile=True)``; :data:`NULL_PROFILER` is the shared no-op
  twin.  With the null profiler the engine keeps its unmodified
  ``schedule``/``run`` paths, so disabled runs are bit-identical to
  untraced runs (pinned by fingerprint-equality tests).
* **Event accounting** is deterministic: every heap entry is tagged at
  push time with its owning component (``func.__self__.profile_tag`` when
  the callable is a bound method of a tagged component, else the tag of
  the dispatch context that scheduled it).  Dispatch bumps one counter
  per tag, so per-tag counts sum *exactly* to the engine's total event
  count.
* **Stage classification** maps tags onto the paper's pipeline stages
  (host driver, PCIe fabric, NIC queues/rdma/shaper, wire, FLD tx/rx,
  accelerator, application).  Components may :meth:`declare` explicit
  prefix rules; undeclared tags fall through to built-in heuristics and
  finally to ``other`` — classification is total, so stage sums equal
  the total event count too.
* **Wall-clock attribution** (``wallclock=True``) additionally times each
  handler with ``perf_counter`` and aggregates per ``(tag, callsite)``.
  Wall times are machine-dependent and are therefore *never* flushed
  into the metrics registry (which must stay bit-identical across sweep
  workers); only event counts are.
* The **heap-depth timeline** samples queue depth every
  ``depth_sample_every`` dispatches; when the sample buffer fills it is
  compacted deterministically (drop every other sample, double the
  interval), so the timeline is identical for identical runs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Collapsed-stack separator (flamegraph.pl / speedscope compatible).
_FRAME_SEP = ";"

#: Built-in tag → stage heuristics, checked in order after declared rules.
#: Substring fragments first (most specific), then prefix/name rules.
_BUILTIN_FRAGMENTS: Tuple[Tuple[str, str], ...] = (
    (".shaper", "nic.shaper"),
    (".rdma", "nic.rdma"),
    (".wire", "wire"),
    (".kdriver", "host"),
    (".mem", "host"),
    (".fe", "accel"),
    (".unit", "accel"),
    (".demux", "accel"),
    (".core", "accel"),
    (".nic", "nic.queues"),
)

#: Process names spawned by experiment drivers / load generators.
_APP_NAMES = frozenset({
    "run", "runner", "drive", "sender", "receiver", "_sender",
    "put", "process", "echo.tx", "mediated.relay",
})


class SimProfiler:
    """Deterministic per-event accounting for one simulation run."""

    enabled = True

    def __init__(self, wallclock: bool = False,
                 depth_sample_every: int = 1024,
                 max_depth_samples: int = 4096,
                 registry=None):
        self.wallclock = wallclock
        self.registry = registry
        #: Tag of the code currently executing; events pushed by untagged
        #: callables inherit it.  ``setup`` covers pre-run construction.
        self.current_tag: str = "setup"
        self.total_events = 0
        self.event_counts: Dict[str, int] = {}
        #: ``(tag, callsite) -> [seconds, events]`` — wallclock mode only.
        self.wall_times: Dict[Tuple[str, str], List[float]] = {}
        self.depth_every = depth_sample_every
        self.max_depth_samples = max_depth_samples
        #: ``(event_index, heap_depth)`` samples, deterministic.
        self.depth_samples: List[Tuple[int, int]] = []
        self._rules: List[Tuple[str, str]] = []  # (prefix, stage), longest first
        self._stage_cache: Dict[str, str] = {}
        self._flushed: Dict[str, int] = {}
        self._flushed_total = 0

    # -- stage classification -------------------------------------------

    def declare(self, prefix: str, stage: str) -> None:
        """Register an explicit tag-prefix → stage rule.

        Longest declared prefix wins; declared rules beat the built-in
        heuristics.  Re-declaring the same prefix overwrites.
        """
        for i, (pfx, _) in enumerate(self._rules):
            if pfx == prefix:
                self._rules[i] = (prefix, stage)
                break
        else:
            self._rules.append((prefix, stage))
        self._rules.sort(key=lambda r: -len(r[0]))
        self._stage_cache.clear()

    def classify(self, tag: str) -> str:
        """Map a tag to a pipeline stage.  Total: never raises."""
        stage = self._stage_cache.get(tag)
        if stage is None:
            stage = self._classify_uncached(tag)
            self._stage_cache[tag] = stage
        return stage

    def _classify_uncached(self, tag: str) -> str:
        for prefix, stage in self._rules:
            if tag.startswith(prefix):
                return stage
        if tag.startswith("pcie"):
            return "pcie"
        for fragment, stage in _BUILTIN_FRAGMENTS:
            if fragment in tag:
                return stage
        if tag.startswith("ethqp") or tag.startswith("rc"):
            return "host"
        if tag.startswith("mediated"):
            return "host"
        if tag in _APP_NAMES:
            return "app"
        return "other"

    # -- recording (called from the engine's profiled run loop) ---------

    def record_depth(self, index: int, depth: int) -> None:
        """Append one heap-depth sample, compacting deterministically."""
        samples = self.depth_samples
        samples.append((index, depth))
        if len(samples) >= self.max_depth_samples:
            # Keep every other sample and double the interval: the
            # timeline stays bounded and identical for identical runs.
            del samples[1::2]
            self.depth_every *= 2

    # -- aggregation ----------------------------------------------------

    def stage_counts(self) -> Dict[str, int]:
        """Per-stage event counts; values sum to :attr:`total_events`."""
        out: Dict[str, int] = {}
        for tag, count in self.event_counts.items():
            stage = self.classify(tag)
            out[stage] = out.get(stage, 0) + count
        return dict(sorted(out.items(), key=lambda kv: (-kv[1], kv[0])))

    def top_tags(self, n: int = 20) -> List[Tuple[str, int]]:
        ranked = sorted(self.event_counts.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def top_callsites(self, n: int = 20) -> List[Dict[str, Any]]:
        """Hottest ``(tag, callsite)`` pairs by wall seconds (wallclock
        mode) — empty when wall-clock attribution is off."""
        ranked = sorted(self.wall_times.items(),
                        key=lambda kv: (-kv[1][0], kv[0]))
        return [
            {"tag": tag, "callsite": callsite,
             "seconds": acc[0], "events": int(acc[1]),
             "stage": self.classify(tag)}
            for (tag, callsite), acc in ranked[:n]
        ]

    def collapsed_stacks(self) -> List[str]:
        """Flamegraph-compatible ``stage;tag;callsite <count>`` lines.

        Counts are wall-clock microseconds in wallclock mode (what a
        flamegraph of handler cost wants), else event counts.
        """
        lines: List[str] = []
        if self.wall_times:
            for (tag, callsite), (seconds, _events) in sorted(
                    self.wall_times.items()):
                weight = int(round(seconds * 1e6))
                if weight <= 0:
                    continue
                stack = _FRAME_SEP.join(
                    (self.classify(tag), tag, callsite))
                lines.append(f"{stack} {weight}")
        else:
            for tag, count in sorted(self.event_counts.items()):
                stack = _FRAME_SEP.join((self.classify(tag), tag))
                lines.append(f"{stack} {count}")
        return lines

    # -- registry integration -------------------------------------------

    def flush(self) -> None:
        """Sync event counts into the metrics registry as counters.

        Delta-based so repeated ``run()`` calls don't double-count.
        Deliberately excludes wall-clock numbers: registry exports must
        be bit-identical across sweep workers and machines.
        """
        registry = self.registry
        if registry is None:
            return
        delta_total = self.total_events - self._flushed_total
        if delta_total:
            registry.counter("profile.events.total").inc(delta_total)
            self._flushed_total = self.total_events
        for stage, count in self.stage_counts().items():
            done = self._flushed.get(stage, 0)
            if count != done:
                registry.counter(f"profile.stage.{stage}.events").inc(
                    count - done)
                self._flushed[stage] = count

    # -- reporting ------------------------------------------------------

    def report(self, delivered: Optional[int] = None) -> Dict[str, Any]:
        """A JSON-ready summary of everything recorded."""
        total = self.total_events
        stages = self.stage_counts()
        doc: Dict[str, Any] = {
            "schema": 1,
            "wallclock": self.wallclock,
            "total_events": total,
            "stages": {
                stage: {
                    "events": count,
                    "share": (count / total) if total else 0.0,
                }
                for stage, count in stages.items()
            },
            "tags": [
                {"tag": tag, "events": count, "stage": self.classify(tag)}
                for tag, count in self.top_tags(40)
            ],
            "heap_depth": {
                "sample_every": self.depth_every,
                "max": max((d for _, d in self.depth_samples), default=0),
                "samples": [list(s) for s in self.depth_samples],
            },
        }
        if delivered is not None:
            doc["delivered"] = delivered
            doc["events_per_packet"] = (total / delivered) if delivered else 0.0
        if self.wallclock:
            doc["wall"] = {
                "seconds": sum(acc[0] for acc in self.wall_times.values()),
                "top": self.top_callsites(40),
            }
            doc["collapsed"] = self.collapsed_stacks()
        return doc

    def render(self, delivered: Optional[int] = None, top: int = 10) -> str:
        """Human-readable top-N tables."""
        total = self.total_events
        lines = [f"total heap events: {total}"]
        if delivered:
            lines.append(
                f"delivered packets: {delivered} "
                f"({total / delivered:.2f} events/packet)")
        lines.append("")
        lines.append("per-stage event counts")
        lines.append(f"  {'stage':<12} {'events':>10} {'share':>7}")
        stage_sum = 0
        for stage, count in self.stage_counts().items():
            stage_sum += count
            share = (count / total * 100) if total else 0.0
            lines.append(f"  {stage:<12} {count:>10} {share:>6.1f}%")
        assert stage_sum == total, (stage_sum, total)
        lines.append("")
        lines.append(f"top {top} tags by events")
        lines.append(f"  {'tag':<28} {'stage':<12} {'events':>10}")
        for tag, count in self.top_tags(top):
            lines.append(f"  {tag:<28} {self.classify(tag):<12} {count:>10}")
        if self.wallclock and self.wall_times:
            lines.append("")
            lines.append(f"top {top} callsites by wall clock")
            lines.append(f"  {'tag':<24} {'callsite':<36} "
                         f"{'ms':>9} {'events':>9}")
            for row in self.top_callsites(top):
                lines.append(
                    f"  {row['tag']:<24} {row['callsite']:<36} "
                    f"{row['seconds'] * 1e3:>9.3f} {row['events']:>9}")
        if self.depth_samples:
            peak = max(d for _, d in self.depth_samples)
            lines.append("")
            lines.append(
                f"heap depth: {len(self.depth_samples)} samples "
                f"(every {self.depth_every} events), peak {peak}")
        return "\n".join(lines)


class NullSimProfiler:
    """The disabled profiler: API parity, does nothing, shared singleton."""

    enabled = False
    wallclock = False
    registry = None
    current_tag = "setup"
    total_events = 0
    event_counts: Dict[str, int] = {}
    wall_times: Dict[Tuple[str, str], List[float]] = {}
    depth_samples: List[Tuple[int, int]] = []
    depth_every = 0
    max_depth_samples = 0

    def declare(self, prefix: str, stage: str) -> None:
        pass

    def classify(self, tag: str) -> str:
        return "other"

    def record_depth(self, index: int, depth: int) -> None:
        pass

    def stage_counts(self) -> Dict[str, int]:
        return {}

    def top_tags(self, n: int = 20) -> List[Tuple[str, int]]:
        return []

    def top_callsites(self, n: int = 20) -> List[Dict[str, Any]]:
        return []

    def collapsed_stacks(self) -> List[str]:
        return []

    def flush(self) -> None:
        pass

    def report(self, delivered: Optional[int] = None) -> Dict[str, Any]:
        return {}

    def render(self, delivered: Optional[int] = None, top: int = 10) -> str:
        return ""


NULL_PROFILER = NullSimProfiler()
