"""Runtime invariant auditor over span streams and component state.

Spans give us causal visibility; this module turns it into *checks*.
After an experiment quiesces, the auditor walks the span recorder and
the simulated devices and reports :class:`Violation` objects for:

* **orphaned spans** — a packet entered a stage but never exited,
  although its trace's root interval has ended (a lost wakeup or a
  dropped completion);
* **unfinished traces** — the root interval itself never closed (only
  when the caller expects a fully-drained run);
* **unclaimed stashes** — a trace context parked across a
  serialization boundary that no consumer picked up (a propagation
  leak in the instrumentation or a descriptor the NIC never fetched);
* **credit / buffer leaks** — FLD tx credits, buffer chunks or
  descriptor slots not restored to capacity at quiesce;
* **queue residue / unbounded growth** — NIC inboxes still holding
  items, or stores whose high-water mark pinned at capacity;
* **retransmit storms** — RDMA retransmits exceeding a sane fraction
  of segments sent.

Tests call :func:`assert_clean`, which raises with the full violation
list — failures are loud by design.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

__all__ = ["Violation", "AuditError", "audit_spans", "audit_fld",
           "audit_nic", "audit_fabric", "audit_all", "assert_clean"]


class Violation:
    """One invariant breach: a rule name, a subject, and detail text."""

    __slots__ = ("rule", "subject", "detail")

    def __init__(self, rule: str, subject: str, detail: str):
        self.rule = rule
        self.subject = subject
        self.detail = detail

    def to_dict(self) -> dict:
        return {"rule": self.rule, "subject": self.subject,
                "detail": self.detail}

    def __repr__(self) -> str:
        return f"Violation({self.rule}: {self.subject}: {self.detail})"


class AuditError(AssertionError):
    """Raised by :func:`assert_clean`; carries the violation list."""

    def __init__(self, violations: List[Violation]):
        self.violations = violations
        lines = "\n".join(f"  [{v.rule}] {v.subject}: {v.detail}"
                          for v in violations)
        super().__init__(
            f"{len(violations)} invariant violation(s):\n{lines}")


def audit_spans(spans, expect_complete: bool = True) -> List[Violation]:
    """Check the span stream for orphans, leaks and unfinished traces."""
    violations: List[Violation] = []
    for span in spans.orphan_spans():
        violations.append(Violation(
            "orphaned-span",
            f"trace {span.trace_id}",
            f"stage {span.stage!r} entered at {span.start:.9f} "
            f"but never exited"))
    if expect_complete:
        for trace in spans.unfinished_traces():
            violations.append(Violation(
                "unfinished-trace",
                f"trace {trace.trace_id}",
                f"{trace.name!r} started at {trace.start:.9f} "
                f"but its root never ended"))
    for key in spans.pending_stashes():
        violations.append(Violation(
            "unclaimed-stash", repr(key),
            "trace context parked across a serialization boundary "
            "was never claimed"))
    return violations


def audit_fld(fld) -> List[Violation]:
    """FLD credit/buffer/descriptor conservation at quiesce."""
    violations: List[Violation] = []
    name = getattr(fld, "name", "fld")
    credits = fld.tx.credits
    for queue_id, state in fld.tx._queues.items():
        available = credits.available(queue_id)
        capacity = credits.capacity(queue_id)
        if available != capacity:
            violations.append(Violation(
                "credit-leak", f"{name}.tx{queue_id}",
                f"{capacity - available} of {capacity} credits "
                f"not returned"))
        if state.outstanding:
            violations.append(Violation(
                "descriptor-leak", f"{name}.tx{queue_id}",
                f"{len(state.outstanding)} descriptors still "
                f"outstanding at quiesce"))
    buffers = fld.tx.buffers
    if buffers.free_chunks != buffers.num_chunks:
        violations.append(Violation(
            "buffer-leak", f"{name}.tx.buffers",
            f"{buffers.num_chunks - buffers.free_chunks} of "
            f"{buffers.num_chunks} chunks not freed"))
    pool = fld.tx.descriptors
    if pool.free_slots != pool.capacity:
        violations.append(Violation(
            "descriptor-leak", f"{name}.tx.descriptors",
            f"{pool.capacity - pool.free_slots} of {pool.capacity} "
            f"descriptor slots not freed"))
    return violations


def audit_nic(nic, retransmit_ratio: float = 0.1,
              retransmit_floor: int = 20) -> List[Violation]:
    """NIC queue residue and RDMA retransmit-storm checks."""
    violations: List[Violation] = []
    for rqn, inbox in getattr(nic, "_rx_inbox", {}).items():
        if len(inbox) > 0:
            violations.append(Violation(
                "queue-residue", f"{nic.name}.rq{rqn}",
                f"{len(inbox)} items still queued at quiesce"))
    rdma = getattr(nic, "rdma", None)
    if rdma is not None:
        sent = getattr(rdma, "segments_sent", 0)
        retx = getattr(rdma, "retransmits", 0)
        if retx > retransmit_floor and sent and \
                retx / sent > retransmit_ratio:
            violations.append(Violation(
                "retransmit-storm", f"{nic.name}.rdma",
                f"{retx} retransmits for {sent} segments sent "
                f"({retx / sent:.0%} > {retransmit_ratio:.0%})"))
    return violations


def audit_fabric(fabric) -> List[Violation]:
    """PCIe transaction-layer conservation at quiesce.

    A read request whose completion never came back means a requester
    stuck forever on a ``yield fabric.read(...)`` — the kind of lost
    wakeup the fused/cut-through transit paths could introduce.  The
    fabric's pending-read table must therefore drain to empty with the
    simulation.
    """
    violations: List[Violation] = []
    pending = getattr(fabric, "_pending_reads", None)
    if pending:
        by_requester: dict = {}
        for state in pending.values():
            requester = state.get("requester", "?") \
                if isinstance(state, dict) else "?"
            by_requester[requester] = by_requester.get(requester, 0) + 1
        detail = ", ".join(f"{count} from {requester}"
                           for requester, count in sorted(by_requester.items()))
        violations.append(Violation(
            "read-in-flight", "pcie.fabric",
            f"{len(pending)} read(s) still awaiting completion at "
            f"quiesce ({detail})"))
    return violations


def audit_all(spans=None, flds: Optional[Iterable] = None,
              nics: Optional[Iterable] = None,
              fabrics: Optional[Iterable] = None,
              expect_complete: bool = True) -> List[Violation]:
    """Run every applicable audit; returns the combined violation list."""
    violations: List[Violation] = []
    if spans is not None:
        violations.extend(audit_spans(spans, expect_complete))
    for fld in flds or ():
        violations.extend(audit_fld(fld))
    for nic in nics or ():
        violations.extend(audit_nic(nic))
    for fabric in fabrics or ():
        violations.extend(audit_fabric(fabric))
    return violations


def assert_clean(violations: List[Violation]) -> None:
    """Raise :class:`AuditError` when any violation was found."""
    if violations:
        raise AuditError(violations)
