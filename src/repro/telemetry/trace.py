"""Event tracing with Chrome ``chrome://tracing`` / Perfetto JSON export.

The tracer records three event shapes keyed to the *simulator* clock
(seconds, converted to the microseconds Chrome expects):

* **complete spans** (``ph: "X"``) — an interval with a duration: a TLP
  occupying a PCIe lane, a WQE moving through a NIC send queue;
* **instants** (``ph: "i"``) — a point event: a retransmission firing, a
  process spawning;
* **counter series** (``ph: "C"``) — a value over time: receive-inbox
  depth, credits outstanding.

Naming follows the trace-viewer model: one *process* per simulated
component ("pcie", "server.nic", "fld"), one *thread* per queue or link
within it ("server.nic.up", "sq1", "rq2").  Process/thread ids are
assigned on first use and emitted as metadata records so the viewer
shows real names.

The event list is bounded (``max_events``); once full, further events
are counted in ``dropped`` rather than stored, so a forgotten tracer on
a long simulation degrades to a counter instead of eating the heap.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

SECONDS_TO_US = 1e6


class Tracer:
    """Records timestamped events and serializes Chrome trace JSON."""

    enabled = True

    def __init__(self, max_events: int = 1_000_000):
        self._events: List[Dict[str, Any]] = []
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[str, str], int] = {}
        self.max_events = max_events
        self.dropped = 0

    # -- id management ----------------------------------------------------

    def _pid(self, process: str) -> int:
        pid = self._pids.get(process)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[process] = pid
        return pid

    def _tid(self, process: str, thread: str) -> int:
        key = (process, thread)
        tid = self._tids.get(key)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[key] = tid
        return tid

    # -- recording --------------------------------------------------------

    def _push(self, event: Dict[str, Any]) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)

    def complete(self, process: str, thread: str, name: str,
                 start: float, end: float,
                 args: Optional[Dict[str, Any]] = None) -> None:
        """A span [start, end] (simulation seconds) on process/thread."""
        event = {
            "name": name,
            "ph": "X",
            "ts": start * SECONDS_TO_US,
            "dur": max(0.0, (end - start) * SECONDS_TO_US),
            "pid": self._pid(process),
            "tid": self._tid(process, thread),
        }
        if args:
            event["args"] = args
        self._push(event)

    def instant(self, process: str, thread: str, name: str, ts: float,
                args: Optional[Dict[str, Any]] = None) -> None:
        """A point event at ``ts`` (simulation seconds)."""
        event = {
            "name": name,
            "ph": "i",
            "s": "t",  # thread-scoped
            "ts": ts * SECONDS_TO_US,
            "pid": self._pid(process),
            "tid": self._tid(process, thread),
        }
        if args:
            event["args"] = args
        self._push(event)

    def counter(self, process: str, name: str, ts: float,
                values: Dict[str, float]) -> None:
        """A sample of one or more series plotted as a stacked counter."""
        self._push({
            "name": name,
            "ph": "C",
            "ts": ts * SECONDS_TO_US,
            "pid": self._pid(process),
            "args": dict(values),
        })

    # -- export -----------------------------------------------------------

    def _metadata_events(self) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        for process, pid in self._pids.items():
            records.append({
                "name": "process_name", "ph": "M", "pid": pid,
                "args": {"name": process},
            })
        for (process, thread), tid in self._tids.items():
            records.append({
                "name": "thread_name", "ph": "M",
                "pid": self._pids[process], "tid": tid,
                "args": {"name": thread},
            })
        return records

    def chrome_trace(self) -> Dict[str, Any]:
        """The full trace object chrome://tracing / Perfetto loads."""
        return {
            "traceEvents": self._metadata_events() + self._events,
            "displayTimeUnit": "ns",
            "otherData": {"droppedEvents": self.dropped},
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.chrome_trace(), indent=indent)

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle)

    @property
    def events(self) -> List[Dict[str, Any]]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class NullTracer:
    """The disabled tracer: every recording call is a no-op.

    ``enabled`` is False so callers can skip building argument dicts
    entirely — the pattern every hot path in the simulator uses:

        if tracer.enabled:
            tracer.complete(...)

    Mirrors the full public surface of :class:`Tracer` — including the
    ``max_events``/``dropped`` bookkeeping attributes — so code written
    against either class never needs an ``isinstance`` check (the
    shared-interface test enforces this).
    """

    enabled = False
    max_events = 0
    dropped = 0

    def complete(self, process, thread, name, start, end, args=None) -> None:
        pass

    def instant(self, process, thread, name, ts, args=None) -> None:
        pass

    def counter(self, process, name, ts, values) -> None:
        pass

    def chrome_trace(self) -> Dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ns",
                "otherData": {"droppedEvents": 0}}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.chrome_trace(), indent=indent)

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @property
    def events(self):
        return []

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
