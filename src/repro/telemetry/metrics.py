"""Hierarchically-named counters, gauges and log-bucketed histograms.

Every observability claim in the reproduction (Fig. 7a's PCIe byte
accounting, queue depths behind the throughput knees of Fig. 7b, the
retransmit behaviour of the RoCE engine) bottoms out in a number some
component increments.  The :class:`MetricsRegistry` is the single home
for those numbers:

* metrics are named hierarchically with dots (``pcie.server.nic.up.tlps``)
  so exports can be grouped per component;
* :class:`Histogram` buckets values at power-of-two boundaries — constant
  memory regardless of sample count, cheap ``observe``, and mergeable
  across experiment shards without copying samples;
* ``snapshot()``/``Snapshot.diff`` bracket a workload phase and report
  exactly what moved — the idiom the telemetry tests are written in;
* *probes* let components with their own internal stats (cuckoo tables,
  buffer pools, queue rings) publish them lazily: the callable is only
  sampled at export time, so steady-state simulation pays nothing.

The matching null implementations live in :mod:`repro.telemetry.sink`;
this module has no dependencies on the simulator so every layer of the
stack can import it freely.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Dict, List, Optional, Tuple


class MetricsError(RuntimeError):
    """Raised on metric name/type collisions and bad queries."""


class Counter:
    """A monotonically-increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time level (queue depth, credits, occupancy).

    Tracks the high-water mark alongside the current value because the
    peak is what sizing arguments (ring depths, SRAM budgets) need.
    """

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0
        self.peak = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value}, peak={self.peak})"


class Histogram:
    """A log2-bucketed histogram of positive samples.

    Bucket ``e`` holds samples ``v`` with ``2**(e-1) < v <= 2**e`` (the
    exponent returned by :func:`math.frexp`); non-positive samples land
    in a dedicated underflow bucket.  The representation is a dict of
    bucket -> count, so two histograms merge by adding bucket counts —
    no sample buffers are kept or copied.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets",
                 "underflow")

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}
        self.underflow = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0:
            self.underflow += 1
            return
        exponent = math.frexp(value)[1]
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise MetricsError(f"histogram {self.name!r} has no samples")
        return self.total / self.count

    def percentile(self, pct: float) -> float:
        """Estimate a percentile by linear interpolation within a bucket.

        Resolution is the bucket width (a factor of two), which is the
        usual trade histograms like HdrHistogram's coarse mode make.
        The estimate is clamped to the observed ``[min, max]`` range so
        degenerate cases (one sample, all samples equal) come back
        exact, and extreme percentiles never escape the data.
        """
        if not 0.0 <= pct <= 100.0:
            raise MetricsError(f"percentile {pct} outside [0, 100]")
        if self.count == 0:
            raise MetricsError(f"histogram {self.name!r} has no samples")
        rank = pct / 100.0 * self.count
        seen = self.underflow
        if rank <= seen:
            if self.underflow:
                return min(0.0, self.min)
            # pct == 0 of an all-positive histogram: the observed min.
            return self.min
        for exponent in sorted(self.buckets):
            in_bucket = self.buckets[exponent]
            if rank <= seen + in_bucket:
                low = 2.0 ** (exponent - 1)
                high = 2.0 ** exponent
                frac = (rank - seen) / in_bucket
                estimate = low + (high - low) * frac
                return min(max(estimate, self.min), self.max)
            seen += in_bucket
        return self.max if self.max is not None else 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s buckets into this histogram (in place)."""
        if not isinstance(other, Histogram):
            raise MetricsError(f"cannot merge {type(other).__name__}")
        self.count += other.count
        self.total += other.total
        self.underflow += other.underflow
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for exponent, count in other.buckets.items():
            self.buckets[exponent] = self.buckets.get(exponent, 0) + count
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "underflow": self.underflow,
            # JSON object keys must be strings; exponents round-trip.
            "buckets": {str(e): c for e, c in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        histogram = cls(data.get("name", ""))
        histogram.count = data["count"]
        histogram.total = data["sum"]
        histogram.min = data["min"]
        histogram.max = data["max"]
        histogram.underflow = data.get("underflow", 0)
        histogram.buckets = {int(e): c
                             for e, c in data.get("buckets", {}).items()}
        return histogram

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


class Snapshot:
    """A frozen flat view of every scalar the registry knew at one instant."""

    __slots__ = ("values",)

    def __init__(self, values: Dict[str, float]):
        self.values = dict(values)

    def __getitem__(self, name: str) -> float:
        return self.values[name]

    def get(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def diff(self, earlier: "Snapshot") -> Dict[str, float]:
        """What moved between ``earlier`` and this snapshot (delta != 0)."""
        deltas: Dict[str, float] = {}
        for name, value in self.values.items():
            delta = value - earlier.get(name, 0.0)
            if delta:
                deltas[name] = delta
        for name, value in earlier.values.items():
            if name not in self.values and value:
                deltas[name] = -value
        return deltas

    def as_dict(self) -> Dict[str, float]:
        return dict(self.values)


class MetricsRegistry:
    """Get-or-create registry of named metrics plus lazy probes."""

    enabled = True

    def __init__(self):
        self._metrics: Dict[str, Any] = {}
        self._probes: Dict[str, Callable[[], Dict[str, float]]] = {}

    # -- creation ---------------------------------------------------------

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise MetricsError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def attach(self, name: str, metric) -> None:
        """Adopt an externally-built metric (no copying) under ``name``.

        This is how experiment-local collectors feed the registry: build
        a :class:`Histogram` while the run owns it, then attach it.
        """
        existing = self._metrics.get(name)
        if existing is not None and existing is not metric:
            raise MetricsError(f"metric {name!r} already registered")
        metric.name = name
        self._metrics[name] = metric

    def register_probe(self, name: str,
                       probe: Callable[[], Dict[str, float]]) -> None:
        """Register a callable sampled at export time.

        ``probe()`` returns a flat dict; keys are published under
        ``name.<key>``.  Probes make component-internal stats (cuckoo
        kicks, pool occupancy, ring depths) visible with zero cost on
        the simulation hot path.
        """
        self._probes[name] = probe

    # -- export -----------------------------------------------------------

    def sample_probes(self) -> Dict[str, float]:
        sampled: Dict[str, float] = {}
        for prefix, probe in self._probes.items():
            for key, value in probe().items():
                sampled[f"{prefix}.{key}"] = value
        return sampled

    def _flat_values(self, include_probes: bool = True) -> Dict[str, float]:
        values: Dict[str, float] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                values[name] = metric.value
            elif isinstance(metric, Gauge):
                values[name] = metric.value
                values[f"{name}.peak"] = metric.peak
            elif isinstance(metric, Histogram):
                values[f"{name}.count"] = metric.count
                values[f"{name}.sum"] = metric.total
        if include_probes:
            values.update(self.sample_probes())
        return values

    def snapshot(self, include_probes: bool = True) -> Snapshot:
        return Snapshot(self._flat_values(include_probes))

    def to_dict(self) -> Dict[str, Any]:
        """Full structured export: metrics by kind, probes sampled now."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, Dict[str, float]] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = {"value": metric.value, "peak": metric.peak}
            elif isinstance(metric, Histogram):
                histograms[name] = metric.to_dict()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "probes": dict(sorted(self.sample_probes().items())),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def merge_from(self, data: Dict[str, Any]) -> "MetricsRegistry":
        """Fold another registry's :meth:`to_dict` export into this one.

        The aggregation story for sharded experiments (sweep workers,
        per-process benchmark shards): counters add, gauges keep the
        last value but the maximum peak, histograms merge bucket-wise
        via :meth:`Histogram.merge`.  Probe samples are point-in-time
        readings of live objects in the exporting process and have no
        meaningful aggregate, so they are ignored.
        """
        for name, value in data.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, gauge_data in data.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(gauge_data.get("value", 0))
            peak = gauge_data.get("peak", 0)
            if peak > gauge.peak:
                gauge.peak = peak
        for name, histogram_data in data.get("histograms", {}).items():
            if histogram_data:
                self.histogram(name).merge(
                    Histogram.from_dict(histogram_data))
        return self

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)
