"""Bandwidth-limited transmission resources for the simulator.

These model serial links (Ethernet ports, PCIe links, DRAM channels): a
message of ``bits`` occupies the link for ``bits / rate_bps`` seconds, plus a
fixed propagation latency before delivery.  Links are work-conserving FIFOs.
"""

from __future__ import annotations

from bisect import insort
from typing import Any, Callable, List, Optional

from .engine import Simulator, Store


class Reservation:
    """One message's occupancy of a :class:`Link`, applied in arrival order.

    Links arbitrate strictly by arrival key ``(time, seq)``: the reference
    (pre-cut-through) model applied each reservation in a dedicated event
    at its arrival instant, so a reservation made *early* (cut-through
    resolves occupancy at issue time, possibly before other traffic with
    earlier arrivals has issued) must yield to any later-issued,
    earlier-arriving message.  ``start``/``finish``/``delivery`` are
    therefore mutable: an out-of-order insert recomputes every reservation
    behind it (they only ever move *later*), and the owner of the delivery
    event re-checks ``delivery`` when it fires, re-pushing if it fired
    early.  This replays exactly the busy-until sequence the
    one-event-per-arrival model would have produced.
    """

    __slots__ = ("key", "bits", "start", "finish", "delivery", "message",
                 "done", "upstream")

    def __init__(self, key, bits):
        self.key = key
        self.bits = bits
        self.start = 0.0
        self.finish = 0.0
        self.delivery = 0.0
        self.message: Any = None
        self.done = False
        #: Optional ``(link, record)`` of a first-hop reservation made by
        #: the same multi-lane transit (PCIe cut-through reserves both
        #: lanes at issue); the owner retires it with this record so the
        #: first hop's pending list drains too.
        self.upstream = None

    def __lt__(self, other: "Reservation") -> bool:
        return self.key < other.key


class Link:
    """A serializing, work-conserving point-to-point link.

    Messages are delivered to ``sink`` (a callable) in order; each message
    holds the link for its serialization time.  Propagation latency overlaps
    with the next message's serialization (pipelining), as on real wires.

    Parameters
    ----------
    rate_bps:
        Line rate in bits/second. ``None`` means infinite rate.
    latency:
        One-way propagation delay in seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: Optional[float],
        latency: float = 0.0,
        name: str = "",
    ):
        if rate_bps is not None and rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.sim = sim
        self.rate_bps = rate_bps
        self.latency = latency
        self.name = name
        self.sink: Optional[Callable[[Any], None]] = None
        self._busy_until = 0.0
        #: In-flight reservations, sorted by arrival key.  Almost always
        #: appended to (FIFO issue order); an out-of-order arrival inserts
        #: and repairs the tail.  Entries are pruned once delivered.
        self._pending: List[Reservation] = []
        self.stats_bits = 0
        self.stats_messages = 0
        # The trace process this link's spans file under; owners (PCIe
        # fabric, Ethernet port) override it to group their lanes.
        self.trace_process = "links"
        telemetry = sim.telemetry
        if telemetry.enabled and name:
            self._ctr_bits = telemetry.counter(f"link.{name}.bits")
            self._ctr_messages = telemetry.counter(f"link.{name}.messages")
            self._tracer = telemetry.tracer
        else:
            self._ctr_bits = None
            self._tracer = None

    def connect(self, sink: Callable[[Any], None]) -> None:
        self.sink = sink

    @property
    def profile_tag(self):
        # Delivery events are scheduled as ``self._dispatch``; the
        # profiler should attribute them to whoever consumes the
        # messages (the sink's owner), exactly as when the sink itself
        # was the scheduled callable.
        owner = getattr(self.sink, "__self__", None)
        if owner is not None and owner is not self:
            return getattr(owner, "profile_tag", None)
        return None

    def serialization_time(self, bits: float) -> float:
        if self.rate_bps is None:
            return 0.0
        return bits / self.rate_bps

    def reserve(self, bits: float, arrival: float, seq: int) -> Reservation:
        """Occupy the link for ``bits`` arriving at key ``(arrival, seq)``.

        Returns the reservation with its computed ``start``/``finish``/
        ``delivery``; no event is scheduled — the caller owns delivery and
        must re-check ``delivery`` at fire time (a later out-of-order
        insert may have moved it).  ``seq`` must be globally monotonic in
        issue order (ties on ``arrival`` are broken the way the reference
        model's per-arrival events would have dispatched: issue order).
        """
        record = Reservation((arrival, seq), bits)
        self.stats_bits += bits
        self.stats_messages += 1
        if self._ctr_bits is not None:
            self._ctr_bits.inc(bits)
            self._ctr_messages.inc()
        pending = self._pending
        if not pending:
            prev_finish = self._busy_until
            start = arrival if arrival > prev_finish else prev_finish
            rate = self.rate_bps
            finish = start if rate is None else start + bits / rate
            record.start = start
            record.finish = finish
            record.delivery = finish + self.latency
            if arrival <= self.sim.now:
                # Stable fast path: every later reservation has a later
                # key, so this one can never be displaced — fold it into
                # the busy floor instead of tracking it.
                self._busy_until = finish
            else:
                pending.append(record)
            return record
        if pending[-1].key <= record.key:
            prev_finish = pending[-1].finish
            start = arrival if arrival > prev_finish else prev_finish
            rate = self.rate_bps
            finish = start if rate is None else start + bits / rate
            record.start = start
            record.finish = finish
            record.delivery = finish + self.latency
            pending.append(record)
        else:
            insort(pending, record)
            self._recompute(pending.index(record))
        return record

    def _recompute(self, index: int) -> None:
        """Replay reservations from ``index`` on, in arrival-key order."""
        pending = self._pending
        prev_finish = (pending[index - 1].finish if index > 0
                       else self._busy_until)
        rate = self.rate_bps
        latency = self.latency
        for record in pending[index:]:
            arrival = record.key[0]
            start = arrival if arrival > prev_finish else prev_finish
            finish = start if rate is None else start + record.bits / rate
            record.start = start
            record.finish = finish
            record.delivery = finish + latency
            prev_finish = finish
        # Repairs only move reservations later, so any already-scheduled
        # delivery event fires early and re-pushes to the new time.

    def retire(self, record: Reservation) -> None:
        """Mark ``record`` delivered and prune the pending prefix."""
        record.done = True
        pending = self._pending
        drop = 0
        for entry in pending:
            if not entry.done:
                break
            if entry.finish > self._busy_until:
                self._busy_until = entry.finish
            drop += 1
        if drop:
            del pending[:drop]

    def send(self, message: Any, bits: float) -> float:
        """Enqueue ``message`` of ``bits``; returns its delivery time.

        The caller does not block; backpressure, when needed, is modelled by
        the caller checking :meth:`queue_delay`.
        """
        sink = self.sink
        if sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink connected")
        sim = self.sim
        now = sim.now
        record = self.reserve(bits, now, sim._seq)
        record.message = message
        if self._ctr_bits is not None:
            tracer = self._tracer
            if tracer.enabled and record.finish > record.start:
                tracer.complete(self.trace_process, self.name,
                                type(message).__name__, record.start,
                                record.finish, {"bits": bits})
        sim.call_later(record.delivery - now, self._dispatch, record)
        return record.delivery

    def send_at(self, message: Any, bits: float, arrival: float) -> float:
        """Like :meth:`send`, but arriving at future time ``arrival``.

        Used by fused pipeline stages that resolved a future transmission
        early; arbitration against messages issued later with earlier
        arrivals is exact (see :class:`Reservation`).
        """
        sink = self.sink
        if sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink connected")
        sim = self.sim
        record = self.reserve(bits, arrival, sim._seq)
        record.message = message
        sim.call_later(record.delivery - sim.now, self._dispatch, record)
        return record.delivery

    def _dispatch(self, record: Reservation) -> None:
        """Deliver a sent message, honouring post-hoc repairs."""
        sim = self.sim
        if record.delivery > sim.now:
            # An out-of-order arrival pushed this message later after its
            # delivery event was scheduled; fire again at the final time.
            sim.call_later(record.delivery - sim.now, self._dispatch, record)
            return
        self.retire(record)
        self.sink(record.message)

    def queue_delay(self) -> float:
        """Seconds until the link would start serializing a new message."""
        return max(0.0, self.busy_until - self.sim.now)

    @property
    def busy_until(self) -> float:
        pending = self._pending
        return pending[-1].finish if pending else self._busy_until


class DuplexLink:
    """A full-duplex link: independent TX and RX unidirectional lanes."""

    def __init__(
        self,
        sim: Simulator,
        rate_bps: Optional[float],
        latency: float = 0.0,
        name: str = "",
    ):
        self.tx = Link(sim, rate_bps, latency, name=f"{name}.tx")
        self.rx = Link(sim, rate_bps, latency, name=f"{name}.rx")
        self.name = name

    @property
    def rate_bps(self) -> Optional[float]:
        return self.tx.rate_bps


class TokenBucket:
    """A token-bucket rate limiter (used by the NIC traffic shaper).

    Tokens accrue at ``rate_bps`` bits/second up to ``burst_bits``.  A
    message conforming to the bucket consumes its size in tokens; the
    ``delay_for`` method reports how long a non-conforming message must wait.
    """

    def __init__(self, sim: Simulator, rate_bps: float, burst_bits: float):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.sim = sim
        self.rate_bps = rate_bps
        self.burst_bits = burst_bits
        self._tokens = burst_bits
        self._last = sim.now

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(
            self.burst_bits, self._tokens + (now - self._last) * self.rate_bps
        )
        self._last = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_consume(self, bits: float) -> bool:
        self._refill()
        if self._tokens >= bits:
            self._tokens -= bits
            return True
        return False

    def delay_for(self, bits: float) -> float:
        """Seconds until ``bits`` tokens will be available (0 if now)."""
        self._refill()
        deficit = bits - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate_bps

    def consume(self, bits: float) -> None:
        """Consume unconditionally (may drive the bucket negative-free)."""
        self._refill()
        self._tokens = max(0.0, self._tokens - bits)


def drain_store_via_link(sim: Simulator, store: Store, link: Link,
                         bits_of: Callable[[Any], float]):
    """A process shipping every item from ``store`` over ``link``.

    Waits for serialization so the link is never oversubscribed by this
    drain (models a device's egress scheduler).  Backlogs are drained in
    bursts: after the blocking ``get()`` wake-up, every already-queued
    item is claimed with :meth:`Store.try_get_many` rather than paying
    one wake-up per item; pacing between items is unchanged.
    """
    while True:
        pending = [(yield store.get())]
        while pending:
            for item in pending:
                link.send(item, bits_of(item))
                delay = link.queue_delay()
                if delay > 0:
                    yield sim.timeout(delay)
            pending = store.try_get_many()
