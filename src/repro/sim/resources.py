"""Bandwidth-limited transmission resources for the simulator.

These model serial links (Ethernet ports, PCIe links, DRAM channels): a
message of ``bits`` occupies the link for ``bits / rate_bps`` seconds, plus a
fixed propagation latency before delivery.  Links are work-conserving FIFOs.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .engine import Simulator, Store


class Link:
    """A serializing, work-conserving point-to-point link.

    Messages are delivered to ``sink`` (a callable) in order; each message
    holds the link for its serialization time.  Propagation latency overlaps
    with the next message's serialization (pipelining), as on real wires.

    Parameters
    ----------
    rate_bps:
        Line rate in bits/second. ``None`` means infinite rate.
    latency:
        One-way propagation delay in seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: Optional[float],
        latency: float = 0.0,
        name: str = "",
    ):
        if rate_bps is not None and rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.sim = sim
        self.rate_bps = rate_bps
        self.latency = latency
        self.name = name
        self.sink: Optional[Callable[[Any], None]] = None
        self._busy_until = 0.0
        self.stats_bits = 0
        self.stats_messages = 0
        # The trace process this link's spans file under; owners (PCIe
        # fabric, Ethernet port) override it to group their lanes.
        self.trace_process = "links"
        telemetry = sim.telemetry
        if telemetry.enabled and name:
            self._ctr_bits = telemetry.counter(f"link.{name}.bits")
            self._ctr_messages = telemetry.counter(f"link.{name}.messages")
            self._tracer = telemetry.tracer
        else:
            self._ctr_bits = None
            self._tracer = None

    def connect(self, sink: Callable[[Any], None]) -> None:
        self.sink = sink

    def serialization_time(self, bits: float) -> float:
        if self.rate_bps is None:
            return 0.0
        return bits / self.rate_bps

    def send(self, message: Any, bits: float) -> float:
        """Enqueue ``message`` of ``bits``; returns its delivery time.

        The caller does not block; backpressure, when needed, is modelled by
        the caller checking :meth:`queue_delay`.
        """
        sink = self.sink
        if sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink connected")
        sim = self.sim
        now = sim.now
        busy = self._busy_until
        start = now if now > busy else busy
        rate = self.rate_bps
        finish = start if rate is None else start + bits / rate
        self._busy_until = finish
        delivery = finish + self.latency
        self.stats_bits += bits
        self.stats_messages += 1
        if self._ctr_bits is not None:
            self._ctr_bits.inc(bits)
            self._ctr_messages.inc()
            tracer = self._tracer
            if tracer.enabled and finish > start:
                tracer.complete(self.trace_process, self.name,
                                type(message).__name__, start, finish,
                                {"bits": bits})
        sim.call_later(delivery - now, sink, message)
        return delivery

    def queue_delay(self) -> float:
        """Seconds until the link would start serializing a new message."""
        return max(0.0, self._busy_until - self.sim.now)

    @property
    def busy_until(self) -> float:
        return self._busy_until


class DuplexLink:
    """A full-duplex link: independent TX and RX unidirectional lanes."""

    def __init__(
        self,
        sim: Simulator,
        rate_bps: Optional[float],
        latency: float = 0.0,
        name: str = "",
    ):
        self.tx = Link(sim, rate_bps, latency, name=f"{name}.tx")
        self.rx = Link(sim, rate_bps, latency, name=f"{name}.rx")
        self.name = name

    @property
    def rate_bps(self) -> Optional[float]:
        return self.tx.rate_bps


class TokenBucket:
    """A token-bucket rate limiter (used by the NIC traffic shaper).

    Tokens accrue at ``rate_bps`` bits/second up to ``burst_bits``.  A
    message conforming to the bucket consumes its size in tokens; the
    ``delay_for`` method reports how long a non-conforming message must wait.
    """

    def __init__(self, sim: Simulator, rate_bps: float, burst_bits: float):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.sim = sim
        self.rate_bps = rate_bps
        self.burst_bits = burst_bits
        self._tokens = burst_bits
        self._last = sim.now

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(
            self.burst_bits, self._tokens + (now - self._last) * self.rate_bps
        )
        self._last = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_consume(self, bits: float) -> bool:
        self._refill()
        if self._tokens >= bits:
            self._tokens -= bits
            return True
        return False

    def delay_for(self, bits: float) -> float:
        """Seconds until ``bits`` tokens will be available (0 if now)."""
        self._refill()
        deficit = bits - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate_bps

    def consume(self, bits: float) -> None:
        """Consume unconditionally (may drive the bucket negative-free)."""
        self._refill()
        self._tokens = max(0.0, self._tokens - bits)


def drain_store_via_link(sim: Simulator, store: Store, link: Link,
                         bits_of: Callable[[Any], float]):
    """A process shipping every item from ``store`` over ``link``.

    Waits for serialization so the link is never oversubscribed by this
    drain (models a device's egress scheduler).
    """
    while True:
        item = yield store.get()
        link.send(item, bits_of(item))
        delay = link.queue_delay()
        if delay > 0:
            yield sim.timeout(delay)
