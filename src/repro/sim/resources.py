"""Bandwidth-limited transmission resources for the simulator.

These model serial links (Ethernet ports, PCIe links, DRAM channels): a
message of ``bits`` occupies the link for ``bits / rate_bps`` seconds, plus a
fixed propagation latency before delivery.  Links are work-conserving FIFOs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, List, Optional, Tuple

from .engine import Simulator, Store


class Reservation:
    """One message's occupancy of a :class:`Link`, applied in arrival order.

    Links arbitrate strictly by arrival key ``(time, seq)``: the reference
    (pre-cut-through) model applied each reservation in a dedicated event
    at its arrival instant, so a reservation made *early* (cut-through
    resolves occupancy at issue time, possibly before other traffic with
    earlier arrivals has issued) must yield to any later-issued,
    earlier-arriving message.  ``start``/``finish``/``delivery`` are
    therefore mutable: an out-of-order insert recomputes every reservation
    behind it (they only ever move *later*), and the owner of the delivery
    event re-checks ``delivery`` when it fires, re-pushing if it fired
    early.  This replays exactly the busy-until sequence the
    one-event-per-arrival model would have produced.

    The record is a handle for the caller; the link's own lane state is
    array-backed (see :class:`Link`), so searches and replays never
    traverse these objects.
    """

    __slots__ = ("key", "bits", "start", "finish", "delivery", "message",
                 "done", "upstream")

    def __init__(self, key, bits, start, finish, delivery):
        self.key = key
        self.bits = bits
        self.start = start
        self.finish = finish
        self.delivery = delivery
        self.message: Any = None
        self.done = False
        #: Optional ``(link, record)`` of a first-hop reservation made by
        #: the same multi-lane transit (PCIe cut-through reserves both
        #: lanes at issue); the owner retires it with this record so the
        #: first hop's pending list drains too.
        self.upstream = None

    def __lt__(self, other: "Reservation") -> bool:
        return self.key < other.key


class TrainReservation:
    """A back-to-back chunk train's occupancy of a :class:`Link`.

    PCIe read completions arrive as a burst of RCB-sized CplDs keyed
    ``(arrivals[j], seq0 + j)`` with strictly increasing arrivals; only
    the *last* chunk's delivery matters to the owner.  Holding the train
    as ONE lane entry (keyed by its last chunk) keeps the lane arrays a
    quarter the length and retires in one prune, while staying exact:
    a later-issued message keyed *inside* the train's range must
    serialize between chunks, so such an insert first materializes the
    train back into per-chunk :class:`Reservation` records (see
    :meth:`Link._materialize`) and then proceeds as before.  After
    materialization this handle delegates to its parts.
    """

    __slots__ = ("first_key", "key", "seq0", "bits_list", "arrivals",
                 "finishes", "_delivery", "_done", "_parts", "message",
                 "upstream")

    def __init__(self, first_key, key, seq0, bits_list, arrivals,
                 finishes, delivery):
        self.first_key = first_key
        self.key = key
        self.seq0 = seq0
        self.bits_list = bits_list
        self.arrivals = arrivals
        self.finishes = finishes
        self._delivery = delivery
        self._done = False
        self._parts = None
        self.message = None
        self.upstream = None

    @property
    def delivery(self) -> float:
        parts = self._parts
        return parts[-1].delivery if parts is not None else self._delivery

    @property
    def done(self) -> bool:
        return self._done

    @done.setter
    def done(self, value: bool) -> None:
        self._done = value
        parts = self._parts
        if parts is not None:
            for part in parts:
                part.done = value


class Link:
    """A serializing, work-conserving point-to-point link.

    Messages are delivered to ``sink`` (a callable) in order; each message
    holds the link for its serialization time.  Propagation latency overlaps
    with the next message's serialization (pipelining), as on real wires.

    Parameters
    ----------
    rate_bps:
        Line rate in bits/second. ``None`` means infinite rate.
    latency:
        One-way propagation delay in seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: Optional[float],
        latency: float = 0.0,
        name: str = "",
    ):
        if rate_bps is not None and rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.sim = sim
        self.rate_bps = rate_bps
        self.latency = latency
        self.name = name
        self.sink: Optional[Callable[[Any], None]] = None
        self._busy_until = 0.0
        #: Array-backed reservation lane: three parallel lists kept in
        #: lockstep, sorted by arrival key.  ``_lane_keys`` drives every
        #: search and ordering compare (plain tuple comparisons in C, no
        #: ``Reservation.__lt__`` frames), ``_lane_fin`` every
        #: previous-finish / busy-until read, and ``_lane_recs`` holds the
        #: :class:`Reservation` handles callers keep.  Almost always
        #: appended to (FIFO issue order); an out-of-order arrival
        #: bisects into all three and replays the tail with index
        #: arithmetic.  Entries are pruned once delivered.
        self._lane_keys: List[Tuple[float, int]] = []
        self._lane_fin: List[float] = []
        self._lane_recs: List[Reservation] = []
        self.stats_bits = 0
        self.stats_messages = 0
        # The trace process this link's spans file under; owners (PCIe
        # fabric, Ethernet port) override it to group their lanes.
        self.trace_process = "links"
        telemetry = sim.telemetry
        if telemetry.enabled and name:
            self._ctr_bits = telemetry.counter(f"link.{name}.bits")
            self._ctr_messages = telemetry.counter(f"link.{name}.messages")
            self._tracer = telemetry.tracer
        else:
            self._ctr_bits = None
            self._tracer = None

    def connect(self, sink: Callable[[Any], None]) -> None:
        self.sink = sink

    @property
    def profile_tag(self):
        # Delivery events are scheduled as ``self._dispatch``; the
        # profiler should attribute them to whoever consumes the
        # messages (the sink's owner), exactly as when the sink itself
        # was the scheduled callable.
        owner = getattr(self.sink, "__self__", None)
        if owner is not None and owner is not self:
            return getattr(owner, "profile_tag", None)
        return None

    def serialization_time(self, bits: float) -> float:
        if self.rate_bps is None:
            return 0.0
        return bits / self.rate_bps

    def reserve(self, bits: float, arrival: float, seq: int) -> Reservation:
        """Occupy the link for ``bits`` arriving at key ``(arrival, seq)``.

        Returns the reservation with its computed ``start``/``finish``/
        ``delivery``; no event is scheduled — the caller owns delivery and
        must re-check ``delivery`` at fire time (a later out-of-order
        insert may have moved it).  ``seq`` must be globally monotonic in
        issue order (ties on ``arrival`` are broken the way the reference
        model's per-arrival events would have dispatched: issue order).
        """
        self.stats_bits += bits
        self.stats_messages += 1
        if self._ctr_bits is not None:
            self._ctr_bits.inc(bits)
            self._ctr_messages.inc()
        keys = self._lane_keys
        rate = self.rate_bps
        latency = self.latency
        key = (arrival, seq)
        if arrival <= self.sim._now and (not keys or keys[-1] <= key):
            # Stable fast path: every reservation arrives no earlier
            # than its issue instant and ``seq`` is globally monotonic,
            # so once the lane's latest key is <= (now, seq) NO future
            # issue can ever key before anything pending — the whole
            # lane is permanently ordered.  Fold every pending finish
            # into the busy floor (finishes are monotone along the
            # lane, so the tail is the max) and run lane-free; retiring
            # a folded record later is a no-op prune.
            fins = self._lane_fin
            if fins:
                self._busy_until = fins[-1]
                keys.clear()
                fins.clear()
                self._lane_recs.clear()
            prev_finish = self._busy_until
            start = arrival if arrival > prev_finish else prev_finish
            finish = start if rate is None else start + bits / rate
            self._busy_until = finish
            return Reservation(key, bits, start, finish, finish + latency)
        if not keys or keys[-1] <= key:
            prev_finish = self._lane_fin[-1] if keys else self._busy_until
            start = arrival if arrival > prev_finish else prev_finish
            finish = start if rate is None else start + bits / rate
            record = Reservation(key, bits, start, finish, finish + latency)
            keys.append(key)
            self._lane_fin.append(finish)
            self._lane_recs.append(record)
            return record
        record = Reservation(key, bits, 0.0, 0.0, 0.0)
        index = bisect_left(keys, key)
        if type(self._lane_recs[index]) is TrainReservation \
                and self._lane_recs[index].first_key < key:
            # The new message serializes *between* this train's chunks:
            # split it back into per-chunk records, then insert normally.
            self._materialize(index)
            index = bisect_left(keys, key)
        keys.insert(index, key)
        self._lane_fin.insert(index, 0.0)
        self._lane_recs.insert(index, record)
        self._recompute(index)
        return record

    def reserve_train(self, bits_list: List[float], arrivals: List[float],
                      seq0: int) -> TrainReservation:
        """Occupy the link for a chunk train keyed ``(arrivals[j], seq0+j)``.

        Arrivals must be non-decreasing (a completion train's are — each
        chunk finishes the first hop after its predecessor).  The common
        case appends ONE lane entry for the whole train; when earlier
        pending occupancy keys beyond the train's first chunk the train
        is kept as per-chunk reservations from the start (exactly the
        chunk-wise :meth:`reserve` sequence).
        """
        n = len(bits_list)
        total_bits = 0
        for bits in bits_list:
            total_bits += bits
        self.stats_bits += total_bits
        self.stats_messages += n
        if self._ctr_bits is not None:
            self._ctr_bits.inc(total_bits)
            self._ctr_messages.inc(n)
        keys = self._lane_keys
        first_key = (arrivals[0], seq0)
        last_key = (arrivals[n - 1], seq0 + n - 1)
        rate = self.rate_bps
        latency = self.latency
        if keys and keys[-1] > first_key:
            # Pending occupancy interleaves with the train: fall back to
            # chunk-wise inserts (stats were counted above, so bypass
            # reserve()'s accounting by replaying its lane logic through
            # individual calls with the counters compensated).
            self.stats_bits -= total_bits
            self.stats_messages -= n
            if self._ctr_bits is not None:
                self._ctr_bits.inc(-total_bits)
                self._ctr_messages.inc(-n)
            parts = [self.reserve(bits_list[j], arrivals[j], seq0 + j)
                     for j in range(n)]
            train = TrainReservation(first_key, last_key, seq0, bits_list,
                                     arrivals, [p.finish for p in parts],
                                     parts[-1].delivery)
            train._parts = parts
            return train
        prev = self._lane_fin[-1] if keys else self._busy_until
        finishes = []
        for j in range(n):
            arrival = arrivals[j]
            start = arrival if arrival > prev else prev
            prev = start if rate is None else start + bits_list[j] / rate
            finishes.append(prev)
        train = TrainReservation(first_key, last_key, seq0, bits_list,
                                 arrivals, finishes, prev + latency)
        keys.append(last_key)
        self._lane_fin.append(prev)
        self._lane_recs.append(train)
        return train

    def _materialize(self, index: int) -> None:
        """Split the train at lane ``index`` into per-chunk records."""
        train = self._lane_recs[index]
        rate = self.rate_bps
        latency = self.latency
        seq0 = train.seq0
        done = train._done
        keys = []
        fins = []
        recs = []
        for j, bits in enumerate(train.bits_list):
            finish = train.finishes[j]
            start = finish if rate is None else finish - bits / rate
            record = Reservation((train.arrivals[j], seq0 + j), bits,
                                 start, finish, finish + latency)
            record.done = done
            keys.append(record.key)
            fins.append(finish)
            recs.append(record)
        self._lane_keys[index:index + 1] = keys
        self._lane_fin[index:index + 1] = fins
        self._lane_recs[index:index + 1] = recs
        train._parts = recs

    def _recompute(self, index: int) -> None:
        """Replay reservations from ``index`` on, in arrival-key order.

        Pure index arithmetic over the parallel lane arrays: arrivals
        come from ``_lane_keys``, the running finish frontier lives in
        ``_lane_fin``; the repaired times are written back to the caller-
        held records (whose delivery events re-check on fire).
        """
        keys = self._lane_keys
        fins = self._lane_fin
        recs = self._lane_recs
        prev_finish = fins[index - 1] if index > 0 else self._busy_until
        rate = self.rate_bps
        latency = self.latency
        for i in range(index, len(keys)):
            record = recs[i]
            if type(record) is TrainReservation:
                # Replay the train's chunk recurrence in place; only the
                # final finish is lane state.
                arrivals = record.arrivals
                bits_list = record.bits_list
                train_fins = record.finishes
                for j in range(len(bits_list)):
                    arrival = arrivals[j]
                    start = (arrival if arrival > prev_finish
                             else prev_finish)
                    prev_finish = (start if rate is None
                                   else start + bits_list[j] / rate)
                    train_fins[j] = prev_finish
                fins[i] = prev_finish
                record._delivery = prev_finish + latency
                continue
            arrival = keys[i][0]
            start = arrival if arrival > prev_finish else prev_finish
            finish = start if rate is None else start + record.bits / rate
            fins[i] = finish
            record.start = start
            record.finish = finish
            record.delivery = finish + latency
            prev_finish = finish
        # Repairs only move reservations later, so any already-scheduled
        # delivery event fires early and re-pushes to the new time.

    def retire(self, record: Reservation) -> None:
        """Mark ``record`` delivered and prune the delivered lane prefix."""
        record.done = True
        recs = self._lane_recs
        if not recs or not recs[0].done:
            return
        fins = self._lane_fin
        busy = self._busy_until
        drop = 0
        for entry in recs:
            if not entry.done:
                break
            finish = fins[drop]
            if finish > busy:
                busy = finish
            drop += 1
        self._busy_until = busy
        del recs[:drop]
        del fins[:drop]
        del self._lane_keys[:drop]

    def send(self, message: Any, bits: float) -> float:
        """Enqueue ``message`` of ``bits``; returns its delivery time.

        The caller does not block; backpressure, when needed, is modelled by
        the caller checking :meth:`queue_delay`.
        """
        sink = self.sink
        if sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink connected")
        sim = self.sim
        now = sim._now
        record = self.reserve(bits, now, sim._seq)
        record.message = message
        if self._ctr_bits is not None:
            tracer = self._tracer
            if tracer.enabled and record.finish > record.start:
                tracer.complete(self.trace_process, self.name,
                                type(message).__name__, record.start,
                                record.finish, {"bits": bits})
        sim.call_later(record.delivery - now, self._dispatch, record)
        return record.delivery

    def send_at(self, message: Any, bits: float, arrival: float) -> float:
        """Like :meth:`send`, but arriving at future time ``arrival``.

        Used by fused pipeline stages that resolved a future transmission
        early; arbitration against messages issued later with earlier
        arrivals is exact (see :class:`Reservation`).
        """
        sink = self.sink
        if sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink connected")
        sim = self.sim
        record = self.reserve(bits, arrival, sim._seq)
        record.message = message
        sim.call_later(record.delivery - sim._now, self._dispatch, record)
        return record.delivery

    def _dispatch(self, record: Reservation) -> None:
        """Deliver a sent message, honouring post-hoc repairs."""
        sim = self.sim
        if record.delivery > sim._now:
            # An out-of-order arrival pushed this message later after its
            # delivery event was scheduled; fire again at the final time.
            sim.call_later(record.delivery - sim._now, self._dispatch, record)
            return
        self.retire(record)
        self.sink(record.message)

    def queue_delay(self) -> float:
        """Seconds until the link would start serializing a new message."""
        return max(0.0, self.busy_until - self.sim._now)

    @property
    def busy_until(self) -> float:
        fins = self._lane_fin
        return fins[-1] if fins else self._busy_until


class DuplexLink:
    """A full-duplex link: independent TX and RX unidirectional lanes."""

    def __init__(
        self,
        sim: Simulator,
        rate_bps: Optional[float],
        latency: float = 0.0,
        name: str = "",
    ):
        self.tx = Link(sim, rate_bps, latency, name=f"{name}.tx")
        self.rx = Link(sim, rate_bps, latency, name=f"{name}.rx")
        self.name = name

    @property
    def rate_bps(self) -> Optional[float]:
        return self.tx.rate_bps


class TokenBucket:
    """A token-bucket rate limiter (used by the NIC traffic shaper).

    Tokens accrue at ``rate_bps`` bits/second up to ``burst_bits``.  A
    message conforming to the bucket consumes its size in tokens; the
    ``delay_for`` method reports how long a non-conforming message must wait.
    """

    def __init__(self, sim: Simulator, rate_bps: float, burst_bits: float):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.sim = sim
        self.rate_bps = rate_bps
        self.burst_bits = burst_bits
        self._tokens = burst_bits
        self._last = sim._now

    def _refill(self) -> None:
        now = self.sim._now
        self._tokens = min(
            self.burst_bits, self._tokens + (now - self._last) * self.rate_bps
        )
        self._last = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_consume(self, bits: float) -> bool:
        self._refill()
        if self._tokens >= bits:
            self._tokens -= bits
            return True
        return False

    def delay_for(self, bits: float) -> float:
        """Seconds until ``bits`` tokens will be available (0 if now)."""
        self._refill()
        deficit = bits - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate_bps

    def consume(self, bits: float) -> None:
        """Consume unconditionally (may drive the bucket negative-free)."""
        self._refill()
        self._tokens = max(0.0, self._tokens - bits)


def drain_store_via_link(sim: Simulator, store: Store, link: Link,
                         bits_of: Callable[[Any], float]):
    """A process shipping every item from ``store`` over ``link``.

    Waits for serialization so the link is never oversubscribed by this
    drain (models a device's egress scheduler).  Backlogs are drained in
    bursts: after the blocking ``get()`` wake-up, every already-queued
    item is claimed with :meth:`Store.try_get_many` rather than paying
    one wake-up per item; pacing between items is unchanged.
    """
    while True:
        pending = [(yield store.get())]
        while pending:
            for item in pending:
                link.send(item, bits_of(item))
                delay = link.queue_delay()
                if delay > 0:
                    yield sim.timeout(delay)
            pending = store.try_get_many()
