"""Statistics helpers for simulation experiments.

Latency collectors with percentile queries and throughput meters; all pure
Python so they can run inside tight simulation loops.

:class:`Histogram` (re-exported from :mod:`repro.telemetry.metrics`) is
the bridge between experiment-local collectors and the telemetry
registry: it buckets at power-of-two boundaries, supports ``merge()``
across shards and ``to_dict()`` export, and can be attached to a
:class:`~repro.telemetry.metrics.MetricsRegistry` without copying any
samples (``registry.attach(name, histogram)``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..telemetry.metrics import Histogram


def percentile(samples: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile (matching numpy's default).

    ``pct`` is in [0, 100].
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile {pct} outside [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


class LatencyCollector:
    """Accumulates latency samples and reports summary statistics."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[float] = []

    def add(self, value: float) -> None:
        self.samples.append(value)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError("no samples")
        return sum(self.samples) / len(self.samples)

    @property
    def median(self) -> float:
        return percentile(self.samples, 50.0)

    def pct(self, p: float) -> float:
        return percentile(self.samples, p)

    def summary(self) -> Dict[str, float]:
        """Mean / median / p99 / p99.9, the row format of the paper's Table 6."""
        return {
            "mean": self.mean,
            "median": self.median,
            "p99": self.pct(99.0),
            "p99.9": self.pct(99.9),
        }

    def to_histogram(self, name: str = "") -> Histogram:
        """Bucket the collected samples into a mergeable :class:`Histogram`.

        The exact samples stay here; the histogram is the fixed-size
        summary experiment shards hand to the telemetry registry.
        """
        histogram = Histogram(name or self.name)
        for sample in self.samples:
            histogram.observe(sample)
        return histogram


class ThroughputMeter:
    """Counts bytes/packets over a measured window to derive rates."""

    def __init__(self, name: str = ""):
        self.name = name
        self.bytes = 0
        self.packets = 0
        self._window_start = 0.0
        self._window_end = 0.0

    def start(self, now: float) -> None:
        self._window_start = now
        self._window_end = now
        self.bytes = 0
        self.packets = 0

    def record(self, now: float, nbytes: int) -> None:
        self.bytes += nbytes
        self.packets += 1
        self._window_end = now

    @property
    def duration(self) -> float:
        return self._window_end - self._window_start

    def gbps(self, wire_overhead_per_packet: int = 0) -> float:
        """Goodput in Gbit/s; optionally count per-packet wire overhead."""
        if self.duration <= 0:
            return 0.0
        bits = (self.bytes + self.packets * wire_overhead_per_packet) * 8
        return bits / self.duration / 1e9

    def mpps(self) -> float:
        """Packet rate in millions of packets per second."""
        if self.duration <= 0:
            return 0.0
        return self.packets / self.duration / 1e6


class Counter:
    """A named bag of integer counters (drops, retransmits, stalls...)."""

    def __init__(self):
        self._counts: Dict[str, int] = {}

    def inc(self, key: str, amount: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + amount

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)
