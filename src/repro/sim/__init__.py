"""Discrete-event simulation substrate.

Provides the clock, processes, channels and bandwidth-limited links that
every timed experiment in the reproduction is built on.
"""

from .engine import (
    Continuation,
    Event,
    Process,
    Resource,
    SimulationError,
    Simulator,
    Store,
)
from .fastpath import fused_dispatch_ok
from .resources import DuplexLink, Link, TokenBucket, drain_store_via_link
from .stats import (
    Counter,
    Histogram,
    LatencyCollector,
    ThroughputMeter,
    percentile,
)

__all__ = [
    "Continuation",
    "Counter",
    "DuplexLink",
    "Event",
    "Histogram",
    "LatencyCollector",
    "Link",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "ThroughputMeter",
    "TokenBucket",
    "drain_store_via_link",
    "fused_dispatch_ok",
    "percentile",
]
