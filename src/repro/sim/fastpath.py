"""The fused fast-path gate, shared by every flattened caller.

PR 9 fused the steady-state datapath (NIC tx stage, host rx completion,
FLD rx engine) into cut-through PCIe deliveries, but each caller grew
its own copy of the gating predicate deciding whether the fused path is
safe.  The predicate is the same everywhere:

* packet tracing must be off (traced runs need per-hop TLP routing and
  per-stage trace records that the fused path skips), which is also
  what enables the fabric's cut-through mode in the first place;
* span recording must be off (spans attach per-packet contexts that the
  fused path does not thread through);
* the fabric must actually be running cut-through (``_cut_through``),
  i.e. reservations are made end-to-end at issue time.

Callers layer their own *local* conditions on top (an RC send queue
still runs the general rdma path, a metered queue still paces through
the shaper, an FLD CQ with a programmable hook still runs the hook),
but the core gate lives here so the flattened continuation workers and
the fused callers agree on exactly one definition.
"""

from __future__ import annotations


def fused_dispatch_ok(sim, fabric) -> bool:
    """True when the flat fused datapath may replace the generator path.

    ``sim`` is the :class:`~repro.sim.engine.Simulator` (for the
    telemetry flags); ``fabric`` is the PCIe fabric the caller sits on
    (anything without a ``_cut_through`` attribute gates the fast path
    off, e.g. test doubles).
    """
    telemetry = sim.telemetry
    return (not telemetry.tracer.enabled
            and not telemetry.spans.enabled
            and getattr(fabric, "_cut_through", False))
