"""Discrete-event simulation engine.

The engine is a small, dependency-free core in the style of SimPy:
generator-based processes yield *events*, and the simulator advances a
virtual clock from one scheduled event to the next.  Time is measured in
**seconds** (floats); bandwidth in **bits per second**.

The engine underpins every timed experiment in the reproduction: PCIe links,
NIC pipelines, accelerator processing loops and host CPU threads are all
processes exchanging work through :class:`Store` queues and delaying through
:meth:`Simulator.timeout`.

The hot path is batch-oriented: entries carry a ``(func, arg)`` pair
instead of a closure, events have a single-callback fast slot, stores run on
deques with bulk drains, and :meth:`Simulator.run` coalesces bursts of
same-timestamp events into one scheduler pass.  None of this changes
scheduling order — entries are still dispatched strictly by
``(time, seq)`` — so results are bit-identical to the scalar engine.

Besides generator :class:`Process`\ es the engine dispatches *flat
continuations*: a plain ``(callback, arg)`` pair invoked directly by the
run loop with no generator resume, no :class:`Event` allocation and no
trampoline frame.  :meth:`Simulator.call_later` / :meth:`Simulator.schedule`
/ :meth:`Simulator.schedule_at` are the zero-overhead forms used by the
steady-state datapath workers; :meth:`Simulator.defer` /
:meth:`Simulator.defer_at` return a cancellable :class:`Continuation`
handle for callers that may need to revoke the call before it fires.
Under the profiler every form stamps the entry with its owner tag at push
time (the callback's ``__self__.profile_tag`` when bound to a tagged
component, else the dispatching context's tag), so flat and generator
dispatch attribute identically.

Scheduling itself is two-tier: zero-delay pushes (store handoffs,
fired-event callbacks, spawn steps) go to a FIFO *ready deque* with O(1)
appends, timed pushes to the classic binary heap.  Because ``seq`` is
globally monotonic and the deque is only appended to while simulation
time is non-decreasing, the deque is always sorted by ``(time, seq)``;
the run loop merges the two tiers by comparing heads, which reproduces
the single-heap dispatch order exactly (see ``tests/sim/test_lockstep``
for the machine-checked argument).  Entries may also be appended to the
ready tier at a *future* timestamp (deferred continuations resolved
early, e.g. by the PCIe cut-through fabric) — the merge dispatches them
at their recorded time, still in exact ``(time, seq)`` order, as long as
appends keep the deque sorted; :meth:`Simulator.schedule_at` guards
this.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim):
...     yield sim.timeout(1.0)
...     log.append(sim.now)
>>> _ = sim.spawn(proc(sim))
>>> sim.run()
>>> log
[1.0]
"""

from __future__ import annotations

import heapq
from collections import deque
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..telemetry import NULL_TELEMETRY
from ..telemetry.profile import NULL_PROFILER

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Sentinel ``arg`` for heap entries whose callable takes no argument.
_NO_ARG = object()


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; :meth:`succeed` schedules all waiting
    processes to resume with ``value``.  Events may only fire once.

    Nearly every event has zero or one waiter, so the first callback sits
    in a dedicated slot (``_cb``) and only the rare second waiter allocates
    the overflow list (``_cbs``).
    """

    __slots__ = ("sim", "_value", "_fired", "_cb", "_cbs")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._fired = False
        self._cb: Optional[Callable[["Event"], None]] = None
        self._cbs: Optional[List[Callable[["Event"], None]]] = None

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError("event value read before it fired")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._fired:
            raise SimulationError("event fired twice")
        self._fired = True
        self._value = value
        # Snapshot-and-clear before invoking: callbacks registered *during*
        # firing see ``fired`` and run immediately from add_callback, which
        # interleaves them exactly as the old list-snapshot loop did.
        cb = self._cb
        if cb is not None:
            self._cb = None
            cb(self)
            cbs = self._cbs
            if cbs is not None:
                self._cbs = None
                for extra in cbs:
                    extra(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._fired:
            callback(self)
        elif self._cb is None:
            self._cb = callback
        elif self._cbs is None:
            self._cbs = [callback]
        else:
            self._cbs.append(callback)


class Process:
    """A running generator-based simulation process.

    Wraps a generator that yields :class:`Event` objects.  The process
    itself is an event that fires (with the generator's return value) when
    the generator finishes, so processes can wait for each other::

        result = yield sim.spawn(worker(sim))
    """

    __slots__ = ("sim", "_gen", "_done", "name", "_resume", "profile_tag")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self._gen = gen
        self._done = Event(sim)
        self.name = name or getattr(gen, "__name__", "process")
        self.profile_tag = self.name
        # One bound method reused for every yield; a per-yield lambda would
        # allocate a closure each time the process blocks.  Under the
        # profiler the resume wrapper re-establishes this process's tag
        # before stepping (a store handoff can resume us synchronously
        # from inside another component's dispatch).
        self._resume = (self._on_event if sim._prof is None
                        else self._profiled_on_event)

    @property
    def done(self) -> Event:
        return self._done

    @property
    def finished(self) -> bool:
        return self._done.fired

    def _on_event(self, event: Event) -> None:
        self._step(event._value)

    def _profiled_on_event(self, event: Event) -> None:
        prof = self.sim._prof
        prev = prof.current_tag
        prof.current_tag = self.profile_tag
        try:
            self._step(event._value)
        finally:
            prof.current_tag = prev

    def _step(self, value: Any = None) -> None:
        # Trampoline: when the yielded event has already fired, resume the
        # generator in this same frame instead of recursing — long chains
        # of ready events (busy stores, cached DMA) would otherwise
        # overflow the Python stack.
        send = self._gen.send
        while True:
            try:
                target = send(value)
            except StopIteration as stop:
                sim = self.sim
                sim._ctr_proc_finished.inc()
                tracer = sim.telemetry.tracer
                if tracer.enabled:
                    tracer.instant("sim", "processes", f"finish:{self.name}",
                                   sim.now)
                self._done.succeed(stop.value)
                return
            if target.__class__ is not Event:
                if isinstance(target, Process):
                    target = target._done
                elif not isinstance(target, Event):
                    raise SimulationError(
                        f"process {self.name!r} yielded {target!r}; "
                        "expected an Event"
                    )
            if target._fired:
                value = target._value
                continue
            target.add_callback(self._resume)
            return


class Continuation:
    """A cancellable flat continuation: ``func(arg)`` at its ``(time, seq)``.

    The lightweight third event kind next to :class:`Process` and
    :class:`Event` timeouts.  A continuation occupies exactly one
    scheduler entry; cancelling it does **not** remove the entry (the
    reference single-heap model dispatches every pushed entry), it only
    suppresses the callback — the dispatch still happens, as a no-op, at
    the original ``(time, seq)`` slot.  Hot paths that never cancel use
    :meth:`Simulator.call_later` directly and skip this handle entirely.
    """

    __slots__ = ("func", "arg", "_cancelled", "_fired")

    def __init__(self, func: Callable[..., None], arg: Any):
        self.func = func
        self.arg = arg
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    def cancel(self) -> None:
        """Suppress the callback; idempotent, a no-op once fired."""
        if not self._fired:
            self._cancelled = True

    def fire(self) -> None:
        if self._cancelled or self._fired:
            return
        self._fired = True
        arg = self.arg
        if arg is _NO_ARG:
            self.func()
        else:
            self.func(arg)


class Simulator:
    """The event loop: a priority queue of (time, seq, func, arg) entries.

    With a live profiler (``Telemetry(profile=True)`` or an explicit
    ``profiler=``) the scheduling entry points are rebound to variants
    that append an owner tag to each heap entry, and :meth:`run`
    dispatches through the accounting loop.  With the default
    :data:`~repro.telemetry.profile.NULL_PROFILER` none of those paths
    are touched — the class-level methods run unmodified, so disabled
    runs are bit-identical to untraced ones.
    """

    def __init__(self, telemetry=None, profiler=None):
        self._now = 0.0
        self._queue: List = []
        #: Ready tier: entries sorted by (time, seq), appended O(1).
        self._ready: deque = deque()
        self._seq = 0
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if profiler is None:
            profiler = getattr(self.telemetry, "profiler", NULL_PROFILER)
        self.profiler = profiler
        if profiler.enabled:
            self._prof = profiler
            # Instance-attribute rebinding: profiled pushes carry a
            # 5th tag element; the unprofiled methods stay untouched
            # on the class for every other simulator.
            self.schedule = self._schedule_profiled
            self.schedule_at = self._schedule_at_profiled
            self.call_later = self._call_later_profiled
            self.timeout = self._timeout_profiled
            self.defer = self._defer_profiled
            self.defer_at = self._defer_at_profiled
        else:
            self._prof = None
        self._ctr_proc_spawned = self.telemetry.counter("sim.processes.spawned")
        self._ctr_proc_finished = self.telemetry.counter(
            "sim.processes.finished")
        self._ctr_events = self.telemetry.counter("sim.events.processed")

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action()`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0:
            ready = self._ready
            if not ready or ready[-1][0] <= self._now:
                ready.append((self._now, seq, action, _NO_ARG))
                return
        _heappush(self._queue, (self._now + delay, seq, action, _NO_ARG))

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Run ``action()`` at absolute time ``time`` (>= now).

        Deferred-continuation entry point: callers that resolved a future
        occurrence *now* (cut-through deliveries, fused pipeline stages)
        land on the ready tier when their times arrive in order — the
        common case for a FIFO transaction stream — and fall back to the
        heap otherwise.  Dispatch order is identical either way.
        """
        if time < self._now:
            raise SimulationError(
                f"schedule_at({time}) before now ({self._now})")
        seq = self._seq
        self._seq = seq + 1
        ready = self._ready
        if not ready or ready[-1][0] <= time:
            ready.append((time, seq, action, _NO_ARG))
        else:
            _heappush(self._queue, (time, seq, action, _NO_ARG))

    def call_later(self, delay: float, func: Callable[[Any], None],
                   arg: Any) -> None:
        """Run ``func(arg)`` after ``delay`` seconds of virtual time.

        The one-argument twin of :meth:`schedule`; hot callers use it to
        avoid allocating a closure per scheduled call.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0:
            ready = self._ready
            if not ready or ready[-1][0] <= self._now:
                ready.append((self._now, seq, func, arg))
                return
        _heappush(self._queue, (self._now + delay, seq, func, arg))

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        event = Event(self)
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0:
            ready = self._ready
            if not ready or ready[-1][0] <= self._now:
                ready.append((self._now, seq, event.succeed, value))
                return event
        _heappush(self._queue, (self._now + delay, seq, event.succeed, value))
        return event

    def defer(self, delay: float, func: Callable[..., None],
              arg: Any = _NO_ARG) -> Continuation:
        """Schedule a cancellable flat continuation ``delay`` from now.

        Like :meth:`call_later` but returns a :class:`Continuation`
        handle whose :meth:`~Continuation.cancel` suppresses the call.
        The scheduler entry itself is never removed — a cancelled
        continuation still dispatches (as a no-op) at its original
        ``(time, seq)``, matching the single-heap reference model.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        cont = Continuation(func, arg)
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0:
            ready = self._ready
            if not ready or ready[-1][0] <= self._now:
                ready.append((self._now, seq, cont.fire, _NO_ARG))
                return cont
        _heappush(self._queue, (self._now + delay, seq, cont.fire, _NO_ARG))
        return cont

    def defer_at(self, time: float, func: Callable[..., None],
                 arg: Any = _NO_ARG) -> Continuation:
        """Like :meth:`defer`, at absolute time ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"defer_at({time}) before now ({self._now})")
        cont = Continuation(func, arg)
        seq = self._seq
        self._seq = seq + 1
        ready = self._ready
        if not ready or ready[-1][0] <= time:
            ready.append((time, seq, cont.fire, _NO_ARG))
        else:
            _heappush(self._queue, (time, seq, cont.fire, _NO_ARG))
        return cont

    # -- profiled scheduling (bound as instance attrs when profiling) ----

    def _owner_tag(self, func) -> str:
        """The tag a heap entry belongs to: the callable's owning
        component when it is a bound method of something tagged
        (``profile_tag``), else the tag of the currently dispatching
        context."""
        owner = getattr(func, "__self__", None)
        if owner is not None:
            tag = getattr(owner, "profile_tag", None)
            if tag is not None:
                return tag
        return self._prof.current_tag

    def _schedule_profiled(self, delay: float,
                           action: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        seq = self._seq
        self._seq = seq + 1
        entry = (self._now + delay, seq, action, _NO_ARG,
                 self._owner_tag(action))
        if delay == 0.0:
            ready = self._ready
            if not ready or ready[-1][0] <= self._now:
                ready.append(entry)
                return
        _heappush(self._queue, entry)

    def _schedule_at_profiled(self, time: float,
                              action: Callable[[], None]) -> None:
        if time < self._now:
            raise SimulationError(
                f"schedule_at({time}) before now ({self._now})")
        seq = self._seq
        self._seq = seq + 1
        entry = (time, seq, action, _NO_ARG, self._owner_tag(action))
        ready = self._ready
        if not ready or ready[-1][0] <= time:
            ready.append(entry)
        else:
            _heappush(self._queue, entry)

    def _call_later_profiled(self, delay: float, func: Callable[[Any], None],
                             arg: Any) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        seq = self._seq
        self._seq = seq + 1
        entry = (self._now + delay, seq, func, arg, self._owner_tag(func))
        if delay == 0.0:
            ready = self._ready
            if not ready or ready[-1][0] <= self._now:
                ready.append(entry)
                return
        _heappush(self._queue, entry)

    def _timeout_profiled(self, delay: float, value: Any = None) -> Event:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        event = Event(self)
        seq = self._seq
        self._seq = seq + 1
        # ``event.succeed`` is owned by the Event, which carries no tag;
        # the timeout attributes to whoever asked for it.
        entry = (self._now + delay, seq, event.succeed, value,
                 self._prof.current_tag)
        if delay == 0.0:
            ready = self._ready
            if not ready or ready[-1][0] <= self._now:
                ready.append(entry)
                return event
        _heappush(self._queue, entry)
        return event

    def _defer_profiled(self, delay: float, func: Callable[..., None],
                        arg: Any = _NO_ARG) -> Continuation:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        cont = Continuation(func, arg)
        seq = self._seq
        self._seq = seq + 1
        # Attribute to the *wrapped* callable's owner (``cont.fire`` is
        # bound to the untagged handle), so cancellable and plain
        # continuations account identically.
        entry = (self._now + delay, seq, cont.fire, _NO_ARG,
                 self._owner_tag(func))
        if delay == 0.0:
            ready = self._ready
            if not ready or ready[-1][0] <= self._now:
                ready.append(entry)
                return cont
        _heappush(self._queue, entry)
        return cont

    def _defer_at_profiled(self, time: float, func: Callable[..., None],
                           arg: Any = _NO_ARG) -> Continuation:
        if time < self._now:
            raise SimulationError(
                f"defer_at({time}) before now ({self._now})")
        cont = Continuation(func, arg)
        seq = self._seq
        self._seq = seq + 1
        entry = (time, seq, cont.fire, _NO_ARG, self._owner_tag(func))
        ready = self._ready
        if not ready or ready[-1][0] <= time:
            ready.append(entry)
        else:
            _heappush(self._queue, entry)
        return cont

    def event(self) -> Event:
        """A fresh pending event, fired manually via :meth:`Event.succeed`."""
        return Event(self)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process on the next event-loop pass."""
        process = Process(self, gen, name)
        self._ctr_proc_spawned.inc()
        tracer = self.telemetry.tracer
        if tracer.enabled:
            tracer.instant("sim", "processes", f"spawn:{process.name}",
                           self._now)
        self.schedule(0.0, process._step)
        return process

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires once every event in ``events`` has fired."""
        events = list(events)
        combined = Event(self)
        remaining = len(events)
        if remaining == 0:
            return combined.succeed([])

        def on_fire(_event: Event) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                combined.succeed([e.value for e in events])

        for event in events:
            event.add_callback(on_fire)
        return combined

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulation time when execution stopped.

        Bursts of same-timestamp entries — a WQE batch fetch fanning out,
        zero-delay store handoffs — drain in one pass: the ``until``
        horizon is checked once per timestamp, not once per event.
        Dispatch order is still strictly ``(time, seq)``.
        """
        if self._prof is not None:
            return self._run_profiled(until, max_events)
        processed = 0
        queue = self._queue
        ready = self._ready
        try:
            while True:
                # Peek the earliest entry across both tiers.  ``seq`` is
                # unique, so comparing (time, seq) fully orders entries.
                if ready:
                    # (time, seq) orders entries and seq is unique, so a
                    # direct tuple compare never reaches the callables.
                    entry = ready[0]
                    from_ready = True
                    if queue:
                        top = queue[0]
                        if top < entry:
                            entry = top
                            from_ready = False
                elif queue:
                    entry = queue[0]
                    from_ready = False
                else:
                    break
                time = entry[0]
                if until is not None and time > until:
                    self._now = until
                    return until
                self._now = time
                # Coalesced drain of the same-timestamp burst.
                while True:
                    if from_ready:
                        ready.popleft()
                    else:
                        _heappop(queue)
                    func = entry[2]
                    arg = entry[3]
                    if arg is _NO_ARG:
                        func()
                    else:
                        func(arg)
                    processed += 1
                    if processed > max_events:
                        raise SimulationError(
                            f"exceeded {max_events} events; likely a livelock"
                        )
                    if ready:
                        entry = ready[0]
                        from_ready = True
                        if queue:
                            top = queue[0]
                            if top < entry:
                                entry = top
                                from_ready = False
                    elif queue:
                        entry = queue[0]
                        from_ready = False
                    else:
                        break
                    if entry[0] != time:
                        break
            if until is not None:
                self._now = max(self._now, until)
            return self._now
        finally:
            # One bulk add per run() call keeps the loop body clean of
            # telemetry work.
            self._ctr_events.inc(processed)

    def _run_profiled(self, until: Optional[float],
                      max_events: int) -> float:
        """:meth:`run` with per-event accounting.

        Identical dispatch order and identical simulation results — the
        only differences are bookkeeping: the entry's 5th element (its
        owner tag) is counted, the profiler's ``current_tag`` tracks the
        dispatching entry so nested pushes inherit it, heap depth is
        sampled on a fixed event cadence, and (in wallclock mode) each
        dispatch is timed with ``perf_counter``.
        """
        prof = self._prof
        counts = prof.event_counts
        wallclock = prof.wallclock
        wall = prof.wall_times
        depth_every = prof.depth_every
        processed = 0
        base = prof.total_events
        queue = self._queue
        ready = self._ready
        try:
            while True:
                if ready:
                    # (time, seq) orders entries and seq is unique, so a
                    # direct tuple compare never reaches the callables.
                    entry = ready[0]
                    from_ready = True
                    if queue:
                        top = queue[0]
                        if top < entry:
                            entry = top
                            from_ready = False
                elif queue:
                    entry = queue[0]
                    from_ready = False
                else:
                    break
                time = entry[0]
                if until is not None and time > until:
                    self._now = until
                    return until
                self._now = time
                while True:
                    if from_ready:
                        ready.popleft()
                    else:
                        _heappop(queue)
                    func = entry[2]
                    arg = entry[3]
                    tag = entry[4]
                    prof.current_tag = tag
                    counts[tag] = counts.get(tag, 0) + 1
                    if wallclock:
                        t0 = perf_counter()
                        if arg is _NO_ARG:
                            func()
                        else:
                            func(arg)
                        elapsed = perf_counter() - t0
                        callsite = getattr(func, "__qualname__", repr(func))
                        acc = wall.get((tag, callsite))
                        if acc is None:
                            wall[(tag, callsite)] = [elapsed, 1]
                        else:
                            acc[0] += elapsed
                            acc[1] += 1
                    else:
                        if arg is _NO_ARG:
                            func()
                        else:
                            func(arg)
                    processed += 1
                    if processed % depth_every == 0:
                        prof.record_depth(base + processed,
                                          len(queue) + len(ready))
                        depth_every = prof.depth_every
                    if processed > max_events:
                        raise SimulationError(
                            f"exceeded {max_events} events; likely a livelock"
                        )
                    if ready:
                        entry = ready[0]
                        from_ready = True
                        if queue:
                            top = queue[0]
                            if top < entry:
                                entry = top
                                from_ready = False
                    elif queue:
                        entry = queue[0]
                        from_ready = False
                    else:
                        break
                    if entry[0] != time:
                        break
            if until is not None:
                self._now = max(self._now, until)
            return self._now
        finally:
            self._ctr_events.inc(processed)
            prof.total_events += processed
            prof.flush()


class Store:
    """An unbounded (or bounded) FIFO channel between processes.

    ``put`` succeeds immediately when below capacity; ``get`` blocks the
    calling process until an item is available.  Items are delivered in
    insertion order, one per waiting getter, preserving getter arrival
    order.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque = deque()
        self._getters: deque = deque()
        self._putters: deque = deque()  # (event, item) waiting for space
        self._held_until: deque = deque()  # hold_slot() deadlines, ascending
        self._hold_wake = False            # an _expire_holds wake is pending
        self.stats_put = 0
        self.stats_dropped = 0
        self.stats_max_depth = 0
        # Depth gauge and queue-wait histogram only exist when telemetry
        # is live; disabled simulations pay a single None check per
        # delivery.  The wait histogram is what splits queueing from
        # service time in latency attribution reports.
        if sim.telemetry.enabled and name:
            self._depth_gauge = sim.telemetry.gauge(f"store.{name}.depth")
            self._wait_hist = sim.telemetry.histogram(f"store.{name}.wait")
            self._enqueued: deque = deque()
        else:
            self._depth_gauge = None
            self._wait_hist = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        if self.capacity is None:
            return False
        held = self._held_until
        if held:
            now = self.sim.now
            while held and held[0] <= now:
                held.popleft()
        return len(self._items) + len(held) >= self.capacity

    def hold_slot(self, until: float) -> None:
        """Count one slot against ``capacity`` until time ``until``.

        For consumers that pop an item ahead of the schedule a reference
        pipeline would follow (fused stages): the slot stays occupied
        from the producers' point of view until the instant the
        reference consumer would have popped, so puts block — and
        blocked putters are admitted — at exactly the reference times.
        Holds expire lazily (``is_full`` purges past deadlines); a wake
        is scheduled only when a put actually blocks against one, so an
        uncontended hold costs no event at all.  Callers must take
        holds in nondecreasing deadline order.
        """
        self._held_until.append(until)

    def _expire_holds(self) -> None:
        self._hold_wake = False
        self._admit_waiting_putter()
        if self._putters and self._held_until:
            self._hold_wake = True
            self.sim.schedule_at(self._held_until[0], self._expire_holds)

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns ``False`` (drops) when full."""
        if self.is_full and not self._getters:
            self.stats_dropped += 1
            return False
        self._deliver(item)
        return True

    def put(self, item: Any) -> Event:
        """Blocking put; the returned event fires when the item is queued."""
        event = Event(self.sim)
        if self.is_full and not self._getters:
            self._putters.append((event, item))
            if self._held_until and not self._hold_wake:
                # Blocked at least partly against a virtual hold: no
                # pop will happen at its deadline, so schedule the
                # admission check ourselves.
                self._hold_wake = True
                self.sim.schedule_at(self._held_until[0],
                                     self._expire_holds)
        else:
            self._deliver(item)
            event.succeed(item)
        return event

    def get(self) -> Event:
        """An event that fires with the next item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
            if self._wait_hist is not None:
                self._wait_hist.observe(
                    self.sim.now - self._enqueued.popleft())
            self._admit_waiting_putter()
            if self._depth_gauge is not None:
                self._depth_gauge.set(len(self._items))
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns ``None`` when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        if self._wait_hist is not None:
            self._wait_hist.observe(self.sim.now - self._enqueued.popleft())
        self._admit_waiting_putter()
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self._items))
        return item

    def try_get_many(self, limit: Optional[int] = None) -> List[Any]:
        """Non-blocking bulk get: repeated :meth:`try_get` in one call.

        Drains up to ``limit`` items (all available when ``None``),
        admitting waiting putters exactly as the item-at-a-time loop
        would — items a putter delivers mid-drain are picked up too, so
        the result is identical to calling ``try_get`` until it returns
        ``None`` (or ``limit`` times).
        """
        out: List[Any] = []
        items = self._items
        if not items:
            return out
        fast = (self._wait_hist is None and self._depth_gauge is None
                and not self._putters)
        if fast and (limit is None or limit >= len(items)):
            # No telemetry, no blocked putters: the drain is a plain
            # deque-to-list copy.
            out.extend(items)
            items.clear()
            return out
        while items and (limit is None or len(out) < limit):
            item = items.popleft()
            if self._wait_hist is not None:
                self._wait_hist.observe(
                    self.sim.now - self._enqueued.popleft())
            self._admit_waiting_putter()
            out.append(item)
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(items))
        return out

    def _deliver(self, item: Any) -> None:
        self.stats_put += 1
        getters = self._getters
        if getters:
            getters.popleft().succeed(item)
            if self._wait_hist is not None:
                self._wait_hist.observe(0.0)
        else:
            items = self._items
            items.append(item)
            if len(items) > self.stats_max_depth:
                self.stats_max_depth = len(items)
            if self._wait_hist is not None:
                self._enqueued.append(self.sim.now)
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self._items))

    def _admit_waiting_putter(self) -> None:
        if self._putters and not self.is_full:
            event, item = self._putters.popleft()
            self._deliver(item)
            event.succeed(item)


class Resource:
    """A counting resource (e.g. DMA engines); acquire/release semantics."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    def acquire(self) -> Event:
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release without acquire")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
