"""Discrete-event simulation engine.

The engine is a small, dependency-free core in the style of SimPy:
generator-based processes yield *events*, and the simulator advances a
virtual clock from one scheduled event to the next.  Time is measured in
**seconds** (floats); bandwidth in **bits per second**.

The engine underpins every timed experiment in the reproduction: PCIe links,
NIC pipelines, accelerator processing loops and host CPU threads are all
processes exchanging work through :class:`Store` queues and delaying through
:meth:`Simulator.timeout`.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim):
...     yield sim.timeout(1.0)
...     log.append(sim.now)
>>> _ = sim.spawn(proc(sim))
>>> sim.run()
>>> log
[1.0]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..telemetry import NULL_TELEMETRY


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; :meth:`succeed` schedules all waiting
    processes to resume with ``value``.  Events may only fire once.
    """

    __slots__ = ("sim", "_value", "_fired", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._fired = False
        self._callbacks: List[Callable[["Event"], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError("event value read before it fired")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._fired:
            raise SimulationError("event fired twice")
        self._fired = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._fired:
            callback(self)
        else:
            self._callbacks.append(callback)


class Process:
    """A running generator-based simulation process.

    Wraps a generator that yields :class:`Event` objects.  The process
    itself is an event that fires (with the generator's return value) when
    the generator finishes, so processes can wait for each other::

        result = yield sim.spawn(worker(sim))
    """

    __slots__ = ("sim", "_gen", "_done", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self._gen = gen
        self._done = Event(sim)
        self.name = name or getattr(gen, "__name__", "process")

    @property
    def done(self) -> Event:
        return self._done

    @property
    def finished(self) -> bool:
        return self._done.fired

    def _step(self, value: Any = None) -> None:
        # Trampoline: when the yielded event has already fired, resume the
        # generator in this same frame instead of recursing — long chains
        # of ready events (busy stores, cached DMA) would otherwise
        # overflow the Python stack.
        while True:
            try:
                target = self._gen.send(value)
            except StopIteration as stop:
                sim = self.sim
                sim._ctr_proc_finished.inc()
                tracer = sim.telemetry.tracer
                if tracer.enabled:
                    tracer.instant("sim", "processes", f"finish:{self.name}",
                                   sim.now)
                self._done.succeed(stop.value)
                return
            if isinstance(target, Process):
                target = target.done
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "expected an Event"
                )
            if target.fired:
                value = target.value
                continue
            target.add_callback(lambda event: self._step(event.value))
            return


class Simulator:
    """The event loop: a priority queue of (time, seq, action) entries."""

    def __init__(self, telemetry=None):
        self._now = 0.0
        self._queue: List = []
        self._seq = itertools.count()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._ctr_proc_spawned = self.telemetry.counter("sim.processes.spawned")
        self._ctr_proc_finished = self.telemetry.counter(
            "sim.processes.finished")
        self._ctr_events = self.telemetry.counter("sim.events.processed")

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action()`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), action))

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` seconds from now."""
        event = Event(self)
        self.schedule(delay, lambda: event.succeed(value))
        return event

    def event(self) -> Event:
        """A fresh pending event, fired manually via :meth:`Event.succeed`."""
        return Event(self)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process on the next event-loop pass."""
        process = Process(self, gen, name)
        self._ctr_proc_spawned.inc()
        tracer = self.telemetry.tracer
        if tracer.enabled:
            tracer.instant("sim", "processes", f"spawn:{process.name}",
                           self._now)
        self.schedule(0.0, process._step)
        return process

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires once every event in ``events`` has fired."""
        events = list(events)
        combined = Event(self)
        remaining = len(events)
        if remaining == 0:
            return combined.succeed([])

        def on_fire(_event: Event) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                combined.succeed([e.value for e in events])

        for event in events:
            event.add_callback(on_fire)
        return combined

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulation time when execution stopped.
        """
        processed = 0
        try:
            while self._queue:
                time, _seq, action = self._queue[0]
                if until is not None and time > until:
                    self._now = until
                    return self._now
                heapq.heappop(self._queue)
                self._now = time
                action()
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; likely a livelock"
                    )
            if until is not None:
                self._now = max(self._now, until)
            return self._now
        finally:
            # One bulk add per run() call keeps the loop body clean of
            # telemetry work.
            self._ctr_events.inc(processed)


class Store:
    """An unbounded (or bounded) FIFO channel between processes.

    ``put`` succeeds immediately when below capacity; ``get`` blocks the
    calling process until an item is available.  Items are delivered in
    insertion order, one per waiting getter, preserving getter arrival
    order.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: List[Any] = []
        self._getters: List[Event] = []
        self._putters: List = []  # (event, item) waiting for space
        self.stats_put = 0
        self.stats_dropped = 0
        self.stats_max_depth = 0
        # Depth gauge and queue-wait histogram only exist when telemetry
        # is live; disabled simulations pay a single None check per
        # delivery.  The wait histogram is what splits queueing from
        # service time in latency attribution reports.
        if sim.telemetry.enabled and name:
            self._depth_gauge = sim.telemetry.gauge(f"store.{name}.depth")
            self._wait_hist = sim.telemetry.histogram(f"store.{name}.wait")
            self._enqueued: List[float] = []
        else:
            self._depth_gauge = None
            self._wait_hist = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns ``False`` (drops) when full."""
        if self.is_full and not self._getters:
            self.stats_dropped += 1
            return False
        self._deliver(item)
        return True

    def put(self, item: Any) -> Event:
        """Blocking put; the returned event fires when the item is queued."""
        event = Event(self.sim)
        if self.is_full and not self._getters:
            self._putters.append((event, item))
        else:
            self._deliver(item)
            event.succeed(item)
        return event

    def get(self) -> Event:
        """An event that fires with the next item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.pop(0))
            if self._wait_hist is not None:
                self._wait_hist.observe(
                    self.sim.now - self._enqueued.pop(0))
            self._admit_waiting_putter()
            if self._depth_gauge is not None:
                self._depth_gauge.set(len(self._items))
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns ``None`` when empty."""
        if not self._items:
            return None
        item = self._items.pop(0)
        if self._wait_hist is not None:
            self._wait_hist.observe(self.sim.now - self._enqueued.pop(0))
        self._admit_waiting_putter()
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self._items))
        return item

    def _deliver(self, item: Any) -> None:
        self.stats_put += 1
        if self._getters:
            self._getters.pop(0).succeed(item)
            if self._wait_hist is not None:
                self._wait_hist.observe(0.0)
        else:
            self._items.append(item)
            self.stats_max_depth = max(self.stats_max_depth, len(self._items))
            if self._wait_hist is not None:
                self._enqueued.append(self.sim.now)
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self._items))

    def _admit_waiting_putter(self) -> None:
        if self._putters and not self.is_full:
            event, item = self._putters.pop(0)
            self._deliver(item)
            event.succeed(item)


class Resource:
    """A counting resource (e.g. DMA engines); acquire/release semantics."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: List[Event] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    def acquire(self) -> Event:
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release without acquire")
        if self._waiters:
            self._waiters.pop(0).succeed()
        else:
            self._in_use -= 1
