"""NIC hardware descriptor formats (WQEs and CQEs).

These are the *vendor* formats the NIC exchanges over PCIe — what a
software driver stores in host-memory rings and what FLD must produce
on-the-fly from its compressed internal state.  Sizes match the paper's
Table 2b: a 64 B transmit WQE, a 16 B receive descriptor, and a 64 B CQE.

The layouts are ConnectX-*like*: field selection follows the mlx5
programmer's model (control + data segments; completions carrying byte
count, checksum status, RSS hash and flow tag) but the exact bit packing
is ours.
"""

from __future__ import annotations

import struct

from .. import batching

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

WQE_SIZE = 64
RX_DESC_SIZE = 16
CQE_SIZE = 64

# WQE opcodes.
OP_ETH_SEND = 0x01
OP_RDMA_SEND = 0x02
OP_RDMA_WRITE = 0x03

# WQE flags.
WQE_FLAG_SIGNALED = 0x01   # request a CQE on completion
WQE_FLAG_CSUM_L3 = 0x02    # offload: fill IPv4 checksum
WQE_FLAG_CSUM_L4 = 0x04    # offload: fill TCP/UDP checksum
WQE_FLAG_INLINE = 0x08     # payload inlined after the header segment
WQE_FLAG_LSO = 0x10        # offload: TCP segmentation at wqe.mss

# CQE opcodes.
CQE_SEND_COMPLETION = 0x01
CQE_RECV_COMPLETION = 0x02
CQE_ERROR = 0x0F

# CQE flags.
CQE_FLAG_L3_OK = 0x01
CQE_FLAG_L4_OK = 0x02
CQE_FLAG_VXLAN_DECAP = 0x04
CQE_FLAG_MSG_LAST = 0x08   # last packet of an RDMA message

# Record dtypes for the batched codecs: one numpy structured record per
# wire descriptor, big-endian fields at their exact byte offsets (several
# are unaligned on purpose — the wire layouts predate the codecs).  A
# whole burst decodes with one ``frombuffer`` + ``tolist`` instead of a
# struct call per record.
if _np is not None:
    _TX_WQE_DTYPE = _np.dtype({
        "names": ["opcode", "flags", "wqe_index", "qpn", "buffer_addr",
                  "byte_count", "lkey", "context_id", "ack_req",
                  "remote_addr", "rkey", "mss"],
        "offsets": [0, 1, 2, 4, 8, 16, 20, 24, 28, 29, 37, 41],
        "formats": [">u1", ">u1", ">u2", ">u4", ">u8", ">u4", ">u4",
                    ">u4", ">u1", ">u8", ">u4", ">u2"],
        "itemsize": WQE_SIZE,
    })
    _RX_DESC_DTYPE = _np.dtype({
        "names": ["buffer_addr", "byte_count", "lkey"],
        "offsets": [0, 8, 12],
        "formats": [">u8", ">u4", ">u4"],
        "itemsize": RX_DESC_SIZE,
    })
    _CQE_DTYPE = _np.dtype({
        "names": ["opcode", "flags", "wqe_counter", "qpn", "byte_count",
                  "rss_hash", "flow_tag", "stride_index", "owner",
                  "syndrome"],
        "offsets": [0, 1, 2, 4, 8, 12, 16, 20, 22, 23],
        "formats": [">u1", ">u1", ">u2", ">u4", ">u4", ">u4", ">u4",
                    ">u2", ">u1", ">u1"],
        "itemsize": CQE_SIZE,
    })
else:  # pragma: no cover
    _TX_WQE_DTYPE = _RX_DESC_DTYPE = _CQE_DTYPE = None


class TxWqe:
    """A 64 B transmit work-queue entry.

    Layout (big-endian)::

        0   opcode        u8
        1   flags         u8
        2   wqe_index     u16   producer position, for CQE matching
        4   qpn           u32
        8   buffer_addr   u64   fabric address of the packet/message
        16  byte_count    u32
        20  lkey          u32
        24  context_id    u32   FLD-E tenant/next-table tag (§5.4)
        28  ack_req       u8    RDMA: request remote ack
        29  remote_addr   u64   RETH virtual address (RDMA WRITE)
        37  rkey          u32   RETH remote key (RDMA WRITE)
        41  mss           u16   LSO maximum segment size
        43  reserved      (21 B of zero padding to 64 B)
    """

    _FORMAT = "!BBHIQIIIBQIH"
    _STRUCT = struct.Struct(_FORMAT)
    _PACKED = _STRUCT.size
    _PAD = bytes(WQE_SIZE - _PACKED)

    __slots__ = ("opcode", "flags", "wqe_index", "qpn", "buffer_addr",
                 "byte_count", "lkey", "context_id", "ack_req",
                 "remote_addr", "rkey", "mss", "trace_ctx")

    def __init__(self, opcode: int, qpn: int, wqe_index: int,
                 buffer_addr: int, byte_count: int, flags: int = 0,
                 lkey: int = 0, context_id: int = 0, ack_req: bool = True,
                 remote_addr: int = 0, rkey: int = 0, mss: int = 0):
        self.opcode = opcode
        self.flags = flags
        self.wqe_index = wqe_index & 0xFFFF
        self.qpn = qpn
        self.buffer_addr = buffer_addr
        self.byte_count = byte_count
        self.lkey = lkey
        self.context_id = context_id
        self.ack_req = ack_req
        # RETH fields for RDMA WRITE work requests.
        self.remote_addr = remote_addr
        self.rkey = rkey
        # Maximum segment size for LSO/TSO work requests.
        self.mss = mss
        # Span trace context (sim-only side band, never serialized):
        # re-attached after pack()/unpack() via the PCIe inbound-context
        # bridge or the span recorder's stash/claim registry.
        self.trace_ctx = None

    @property
    def signaled(self) -> bool:
        return bool(self.flags & WQE_FLAG_SIGNALED)

    def pack(self) -> bytes:
        body = self._STRUCT.pack(
            self.opcode, self.flags, self.wqe_index, self.qpn,
            self.buffer_addr, self.byte_count, self.lkey, self.context_id,
            1 if self.ack_req else 0, self.remote_addr, self.rkey,
            self.mss,
        )
        return body + self._PAD

    @classmethod
    def unpack(cls, data: bytes) -> "TxWqe":
        if len(data) < cls._PACKED:
            raise ValueError("truncated TxWqe")
        (opcode, flags, wqe_index, qpn, addr, count, lkey, context,
         ack_req, remote_addr, rkey, mss) = cls._STRUCT.unpack_from(data)
        return cls(opcode, qpn, wqe_index, addr, count, flags, lkey,
                   context, bool(ack_req), remote_addr, rkey, mss)

    @classmethod
    def unpack_many(cls, data, count: int = None) -> "list[TxWqe]":
        """Decode ``count`` consecutive 64 B WQEs.

        Bit-identical to ``[cls.unpack(data[i*WQE_SIZE:]) for i in
        range(count)]``; with numpy and the batched datapath enabled the
        whole burst decodes through one structured-array read.
        """
        if count is None:
            count = len(data) // WQE_SIZE
        if len(data) < count * WQE_SIZE:
            raise ValueError("truncated TxWqe batch")
        if count >= 2 and _np is not None and batching.BATCH_ENABLED:
            rows = _np.frombuffer(data, dtype=_TX_WQE_DTYPE,
                                  count=count).tolist()
            out = []
            new = cls.__new__
            for (opcode, flags, wqe_index, qpn, addr, nbytes, lkey,
                 context, ack_req, remote_addr, rkey, mss) in rows:
                wqe = new(cls)
                wqe.opcode = opcode
                wqe.flags = flags
                wqe.wqe_index = wqe_index
                wqe.qpn = qpn
                wqe.buffer_addr = addr
                wqe.byte_count = nbytes
                wqe.lkey = lkey
                wqe.context_id = context
                wqe.ack_req = bool(ack_req)
                wqe.remote_addr = remote_addr
                wqe.rkey = rkey
                wqe.mss = mss
                wqe.trace_ctx = None
                out.append(wqe)
            return out
        return [cls.unpack(data[i * WQE_SIZE:(i + 1) * WQE_SIZE])
                for i in range(count)]

    @classmethod
    def pack_many(cls, wqes) -> bytes:
        """Concatenated :meth:`pack` of ``wqes``, bit-identical to
        ``b"".join(w.pack() for w in wqes)``."""
        if len(wqes) >= 2 and _np is not None and batching.BATCH_ENABLED:
            rec = _np.zeros(len(wqes), dtype=_TX_WQE_DTYPE)
            rec["opcode"] = [w.opcode for w in wqes]
            rec["flags"] = [w.flags for w in wqes]
            rec["wqe_index"] = [w.wqe_index for w in wqes]
            rec["qpn"] = [w.qpn for w in wqes]
            rec["buffer_addr"] = [w.buffer_addr for w in wqes]
            rec["byte_count"] = [w.byte_count for w in wqes]
            rec["lkey"] = [w.lkey for w in wqes]
            rec["context_id"] = [w.context_id for w in wqes]
            rec["ack_req"] = [1 if w.ack_req else 0 for w in wqes]
            rec["remote_addr"] = [w.remote_addr for w in wqes]
            rec["rkey"] = [w.rkey for w in wqes]
            rec["mss"] = [w.mss for w in wqes]
            return rec.tobytes()
        return b"".join(w.pack() for w in wqes)

    def __repr__(self) -> str:
        return (
            f"TxWqe(op={self.opcode:#x}, qpn={self.qpn}, idx={self.wqe_index}, "
            f"addr={self.buffer_addr:#x}, len={self.byte_count})"
        )


class RxDesc:
    """A 16 B receive descriptor: buffer address + length + lkey."""

    _FORMAT = "!QII"
    _STRUCT = struct.Struct(_FORMAT)

    __slots__ = ("buffer_addr", "byte_count", "lkey")

    def __init__(self, buffer_addr: int, byte_count: int, lkey: int = 0):
        self.buffer_addr = buffer_addr
        self.byte_count = byte_count
        self.lkey = lkey

    def pack(self) -> bytes:
        return self._STRUCT.pack(self.buffer_addr, self.byte_count,
                                 self.lkey)

    @classmethod
    def unpack(cls, data: bytes) -> "RxDesc":
        if len(data) < RX_DESC_SIZE:
            raise ValueError("truncated RxDesc")
        addr, count, lkey = cls._STRUCT.unpack_from(data)
        return cls(addr, count, lkey)

    @classmethod
    def unpack_many(cls, data, count: int = None) -> "list[RxDesc]":
        """Decode ``count`` consecutive 16 B descriptors (see
        :meth:`TxWqe.unpack_many` for the equivalence contract)."""
        if count is None:
            count = len(data) // RX_DESC_SIZE
        if len(data) < count * RX_DESC_SIZE:
            raise ValueError("truncated RxDesc batch")
        if count >= 2 and _np is not None and batching.BATCH_ENABLED:
            rows = _np.frombuffer(data, dtype=_RX_DESC_DTYPE,
                                  count=count).tolist()
            out = []
            new = cls.__new__
            for addr, nbytes, lkey in rows:
                desc = new(cls)
                desc.buffer_addr = addr
                desc.byte_count = nbytes
                desc.lkey = lkey
                out.append(desc)
            return out
        return [cls.unpack(data[i * RX_DESC_SIZE:(i + 1) * RX_DESC_SIZE])
                for i in range(count)]

    @classmethod
    def pack_many(cls, descs) -> bytes:
        """``b"".join(d.pack() for d in descs)``, vectorized."""
        if len(descs) >= 2 and _np is not None and batching.BATCH_ENABLED:
            rec = _np.zeros(len(descs), dtype=_RX_DESC_DTYPE)
            rec["buffer_addr"] = [d.buffer_addr for d in descs]
            rec["byte_count"] = [d.byte_count for d in descs]
            rec["lkey"] = [d.lkey for d in descs]
            return rec.tobytes()
        return b"".join(d.pack() for d in descs)

    def __repr__(self) -> str:
        return f"RxDesc(addr={self.buffer_addr:#x}, len={self.byte_count})"


class Cqe:
    """A 64 B completion-queue entry.

    Layout (big-endian)::

        0   opcode        u8
        1   flags         u8
        2   wqe_counter   u16
        4   qpn           u32
        8   byte_count    u32
        12  rss_hash      u32
        16  flow_tag      u32   context ID stamped by steering (§5.4)
        20  stride_index  u16   MPRQ stride within the receive buffer
        22  owner         u8    ownership/phase bit for poll-mode drivers
        23  syndrome      u8    error code when opcode is CQE_ERROR
        24  reserved      (40 B of zero padding to 64 B)
    """

    _FORMAT = "!BBHIIIIHBB"
    _STRUCT = struct.Struct(_FORMAT)
    _PACKED = _STRUCT.size
    _PAD = bytes(CQE_SIZE - _PACKED)

    __slots__ = ("opcode", "flags", "wqe_counter", "qpn", "byte_count",
                 "rss_hash", "flow_tag", "stride_index", "owner", "syndrome",
                 "trace_ctx")

    def __init__(self, opcode: int, qpn: int, wqe_counter: int,
                 byte_count: int, flags: int = 0, rss_hash: int = 0,
                 flow_tag: int = 0, stride_index: int = 0, owner: int = 1,
                 syndrome: int = 0):
        self.opcode = opcode
        self.flags = flags
        self.wqe_counter = wqe_counter & 0xFFFF
        self.qpn = qpn
        self.byte_count = byte_count
        self.rss_hash = rss_hash & 0xFFFFFFFF
        self.flow_tag = flow_tag
        self.stride_index = stride_index
        self.owner = owner
        self.syndrome = syndrome
        # Sim-only span trace context; lost by pack(), re-attached by
        # whoever unpacks (see repro.telemetry.spans).
        self.trace_ctx = None

    @property
    def l4_ok(self) -> bool:
        return bool(self.flags & CQE_FLAG_L4_OK)

    @property
    def is_error(self) -> bool:
        return self.opcode == CQE_ERROR

    def pack(self) -> bytes:
        body = self._STRUCT.pack(
            self.opcode, self.flags, self.wqe_counter,
            self.qpn, self.byte_count, self.rss_hash, self.flow_tag,
            self.stride_index, self.owner, self.syndrome,
        )
        return body + self._PAD

    @classmethod
    def unpack(cls, data: bytes) -> "Cqe":
        if len(data) < cls._PACKED:
            raise ValueError("truncated Cqe")
        (opcode, flags, counter, qpn, count, rss, tag, stride, owner,
         syndrome) = cls._STRUCT.unpack_from(data)
        return cls(opcode, qpn, counter, count, flags, rss, tag, stride,
                   owner, syndrome)

    @classmethod
    def unpack_many(cls, data, count: int = None) -> "list[Cqe]":
        """Decode ``count`` consecutive 64 B CQEs (see
        :meth:`TxWqe.unpack_many` for the equivalence contract)."""
        if count is None:
            count = len(data) // CQE_SIZE
        if len(data) < count * CQE_SIZE:
            raise ValueError("truncated Cqe batch")
        if count >= 2 and _np is not None and batching.BATCH_ENABLED:
            rows = _np.frombuffer(data, dtype=_CQE_DTYPE,
                                  count=count).tolist()
            out = []
            new = cls.__new__
            for (opcode, flags, counter, qpn, nbytes, rss, tag, stride,
                 owner, syndrome) in rows:
                cqe = new(cls)
                cqe.opcode = opcode
                cqe.flags = flags
                cqe.wqe_counter = counter
                cqe.qpn = qpn
                cqe.byte_count = nbytes
                cqe.rss_hash = rss
                cqe.flow_tag = tag
                cqe.stride_index = stride
                cqe.owner = owner
                cqe.syndrome = syndrome
                cqe.trace_ctx = None
                out.append(cqe)
            return out
        return [cls.unpack(data[i * CQE_SIZE:(i + 1) * CQE_SIZE])
                for i in range(count)]

    @classmethod
    def pack_many(cls, cqes) -> bytes:
        """``b"".join(c.pack() for c in cqes)``, vectorized."""
        if len(cqes) >= 2 and _np is not None and batching.BATCH_ENABLED:
            rec = _np.zeros(len(cqes), dtype=_CQE_DTYPE)
            rec["opcode"] = [c.opcode for c in cqes]
            rec["flags"] = [c.flags for c in cqes]
            rec["wqe_counter"] = [c.wqe_counter for c in cqes]
            rec["qpn"] = [c.qpn for c in cqes]
            rec["byte_count"] = [c.byte_count for c in cqes]
            rec["rss_hash"] = [c.rss_hash for c in cqes]
            rec["flow_tag"] = [c.flow_tag for c in cqes]
            rec["stride_index"] = [c.stride_index for c in cqes]
            rec["owner"] = [c.owner for c in cqes]
            rec["syndrome"] = [c.syndrome for c in cqes]
            return rec.tobytes()
        return b"".join(c.pack() for c in cqes)

    def __repr__(self) -> str:
        return (
            f"Cqe(op={self.opcode:#x}, qpn={self.qpn}, "
            f"wqe={self.wqe_counter}, len={self.byte_count})"
        )
