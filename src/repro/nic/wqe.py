"""NIC hardware descriptor formats (WQEs and CQEs).

These are the *vendor* formats the NIC exchanges over PCIe — what a
software driver stores in host-memory rings and what FLD must produce
on-the-fly from its compressed internal state.  Sizes match the paper's
Table 2b: a 64 B transmit WQE, a 16 B receive descriptor, and a 64 B CQE.

The layouts are ConnectX-*like*: field selection follows the mlx5
programmer's model (control + data segments; completions carrying byte
count, checksum status, RSS hash and flow tag) but the exact bit packing
is ours.
"""

from __future__ import annotations

import struct

WQE_SIZE = 64
RX_DESC_SIZE = 16
CQE_SIZE = 64

# WQE opcodes.
OP_ETH_SEND = 0x01
OP_RDMA_SEND = 0x02
OP_RDMA_WRITE = 0x03

# WQE flags.
WQE_FLAG_SIGNALED = 0x01   # request a CQE on completion
WQE_FLAG_CSUM_L3 = 0x02    # offload: fill IPv4 checksum
WQE_FLAG_CSUM_L4 = 0x04    # offload: fill TCP/UDP checksum
WQE_FLAG_INLINE = 0x08     # payload inlined after the header segment
WQE_FLAG_LSO = 0x10        # offload: TCP segmentation at wqe.mss

# CQE opcodes.
CQE_SEND_COMPLETION = 0x01
CQE_RECV_COMPLETION = 0x02
CQE_ERROR = 0x0F

# CQE flags.
CQE_FLAG_L3_OK = 0x01
CQE_FLAG_L4_OK = 0x02
CQE_FLAG_VXLAN_DECAP = 0x04
CQE_FLAG_MSG_LAST = 0x08   # last packet of an RDMA message


class TxWqe:
    """A 64 B transmit work-queue entry.

    Layout (big-endian)::

        0   opcode        u8
        1   flags         u8
        2   wqe_index     u16   producer position, for CQE matching
        4   qpn           u32
        8   buffer_addr   u64   fabric address of the packet/message
        16  byte_count    u32
        20  lkey          u32
        24  context_id    u32   FLD-E tenant/next-table tag (§5.4)
        28  ack_req       u8    RDMA: request remote ack
        29  remote_addr   u64   RETH virtual address (RDMA WRITE)
        37  rkey          u32   RETH remote key (RDMA WRITE)
        41  mss           u16   LSO maximum segment size
        43  reserved      (21 B of zero padding to 64 B)
    """

    _FORMAT = "!BBHIQIIIBQIH"
    _PACKED = struct.calcsize(_FORMAT)

    __slots__ = ("opcode", "flags", "wqe_index", "qpn", "buffer_addr",
                 "byte_count", "lkey", "context_id", "ack_req",
                 "remote_addr", "rkey", "mss", "trace_ctx")

    def __init__(self, opcode: int, qpn: int, wqe_index: int,
                 buffer_addr: int, byte_count: int, flags: int = 0,
                 lkey: int = 0, context_id: int = 0, ack_req: bool = True,
                 remote_addr: int = 0, rkey: int = 0, mss: int = 0):
        self.opcode = opcode
        self.flags = flags
        self.wqe_index = wqe_index & 0xFFFF
        self.qpn = qpn
        self.buffer_addr = buffer_addr
        self.byte_count = byte_count
        self.lkey = lkey
        self.context_id = context_id
        self.ack_req = ack_req
        # RETH fields for RDMA WRITE work requests.
        self.remote_addr = remote_addr
        self.rkey = rkey
        # Maximum segment size for LSO/TSO work requests.
        self.mss = mss
        # Span trace context (sim-only side band, never serialized):
        # re-attached after pack()/unpack() via the PCIe inbound-context
        # bridge or the span recorder's stash/claim registry.
        self.trace_ctx = None

    @property
    def signaled(self) -> bool:
        return bool(self.flags & WQE_FLAG_SIGNALED)

    def pack(self) -> bytes:
        body = struct.pack(
            self._FORMAT, self.opcode, self.flags, self.wqe_index, self.qpn,
            self.buffer_addr, self.byte_count, self.lkey, self.context_id,
            1 if self.ack_req else 0, self.remote_addr, self.rkey,
            self.mss,
        )
        return body + bytes(WQE_SIZE - self._PACKED)

    @classmethod
    def unpack(cls, data: bytes) -> "TxWqe":
        if len(data) < cls._PACKED:
            raise ValueError("truncated TxWqe")
        (opcode, flags, wqe_index, qpn, addr, count, lkey, context,
         ack_req, remote_addr, rkey, mss) = struct.unpack(
            cls._FORMAT, data[:cls._PACKED])
        return cls(opcode, qpn, wqe_index, addr, count, flags, lkey,
                   context, bool(ack_req), remote_addr, rkey, mss)

    def __repr__(self) -> str:
        return (
            f"TxWqe(op={self.opcode:#x}, qpn={self.qpn}, idx={self.wqe_index}, "
            f"addr={self.buffer_addr:#x}, len={self.byte_count})"
        )


class RxDesc:
    """A 16 B receive descriptor: buffer address + length + lkey."""

    _FORMAT = "!QII"

    __slots__ = ("buffer_addr", "byte_count", "lkey")

    def __init__(self, buffer_addr: int, byte_count: int, lkey: int = 0):
        self.buffer_addr = buffer_addr
        self.byte_count = byte_count
        self.lkey = lkey

    def pack(self) -> bytes:
        return struct.pack(self._FORMAT, self.buffer_addr, self.byte_count,
                           self.lkey)

    @classmethod
    def unpack(cls, data: bytes) -> "RxDesc":
        if len(data) < RX_DESC_SIZE:
            raise ValueError("truncated RxDesc")
        addr, count, lkey = struct.unpack(cls._FORMAT, data[:RX_DESC_SIZE])
        return cls(addr, count, lkey)

    def __repr__(self) -> str:
        return f"RxDesc(addr={self.buffer_addr:#x}, len={self.byte_count})"


class Cqe:
    """A 64 B completion-queue entry.

    Layout (big-endian)::

        0   opcode        u8
        1   flags         u8
        2   wqe_counter   u16
        4   qpn           u32
        8   byte_count    u32
        12  rss_hash      u32
        16  flow_tag      u32   context ID stamped by steering (§5.4)
        20  stride_index  u16   MPRQ stride within the receive buffer
        22  owner         u8    ownership/phase bit for poll-mode drivers
        23  syndrome      u8    error code when opcode is CQE_ERROR
        24  reserved      (40 B of zero padding to 64 B)
    """

    _FORMAT = "!BBHIIIIHBB"
    _PACKED = struct.calcsize(_FORMAT)

    __slots__ = ("opcode", "flags", "wqe_counter", "qpn", "byte_count",
                 "rss_hash", "flow_tag", "stride_index", "owner", "syndrome",
                 "trace_ctx")

    def __init__(self, opcode: int, qpn: int, wqe_counter: int,
                 byte_count: int, flags: int = 0, rss_hash: int = 0,
                 flow_tag: int = 0, stride_index: int = 0, owner: int = 1,
                 syndrome: int = 0):
        self.opcode = opcode
        self.flags = flags
        self.wqe_counter = wqe_counter & 0xFFFF
        self.qpn = qpn
        self.byte_count = byte_count
        self.rss_hash = rss_hash & 0xFFFFFFFF
        self.flow_tag = flow_tag
        self.stride_index = stride_index
        self.owner = owner
        self.syndrome = syndrome
        # Sim-only span trace context; lost by pack(), re-attached by
        # whoever unpacks (see repro.telemetry.spans).
        self.trace_ctx = None

    @property
    def l4_ok(self) -> bool:
        return bool(self.flags & CQE_FLAG_L4_OK)

    @property
    def is_error(self) -> bool:
        return self.opcode == CQE_ERROR

    def pack(self) -> bytes:
        body = struct.pack(
            self._FORMAT, self.opcode, self.flags, self.wqe_counter,
            self.qpn, self.byte_count, self.rss_hash, self.flow_tag,
            self.stride_index, self.owner, self.syndrome,
        )
        return body + bytes(CQE_SIZE - self._PACKED)

    @classmethod
    def unpack(cls, data: bytes) -> "Cqe":
        if len(data) < cls._PACKED:
            raise ValueError("truncated Cqe")
        (opcode, flags, counter, qpn, count, rss, tag, stride, owner,
         syndrome) = struct.unpack(cls._FORMAT, data[:cls._PACKED])
        return cls(opcode, qpn, counter, count, flags, rss, tag, stride,
                   owner, syndrome)

    def __repr__(self) -> str:
        return (
            f"Cqe(op={self.opcode:#x}, qpn={self.qpn}, "
            f"wqe={self.wqe_counter}, len={self.byte_count})"
        )
