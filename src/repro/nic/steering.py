"""Match-action flow steering (§2.3, §5.3).

The NIC processes packets through chains of flow tables.  Each table holds
priority-ordered rules; a rule is a :class:`MatchSpec` plus a list of
actions.  Terminal actions decide the packet's fate (deliver to a queue,
forward to a vPort, drop); non-terminal actions transform the packet or
its metadata (VXLAN decap, context-ID tagging) and processing continues.

FLD-E extends the model with :class:`ToAccelerator` (§5.3): the packet is
handed to an accelerator's receive queue together with a *context ID* and
the ID of the table where processing should resume once the accelerator
returns the packet — this is how acceleration is injected mid-pipeline
while NIC offloads still run before and after it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..net import Ethernet, Ipv4, Packet, Tcp, Udp, Vxlan, vxlan_decapsulate


class SteeringError(RuntimeError):
    """Raised on pipeline misconfiguration (loops, dangling tables)."""


class MatchSpec:
    """Field-equality match over a parsed packet; ``None`` = wildcard."""

    __slots__ = ("dst_mac", "ethertype", "src_ip", "dst_ip", "ip_proto",
                 "src_port", "dst_port", "vni", "is_fragment",
                 "_dst_mac_only")

    def __init__(self, dst_mac=None, ethertype: Optional[int] = None,
                 src_ip=None, dst_ip=None, ip_proto: Optional[int] = None,
                 src_port: Optional[int] = None,
                 dst_port: Optional[int] = None, vni: Optional[int] = None,
                 is_fragment: Optional[bool] = None):
        from ..net import IpAddress, MacAddress
        self.dst_mac = MacAddress(dst_mac) if dst_mac is not None else None
        self.ethertype = ethertype
        self.src_ip = IpAddress(src_ip) if src_ip is not None else None
        self.dst_ip = IpAddress(dst_ip) if dst_ip is not None else None
        self.ip_proto = ip_proto
        self.src_port = src_port
        self.dst_port = dst_port
        self.vni = vni
        self.is_fragment = is_fragment
        # FDB rules match on destination MAC alone; precomputing that
        # shape lets `matches` skip the seven wildcard checks per packet.
        self._dst_mac_only = (
            self.dst_mac is not None and ethertype is None
            and self.src_ip is None and self.dst_ip is None
            and ip_proto is None and src_port is None and dst_port is None
            and vni is None and is_fragment is None
        )

    def matches(self, packet: Packet) -> bool:
        headers = packet.headers
        if self._dst_mac_only:
            if headers and headers[0].__class__ is Ethernet:
                return headers[0].dst.value == self.dst_mac.value
            eth = packet.find(Ethernet)
            return eth is not None and eth.dst.value == self.dst_mac.value
        eth = packet.find(Ethernet)
        if self.dst_mac is not None and (eth is None or eth.dst != self.dst_mac):
            return False
        if self.ethertype is not None and (
            eth is None or eth.ethertype != self.ethertype
        ):
            return False
        ip = packet.find(Ipv4)
        if self.src_ip is not None and (ip is None or ip.src != self.src_ip):
            return False
        if self.dst_ip is not None and (ip is None or ip.dst != self.dst_ip):
            return False
        if self.ip_proto is not None and (ip is None or ip.proto != self.ip_proto):
            return False
        if self.is_fragment is not None:
            if ip is None or ip.is_fragment != self.is_fragment:
                return False
        if self.src_port is not None or self.dst_port is not None:
            l4 = packet.find(Tcp) or packet.find(Udp)
            if l4 is None:
                return False
            if self.src_port is not None and l4.src_port != self.src_port:
                return False
            if self.dst_port is not None and l4.dst_port != self.dst_port:
                return False
        if self.vni is not None:
            vxlan = packet.find(Vxlan)
            if vxlan is None or vxlan.vni != self.vni:
                return False
        return True


# -- actions ---------------------------------------------------------------


class Action:
    """Base class; terminal actions end pipeline processing.

    ``_code`` is an integer dispatch tag: the pipeline's inner loop runs
    per packet per hop, and an int compare beats an isinstance chain.
    """

    terminal = False
    _code = 0


class Drop(Action):
    terminal = True
    _code = 1


class ForwardToVport(Action):
    terminal = True
    _code = 2

    def __init__(self, vport: int):
        self.vport = vport


class ForwardToUplink(Action):
    terminal = True
    _code = 3


class ForwardToQueue(Action):
    """Deliver to a specific receive queue."""

    _code = 4

    terminal = True

    def __init__(self, rq):
        self.rq = rq


class ForwardToRss(Action):
    """Deliver through an RSS group's indirection table."""

    _code = 5

    terminal = True

    def __init__(self, group):
        self.group = group


class ToAccelerator(Action):
    """FLD-E acceleration action (§5.3): detour through an accelerator.

    ``rq`` is the accelerator-facing receive queue (owned by FLD);
    ``next_table`` names the flow table where the packet resumes after the
    accelerator sends it back; ``context_id`` identifies the tenant (§5.4).
    """

    _code = 6

    terminal = True

    def __init__(self, rq, next_table: str, context_id: int = 0):
        self.rq = rq
        self.next_table = next_table
        self.context_id = context_id


class DecapVxlan(Action):
    """Strip the outer Eth/IP/UDP/VXLAN headers (NIC tunnel offload)."""

    _code = 7


class SetContextId(Action):
    """Stamp the flow's context/tenant ID into packet metadata (§5.4)."""

    _code = 8

    def __init__(self, context_id: int):
        self.context_id = context_id


class GotoTable(Action):

    _code = 9
    terminal = True

    def __init__(self, table: str):
        self.table = table


class Meter(Action):
    """Apply a named rate limiter (token bucket); may drop the packet."""

    _code = 10

    def __init__(self, meter_name: str):
        self.meter_name = meter_name


# -- tables and pipeline -----------------------------------------------------


class Rule:
    __slots__ = ("priority", "match", "actions")

    def __init__(self, match: MatchSpec, actions: List[Action],
                 priority: int = 0):
        if not actions:
            raise SteeringError("rule with no actions")
        self.priority = priority
        self.match = match
        self.actions = actions


class FlowTable:
    """Priority-ordered rules plus a default (miss) action list."""

    def __init__(self, name: str,
                 default_actions: Optional[List[Action]] = None):
        self.name = name
        self.rules: List[Rule] = []
        self.default_actions = default_actions or [Drop()]

    def add_rule(self, match: MatchSpec, actions: List[Action],
                 priority: int = 0) -> Rule:
        rule = Rule(match, actions, priority)
        self.rules.append(rule)
        self.rules.sort(key=lambda r: -r.priority)
        return rule

    def remove_rule(self, rule: Rule) -> None:
        self.rules.remove(rule)

    def lookup(self, packet: Packet) -> List[Action]:
        for rule in self.rules:
            if rule.match.matches(packet):
                return rule.actions
        return self.default_actions


class Disposition:
    """The pipeline's verdict for one packet."""

    __slots__ = ("kind", "target", "packet", "context_id", "next_table",
                 "meters")

    DELIVER = "deliver"        # target: ReceiveQueue
    RSS = "rss"                # target: RssGroup
    VPORT = "vport"            # target: vport number
    UPLINK = "uplink"
    ACCELERATOR = "accelerator"  # target: ReceiveQueue owned by FLD
    DROP = "drop"

    def __init__(self, kind: str, target: Any, packet: Packet,
                 context_id: int = 0, next_table: str = "",
                 meters: Optional[List[str]] = None):
        self.kind = kind
        self.target = target
        self.packet = packet
        self.context_id = context_id
        self.next_table = next_table
        self.meters = meters or []


class SteeringPipeline:
    """A named set of flow tables processed from a root (or resume) table."""

    MAX_HOPS = 32  # guards against GotoTable loops

    def __init__(self):
        self.tables: Dict[str, FlowTable] = {}
        self.stats_lookups = 0

    def table(self, name: str,
              default_actions: Optional[List[Action]] = None) -> FlowTable:
        """Get or create a table."""
        if name not in self.tables:
            self.tables[name] = FlowTable(name, default_actions)
        return self.tables[name]

    def remove_table(self, name: str) -> None:
        """Drop a table; it must be empty (rules removed first)."""
        table = self.tables.get(name)
        if table is None:
            raise SteeringError(f"no table named {name!r}")
        if table.rules:
            raise SteeringError(
                f"table {name!r} still holds {len(table.rules)} rule(s)")
        del self.tables[name]

    def process(self, packet: Packet, root: str) -> Disposition:
        """Run ``packet`` through the pipeline starting at table ``root``."""
        if root not in self.tables:
            raise SteeringError(f"no table named {root!r}")
        current = self.tables[root]
        context_id = packet.meta.get("context_id", 0)
        meters: List[str] = []
        for _hop in range(self.MAX_HOPS):
            self.stats_lookups += 1
            actions = current.lookup(packet)
            next_table: Optional[FlowTable] = None
            for action in actions:
                code = action._code
                if code == 1:  # Drop
                    return Disposition(Disposition.DROP, None, packet,
                                       context_id, meters=meters)
                if code == 4:  # ForwardToQueue
                    return Disposition(Disposition.DELIVER, action.rq, packet,
                                       context_id, meters=meters)
                if code == 5:  # ForwardToRss
                    return Disposition(Disposition.RSS, action.group, packet,
                                       context_id, meters=meters)
                if code == 2:  # ForwardToVport
                    return Disposition(Disposition.VPORT, action.vport, packet,
                                       context_id, meters=meters)
                if code == 3:  # ForwardToUplink
                    return Disposition(Disposition.UPLINK, None, packet,
                                       context_id, meters=meters)
                if code == 6:  # ToAccelerator
                    return Disposition(
                        Disposition.ACCELERATOR, action.rq, packet,
                        action.context_id or context_id,
                        next_table=action.next_table, meters=meters,
                    )
                if code == 7:  # DecapVxlan
                    packet = vxlan_decapsulate(packet)
                elif code == 8:  # SetContextId
                    context_id = action.context_id
                    packet.meta["context_id"] = context_id
                elif code == 10:  # Meter
                    meters.append(action.meter_name)
                elif code == 9:  # GotoTable
                    if action.table not in self.tables:
                        raise SteeringError(
                            f"GotoTable to unknown table {action.table!r}"
                        )
                    next_table = self.tables[action.table]
                else:
                    raise SteeringError(f"unhandled action {action!r}")
            if next_table is None:
                # Non-terminal actions exhausted without a verdict: drop,
                # matching hardware behaviour for incomplete rule chains.
                return Disposition(Disposition.DROP, None, packet,
                                   context_id, meters=meters)
            current = next_table
        raise SteeringError("steering loop exceeded MAX_HOPS")
