"""The NIC device model (ConnectX-5-like).

One :class:`Nic` owns an Ethernet port + eSwitch, steering pipelines,
stateless offloads, a traffic shaper, the RoCE RC transport engine, and
the queue machinery.  Its PCIe BAR exposes doorbell records and a
WQE-by-MMIO window; its DMA engine reads rings/buffers and writes packet
data/CQEs at *fabric addresses* — host memory and the FLD BAR look
identical to it, which is precisely the property FlexDriver exploits.

Control-plane operations (queue creation, steering rule installation,
QP connection) run through the firmware command interface in
:mod:`repro.nic.cmd`: the software control planes in :mod:`repro.sw`
and :mod:`repro.host` submit typed commands over the command channel,
and the NIC's :class:`~repro.nic.cmd.CommandUnit` maps them onto the
``create_*``/``destroy_*`` machinery here.  Only the command unit (and
this module) may call those methods directly — a conformance test
enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Tuple

from ..net import Bth, Packet
from ..net.parse import parse_frame
from ..pcie import PcieEndpoint, PcieError, PcieFabric, PcieLinkConfig
from ..sim import Simulator, Store, fused_dispatch_ok
# The NIC BAR's internal layout lives with the other physical address
# constants in the overlap-checked address map.
from ..topology.addrmap import (
    BAR_SIZE,
    DOORBELL_STRIDE,
    RQ_DOORBELL_BASE,
    WQE_MMIO_BASE,
    WQE_MMIO_STRIDE,
)
from .cmd import CommandUnit
from .eswitch import ESwitch, EthernetPort, VPort
from .offloads import ChecksumOffload, SegmentationOffload
from .queues import (
    CompletionQueue,
    MultiPacketReceiveQueue,
    QueueError,
    ReceiveQueue,
    RssGroup,
    SendQueue,
)
from .rdma import RcQp, RdmaEngine
from .shaper import Shaper
from .steering import Disposition, Drop, SteeringPipeline
from .wqe import (
    CQE_ERROR,
    CQE_RECV_COMPLETION,
    CQE_SEND_COMPLETION,
    Cqe,
    RX_DESC_SIZE,
    RxDesc,
    TxWqe,
    WQE_FLAG_CSUM_L3,
    WQE_FLAG_CSUM_L4,
    WQE_FLAG_LSO,
    WQE_SIZE,
)

#: Sentinel pushed through a destroyed queue's stores so its worker
#: processes unwind instead of waiting forever.
_POISON = object()


@dataclass
class NicConfig:
    """Tunable device parameters (defaults match the Innova-2 testbed)."""

    port_rate_bps: float = 25e9
    port_latency: float = 500e-9     # wire propagation + MAC/PHY latency
    rdma_mtu: int = 1024             # the paper uses 1024 B for RoCE
    processing_delay: float = 60e-9  # per-packet ASIC pipeline occupancy
    rx_inbox_depth: int = 1024       # internal rx buffering per queue
    # RoCE retransmission timers are milliseconds-scale; anything
    # shorter fires spuriously once the pipe holds >100 us of data.
    retransmit_timeout: float = 2e-3
    dma_window: int = 32             # outstanding DMA contexts per queue
    wqe_fetch_batch: int = 16        # WQEs fetched per descriptor DMA read
    rx_desc_batch: int = 16          # rx descriptors prefetched per read


class _RxItem:
    """One unit of work for a receive-queue worker."""

    __slots__ = ("data", "flags", "context_id", "qpn", "rss_hash",
                 "trace_ctx", "enqueued")

    def __init__(self, data: bytes, flags: int, context_id: int, qpn: int,
                 rss_hash: int = 0, trace_ctx=None, enqueued: float = 0.0):
        self.data = data
        self.flags = flags
        self.context_id = context_id
        self.qpn = qpn
        self.rss_hash = rss_hash
        self.trace_ctx = trace_ctx
        self.enqueued = enqueued


class Nic(PcieEndpoint):
    """A NIC ASIC on the PCIe fabric."""

    def __init__(self, sim: Simulator, fabric: PcieFabric, name: str,
                 config: Optional[NicConfig] = None,
                 link_config: Optional[PcieLinkConfig] = None):
        super().__init__(name)
        self.sim = sim
        self.config = config or NicConfig()
        # The NIC fronts the Innova-2's embedded PCIe switch (Fig. 6):
        # its own attachment is wider than any single peer's x8 link, so
        # the per-peer links are the bottlenecks, as on the real board.
        if link_config is None:
            link_config = PcieLinkConfig(lanes=16)
        self.port = EthernetPort(sim, f"{name}.port",
                                 self.config.port_rate_bps,
                                 self.config.port_latency)
        self.eswitch = ESwitch(sim, self.port, self._deliver_disposition)
        self.eswitch.pre_rx_hook = self._pre_rx_hook
        self.checksum = ChecksumOffload()
        self.lso = SegmentationOffload()
        self.shaper = Shaper(sim)
        self.rdma = RdmaEngine(
            sim, mtu=self.config.rdma_mtu,
            retransmit_timeout=self.config.retransmit_timeout,
            egress=self._rdma_egress, deliver_segment=self._rdma_deliver,
            complete_send=self._rdma_complete_send,
            name=f"{name}.rdma",
        )
        self.sqs: Dict[int, SendQueue] = {}
        self.rqs: Dict[int, ReceiveQueue] = {}
        self.cqs: Dict[int, CompletionQueue] = {}
        self._qp_by_sqn: Dict[int, RcQp] = {}
        self._rx_inbox: Dict[int, Store] = {}
        # Flattened per-queue workers (fast-path gate open at creation);
        # keyed like _rx_inbox / sqs so teardown can find them.
        self._rx_flat: Dict[int, "_RqFlatWorker"] = {}
        self._tx_flat: Dict[int, "_SqFlatPipeline"] = {}
        self._cached_rx_desc: Dict[Tuple[int, int], RxDesc] = {}
        self._next_qpn = 1
        self._next_cqn = 1
        self._next_rqn = 1
        # FLD-E resume tables: id -> steering table name (§5.3).
        self._resume_tables: Dict[int, str] = {}
        self._next_resume_id = 1
        self.stats_rx_dropped_inbox = 0
        self.stats_rx_dropped_no_desc = 0
        self.stats_meter_drops = 0
        # No-op singletons when telemetry is disabled; the tracer is
        # guarded by its ``enabled`` flag at every use site.
        tele = sim.telemetry
        self._tracer = tele.tracer
        self._spans = tele.spans
        prof = sim.profiler
        self._prof = prof if prof.enabled else None
        self._ctr_tx_wqes = tele.counter(f"nic.{name}.tx.wqes")
        self._ctr_tx_bytes = tele.counter(f"nic.{name}.tx.bytes")
        self._ctr_rx_packets = tele.counter(f"nic.{name}.rx.packets")
        self._ctr_rx_bytes = tele.counter(f"nic.{name}.rx.bytes")
        self._ctr_cqes = tele.counter(f"nic.{name}.cqes")
        self._ctr_drop_inbox = tele.counter(
            f"nic.{name}.rx.dropped_inbox")
        self._ctr_drop_no_desc = tele.counter(
            f"nic.{name}.rx.dropped_no_desc")
        self._ctr_drop_meter = tele.counter(f"nic.{name}.meter_drops")
        if tele.enabled:
            tele.register_probe(f"nic.{name}.rdma", self._rdma_probe)
        fabric.attach(self, link_config)
        # Inbound RDMA WRITEs DMA straight to the target fabric address.
        self.rdma.dma_write = (
            lambda va, data: self.fabric.post_write(
                self, va, data,
                trace_ctx=self.rdma.inbound_trace_ctx,
                trace_stage="pcie.dma_write"))
        # QP transport failures surface as error CQEs on the QP's send
        # CQ — the §5.3 path the kernel driver's recovery hook watches.
        self.rdma.on_qp_error = self._rdma_qp_error
        # The firmware command unit: object table + command executors.
        self.cmd = CommandUnit(self)

    # ------------------------------------------------------------------
    # Control interface (firmware commands)
    # ------------------------------------------------------------------

    def create_cq(self, ring_addr: int, entries: int) -> CompletionQueue:
        cq = CompletionQueue(self.sim, self._next_cqn, ring_addr, entries)
        self.cqs[cq.cqn] = cq
        self._next_cqn += 1
        return cq

    def create_sq(self, ring_addr: int, entries: int, cq: CompletionQueue,
                  vport: int = 0, transport: str = SendQueue.TRANSPORT_ETH,
                  meter: Optional[str] = None) -> SendQueue:
        sq = SendQueue(self.sim, self._next_qpn, ring_addr, entries, cq,
                       transport, vport)
        sq.meter = meter
        self.sqs[sq.qpn] = sq
        self._next_qpn += 1
        if (fused_dispatch_ok(self.sim, self.fabric)
                and transport != SendQueue.TRANSPORT_RC
                and meter is None):
            # Flat two-stage pipeline (fetch + transmit) — the RC
            # transport and metered (shaper-paced) queues keep the
            # generator pair, as do traced/span runs via the gate.
            self._tx_flat[sq.qpn] = _SqFlatPipeline(self, sq)
        else:
            self.sim.spawn(self._sq_worker(sq),
                           name=f"{self.name}.sq{sq.qpn}")
        return sq

    def create_rq(self, ring_addr: int, entries: int, cq: CompletionQueue,
                  shared: bool = False) -> ReceiveQueue:
        rq = ReceiveQueue(self.sim, self._next_rqn, ring_addr, entries, cq,
                          shared)
        self._register_rq(rq)
        return rq

    def create_mprq(self, ring_addr: int, entries: int, cq: CompletionQueue,
                    strides_per_buffer: int = 64,
                    stride_size: int = 2048) -> MultiPacketReceiveQueue:
        rq = MultiPacketReceiveQueue(
            self.sim, self._next_rqn, ring_addr, entries, cq,
            strides_per_buffer, stride_size,
        )
        self._register_rq(rq)
        return rq

    def _register_rq(self, rq: ReceiveQueue) -> None:
        self.rqs[rq.rqn] = rq
        self._next_rqn += 1
        inbox = Store(self.sim, capacity=self.config.rx_inbox_depth,
                      name=f"{self.name}.rq{rq.rqn}.inbox")
        self._rx_inbox[rq.rqn] = inbox
        if fused_dispatch_ok(self.sim, self.fabric):
            # Flat continuation worker: same event structure as the
            # generator loop, no Process machinery on the per-packet
            # path.  The gate's inputs are fixed for a simulation's
            # lifetime, so choosing at creation time is safe.
            self._rx_flat[rq.rqn] = _RqFlatWorker(self, rq, inbox)
        else:
            self.sim.spawn(self._rq_worker(rq, inbox),
                           name=f"{self.name}.rq{rq.rqn}")

    def create_rc_qp(self, ring_addr: int, entries: int,
                     cq: CompletionQueue, rq: ReceiveQueue, vport: int,
                     local_mac, local_ip) -> RcQp:
        """Create an RC QP: an RDMA send queue bound to a receive queue."""
        sq = self.create_sq(ring_addr, entries, cq, vport,
                            transport=SendQueue.TRANSPORT_RC)
        qp = RcQp(sq.qpn, sq, rq, local_mac=local_mac, local_ip=local_ip)
        self.rdma.register_qp(qp)
        self._qp_by_sqn[sq.qpn] = qp
        return qp

    def set_vport_default_queue(self, vport: int, rq: ReceiveQueue) -> None:
        """Deliver a vPort's otherwise-unmatched traffic to ``rq``."""
        from .steering import ForwardToQueue
        if vport not in self.eswitch.vports:
            self.eswitch.add_vport(vport)
        table = self.steering.table(self.eswitch.vports[vport].rx_root)
        table.default_actions = [ForwardToQueue(rq)]

    def register_resume_table(self, table_name: str) -> int:
        """Register a steering table as an FLD-E resume target (§5.3).

        Returns the resume ID the accelerator must echo in the upper 16
        bits of its transmit context_id to continue pipeline processing
        at ``table_name``.
        """
        resume_id = self._next_resume_id
        self._next_resume_id += 1
        self._resume_tables[resume_id] = table_name
        return resume_id

    # -- teardown (driven by DESTROY commands) --------------------------

    def _poison(self, store: Store) -> None:
        """Push the poison sentinel, spilling to a process when full."""
        if not store.try_put(_POISON):
            def put():
                yield store.put(_POISON)
            self.sim.spawn(put(), name=f"{self.name}.poison")

    def destroy_cq(self, cq: CompletionQueue) -> None:
        self.cqs.pop(cq.cqn, None)
        # Unwind any dispatcher blocked on the notify channel.
        self._poison(cq.notify)

    def destroy_sq(self, sq: SendQueue) -> None:
        sq.destroyed = True
        self.sqs.pop(sq.qpn, None)
        self._tx_flat.pop(sq.qpn, None)
        sq.mmio_wqes.clear()
        self._poison(sq.doorbell)

    def destroy_rq(self, rq: ReceiveQueue) -> None:
        rq.destroyed = True
        self.rqs.pop(rq.rqn, None)
        self._rx_flat.pop(rq.rqn, None)
        inbox = self._rx_inbox.pop(rq.rqn, None)
        if inbox is not None:
            self._poison(inbox)
        for key in [k for k in self._cached_rx_desc if k[0] == rq.rqn]:
            del self._cached_rx_desc[key]

    def destroy_rc_qp(self, qp: RcQp) -> None:
        self.rdma.unregister_qp(qp.qpn)
        self._qp_by_sqn.pop(qp.sq.qpn, None)
        self.destroy_sq(qp.sq)

    def clear_vport_default_queue(self, vport: int) -> None:
        """Back to the vPort table's initial miss behaviour: drop."""
        if vport not in self.eswitch.vports:
            return
        table = self.steering.table(self.eswitch.vports[vport].rx_root)
        table.default_actions = [Drop()]

    def unregister_resume_table(self, resume_id: int) -> None:
        self._resume_tables.pop(resume_id, None)

    def remove_vport(self, number: int) -> None:
        self.eswitch.remove_vport(number)

    @property
    def steering(self) -> SteeringPipeline:
        return self.eswitch.pipeline

    # ------------------------------------------------------------------
    # PCIe BAR (doorbells + WQE-by-MMIO)
    # ------------------------------------------------------------------

    def handle_write(self, offset: int, data: bytes) -> None:
        if offset >= WQE_MMIO_BASE:
            qpn = (offset - WQE_MMIO_BASE) // WQE_MMIO_STRIDE
            sq = self.sqs.get(qpn)
            if sq is None:
                raise PcieError(f"{self.name}: MMIO WQE for unknown SQ {qpn}")
            wqe = TxWqe.unpack(data)
            # Re-attach the packet's trace context across the pack()
            # boundary: the MMIO write TLP carried it side-band.
            wqe.trace_ctx = self.fabric.inbound_trace_ctx()
            sq.push_mmio_wqe(wqe)
            sq.ring_doorbell(wqe.wqe_index + 1)
            return
        if offset >= RQ_DOORBELL_BASE:
            rqn = (offset - RQ_DOORBELL_BASE) // DOORBELL_STRIDE
            rq = self.rqs.get(rqn)
            if rq is None:
                raise PcieError(f"{self.name}: doorbell for unknown RQ {rqn}")
            new_pi = int.from_bytes(data[:4], "big")
            if new_pi > rq.pi:
                rq.post(new_pi - rq.pi)
            return
        if offset < DOORBELL_STRIDE:
            # The firmware command doorbell (qpn 0 is never allocated,
            # so the first stride belongs to the command interface).
            self.cmd.handle_doorbell(data)
            return
        qpn = offset // DOORBELL_STRIDE
        sq = self.sqs.get(qpn)
        if sq is None:
            raise PcieError(f"{self.name}: doorbell for unknown SQ {qpn}")
        sq.ring_doorbell(int.from_bytes(data[:4], "big"))

    def handle_read(self, offset: int, length: int) -> bytes:
        raise PcieError(f"{self.name}: BAR reads not supported")

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------

    def _sq_worker(self, sq: SendQueue):
        """Fetch stage: pull WQEs (batched) and launch data DMA reads.

        Data reads for consecutive WQEs are issued back-to-back and
        overlap; the companion ``_sq_tx_stage`` consumes them in order, so
        PCIe round-trip latency is hidden behind the pipeline — the way
        real NIC DMA engines keep many transactions in flight.
        """
        fabric = self.fabric
        window = Store(self.sim, capacity=self.config.dma_window,
                       name=f"{self.name}.sq{sq.qpn}.pipe")
        self.sim.spawn(self._sq_tx_stage(sq, window),
                       name=f"{self.name}.sq{sq.qpn}.tx")
        wqe_batch: Dict[int, TxWqe] = {}
        while True:
            rung = yield sq.doorbell.get()
            if rung is _POISON or sq.destroyed:
                # Propagate teardown to the companion tx stage and exit.
                yield window.put(_POISON)
                return
            while sq.ci < sq.pi:
                index = sq.ci
                sq.ci = index + 1
                wqe = sq.mmio_wqes.pop(index & 0xFFFF, None)
                if wqe is None:
                    wqe = wqe_batch.pop(index, None)
                if wqe is None:
                    # Fetch a contiguous batch (bounded by the ring edge).
                    slot = index % sq.entries
                    burst = min(self.config.wqe_fetch_batch, sq.pi - index,
                                sq.entries - slot)
                    fetch_started = self.sim._now
                    raw = yield fabric.read(self, sq.slot_addr(index),
                                            burst * WQE_SIZE)
                    sq.stats_wqe_fetches += burst
                    spans = self._spans
                    for i, fetched in enumerate(
                            TxWqe.unpack_many(raw, burst)):
                        if spans.enabled:
                            # Ring-mode WQEs lose their context at
                            # pack time; the producer stashed it under
                            # the (nic, qpn, index) it rang for.
                            fetched.trace_ctx = spans.claim(
                                ("wqe", self.name, sq.qpn, index + i))
                            spans.record(fetched.trace_ctx,
                                         "pcie.wqe_fetch",
                                         fetch_started, self.sim._now)
                        wqe_batch[index + i] = fetched
                    wqe = wqe_batch.pop(index)
                if wqe.byte_count > 0:
                    data_event = fabric.read(self, wqe.buffer_addr,
                                             wqe.byte_count,
                                             trace_ctx=wqe.trace_ctx,
                                             trace_stage="pcie.dma_read")
                else:
                    data_event = None
                # Blocks when the pipeline window is full.
                yield window.put((index, wqe, data_event, self.sim._now))

    def _sq_tx_stage(self, sq: SendQueue, window: Store):
        """Transmit stage: consume fetched WQEs in order and send.

        Hot path (cut-through fabric, tracing off, Ethernet transport,
        no shaper on the queue): the per-WQE pipeline-occupancy timeout
        is folded into the transmit itself.  Steering resolves when the
        DMA data lands; the wire reservation and the signaled CQE are
        keyed at the stage's *virtual* completion instant ``stage_free``
        — the exact time the reference generator would have acted — so a
        WQE costs no dedicated pacing event.  Pulling the next WQE early
        must not release a backpressured fetch stage ahead of schedule,
        so when the window sits at (or within one put of) capacity the
        stage waits out the reference pacing before re-polling.  Every
        gated-out case realigns to ``stage_free`` and runs the reference
        body unchanged.
        """
        tracer = self._tracer
        spans = self._spans
        prof = self._prof
        shaper_tag = f"{self.name}.shaper"
        stage_tag = f"{self.name}.sq{sq.qpn}.tx"
        sim = self.sim
        delay_s = self.config.processing_delay
        fuse_ok = (fused_dispatch_ok(sim, self.fabric)
                   and sq.transport != SendQueue.TRANSPORT_RC)
        stage_free = 0.0
        while True:
            # Popping ahead of the reference schedule must not free a
            # window slot early (the fetch stage would unstall ahead of
            # time): keep the slot virtually occupied until the instant
            # the reference stage would have popped.
            held = bool(window._items) and stage_free > sim._now
            if held:
                window.hold_slot(stage_free)
            item = yield window.get()
            if not held and sim._now < stage_free:
                # Handed over while get-blocked, before the reference
                # would even be polling: the item would have sat in the
                # window (occupying its slot) until then.
                window.hold_slot(stage_free)
            if item is _POISON:
                return
            index, wqe, data_event, enqueued = item
            started = self.sim._now
            ctx = wqe.trace_ctx
            if ctx is not None:
                spans.record(ctx, "nic.tx", enqueued, started,
                             kind="queue")
            data = (yield data_event) if data_event is not None else b""
            meter = getattr(sq, "meter", None)
            if (fuse_ok and ctx is None
                    and (meter is None
                         or not self.shaper.has_limiter(meter))):
                sq.stats_wqes += 1
                self._ctr_tx_wqes.inc()
                self._ctr_tx_bytes.inc(len(data))
                now = sim._now
                done = (now if now > stage_free else stage_free) + delay_s
                stage_free = done
                resolved = self._resolve_eth(sq, wqe, data)
                eswitch = self.eswitch
                if all(d.kind == Disposition.UPLINK for d, _v in resolved):
                    for d, vport in resolved:
                        eswitch.apply_at(d, vport, done)
                    if wqe.signaled:
                        completion = Cqe(CQE_SEND_COMPLETION, sq.qpn,
                                         index, wqe.byte_count)
                        self._post_cqe_at(sq.cq, completion, done)
                    continue
                # Local dispositions (loopback, queue delivery, drops)
                # can race receive-side state at the completion instant:
                # realign and apply synchronously, like the reference.
                if done > sim._now:
                    yield sim.timeout(done - sim._now)
                for d, vport in resolved:
                    eswitch._apply_fdb(d, from_vport=vport)
                if wqe.signaled:
                    completion = Cqe(CQE_SEND_COMPLETION, sq.qpn, index,
                                     wqe.byte_count)
                    self._post_cqe(sq.cq, completion)
                continue
            # Gated out: a preceding fused WQE may have claimed this one
            # early, so realign to the reference pacing before running
            # the reference body unchanged.
            pause = stage_free - self.sim._now
            if pause > 0:
                yield self.sim.timeout(pause)
            service_started = self.sim._now
            yield self.sim.timeout(self.config.processing_delay)
            sq.stats_wqes += 1
            self._ctr_tx_wqes.inc()
            self._ctr_tx_bytes.inc(len(data))
            meter = getattr(sq, "meter", None)
            if meter is not None and self.shaper.has_limiter(meter):
                delay = self.shaper.delay_for(meter, len(data) * 8)
                if delay > 0:
                    if ctx is not None:
                        spans.record(ctx, "nic.shaper", self.sim._now,
                                     self.sim._now + delay, kind="queue")
                    if prof is None:
                        yield self.sim.timeout(delay)
                    else:
                        # Tag the pacing timeout as shaper work, not
                        # queue work: the push happens at creation, so
                        # the scoped tag must wrap the call, not the
                        # yield.
                        prof.current_tag = shaper_tag
                        pause = self.sim.timeout(delay)
                        prof.current_tag = stage_tag
                        yield pause
                self.shaper.consume(meter, len(data) * 8)
            if sq.transport == SendQueue.TRANSPORT_RC:
                qp = self._qp_by_sqn.get(sq.qpn)
                if qp is None or qp.state != RcQp.READY:
                    # The QP dropped to ERR (or is being torn down):
                    # queued WQEs are flushed, not sent (verbs flush
                    # semantics) — software recovers via the command
                    # channel.
                    sq.stats_flushed += 1
                else:
                    yield from self.rdma.send_message(
                        qp, wqe, data, remote_addr=wqe.remote_addr,
                        rkey=wqe.rkey)
                    # Send CQE arrives later, on the remote ack.
            else:
                self._transmit_eth(sq, wqe, data)
                if wqe.signaled:
                    completion = Cqe(
                        CQE_SEND_COMPLETION, sq.qpn, index,
                        wqe.byte_count,
                    )
                    completion.trace_ctx = ctx
                    self._post_cqe(sq.cq, completion)
            if ctx is not None:
                spans.record(ctx, "nic.tx", service_started, self.sim._now)
            if tracer.enabled:
                tracer.complete(f"nic.{self.name}", f"sq{sq.qpn}", "wqe",
                                started, self.sim._now,
                                {"index": index, "bytes": wqe.byte_count})
            stage_free = self.sim._now

    def _transmit_eth(self, sq: SendQueue, wqe: TxWqe, data: bytes) -> None:
        packet = parse_frame(data)
        if wqe.flags & (WQE_FLAG_CSUM_L3 | WQE_FLAG_CSUM_L4):
            self.checksum.fill(packet, l3=bool(wqe.flags & WQE_FLAG_CSUM_L3),
                               l4=bool(wqe.flags & WQE_FLAG_CSUM_L4))
        if wqe.flags & WQE_FLAG_LSO and wqe.mss:
            packets = self.lso.segment(packet, wqe.mss)
        else:
            packets = [packet]
        resume_id = wqe.context_id >> 16
        for packet in packets:
            packet.meta["context_id"] = wqe.context_id & 0xFFFF
            if wqe.trace_ctx is not None:
                packet.meta["trace_ctx"] = wqe.trace_ctx
            if resume_id and resume_id in self._resume_tables:
                # FLD-E return path: resume steering mid-pipeline (§5.3).
                table = self._resume_tables[resume_id]
                disposition = self.steering.process(packet, table)
                self.eswitch._apply_fdb(disposition, from_vport=None)
            else:
                self.eswitch.egress_from_vport(sq.vport, packet)

    def _resolve_eth(self, sq: SendQueue, wqe: TxWqe, data: bytes):
        """The steering half of :meth:`_transmit_eth`: parse, offload,
        segment and classify, returning ``[(disposition, vport), ...]``
        without applying anything.

        Rule lookups take no virtual time and only bump counters, so a
        fused caller can resolve at data-ready time and defer the effect
        to the pipeline's completion instant.  Callers gate out traced
        WQEs, so the trace_ctx stamping of the legacy path is skipped.
        """
        packet = parse_frame(data)
        if wqe.flags & (WQE_FLAG_CSUM_L3 | WQE_FLAG_CSUM_L4):
            self.checksum.fill(packet, l3=bool(wqe.flags & WQE_FLAG_CSUM_L3),
                               l4=bool(wqe.flags & WQE_FLAG_CSUM_L4))
        if wqe.flags & WQE_FLAG_LSO and wqe.mss:
            packets = self.lso.segment(packet, wqe.mss)
        else:
            packets = [packet]
        resume_id = wqe.context_id >> 16
        resolved = []
        for packet in packets:
            packet.meta["context_id"] = wqe.context_id & 0xFFFF
            if resume_id and resume_id in self._resume_tables:
                # FLD-E return path: resume steering mid-pipeline (§5.3).
                table = self._resume_tables[resume_id]
                resolved.append(
                    (self.steering.process(packet, table), None))
            else:
                resolved.append(
                    self.eswitch.egress_resolve(sq.vport, packet))
        return resolved

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def _pre_rx_hook(self, vport: VPort, packet: Packet) -> bool:
        """Transport interception: RoCE frames bypass guest steering."""
        if packet.find(Bth) is not None:
            return self.rdma.on_ingress(packet)
        return False

    def _deliver_disposition(self, vport: Optional[VPort],
                             disposition: Disposition) -> None:
        packet = disposition.packet
        for meter in disposition.meters:
            if not self.shaper.police(meter, packet.size() * 8):
                self.stats_meter_drops += 1
                self._ctr_drop_meter.inc()
                return
        if disposition.kind == Disposition.RSS:
            rq = disposition.target.select(packet)
        else:  # DELIVER or ACCELERATOR
            rq = disposition.target
        flags = self.checksum.validate(packet)
        context = disposition.context_id & 0xFFFF
        if disposition.kind == Disposition.ACCELERATOR and disposition.next_table:
            resume_id = self._resume_id_for(disposition.next_table)
            context |= resume_id << 16
        item = _RxItem(packet.to_bytes(), flags, context, rq.rqn,
                       packet.meta.get("rss_hash", 0),
                       trace_ctx=packet.meta.get("trace_ctx"),
                       enqueued=self.sim._now)
        inbox = self._rx_inbox.get(rq.rqn)
        if inbox is None or not inbox.try_put(item):
            self.stats_rx_dropped_inbox += 1
            self._ctr_drop_inbox.inc()

    def _resume_id_for(self, table_name: str) -> int:
        for resume_id, name in self._resume_tables.items():
            if name == table_name:
                return resume_id
        return self.register_resume_table(table_name)

    def _rq_worker(self, rq: ReceiveQueue, inbox: Store):
        fabric = self.fabric
        tracer = self._tracer
        spans = self._spans
        while True:
            item = yield inbox.get()
            if item is _POISON or rq.destroyed:
                return
            started = self.sim._now
            ctx = item.trace_ctx
            if ctx is not None:
                spans.record(ctx, "nic.rx", item.enqueued, started,
                             kind="queue")
            yield self.sim.timeout(self.config.processing_delay)
            if isinstance(rq, MultiPacketReceiveQueue):
                placement = rq.place(len(item.data))
                if placement is None:
                    self.stats_rx_dropped_no_desc += 1
                    self._ctr_drop_no_desc.inc()
                    continue
                key = (rq.rqn, placement["desc_index"] % rq.entries)
                if placement["stride_index"] == 0 or key not in self._cached_rx_desc:
                    raw = yield fabric.read(
                        self, rq.slot_addr(placement["desc_index"]),
                        RX_DESC_SIZE,
                    )
                    self._cached_rx_desc[key] = RxDesc.unpack(raw)
                desc = self._cached_rx_desc[key]
                address = (desc.buffer_addr
                           + placement["stride_index"] * rq.stride_size)
                wqe_counter = placement["desc_index"]
                stride_index = placement["stride_index"]
            else:
                if rq.available == 0:
                    rq.stats_drops_no_desc += 1
                    self.stats_rx_dropped_no_desc += 1
                    self._ctr_drop_no_desc.inc()
                    continue
                index = rq.ci
                rq.ci += 1
                rq.stats_packets += 1
                desc = yield from self._fetch_rx_desc(rq, index)
                if len(item.data) > desc.byte_count:
                    self.stats_rx_dropped_no_desc += 1
                    self._ctr_drop_no_desc.inc()
                    continue
                address = desc.buffer_addr
                wqe_counter = index
                stride_index = 0
            self._ctr_rx_packets.inc()
            self._ctr_rx_bytes.inc(len(item.data))
            if ctx is not None:
                spans.record(ctx, "nic.rx", started, self.sim._now)
            write_done = fabric.post_write(self, address, item.data,
                                           trace_ctx=ctx,
                                           trace_stage="pcie.dma_write")
            if tracer.enabled:
                tracer.complete(f"nic.{self.name}", f"rq{rq.rqn}",
                                "rx_packet", started, self.sim._now,
                                {"bytes": len(item.data)})
            cqe = Cqe(
                CQE_RECV_COMPLETION, item.qpn, wqe_counter, len(item.data),
                flags=item.flags, rss_hash=item.rss_hash,
                flow_tag=item.context_id, stride_index=stride_index,
            )
            cqe.trace_ctx = ctx
            # The CQE is ordered after the data write (PCIe posted-write
            # ordering) but the worker moves on — writes pipeline.
            write_done.add_callback(
                lambda _e, cq=rq.cq, entry=cqe: self._post_cqe(cq, entry)
            )

    def _fetch_rx_desc(self, rq: ReceiveQueue, index: int):
        """Return the descriptor at ``index``, prefetching a batch.

        Real NICs amortize descriptor DMA by reading cachelines of
        descriptors at once; we cache a batch and refill on miss.
        """
        key = (rq.rqn, index)
        cached = self._cached_rx_desc.pop(key, None)
        if cached is not None:
            return cached
        slot = index % rq.entries
        burst = max(1, min(self.config.rx_desc_batch, rq.pi - index,
                           rq.entries - slot))
        raw = yield self.fabric.read(self, rq.slot_addr(index),
                                     burst * RX_DESC_SIZE)
        for i, desc in enumerate(RxDesc.unpack_many(raw, burst)):
            self._cached_rx_desc[(rq.rqn, index + i)] = desc
        return self._cached_rx_desc.pop(key)

    # ------------------------------------------------------------------
    # RDMA engine callbacks
    # ------------------------------------------------------------------

    def _rdma_egress(self, qp: RcQp, frame: Packet) -> None:
        self.eswitch.egress_from_vport(qp.sq.vport, frame)

    def _rdma_deliver(self, qp: RcQp, payload: bytes, flags: int,
                      context: int, first: bool, last: bool) -> None:
        # The deliver callback's signature is frozen (tests construct
        # plain 6-arg callables), so the engine exposes the delivered
        # segment's trace context as a transient attribute instead.
        item = _RxItem(payload, flags, context, qp.qpn,
                       trace_ctx=self.rdma.inbound_trace_ctx,
                       enqueued=self.sim._now)
        inbox = self._rx_inbox.get(qp.rq.rqn)
        if inbox is None or not inbox.try_put(item):
            self.stats_rx_dropped_inbox += 1

    def _rdma_qp_error(self, qp: RcQp, syndrome: int) -> None:
        """A QP dropped to ERR: post the error CQE software recovers from."""
        cqe = Cqe(CQE_ERROR, qp.qpn, 0, 0, syndrome=syndrome)
        self._post_cqe(qp.sq.cq, cqe)

    def _rdma_complete_send(self, qp: RcQp, wqe: TxWqe) -> None:
        if wqe.signaled:
            completion = Cqe(
                CQE_SEND_COMPLETION, qp.qpn, wqe.wqe_index, wqe.byte_count,
            )
            completion.trace_ctx = wqe.trace_ctx
            self._post_cqe(qp.sq.cq, completion)

    # ------------------------------------------------------------------
    # Completion writes
    # ------------------------------------------------------------------

    def _post_cqe(self, cq: CompletionQueue, cqe: Cqe) -> None:
        self._ctr_cqes.inc()
        fused = cq.fused_rx
        if fused is not None and cqe.trace_ctx is None:
            slot = cq.next_slot()
            handle = self.fabric.post_write_deferred(self, slot, cqe.pack())
            if handle is not None:
                fused(handle, cqe)
                return
            # Deferred issue unavailable (per-hop mode, oversized CQE):
            # plain posted write — the slot is already claimed.
            done = self.fabric.post_write(self, slot, cqe.pack(),
                                          trace_ctx=None,
                                          trace_stage="pcie.cqe_write")
            done.add_callback(lambda _event: cq.notify.try_put(cqe))
            return
        tracer = self._tracer
        if tracer.enabled:
            tracer.instant(f"nic.{self.name}", f"cq{cq.cqn}",
                           f"cqe:{cqe.opcode}", self.sim._now)
        done = self.fabric.post_write(self, cq.next_slot(), cqe.pack(),
                                      trace_ctx=cqe.trace_ctx,
                                      trace_stage="pcie.cqe_write")
        done.add_callback(lambda _event: cq.notify.try_put(cqe))

    def _post_cqe_at(self, cq: CompletionQueue, cqe: Cqe,
                     when: float) -> None:
        """Post a CQE resolved ahead of time (fused tx stage).

        The write TLP arbitrates for the PCIe lane as if issued at
        ``when`` — same delivery instant, same notify callback as
        :meth:`_post_cqe`, without the pipeline-occupancy event that
        legacy posting rides on.  Callers gate out tracing and fused-rx
        CQs (send completions never target one).
        """
        self._ctr_cqes.inc()
        done = self.fabric.post_write_at(self, cq.next_slot(), cqe.pack(),
                                         when)
        done.add_callback(lambda _event: cq.notify.try_put(cqe))

    # ------------------------------------------------------------------
    # Telemetry probes
    # ------------------------------------------------------------------

    def _rdma_probe(self) -> Dict[str, int]:
        """Sampled at export time only — zero cost on the datapath."""
        qps = list(self.rdma.qps.values())
        return {
            "qps": len(qps),
            "outstanding_segments": sum(len(q.outstanding) for q in qps),
            "write_protection_errors": sum(
                q.stats_write_protection_errors for q in qps),
        }


class _DataSlot:
    """Event-shaped holder for a DMA read's data on the flat tx path.

    Quacks like the completion Event the pipeline used to carry through
    the window (``_fired`` / ``value`` / ``add_callback``) but is filled
    by the fabric's ``on_done`` callback, so no Event is allocated and
    no scheduler state is touched — completion still lands at the exact
    instant the Event would have fired.
    """

    __slots__ = ("_fired", "value", "_callback")

    def __init__(self):
        self._fired = False
        self.value = None
        self._callback = None

    def _complete(self, data) -> None:
        self._fired = True
        self.value = data
        callback = self._callback
        if callback is not None:
            self._callback = None
            callback(self)

    def add_callback(self, callback) -> None:
        self._callback = callback


class _RqFlatWorker:
    """Flat continuation form of :meth:`Nic._rq_worker`.

    Installed instead of the generator when the shared fast-path gate
    (:func:`repro.sim.fastpath.fused_dispatch_ok`) is open at queue
    creation: tracing and spans are off — so no item ever carries a
    trace context — and the fabric runs cut-through.  The event
    structure is exactly the reference loop's, written as continuations:

    * one processing-delay event per packet, owner-tagged with the
      queue's stage name (the string the spawned process carried);
    * descriptor DMA reads resumed by their completion callbacks, at
      the same instant the generator would have resumed;
    * the data write's CQE chained through the fabric's ``on_done``
      callback instead of a completion Event.

    What disappears is the Process trampoline, the per-iteration
    ``Store.get`` Event and the per-write completion Event — pure
    dispatch overhead; push counts and instants are unchanged, so the
    (time, seq) schedule is bit-identical.
    """

    __slots__ = ("nic", "rq", "inbox", "profile_tag", "_mprq", "_pend")

    def __init__(self, nic: Nic, rq: ReceiveQueue, inbox: Store):
        self.nic = nic
        self.rq = rq
        self.inbox = inbox
        # Events this worker schedules attribute to the stage the
        # spawned generator's process name did.
        self.profile_tag = f"{nic.name}.rq{rq.rqn}"
        self._mprq = isinstance(rq, MultiPacketReceiveQueue)
        self._pend = None
        # Arm via a zero-delay step, exactly like the spawned generator's
        # first dispatch: the worker must not observe traffic (or unit
        # tests poking handle_write) before the simulation runs.
        nic.sim.schedule(0.0, self._next)

    def _next(self) -> None:
        """Pull the next inbox item, blocking (via a getter callback)
        when the inbox is empty — the flat form of the loop head."""
        item = self.inbox.try_get()
        if item is None:
            self.inbox.get().add_callback(self._on_item)
            return
        self._begin(item)

    def _on_item(self, event) -> None:
        self._begin(event.value)

    def _begin(self, item) -> None:
        if item is _POISON or self.rq.destroyed:
            return
        self.nic.sim.call_later(self.nic.config.processing_delay,
                                self._service, item)

    def _service(self, item: _RxItem) -> None:
        """The post-delay body: place the packet, fetch its descriptor
        (from cache or DMA), DMA the data and chain the CQE."""
        nic = self.nic
        rq = self.rq
        if self._mprq:
            placement = rq.place(len(item.data))
            if placement is None:
                nic.stats_rx_dropped_no_desc += 1
                nic._ctr_drop_no_desc.inc()
                self._next()
                return
            key = (rq.rqn, placement["desc_index"] % rq.entries)
            if (placement["stride_index"] == 0
                    or key not in nic._cached_rx_desc):
                self._pend = (item, key, placement)
                nic.fabric.read(
                    nic, rq.slot_addr(placement["desc_index"]),
                    RX_DESC_SIZE, on_done=self._mprq_desc_ready,
                )
                return
            self._mprq_finish(item, nic._cached_rx_desc[key], placement)
            return
        if rq.available == 0:
            rq.stats_drops_no_desc += 1
            nic.stats_rx_dropped_no_desc += 1
            nic._ctr_drop_no_desc.inc()
            self._next()
            return
        index = rq.ci
        rq.ci = index + 1
        rq.stats_packets += 1
        desc = nic._cached_rx_desc.pop((rq.rqn, index), None)
        if desc is None:
            slot = index % rq.entries
            burst = max(1, min(nic.config.rx_desc_batch, rq.pi - index,
                               rq.entries - slot))
            self._pend = (item, index, burst)
            nic.fabric.read(
                nic, rq.slot_addr(index), burst * RX_DESC_SIZE,
                on_done=self._plain_desc_ready,
            )
            return
        self._plain_finish(item, index, desc)

    def _mprq_desc_ready(self, raw) -> None:
        item, key, placement = self._pend
        self._pend = None
        desc = RxDesc.unpack(raw)
        self.nic._cached_rx_desc[key] = desc
        self._mprq_finish(item, desc, placement)

    def _mprq_finish(self, item, desc, placement) -> None:
        address = (desc.buffer_addr
                   + placement["stride_index"] * self.rq.stride_size)
        self._complete(item, address, placement["desc_index"],
                       placement["stride_index"])

    def _plain_desc_ready(self, raw) -> None:
        item, index, burst = self._pend
        self._pend = None
        nic = self.nic
        rqn = self.rq.rqn
        for i, desc in enumerate(RxDesc.unpack_many(raw, burst)):
            nic._cached_rx_desc[(rqn, index + i)] = desc
        self._plain_finish(item, index,
                           nic._cached_rx_desc.pop((rqn, index)))

    def _plain_finish(self, item, index, desc) -> None:
        nic = self.nic
        if len(item.data) > desc.byte_count:
            nic.stats_rx_dropped_no_desc += 1
            nic._ctr_drop_no_desc.inc()
            self._next()
            return
        self._complete(item, desc.buffer_addr, index, 0)

    def _complete(self, item, address, wqe_counter, stride_index) -> None:
        nic = self.nic
        nic._ctr_rx_packets.inc()
        nic._ctr_rx_bytes.inc(len(item.data))
        cqe = Cqe(
            CQE_RECV_COMPLETION, item.qpn, wqe_counter, len(item.data),
            flags=item.flags, rss_hash=item.rss_hash,
            flow_tag=item.context_id, stride_index=stride_index,
        )
        # The CQE is ordered after the data write (PCIe posted-write
        # ordering); on_done fires at the write's delivery instant.
        nic.fabric.post_write(nic, address, item.data,
                              trace_stage="pcie.dma_write",
                              on_done=partial(nic._post_cqe, self.rq.cq, cqe))
        self._next()


class _SqFlatPipeline:
    """Flat continuation form of the :meth:`Nic._sq_worker` /
    :meth:`Nic._sq_tx_stage` generator pair.

    Installed at queue creation when the shared fast-path gate is open
    AND the queue can never leave the fused branch: Ethernet transport
    and no meter (a metered queue may pace through the shaper, which
    the generator body handles).  Under those conditions every WQE
    takes `_sq_tx_stage`'s fused arm, so the whole pipeline reduces to
    continuations:

    * the fetch stage drains doorbells iteratively, pausing only on a
      batched WQE fetch or a full window (resumed by the read's /
      put's completion callback at the reference instants);
    * the transmit stage pulls in order, waits for the data DMA via
      its event callback, and keys wire reservations and CQEs at the
      virtual completion instant ``stage_free`` exactly as the fused
      generator arm does — including the window hold dance that keeps
      backpressure timing faithful.

    The window Store carries the fetch stage's profiler tag so
    hold-expiry wakes it schedules attribute exactly as they did when
    the blocking ``put`` ran inside the fetch process; the pipeline
    object itself carries the tx stage's tag for its own deferred
    continuations.  Push counts and instants are unchanged from the
    generator pair, so the (time, seq) schedule is bit-identical.
    """

    __slots__ = ("nic", "sq", "window", "profile_tag", "stage_free",
                 "_wqe_batch", "_fetch_pend", "_tx_pend")

    def __init__(self, nic: Nic, sq: SendQueue):
        self.nic = nic
        self.sq = sq
        window = Store(nic.sim, capacity=nic.config.dma_window,
                       name=f"{nic.name}.sq{sq.qpn}.pipe")
        window.profile_tag = f"{nic.name}.sq{sq.qpn}"
        self.window = window
        self.profile_tag = f"{nic.name}.sq{sq.qpn}.tx"
        self.stage_free = 0.0
        self._wqe_batch: Dict[int, TxWqe] = {}
        self._fetch_pend = None
        self._tx_pend = None
        # Start via a zero-delay step, exactly like the spawned fetch
        # generator's first dispatch (which in turn spawned the tx
        # stage before blocking on the doorbell).
        nic.sim.schedule(0.0, self._start)

    # -- fetch stage ---------------------------------------------------

    def _start(self) -> None:
        self.nic.sim.schedule(0.0, self._pull)
        self._fetch_idle()

    def _fetch_idle(self) -> None:
        """Consume doorbells until one pauses the drain or none remain."""
        doorbell = self.sq.doorbell
        while True:
            rung = doorbell.try_get()
            if rung is None:
                doorbell.get().add_callback(self._on_doorbell)
                return
            if rung is _POISON or self.sq.destroyed:
                # Propagate teardown to the tx stage; no re-arm.
                self.window.put(_POISON)
                return
            if not self._drain():
                return

    def _on_doorbell(self, event) -> None:
        rung = event.value
        if rung is _POISON or self.sq.destroyed:
            self.window.put(_POISON)
            return
        if self._drain():
            self._fetch_idle()

    def _drain(self) -> bool:
        """Push WQEs up to the rung PI; False when paused on a wait."""
        nic = self.nic
        sq = self.sq
        batch = self._wqe_batch
        while sq.ci < sq.pi:
            index = sq.ci
            sq.ci = index + 1
            wqe = sq.mmio_wqes.pop(index & 0xFFFF, None)
            if wqe is None:
                wqe = batch.pop(index, None)
            if wqe is None:
                # Fetch a contiguous batch (bounded by the ring edge).
                slot = index % sq.entries
                burst = min(nic.config.wqe_fetch_batch, sq.pi - index,
                            sq.entries - slot)
                self._fetch_pend = (index, burst)
                nic.fabric.read(
                    nic, sq.slot_addr(index), burst * WQE_SIZE,
                    on_done=self._wqes_ready,
                )
                return False
            if not self._push(index, wqe):
                return False
        return True

    def _wqes_ready(self, raw) -> None:
        index, burst = self._fetch_pend
        self._fetch_pend = None
        sq = self.sq
        sq.stats_wqe_fetches += burst
        batch = self._wqe_batch
        for i, fetched in enumerate(TxWqe.unpack_many(raw, burst)):
            batch[index + i] = fetched
        if self._push(index, batch.pop(index)) and self._drain():
            self._fetch_idle()

    def _push(self, index: int, wqe: TxWqe) -> bool:
        """Launch the data DMA and queue the WQE on the window; False
        when the window is full (the put's event resumes the drain)."""
        nic = self.nic
        if wqe.byte_count > 0:
            data_event = _DataSlot()
            nic.fabric.read(nic, wqe.buffer_addr, wqe.byte_count,
                            on_done=data_event._complete)
        else:
            data_event = None
        event = self.window.put((index, wqe, data_event, nic.sim._now))
        if event._fired:
            return True
        event.add_callback(self._put_admitted)
        return False

    def _put_admitted(self, _event) -> None:
        if self._drain():
            self._fetch_idle()

    # -- transmit stage ------------------------------------------------

    def _pull(self) -> None:
        """Consume window items in order; the flat loop head, with the
        same slot-hold discipline as the generator stage."""
        window = self.window
        sim = self.nic.sim
        while True:
            held = bool(window._items) and self.stage_free > sim._now
            if held:
                window.hold_slot(self.stage_free)
            item = window.try_get()
            if item is None:
                window.get().add_callback(self._handover)
                return
            if item is _POISON:
                return
            if not self._tx_begin(item):
                return

    def _handover(self, event) -> None:
        # Handed over while get-blocked, before the reference would
        # even be polling: the item would have sat in the window
        # (occupying its slot) until then.
        if self.nic.sim._now < self.stage_free:
            self.window.hold_slot(self.stage_free)
        item = event.value
        if item is _POISON:
            return
        if self._tx_begin(item):
            self._pull()

    def _tx_begin(self, item) -> bool:
        index, wqe, data_event, _enqueued = item
        if data_event is None:
            return self._tx_send(index, wqe, b"")
        if data_event._fired:
            return self._tx_send(index, wqe, data_event.value)
        self._tx_pend = (index, wqe)
        data_event.add_callback(self._data_ready)
        return False

    def _data_ready(self, event) -> None:
        index, wqe = self._tx_pend
        self._tx_pend = None
        if self._tx_send(index, wqe, event.value):
            self._pull()

    def _tx_send(self, index: int, wqe: TxWqe, data: bytes) -> bool:
        """The fused transmit arm; False when the local-disposition
        realignment defers completion to a continuation."""
        nic = self.nic
        sq = self.sq
        sim = nic.sim
        sq.stats_wqes += 1
        nic._ctr_tx_wqes.inc()
        nic._ctr_tx_bytes.inc(len(data))
        now = sim._now
        stage_free = self.stage_free
        done = (now if now > stage_free else stage_free) \
            + nic.config.processing_delay
        self.stage_free = done
        resolved = nic._resolve_eth(sq, wqe, data)
        eswitch = nic.eswitch
        if all(d.kind == Disposition.UPLINK for d, _v in resolved):
            for d, vport in resolved:
                eswitch.apply_at(d, vport, done)
            if wqe.signaled:
                completion = Cqe(CQE_SEND_COMPLETION, sq.qpn, index,
                                 wqe.byte_count)
                nic._post_cqe_at(sq.cq, completion, done)
            return True
        # Local dispositions (loopback, queue delivery, drops) can race
        # receive-side state at the completion instant: realign and
        # apply synchronously, like the reference.
        entry = (resolved, wqe, index)
        if done > now:
            sim.call_later(done - now, self._apply_local_cont, entry)
            return False
        self._apply_local(entry)
        return True

    def _apply_local_cont(self, entry) -> None:
        self._apply_local(entry)
        self._pull()

    def _apply_local(self, entry) -> None:
        resolved, wqe, index = entry
        nic = self.nic
        eswitch = nic.eswitch
        for d, vport in resolved:
            eswitch._apply_fdb(d, from_vport=vport)
        if wqe.signaled:
            completion = Cqe(CQE_SEND_COMPLETION, self.sq.qpn, index,
                             wqe.byte_count)
            nic._post_cqe(self.sq.cq, completion)
