"""Firmware command interface: mailbox, doorbell, object lifecycle.

Real mlx5 drivers configure the device through a command interface: the
host writes a typed command into a mailbox in host memory, rings a
doorbell register on the BAR, and firmware DMA-reads the mailbox,
executes, and DMA-writes a status/handle response back.  This module
reifies that interface for the simulated NIC:

* :class:`CommandUnit` — the NIC-resident executor.  It owns the
  :class:`ObjectTable` of handle-addressed resources (PD, CQ, SQ, RQ,
  MPRQ, RC QP, vPort, steering rule, resume table) and maps typed
  commands onto the device's internal create/modify/destroy machinery.
* :class:`CommandChannel` — the host-side endpoint (owned by the
  software driver).  ``execute`` runs a command synchronously (the
  zero-latency path every control plane uses during bring-up, which
  keeps simulated schedules identical to the historical direct method
  calls); ``call`` is the timed generator path that exercises the full
  doorbell → mailbox DMA → firmware delay → response DMA round trip.

Commands are dataclasses; scalars are packed into the mailbox wire
format, while live simulation objects (queues, match specs, action
lists) travel side-band as "extended" references — the stand-in for the
pointer-carrying mailbox pages of the real interface.

Every object is created against the table with explicit dependencies
(an SQ holds its CQ, a QP holds its CQ and RQ, a vPort default holds
its RQ, a steering rule holds the queues it forwards to); destroying a
referenced object fails with ``CmdStatus.IN_USE``, and destroys that
succeed actually tear the resource down — workers exit, doorbells are
rejected, and the owning layers can release rings, SRAM slices and
address-map windows.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, List, Optional, Tuple

from .queues import QueueError
from .rdma import QpStateError, RcQp
from .steering import (
    ForwardToQueue,
    ForwardToVport,
    SteeringError,
    ToAccelerator,
)

#: Firmware execution time per command (mailbox decode + context
#: update inside the device; the paper-scale constant, not measured).
FIRMWARE_EXEC_DELAY = 1e-6

CMD_MAGIC = 0xF1D0
RSP_MAGIC = 0xF1D1

#: Mailbox layout: the command occupies [0, RESPONSE_OFFSET); firmware
#: writes the response at RESPONSE_OFFSET within the same mailbox.
RESPONSE_OFFSET = 384

_HEADER = struct.Struct("!HHII")      # magic, opcode, seq, payload_len
_RESPONSE = struct.Struct("!HHIQI")   # magic, status, seq, handle, syndrome
_DOORBELL = struct.Struct("!IQI")     # seq, mailbox_addr, total_len

RESPONSE_SIZE = _RESPONSE.size
DOORBELL_SIZE = _DOORBELL.size

# Payload field tags.
_TAG_NONE, _TAG_INT, _TAG_STR, _TAG_EXT = 0, 1, 2, 3


class CmdStatus(enum.IntEnum):
    """Typed command completion statuses (the mlx5 syndrome analogue)."""

    OK = 0
    BAD_OPCODE = 1
    BAD_PARAM = 2
    BAD_HANDLE = 3
    BAD_STATE = 4
    IN_USE = 5
    NO_RESOURCES = 6
    INTERNAL = 7
    VERIFY_FAILED = 8


class CmdError(RuntimeError):
    """Raised by executors to return a specific non-OK status.

    ``syndrome`` rides the response's syndrome field — the program
    verifier uses it to report *which* rule a rejected program broke
    (the ``E_*`` sub-codes of :mod:`repro.prog.verifier`).
    """

    def __init__(self, status: CmdStatus, message: str = "",
                 syndrome: int = 0):
        super().__init__(message or status.name)
        self.status = status
        self.syndrome = syndrome


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


@dataclass
class Command:
    """Base class; subclasses define OPCODE and their typed fields."""

    OPCODE = 0x00


@dataclass
class AllocPd(Command):
    OPCODE = 0x01


@dataclass
class CreateCq(Command):
    OPCODE = 0x10
    ring_addr: int = 0
    entries: int = 0


@dataclass
class CreateSq(Command):
    OPCODE = 0x11
    ring_addr: int = 0
    entries: int = 0
    cq: Any = None
    vport: int = 0
    transport: str = "eth"
    meter: Optional[str] = None


@dataclass
class CreateRq(Command):
    OPCODE = 0x12
    ring_addr: int = 0
    entries: int = 0
    cq: Any = None
    shared: int = 0


@dataclass
class CreateMprq(Command):
    OPCODE = 0x13
    ring_addr: int = 0
    entries: int = 0
    cq: Any = None
    strides_per_buffer: int = 64
    stride_size: int = 2048


@dataclass
class CreateRcQp(Command):
    OPCODE = 0x14
    ring_addr: int = 0
    entries: int = 0
    cq: Any = None
    rq: Any = None
    vport: int = 0
    local_mac: Any = None
    local_ip: Any = None


@dataclass
class ModifyQp(Command):
    """One verbs state transition; attributes ride the edge that
    consumes them (remote endpoint + rq_psn at RTR, sq_psn at RTS)."""

    OPCODE = 0x20
    qp: Any = None
    state: str = ""
    remote_mac: Any = None
    remote_ip: Any = None
    remote_qpn: Optional[int] = None
    rq_psn: Optional[int] = None
    sq_psn: Optional[int] = None


@dataclass
class QueryObject(Command):
    OPCODE = 0x21
    handle: int = 0


@dataclass
class DestroyObject(Command):
    OPCODE = 0x22
    handle: int = 0


@dataclass
class CreateVport(Command):
    OPCODE = 0x30
    vport: int = 0


@dataclass
class SetVportDefault(Command):
    OPCODE = 0x31
    vport: int = 0
    rq: Any = None


@dataclass
class ClearVportDefault(Command):
    OPCODE = 0x32
    vport: int = 0


@dataclass
class RegisterResumeTable(Command):
    OPCODE = 0x40
    table_name: str = ""


@dataclass
class InstallRule(Command):
    OPCODE = 0x41
    table_name: str = ""
    match: Any = None
    actions: Any = None
    priority: int = 0


@dataclass
class CreateProgMap(Command):
    """Allocate a cuckoo-backed program map (``repro.prog.maps``)."""

    OPCODE = 0x50
    capacity: int = 64


@dataclass
class CreateProg(Command):
    """Verify and load a match-action program against ``maps``.

    ``program`` is a :class:`repro.prog.isa.Program`; ``maps`` a list of
    map objects previously created by :class:`CreateProgMap` (dangling
    references fail with BAD_HANDLE, verifier rejections with
    VERIFY_FAILED and the ``E_*`` sub-code in the syndrome).
    """

    OPCODE = 0x51
    program: Any = None
    maps: Any = None


@dataclass
class AttachProg(Command):
    """Attach a loaded program to an FLD datapath hook.

    ``direction`` is ``"rx"`` (target = receive binding id) or ``"tx"``
    (target = transmit queue id).  One program per hook: attaching over
    an existing attachment is BAD_STATE.
    """

    OPCODE = 0x52
    prog: Any = None
    fld: Any = None
    direction: str = "rx"
    target: int = 0


@dataclass
class DetachProg(Command):
    OPCODE = 0x53
    fld: Any = None
    direction: str = "rx"
    target: int = 0


@dataclass
class SetMapEntry(Command):
    """Control-path map write (insert or replace); full = NO_RESOURCES."""

    OPCODE = 0x54
    map: Any = None
    key: int = 0
    value: int = 0


@dataclass
class DelMapEntry(Command):
    OPCODE = 0x55
    map: Any = None
    key: int = 0


@dataclass
class QueryMapEntry(Command):
    OPCODE = 0x56
    map: Any = None
    key: int = 0


OPCODES: Dict[int, type] = {
    cls.OPCODE: cls
    for cls in (AllocPd, CreateCq, CreateSq, CreateRq, CreateMprq,
                CreateRcQp, ModifyQp, QueryObject, DestroyObject,
                CreateVport, SetVportDefault, ClearVportDefault,
                RegisterResumeTable, InstallRule, CreateProgMap,
                CreateProg, AttachProg, DetachProg, SetMapEntry,
                DelMapEntry, QueryMapEntry)
}


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------


def pack_command(cmd: Command, seq: int) -> Tuple[bytes, List[Any]]:
    """Serialize ``cmd`` for the mailbox.

    Returns the mailbox bytes and the side-band list of extended
    (live-object) references the payload indexes into.
    """
    payload = bytearray()
    ext: List[Any] = []
    for field in fields(cmd):
        value = getattr(cmd, field.name)
        if value is None:
            payload.append(_TAG_NONE)
        elif isinstance(value, bool):
            payload.append(_TAG_INT)
            payload += int(value).to_bytes(8, "big", signed=True)
        elif isinstance(value, int):
            payload.append(_TAG_INT)
            payload += value.to_bytes(8, "big", signed=True)
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            payload.append(_TAG_STR)
            payload += len(raw).to_bytes(2, "big")
            payload += raw
        else:
            payload.append(_TAG_EXT)
            payload += len(ext).to_bytes(2, "big")
            ext.append(value)
    header = _HEADER.pack(CMD_MAGIC, cmd.OPCODE, seq, len(payload))
    return header + bytes(payload), ext


def unpack_command(raw: bytes, ext: List[Any]) -> Tuple[Command, int]:
    """Inverse of :func:`pack_command` (``ext`` from the side band)."""
    magic, opcode, seq, payload_len = _HEADER.unpack_from(raw, 0)
    if magic != CMD_MAGIC:
        raise CmdError(CmdStatus.BAD_OPCODE, f"bad magic {magic:#x}")
    cls = OPCODES.get(opcode)
    if cls is None:
        raise CmdError(CmdStatus.BAD_OPCODE, f"unknown opcode {opcode:#x}")
    payload = raw[_HEADER.size:_HEADER.size + payload_len]
    values = []
    cursor = 0
    for _field in fields(cls):
        tag = payload[cursor]
        cursor += 1
        if tag == _TAG_NONE:
            values.append(None)
        elif tag == _TAG_INT:
            values.append(
                int.from_bytes(payload[cursor:cursor + 8], "big",
                               signed=True))
            cursor += 8
        elif tag == _TAG_STR:
            length = int.from_bytes(payload[cursor:cursor + 2], "big")
            cursor += 2
            values.append(payload[cursor:cursor + length].decode("utf-8"))
            cursor += length
        elif tag == _TAG_EXT:
            index = int.from_bytes(payload[cursor:cursor + 2], "big")
            cursor += 2
            values.append(ext[index])
        else:
            raise CmdError(CmdStatus.BAD_PARAM, f"bad field tag {tag}")
    return cls(*values), seq


class CmdResult:
    """A decoded command response (+ the created object, side-band)."""

    __slots__ = ("status", "handle", "syndrome", "obj", "info")

    def __init__(self, status: CmdStatus, handle: int = 0,
                 syndrome: int = 0, obj: Any = None,
                 info: Optional[dict] = None):
        self.status = status
        self.handle = handle
        self.syndrome = syndrome
        self.obj = obj
        self.info = info

    @property
    def ok(self) -> bool:
        return self.status == CmdStatus.OK

    def __repr__(self) -> str:
        return (f"CmdResult({self.status.name}, handle={self.handle:#x}, "
                f"syndrome={self.syndrome})")


# ---------------------------------------------------------------------------
# Object table
# ---------------------------------------------------------------------------


class Pd:
    """A protection domain: the allocation anchor verbs hangs QPs off."""

    __slots__ = ("pdn",)

    def __init__(self, pdn: int):
        self.pdn = pdn


class ResumeTable:
    """A registered FLD-E resume target (handle-addressed)."""

    __slots__ = ("resume_id", "table_name")

    def __init__(self, resume_id: int, table_name: str):
        self.resume_id = resume_id
        self.table_name = table_name


class ObjectEntry:
    __slots__ = ("handle", "kind", "obj", "deps", "refcount", "label")

    def __init__(self, handle: int, kind: str, obj: Any,
                 deps: Tuple[int, ...], label: str):
        self.handle = handle
        self.kind = kind
        self.obj = obj
        self.deps = list(deps)
        self.refcount = 0
        self.label = label


class ObjectTable:
    """Handle-addressed firmware objects with reference counting.

    Handles encode their kind in the top bits (``kind_code << 20 |
    seq``), so a stale or cross-kind handle is detectable, and every
    entry tracks both the handles it depends on and how many entries
    depend on it — destroy order is enforced, not assumed.
    """

    KINDS = ("pd", "cq", "sq", "rq", "mprq", "qp", "vport", "rule",
             "resume", "prog", "map")
    _KIND_CODE = {kind: code for code, kind in enumerate(KINDS, start=1)}
    _KIND_SHIFT = 20

    def __init__(self):
        self._entries: Dict[int, ObjectEntry] = {}
        self._by_obj: Dict[int, int] = {}      # id(obj) -> handle
        self._next_seq = 1

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, kind: str, obj: Any, deps: Tuple[int, ...] = (),
               label: str = "") -> int:
        code = self._KIND_CODE[kind]
        handle = (code << self._KIND_SHIFT) | self._next_seq
        self._next_seq += 1
        entry = ObjectEntry(handle, kind, obj, deps, label)
        for dep in entry.deps:
            self._entries[dep].refcount += 1
        self._entries[handle] = entry
        self._by_obj[id(obj)] = handle
        return handle

    def get(self, handle: int) -> Optional[ObjectEntry]:
        return self._entries.get(handle)

    def kind_of(self, handle: int) -> Optional[str]:
        code = handle >> self._KIND_SHIFT
        if not 1 <= code <= len(self.KINDS):
            return None
        return self.KINDS[code - 1]

    def handle_of(self, obj: Any) -> Optional[int]:
        return self._by_obj.get(id(obj))

    def require(self, obj: Any, kinds: Tuple[str, ...]) -> int:
        """The handle of ``obj``; raises BAD_HANDLE when unregistered."""
        handle = self.handle_of(obj)
        if handle is None or self._entries[handle].kind not in kinds:
            raise CmdError(
                CmdStatus.BAD_HANDLE,
                f"object {obj!r} is not a registered {'/'.join(kinds)}")
        return handle

    def add_dep(self, handle: int, dep_handle: int) -> None:
        self._entries[handle].deps.append(dep_handle)
        self._entries[dep_handle].refcount += 1

    def drop_dep(self, handle: int, dep_handle: int) -> None:
        self._entries[handle].deps.remove(dep_handle)
        self._entries[dep_handle].refcount -= 1

    def remove(self, handle: int) -> ObjectEntry:
        entry = self._entries[handle]
        if entry.refcount:
            raise CmdError(
                CmdStatus.IN_USE,
                f"{entry.kind} {handle:#x} has {entry.refcount} "
                f"referent(s)")
        for dep in entry.deps:
            self._entries[dep].refcount -= 1
        del self._entries[handle]
        del self._by_obj[id(entry.obj)]
        return entry

    def rows(self) -> List[dict]:
        """The table as data (the ``repro objects`` dump)."""
        out = []
        for handle in sorted(self._entries):
            entry = self._entries[handle]
            out.append({
                "handle": f"{handle:#x}",
                "kind": entry.kind,
                "label": entry.label,
                "refcount": entry.refcount,
                "deps": [f"{dep:#x}" for dep in entry.deps],
            })
        return out


# ---------------------------------------------------------------------------
# NIC-side command unit
# ---------------------------------------------------------------------------


class CommandUnit:
    """The firmware executor embedded in the NIC.

    ``execute`` applies one command immediately (the host channel calls
    it directly on the synchronous path); ``handle_doorbell`` starts the
    timed path, a firmware process that DMA-reads the mailbox, burns
    :data:`FIRMWARE_EXEC_DELAY`, executes and DMA-writes the response.
    """

    def __init__(self, nic):
        self.nic = nic
        self.table = ObjectTable()
        self.exec_delay = FIRMWARE_EXEC_DELAY
        #: Completion callback ``(seq, CmdResult)`` — the host channel's
        #: stand-in for a command-completion event queue entry.
        self.on_response: Optional[Callable[[int, CmdResult], None]] = None
        # Side-band extended references per in-flight seq (models the
        # pointer-carrying mailbox pages of the real interface).
        self._staged_ext: Dict[int, List[Any]] = {}
        # (id(fld), direction, target) -> prog handle, so detach can
        # unpin the program the firmware attached there.
        self._prog_attachments: Dict[Tuple[int, str, int], int] = {}
        self.stats_commands = 0
        self.stats_failures = 0

    # -- doorbell / timed path ------------------------------------------

    def stage_ext(self, seq: int, ext: List[Any]) -> None:
        self._staged_ext[seq] = ext

    def handle_doorbell(self, data: bytes) -> None:
        seq, mailbox_addr, total_len = _DOORBELL.unpack_from(data, 0)
        self.nic.sim.spawn(
            self._firmware(seq, mailbox_addr, total_len),
            name=f"{self.nic.name}.fw.cmd{seq}")

    def _firmware(self, seq: int, mailbox_addr: int, total_len: int):
        nic = self.nic
        raw = yield nic.fabric.read(nic, mailbox_addr, total_len)
        try:
            cmd, wire_seq = unpack_command(raw, self._staged_ext.pop(seq, []))
        except CmdError as exc:
            result = CmdResult(exc.status)
        else:
            yield nic.sim.timeout(self.exec_delay)
            result = self.execute(cmd)
        response = _RESPONSE.pack(RSP_MAGIC, int(result.status), seq,
                                  result.handle, result.syndrome)
        done = nic.fabric.post_write(nic, mailbox_addr + RESPONSE_OFFSET,
                                     response)
        yield done
        if self.on_response is not None:
            self.on_response(seq, result)

    # -- execution ------------------------------------------------------

    def execute(self, cmd: Command) -> CmdResult:
        self.stats_commands += 1
        handler = self._EXEC.get(type(cmd))
        try:
            if handler is None:
                raise CmdError(CmdStatus.BAD_OPCODE,
                               f"unhandled command {type(cmd).__name__}")
            result = handler(self, cmd)
        except CmdError as exc:
            result = CmdResult(exc.status, syndrome=exc.syndrome)
        except QpStateError:
            result = CmdResult(CmdStatus.BAD_STATE)
        except (QueueError, SteeringError, ValueError):
            result = CmdResult(CmdStatus.BAD_PARAM)
        except Exception:
            result = CmdResult(CmdStatus.INTERNAL)
        if not result.ok:
            self.stats_failures += 1
        return result

    # -- executors ------------------------------------------------------

    def _exec_alloc_pd(self, cmd: AllocPd) -> CmdResult:
        pd = Pd(len(self.table) + 1)
        handle = self.table.insert("pd", pd, label=f"pd{pd.pdn}")
        return CmdResult(CmdStatus.OK, handle, obj=pd)

    def _exec_create_cq(self, cmd: CreateCq) -> CmdResult:
        cq = self.nic.create_cq(cmd.ring_addr, cmd.entries)
        handle = self.table.insert("cq", cq, label=f"cq{cq.cqn}")
        return CmdResult(CmdStatus.OK, handle, obj=cq)

    def _exec_create_sq(self, cmd: CreateSq) -> CmdResult:
        cq_handle = self.table.require(cmd.cq, ("cq",))
        sq = self.nic.create_sq(cmd.ring_addr, cmd.entries, cmd.cq,
                                vport=cmd.vport, transport=cmd.transport,
                                meter=cmd.meter)
        handle = self.table.insert("sq", sq, deps=(cq_handle,),
                                   label=f"sq{sq.qpn}")
        return CmdResult(CmdStatus.OK, handle, obj=sq)

    def _exec_create_rq(self, cmd: CreateRq) -> CmdResult:
        cq_handle = self.table.require(cmd.cq, ("cq",))
        rq = self.nic.create_rq(cmd.ring_addr, cmd.entries, cmd.cq,
                                shared=bool(cmd.shared))
        handle = self.table.insert("rq", rq, deps=(cq_handle,),
                                   label=f"rq{rq.rqn}")
        return CmdResult(CmdStatus.OK, handle, obj=rq)

    def _exec_create_mprq(self, cmd: CreateMprq) -> CmdResult:
        cq_handle = self.table.require(cmd.cq, ("cq",))
        rq = self.nic.create_mprq(
            cmd.ring_addr, cmd.entries, cmd.cq,
            strides_per_buffer=cmd.strides_per_buffer,
            stride_size=cmd.stride_size)
        handle = self.table.insert("mprq", rq, deps=(cq_handle,),
                                   label=f"mprq{rq.rqn}")
        return CmdResult(CmdStatus.OK, handle, obj=rq)

    def _exec_create_rc_qp(self, cmd: CreateRcQp) -> CmdResult:
        cq_handle = self.table.require(cmd.cq, ("cq",))
        rq_handle = self.table.require(cmd.rq, ("rq", "mprq"))
        qp = self.nic.create_rc_qp(cmd.ring_addr, cmd.entries, cmd.cq,
                                   cmd.rq, cmd.vport, cmd.local_mac,
                                   cmd.local_ip)
        handle = self.table.insert("qp", qp, deps=(cq_handle, rq_handle),
                                   label=f"qp{qp.qpn}")
        return CmdResult(CmdStatus.OK, handle, obj=qp)

    def _exec_modify_qp(self, cmd: ModifyQp) -> CmdResult:
        handle = self.table.require(cmd.qp, ("qp",))
        if cmd.state not in (RcQp.RESET, RcQp.INIT, RcQp.RTR, RcQp.RTS,
                             RcQp.ERR):
            raise CmdError(CmdStatus.BAD_PARAM,
                           f"unknown QP state {cmd.state!r}")
        cmd.qp.modify(cmd.state, remote_mac=cmd.remote_mac,
                      remote_ip=cmd.remote_ip, remote_qpn=cmd.remote_qpn,
                      rq_psn=cmd.rq_psn, sq_psn=cmd.sq_psn)
        return CmdResult(CmdStatus.OK, handle, obj=cmd.qp)

    def _exec_create_vport(self, cmd: CreateVport) -> CmdResult:
        eswitch = self.nic.eswitch
        vport = eswitch.vports.get(cmd.vport)
        if vport is None:
            vport = eswitch.add_vport(cmd.vport)
        existing = self.table.handle_of(vport)
        if existing is not None:
            return CmdResult(CmdStatus.OK, existing, obj=vport)
        handle = self.table.insert("vport", vport,
                                   label=f"vport{vport.number}")
        return CmdResult(CmdStatus.OK, handle, obj=vport)

    def _vport_entry(self, number: int) -> ObjectEntry:
        vport = self.nic.eswitch.vports.get(number)
        handle = (self.table.handle_of(vport)
                  if vport is not None else None)
        if handle is None:
            raise CmdError(CmdStatus.BAD_HANDLE,
                           f"vport {number} is not a firmware object")
        return self.table.get(handle)

    def _exec_set_vport_default(self, cmd: SetVportDefault) -> CmdResult:
        rq_handle = self.table.require(cmd.rq, ("rq", "mprq"))
        result = self._exec_create_vport(CreateVport(vport=cmd.vport))
        entry = self.table.get(result.handle)
        self.nic.set_vport_default_queue(cmd.vport, cmd.rq)
        # The default route pins the RQ: drop any previous pin first.
        for dep in list(entry.deps):
            self.table.drop_dep(entry.handle, dep)
        self.table.add_dep(entry.handle, rq_handle)
        return CmdResult(CmdStatus.OK, entry.handle, obj=entry.obj)

    def _exec_clear_vport_default(self, cmd: ClearVportDefault) -> CmdResult:
        entry = self._vport_entry(cmd.vport)
        self.nic.clear_vport_default_queue(cmd.vport)
        for dep in list(entry.deps):
            self.table.drop_dep(entry.handle, dep)
        return CmdResult(CmdStatus.OK, entry.handle, obj=entry.obj)

    def _exec_register_resume_table(
            self, cmd: RegisterResumeTable) -> CmdResult:
        resume_id = self.nic.register_resume_table(cmd.table_name)
        resume = ResumeTable(resume_id, cmd.table_name)
        handle = self.table.insert("resume", resume,
                                   label=cmd.table_name)
        return CmdResult(CmdStatus.OK, handle, obj=resume)

    def _exec_install_rule(self, cmd: InstallRule) -> CmdResult:
        if not cmd.actions:
            raise CmdError(CmdStatus.BAD_PARAM, "rule with no actions")
        deps = []
        for action in cmd.actions:
            if isinstance(action, (ForwardToQueue, ToAccelerator)):
                deps.append(self.table.require(action.rq, ("rq", "mprq")))
            elif isinstance(action, ForwardToVport):
                vport = self.nic.eswitch.vports.get(action.vport)
                handle = (self.table.handle_of(vport)
                          if vport is not None else None)
                if handle is not None:
                    deps.append(handle)
        table = self.nic.steering.table(cmd.table_name)
        rule = table.add_rule(cmd.match, list(cmd.actions),
                              priority=cmd.priority)
        handle = self.table.insert("rule", rule, deps=tuple(deps),
                                   label=cmd.table_name)
        return CmdResult(CmdStatus.OK, handle, obj=rule)

    # -- match-action programs (repro.prog) -----------------------------
    # The prog modules are imported lazily: the command unit is the only
    # module-level bridge between repro.nic and repro.prog, and deferring
    # the import keeps the package import graph acyclic.

    def _exec_create_prog_map(self, cmd: CreateProgMap) -> CmdResult:
        from ..prog.maps import ProgMap
        prog_map = ProgMap(cmd.capacity)        # ValueError -> BAD_PARAM
        handle = self.table.insert("map", prog_map,
                                   label=f"map/{cmd.capacity}")
        return CmdResult(CmdStatus.OK, handle, obj=prog_map)

    def _exec_create_prog(self, cmd: CreateProg) -> CmdResult:
        from ..prog.engine import load_program
        from ..prog.verifier import ProgVerifyError
        maps = list(cmd.maps or ())
        # Resolve map references first: a dangling map is a handle
        # error, reported before (and regardless of) verification.
        dep_handles = tuple(self.table.require(m, ("map",)) for m in maps)
        try:
            loaded = load_program(cmd.program, maps)
        except ProgVerifyError as exc:
            raise CmdError(CmdStatus.VERIFY_FAILED, str(exc),
                           syndrome=exc.code)
        handle = self.table.insert("prog", loaded, deps=dep_handles,
                                   label=f"prog/{loaded.name}")
        return CmdResult(CmdStatus.OK, handle, obj=loaded)

    def _exec_attach_prog(self, cmd: AttachProg) -> CmdResult:
        handle = self.table.require(cmd.prog, ("prog",))
        if cmd.fld is None or not hasattr(cmd.fld, "prog_engine"):
            raise CmdError(CmdStatus.BAD_PARAM, "attach needs an FLD")
        if cmd.direction not in ("rx", "tx"):
            raise CmdError(CmdStatus.BAD_PARAM,
                           f"direction must be rx or tx, "
                           f"got {cmd.direction!r}")
        engine = cmd.fld.prog_engine()
        if engine.attached(cmd.direction, cmd.target) is not None:
            raise CmdError(
                CmdStatus.BAD_STATE,
                f"{cmd.direction} {cmd.target} already has a program")
        engine.attach(cmd.direction, cmd.target, cmd.prog)
        # The attachment pins the program (and transitively its maps).
        self.table.get(handle).refcount += 1
        key = (id(cmd.fld), cmd.direction, cmd.target)
        self._prog_attachments[key] = handle
        return CmdResult(CmdStatus.OK, handle, obj=cmd.prog)

    def _exec_detach_prog(self, cmd: DetachProg) -> CmdResult:
        key = (id(cmd.fld), cmd.direction, cmd.target)
        handle = self._prog_attachments.get(key)
        if handle is None:
            raise CmdError(
                CmdStatus.BAD_STATE,
                f"no program attached to {cmd.direction} {cmd.target}")
        cmd.fld.prog_engine().detach(cmd.direction, cmd.target)
        del self._prog_attachments[key]
        entry = self.table.get(handle)
        if entry is not None:
            entry.refcount -= 1
        return CmdResult(CmdStatus.OK, handle)

    def _require_map(self, obj) -> Tuple[int, Any]:
        handle = self.table.require(obj, ("map",))
        return handle, self.table.get(handle).obj

    def _exec_set_map_entry(self, cmd: SetMapEntry) -> CmdResult:
        from ..core.cuckoo import CuckooFullError
        handle, prog_map = self._require_map(cmd.map)
        try:
            prog_map.set(cmd.key, cmd.value)
        except CuckooFullError as exc:
            raise CmdError(CmdStatus.NO_RESOURCES, str(exc))
        return CmdResult(CmdStatus.OK, handle, obj=prog_map)

    def _exec_del_map_entry(self, cmd: DelMapEntry) -> CmdResult:
        handle, prog_map = self._require_map(cmd.map)
        if not prog_map.delete(cmd.key):
            raise CmdError(CmdStatus.BAD_PARAM,
                           f"no entry for key {cmd.key:#x}")
        return CmdResult(CmdStatus.OK, handle, obj=prog_map)

    def _exec_query_map_entry(self, cmd: QueryMapEntry) -> CmdResult:
        handle, prog_map = self._require_map(cmd.map)
        value = prog_map.get(cmd.key)
        info = {"present": value is not None, "value": value}
        return CmdResult(CmdStatus.OK, handle, obj=prog_map, info=info)

    def _exec_query(self, cmd: QueryObject) -> CmdResult:
        entry = self.table.get(cmd.handle)
        if entry is None:
            raise CmdError(CmdStatus.BAD_HANDLE,
                           f"no object {cmd.handle:#x}")
        info = {"handle": entry.handle, "kind": entry.kind,
                "label": entry.label, "refcount": entry.refcount}
        obj = entry.obj
        if entry.kind == "qp":
            info.update(state=obj.state, qpn=obj.qpn,
                        syndrome=obj.error_syndrome)
        elif entry.kind in ("rq", "mprq"):
            info.update(rqn=obj.rqn, pi=obj.pi, ci=obj.ci,
                        destroyed=obj.destroyed)
        elif entry.kind == "sq":
            info.update(qpn=obj.qpn, pi=obj.pi, ci=obj.ci,
                        destroyed=obj.destroyed)
        elif entry.kind == "cq":
            info.update(cqn=obj.cqn, pi=obj.pi)
        elif entry.kind == "prog":
            info.update(name=obj.name, insns=len(obj.insns),
                        maps=len(obj.maps), counters=obj.counters())
        elif entry.kind == "map":
            info.update(capacity=obj.capacity, entries=len(obj))
        return CmdResult(CmdStatus.OK, entry.handle, obj=obj, info=info)

    def _exec_destroy(self, cmd: DestroyObject) -> CmdResult:
        entry = self.table.get(cmd.handle)
        if entry is None:
            raise CmdError(CmdStatus.BAD_HANDLE,
                           f"no object {cmd.handle:#x}")
        if entry.refcount:
            raise CmdError(CmdStatus.IN_USE,
                           f"{entry.kind} {cmd.handle:#x} is referenced")
        nic = self.nic
        obj = entry.obj
        if entry.kind == "vport":
            table = nic.steering.tables.get(obj.rx_root)
            if table is not None and table.rules:
                raise CmdError(CmdStatus.IN_USE,
                               f"vport {obj.number} still has rules")
            # deps == a pinned default RQ; release it with the vPort.
            nic.clear_vport_default_queue(obj.number)
            self.table.remove(cmd.handle)
            nic.remove_vport(obj.number)
            return CmdResult(CmdStatus.OK, cmd.handle)
        self.table.remove(cmd.handle)
        if entry.kind == "cq":
            nic.destroy_cq(obj)
        elif entry.kind == "sq":
            nic.destroy_sq(obj)
        elif entry.kind in ("rq", "mprq"):
            nic.destroy_rq(obj)
        elif entry.kind == "qp":
            nic.destroy_rc_qp(obj)
        elif entry.kind == "rule":
            nic.steering.table(entry.label).remove_rule(obj)
        elif entry.kind == "resume":
            nic.unregister_resume_table(obj.resume_id)
        # "pd", "prog" and "map" have no device-side state beyond their
        # table entry: an attached prog is pinned (IN_USE above), and a
        # detached one is just interpreter bytecode.
        return CmdResult(CmdStatus.OK, cmd.handle)

    _EXEC = {
        AllocPd: _exec_alloc_pd,
        CreateCq: _exec_create_cq,
        CreateSq: _exec_create_sq,
        CreateRq: _exec_create_rq,
        CreateMprq: _exec_create_mprq,
        CreateRcQp: _exec_create_rc_qp,
        ModifyQp: _exec_modify_qp,
        CreateVport: _exec_create_vport,
        SetVportDefault: _exec_set_vport_default,
        ClearVportDefault: _exec_clear_vport_default,
        RegisterResumeTable: _exec_register_resume_table,
        InstallRule: _exec_install_rule,
        CreateProgMap: _exec_create_prog_map,
        CreateProg: _exec_create_prog,
        AttachProg: _exec_attach_prog,
        DetachProg: _exec_detach_prog,
        SetMapEntry: _exec_set_map_entry,
        DelMapEntry: _exec_del_map_entry,
        QueryMapEntry: _exec_query_map_entry,
        QueryObject: _exec_query,
        DestroyObject: _exec_destroy,
    }


# ---------------------------------------------------------------------------
# Host-side channel
# ---------------------------------------------------------------------------


class CommandChannel:
    """The host driver's end of the firmware command interface.

    ``execute`` is synchronous: the command is serialized into the
    mailbox and applied immediately — it works both before ``sim.run``
    and from inside running processes, and adds no simulated latency
    (bring-up stays schedule-identical to the historical direct calls).
    ``call`` is a generator that performs the timed round trip: mailbox
    write, doorbell TLP over the fabric, firmware mailbox DMA read,
    execution delay, response DMA write.
    """

    def __init__(self, nic, memory=None, mem_base: int = 0,
                 mailbox_offset: int = 0x1000,
                 doorbell_addr: Optional[int] = None,
                 fabric=None, requester=None):
        self.nic = nic
        self.unit = nic.cmd
        self.memory = memory
        self.mailbox_offset = mailbox_offset
        self.mailbox_addr = mem_base + mailbox_offset
        self.doorbell_addr = doorbell_addr
        self.fabric = fabric
        self.requester = requester
        self.unit.on_response = self._on_response
        self._pending: Dict[int, Any] = {}       # seq -> completion Event
        self._next_seq = 1
        self.stats_sync = 0
        self.stats_timed = 0

    def _write_mailbox(self, raw: bytes) -> None:
        if len(raw) > RESPONSE_OFFSET:
            raise CmdError(CmdStatus.BAD_PARAM,
                           f"command of {len(raw)} B overflows the mailbox")
        if self.memory is not None:
            self.memory.write_local(self.mailbox_offset, raw)

    def execute(self, cmd: Command) -> CmdResult:
        """Synchronous command execution (zero simulated latency)."""
        seq = self._next_seq
        self._next_seq += 1
        raw, _ext = pack_command(cmd, seq)
        self._write_mailbox(raw)
        result = self.unit.execute(cmd)
        if self.memory is not None:
            response = _RESPONSE.pack(RSP_MAGIC, int(result.status), seq,
                                      result.handle, result.syndrome)
            self.memory.write_local(
                self.mailbox_offset + RESPONSE_OFFSET, response)
        self.stats_sync += 1
        return result

    def call(self, cmd: Command):
        """Generator: the timed doorbell/DMA round trip.

        Yields until the firmware's response lands; returns the
        :class:`CmdResult`.
        """
        if self.fabric is None or self.requester is None \
                or self.doorbell_addr is None:
            raise CmdError(CmdStatus.INTERNAL,
                           "channel has no fabric path for timed calls")
        seq = self._next_seq
        self._next_seq += 1
        raw, ext = pack_command(cmd, seq)
        self._write_mailbox(raw)
        self.unit.stage_ext(seq, ext)
        done = self.nic.sim.event()
        self._pending[seq] = done
        self.fabric.post_write(
            self.requester, self.doorbell_addr,
            _DOORBELL.pack(seq, self.mailbox_addr, len(raw)))
        result = yield done
        self.stats_timed += 1
        return result

    def _on_response(self, seq: int, result: CmdResult) -> None:
        event = self._pending.pop(seq, None)
        if event is not None:
            event.succeed(result)

    def check(self, result: CmdResult, what: str = "command") -> CmdResult:
        if not result.ok:
            raise CmdError(result.status,
                           f"{what} failed: {result.status.name}")
        return result
