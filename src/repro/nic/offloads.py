"""Stateless NIC offloads: checksum validate/fill and helpers (§2.1).

The receive path validates L3/L4 checksums and reports the result in CQE
flags; the transmit path fills checksums requested by WQE flags.  These
run *inside* the NIC, which is exactly what breaks when packets are
fragmented (no L4 header visible) — the failure the defrag accelerator
repairs in §8.2.2.
"""

from __future__ import annotations

from typing import List, Optional

from ..net import Ethernet, Ipv4, Packet, Tcp, Udp, verify_checksum
from .wqe import CQE_FLAG_L3_OK, CQE_FLAG_L4_OK


class ChecksumOffload:
    """Validate (rx) and fill (tx) L3/L4 checksums."""

    def __init__(self):
        self.stats_rx_validated = 0
        self.stats_rx_l4_skipped = 0
        self.stats_tx_filled = 0

    # -- receive side ------------------------------------------------------

    def validate(self, packet: Packet) -> int:
        """CQE flag bits for this packet's checksum status.

        L4 validation is skipped (flag not set) for fragments: the NIC
        cannot checksum a datagram it only sees a piece of.
        """
        flags = 0
        ip = packet.find(Ipv4)
        if ip is not None:
            if verify_checksum(ip.pack()):
                flags |= CQE_FLAG_L3_OK
            if ip.is_fragment:
                self.stats_rx_l4_skipped += 1
                return flags
        l4 = packet.find(Tcp) or packet.find(Udp)
        if l4 is not None and ip is not None:
            if l4.verify(ip.src, ip.dst, packet.payload):
                flags |= CQE_FLAG_L4_OK
        self.stats_rx_validated += 1
        return flags

    # -- transmit side -----------------------------------------------------

    def fill(self, packet: Packet, l3: bool = True, l4: bool = True) -> None:
        """Fill checksums in-place as a transmit offload."""
        ip = packet.find(Ipv4)
        if ip is None:
            return
        if l4 and not ip.is_fragment:
            l4_header = packet.find(Tcp) or packet.find(Udp)
            if l4_header is not None:
                l4_header.fill_checksum(ip.src, ip.dst, packet.payload)
        # IPv4 header checksum is recomputed by Ipv4.pack() itself; the
        # l3 flag exists for symmetry with real WQE flag bits.
        self.stats_tx_filled += 1


class SegmentationOffload:
    """LSO/TSO (§2.1's "TCP segmentation" stateless offload).

    The driver posts one large TCP frame with ``WQE_FLAG_LSO`` and an
    MSS; the NIC emits MSS-sized segments with cloned headers, advancing
    sequence numbers and IP identifiers and filling checksums — the work
    a host stack would otherwise do per segment.
    """

    def __init__(self):
        self.stats_lso_frames = 0
        self.stats_segments = 0

    def segment(self, packet: Packet, mss: int) -> List[Packet]:
        """Split one oversized TCP frame into MSS-sized segments."""
        if mss <= 0:
            raise ValueError("LSO needs a positive MSS")
        tcp = packet.find(Tcp)
        ip = packet.find(Ipv4)
        if tcp is None or ip is None:
            return [packet]  # LSO only applies to TCP/IPv4 here
        payload = packet.payload
        if len(payload) <= mss:
            return [packet]
        self.stats_lso_frames += 1
        eth = packet.find(Ethernet)
        segments: List[Packet] = []
        offset = 0
        ident = ip.ident
        while offset < len(payload):
            chunk = payload[offset:offset + mss]
            last = offset + len(chunk) >= len(payload)
            seg_tcp = Tcp(tcp.src_port, tcp.dst_port,
                          seq=(tcp.seq + offset) & 0xFFFFFFFF,
                          ack=tcp.ack,
                          # PSH only on the last segment, as NICs do.
                          flags=tcp.flags if last else tcp.flags & ~0x08,
                          window=tcp.window)
            seg_ip = Ipv4(ip.src, ip.dst, proto=ip.proto, ttl=ip.ttl,
                          ident=ident, dscp=ip.dscp)
            ident = (ident + 1) & 0xFFFF
            seg_ip.finalize(seg_tcp.size() + len(chunk))
            seg_tcp.fill_checksum(seg_ip.src, seg_ip.dst, chunk)
            segment = Packet(
                [Ethernet(eth.src, eth.dst, eth.ethertype), seg_ip,
                 seg_tcp],
                chunk, dict(packet.meta),
            )
            segments.append(segment)
            self.stats_segments += 1
            offset += len(chunk)
        return segments


def frame_bytes_ok(packet: Packet) -> bool:
    """Sanity check used by tests: the frame reparses to the same bytes."""
    from ..net.parse import parse_frame

    data = packet.to_bytes()
    return parse_frame(data).to_bytes() == data


def min_frame_pad(packet: Packet) -> int:
    """Padding bytes Ethernet would add to reach the 60 B minimum."""
    return max(0, 60 - packet.size())
