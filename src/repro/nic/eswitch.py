"""Embedded switch (eSwitch), vPorts and the physical Ethernet port (§2.3).

The eSwitch connects the NIC's uplink (wire) to its virtual ports.  A
hypervisor-managed FDB pipeline steers ingress traffic to vPorts (and can
decap tunnels / tag tenants on the way); each vPort then runs its own
guest-managed receive pipeline that picks the receive queue, RSS group or
accelerator.  Egress traffic from a vPort goes through the FDB too, which
may loop it back to another vPort — the configuration the paper's local
experiments use.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, Optional, Tuple

from ..net import ETHERNET_WIRE_OVERHEAD, Packet
from ..sim import Link, Simulator
from .steering import Disposition, ForwardToUplink, SteeringPipeline


class EthernetPort:
    """A MAC serializing frames onto a wire at the port's line rate."""

    def __init__(self, sim: Simulator, name: str, rate_bps: float = 25e9,
                 latency: float = 500e-9):
        self.sim = sim
        self.name = name
        self.link = Link(sim, rate_bps, latency, name=f"{name}.wire")
        # In-flight frames dispatch through the receiving port's
        # ``_receive``; the profiler attributes them to the wire stage.
        self.profile_tag = f"{name}.wire"
        self.peer: Optional["EthernetPort"] = None
        self.on_receive: Optional[Callable[[Packet], None]] = None
        self.stats_tx_packets = 0
        self.stats_rx_packets = 0
        self._spans = sim.telemetry.spans

    def connect(self, peer: "EthernetPort") -> None:
        """Connect both directions of a back-to-back cable.

        A port takes exactly one cable: re-connecting an already-wired
        port (either end) raises instead of silently re-pointing the
        link's receive callback at the new peer.
        """
        for port in (self, peer):
            if port.peer is not None:
                raise ValueError(
                    f"port {port.name} is already connected to "
                    f"{port.peer.name}; disconnect is not supported")
        self.link.connect(peer._receive)
        peer.link.connect(self._receive)
        self.peer = peer
        peer.peer = self

    def send(self, packet: Packet) -> None:
        self.stats_tx_packets += 1
        if self._spans.enabled and "trace_ctx" in packet.meta:
            # Stamp serialization start; the receiving port closes the
            # span.  Retransmitted copies carry their own stamp (meta is
            # copied per frame), so every wire crossing is recorded.
            packet.meta["trace_wire_t0"] = self.sim.now
        self.link.send(packet, packet.wire_size() * 8)

    def send_at(self, packet: Packet, arrival: float) -> None:
        """Like :meth:`send`, arbitrating for the wire as if the frame
        were handed over at the future instant ``arrival``.

        Used by fused egress stages that resolve a transmit before its
        pipeline occupancy has elapsed; span stamping is skipped because
        callers gate the fused path out whenever tracing is on.
        """
        self.stats_tx_packets += 1
        self.link.send_at(packet, packet.wire_size() * 8, arrival)

    def _receive(self, packet: Packet) -> None:
        self.stats_rx_packets += 1
        if self._spans.enabled:
            ctx = packet.meta.get("trace_ctx")
            if ctx is not None:
                t0 = packet.meta.pop("trace_wire_t0", None)
                if t0 is not None:
                    self._spans.record(ctx, "wire", t0, self.sim.now)
        if self.on_receive is not None:
            self.on_receive(packet)

    @property
    def rate_bps(self) -> float:
        return self.link.rate_bps


class VPort:
    """A virtual port: the eSwitch-facing side of a vNIC."""

    def __init__(self, number: int):
        self.number = number
        self.rx_root = f"vport{number}.rx"
        self.tx_root: Optional[str] = None  # optional guest egress table
        self.stats_rx = 0
        self.stats_tx = 0


class ESwitch:
    """FDB steering between the uplink and vPorts.

    ``deliver`` is the device callback that takes (vport, Disposition)
    for packets terminating at a receive queue; the eSwitch handles
    vPort-to-vPort loopback and uplink forwarding itself.
    """

    FDB_ROOT = "fdb"

    def __init__(self, sim: Simulator, port: EthernetPort,
                 deliver: Callable[[VPort, Disposition], None]):
        self.sim = sim
        self.port = port
        self.port.on_receive = self.ingress_from_wire
        self._deliver = deliver
        # Optional transport interception run before a vPort's guest
        # pipeline (the device uses it to catch RoCE frames); returns
        # True when the packet was consumed.
        self.pre_rx_hook = None
        self.pipeline = SteeringPipeline()
        # Default FDB behaviour: send everything out the wire.
        self.pipeline.table(self.FDB_ROOT, default_actions=[ForwardToUplink()])
        self.vports: Dict[int, VPort] = {}
        self.stats_loopback = 0
        self.stats_to_uplink = 0
        self.stats_fdb_drops = 0

    def add_vport(self, number: int) -> VPort:
        if number in self.vports:
            raise ValueError(f"vport {number} exists")
        vport = VPort(number)
        self.vports[number] = vport
        # Each vPort gets an rx pipeline table; default drop until the
        # guest installs rules.
        self.pipeline.table(vport.rx_root)
        return vport

    def remove_vport(self, number: int) -> None:
        """Detach a vPort and drop its (empty) rx pipeline table."""
        vport = self.vports.get(number)
        if vport is None:
            raise ValueError(f"vport {number} does not exist")
        self.pipeline.remove_table(vport.rx_root)
        del self.vports[number]

    # -- ingress (wire -> eSwitch -> vPort) ------------------------------

    def ingress_from_wire(self, packet: Packet) -> None:
        disposition = self.pipeline.process(packet, self.FDB_ROOT)
        if disposition.kind == Disposition.UPLINK:
            # Split horizon: never hairpin a frame back out the port it
            # arrived on; an FDB miss from the wire is a drop.
            self.stats_fdb_drops += 1
            return
        self._apply_fdb(disposition, from_vport=None)

    # -- egress (vPort -> eSwitch -> wire or loopback) --------------------

    def egress_from_vport(self, vport_number: int, packet: Packet) -> None:
        disposition, vport = self.egress_resolve(vport_number, packet)
        self._apply_fdb(disposition, from_vport=vport)

    def egress_resolve(self, vport_number: int,
                       packet: Packet) -> Tuple[Disposition, VPort]:
        """First half of :meth:`egress_from_vport`: run the egress
        pipeline and return the resolved disposition without applying
        it, so a fused caller can defer the effect to a future instant.
        """
        vport = self.vports[vport_number]
        vport.stats_tx += 1
        if vport.tx_root is not None:
            disposition = self.pipeline.process(packet, vport.tx_root)
        else:
            disposition = self.pipeline.process(packet, self.FDB_ROOT)
        return disposition, vport

    def apply_at(self, disposition: Disposition,
                 from_vport: Optional[VPort], when: float) -> None:
        """Apply a resolved egress at the future instant ``when``.

        Wire-bound frames reserve the uplink under the future key right
        away — exact arbitration against concurrent senders, no event of
        their own.  Local dispositions (loopback, queue delivery, drops)
        can gate on receive-side state, so they run in a single deferred
        event at exactly ``when`` — the same cost as the pipeline
        timeout they replace.
        """
        if disposition.kind == Disposition.UPLINK:
            self.stats_to_uplink += 1
            self.port.send_at(disposition.packet, when)
            return
        self.sim.schedule_at(
            when, partial(self._apply_fdb, disposition, from_vport))

    # -- shared -----------------------------------------------------------

    def _apply_fdb(self, disposition: Disposition,
                   from_vport: Optional[VPort]) -> None:
        packet = disposition.packet
        if disposition.kind == Disposition.UPLINK:
            self.stats_to_uplink += 1
            self.port.send(packet)
            return
        if disposition.kind == Disposition.VPORT:
            if from_vport is not None:
                self.stats_loopback += 1
            self.ingress_to_vport(disposition.target, packet)
            return
        if disposition.kind == Disposition.DROP:
            self.stats_fdb_drops += 1
            return
        # FDB resolved straight to a queue/RSS/accelerator (hypervisor
        # rules may do that for FLD-E); hand to the device.
        self._deliver(from_vport, disposition)

    def ingress_to_vport(self, vport_number: int, packet: Packet) -> None:
        """Run a packet through a vPort's guest receive pipeline."""
        vport = self.vports[vport_number]
        vport.stats_rx += 1
        if self.pre_rx_hook is not None and self.pre_rx_hook(vport, packet):
            return
        disposition = self.pipeline.process(packet, vport.rx_root)
        if disposition.kind == Disposition.DROP:
            self.stats_fdb_drops += 1
            return
        if disposition.kind == Disposition.UPLINK:
            self.port.send(disposition.packet)
            return
        if disposition.kind == Disposition.VPORT:
            self.ingress_to_vport(disposition.target, disposition.packet)
            return
        self._deliver(vport, disposition)
