"""RoCE RC transport engine: segmentation, acks, retransmission (§2.1-2.2).

The NIC implements the reliable transport in hardware — the key offload a
BITW design cannot reach and FLD can (§3).  The engine:

* segments messages into MTU-sized RoCE v2 frames (Eth/IP/UDP/BTH),
* tracks PSNs per QP and acknowledges received data cumulatively,
* retransmits outstanding segments on timeout (go-back-N),
* delivers received payload segments into the QP's receive queue with
  per-packet completions (ConnectX's shared MPRQ behaviour the paper
  exploits for incremental message processing, §6 Limitations).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional

from ..net import (
    Aeth,
    Bth,
    Ethernet,
    IpAddress,
    Ipv4,
    MacAddress,
    PROTO_UDP,
    Packet,
    ROCE_V2_PORT,
    Reth,
    Udp,
    send_opcode,
    write_opcode,
)
from ..net.roce import ICRC_SIZE, OP_ACK
from ..sim import Simulator
from .wqe import (
    CQE_FLAG_MSG_LAST,
    CQE_RECV_COMPLETION,
    CQE_SEND_COMPLETION,
    Cqe,
    OP_RDMA_WRITE,
    TxWqe,
)


class MemoryRegion:
    """A registered memory region: the target of RDMA WRITEs.

    Registration hands out an ``rkey`` the remote peer must present in
    the RETH; incoming writes are bounds-checked against the region.
    """

    __slots__ = ("rkey", "base", "length")

    def __init__(self, rkey: int, base: int, length: int):
        self.rkey = rkey
        self.base = base
        self.length = length

    def contains(self, address: int, nbytes: int) -> bool:
        return (self.base <= address
                and address + nbytes <= self.base + self.length)


class RdmaError(RuntimeError):
    """Raised on QP misuse (unconnected sends, bad state)."""


class QpStateError(RdmaError):
    """Raised on an illegal QP state transition (verbs semantics)."""


class _Segment:
    """One outstanding (unacked) transmit segment."""

    __slots__ = ("frame", "wqe", "is_last", "sent_at", "span_id")

    def __init__(self, frame: Packet, wqe: TxWqe, is_last: bool,
                 sent_at: float):
        self.frame = frame
        self.wqe = wqe
        self.is_last = is_last
        self.sent_at = sent_at
        # Open "rdma" span handle, closed when the last segment is acked.
        self.span_id = None


class RcQp:
    """A reliable-connected queue pair's transport state.

    The QP walks the verbs state machine: RESET → INIT → RTR → RTS for
    bring-up, dropping to ERR on transport failure, and ERR → RESET to
    recover (Table 4's reset-and-reconnect flow).  ``modify`` enforces
    the legal edges; ``connect`` is the bring-up sugar the software
    control planes use.
    """

    RESET, INIT, RTR, RTS, ERR = "reset", "init", "rtr", "rts", "err"
    #: Data-path alias: sends are legal only in RTS.
    READY = RTS

    #: Legal forward edges; any state may additionally drop to ERR, and
    #: any state may be torn back to RESET (verbs semantics).
    _FORWARD = {RESET: INIT, INIT: RTR, RTR: RTS}

    def __init__(self, qpn: int, sq, rq, local_mac: MacAddress,
                 local_ip: IpAddress):
        self.qpn = qpn
        self.sq = sq          # SendQueue with transport 'rc'
        self.rq = rq          # ReceiveQueue / MPRQ segments land in
        self.local_mac = local_mac
        self.local_ip = local_ip
        self.state = self.RESET
        #: Error syndrome of the failure that moved the QP to ERR.
        self.error_syndrome = 0
        # Remote endpoint (set by connect).
        self.remote_mac: Optional[MacAddress] = None
        self.remote_ip: Optional[IpAddress] = None
        self.remote_qpn: Optional[int] = None
        # Sender state.
        self.next_psn = 0
        self.consecutive_retries = 0
        self.outstanding: "OrderedDict[int, _Segment]" = OrderedDict()
        # Receiver state.
        self.expected_psn = 0
        self.received_msn = 0
        # In-progress inbound RDMA WRITE: the VA cursor set by the
        # first segment's RETH.
        self.write_cursor: Optional[int] = None
        self.write_region: Optional["MemoryRegion"] = None
        self.stats_sent_segments = 0
        self.stats_retransmits = 0
        self.stats_received_segments = 0
        self.stats_duplicate_segments = 0
        self.stats_writes_received = 0
        self.stats_write_protection_errors = 0

    def can_transition(self, new_state: str) -> bool:
        if new_state in (self.RESET, self.ERR):
            return True
        return self._FORWARD.get(self.state) == new_state

    def modify(self, new_state: str, remote_mac=None, remote_ip=None,
               remote_qpn: Optional[int] = None,
               rq_psn: Optional[int] = None,
               sq_psn: Optional[int] = None) -> None:
        """One verbs-style state transition, validating the edge.

        Like ``ibv_modify_qp``, attributes ride the transition that
        consumes them: the remote endpoint and receive PSN are applied
        at RTR, the send PSN at RTS.
        """
        if not self.can_transition(new_state):
            raise QpStateError(
                f"QP {self.qpn}: illegal transition "
                f"{self.state} -> {new_state}")
        if new_state == self.RTR:
            if remote_mac is not None:
                self.remote_mac = MacAddress(remote_mac)
            if remote_ip is not None:
                self.remote_ip = IpAddress(remote_ip)
            if remote_qpn is not None:
                self.remote_qpn = remote_qpn
            if self.remote_qpn is None:
                raise QpStateError(
                    f"QP {self.qpn}: RTR requires a remote endpoint")
            if rq_psn is not None:
                self.expected_psn = rq_psn
        elif new_state == self.RTS:
            if sq_psn is not None:
                self.next_psn = sq_psn
        elif new_state == self.RESET:
            self._clear_transport_state()
            self.remote_mac = None
            self.remote_ip = None
            self.remote_qpn = None
            self.error_syndrome = 0
        self.state = new_state

    def _clear_transport_state(self) -> None:
        self.next_psn = 0
        self.expected_psn = 0
        self.received_msn = 0
        self.consecutive_retries = 0
        self.outstanding.clear()
        self.write_cursor = None
        self.write_region = None

    def connect(self, remote_mac, remote_ip, remote_qpn: int,
                initial_psn: int = 0) -> None:
        """Bring-up sugar: walk RESET→INIT→RTR→RTS in one call."""
        if self.state != self.RESET:
            self.modify(self.RESET)
        self.modify(self.INIT)
        self.modify(self.RTR, remote_mac=remote_mac, remote_ip=remote_ip,
                    remote_qpn=remote_qpn, rq_psn=initial_psn)
        self.modify(self.RTS, sq_psn=initial_psn)


class RdmaEngine:
    """The device-resident transport processor.

    ``egress`` sends a finished RoCE frame out of the owning NIC;
    ``deliver_segment`` hands received payload to the device's receive
    path (buffer placement + CQE); ``complete_send`` writes send CQEs.
    """

    #: Syndrome reported when the retry budget is exhausted (mirrors
    #: IB's "transport retry counter exceeded" completion status).
    SYNDROME_RETRY_EXCEEDED = 0x15

    def __init__(self, sim: Simulator, mtu: int = 1024,
                 retransmit_timeout: float = 2e-3,
                 egress: Callable[[RcQp, Packet], None] = None,
                 deliver_segment=None, complete_send=None,
                 name: str = "rdma", max_retries: Optional[int] = None):
        self.sim = sim
        self.mtu = mtu
        self.retransmit_timeout = retransmit_timeout
        self.egress = egress
        self.deliver_segment = deliver_segment
        self.complete_send = complete_send
        self.name = name
        #: Consecutive go-back-N rounds without ack progress before the
        #: QP is failed to ERR; ``None`` retries forever (the historical
        #: behaviour, kept as the default).
        self.max_retries = max_retries
        #: Called as ``on_qp_error(qp, syndrome)`` when a QP drops to
        #: ERR; the owning NIC surfaces this as an error CQE (§5.3).
        self.on_qp_error: Optional[Callable[[RcQp, int], None]] = None
        self.qps: Dict[int, RcQp] = {}
        # Registered memory regions (one protection domain per engine).
        self._regions: Dict[int, MemoryRegion] = {}
        self._next_rkey = 1
        # Target for validated inbound RDMA WRITE data: callable
        # (virtual_address, data); typically the device's DMA engine.
        self.dma_write = None
        # Fault injection: callable (qp, frame) -> bool; True drops the
        # outgoing frame on the floor (models wire loss — exercises the
        # retransmission machinery deterministically in tests).
        self.drop_filter: Optional[Callable[[RcQp, Packet], bool]] = None
        self.stats_acks_sent = 0
        self.stats_acks_received = 0
        self.stats_injected_drops = 0
        # When telemetry is disabled these are shared no-op singletons.
        tele = sim.telemetry
        #: Profiler owner tag: retransmit timers and per-segment
        #: pipeline passes account to the rdma stage, not the SQ worker
        #: that drove them.
        self.profile_tag = name
        prof = sim.profiler
        self._prof = prof if prof.enabled else None
        self._ctr_segments_sent = tele.counter(f"{name}.segments_sent")
        self._ctr_segments_received = tele.counter(
            f"{name}.segments_received")
        self._ctr_retransmits = tele.counter(f"{name}.retransmits")
        self._ctr_duplicates = tele.counter(f"{name}.duplicate_segments")
        self._ctr_acks_sent = tele.counter(f"{name}.acks_sent")
        self._ctr_acks_received = tele.counter(f"{name}.acks_received")
        self._ctr_injected_drops = tele.counter(f"{name}.injected_drops")
        self._spans = tele.spans
        # Trace context of the inbound segment currently being delivered.
        # ``deliver_segment`` and ``dma_write`` have frozen signatures
        # (tests install plain lambdas), so the context travels out-of-band:
        # the owning device reads this attribute inside those callbacks.
        self.inbound_trace_ctx = None

    # -- memory registration ------------------------------------------------

    def register_mr(self, base: int, length: int) -> MemoryRegion:
        """Register [base, base+length) as an RDMA WRITE target."""
        region = MemoryRegion(self._next_rkey, base, length)
        self._regions[region.rkey] = region
        self._next_rkey += 1
        return region

    # -- aggregate transport stats (the invariant auditor reads these) ------

    @property
    def segments_sent(self) -> int:
        return sum(qp.stats_sent_segments for qp in self.qps.values())

    @property
    def retransmits(self) -> int:
        return sum(qp.stats_retransmits for qp in self.qps.values())

    def deregister_mr(self, rkey: int) -> None:
        self._regions.pop(rkey, None)

    def register_qp(self, qp: RcQp) -> None:
        if qp.qpn in self.qps:
            raise RdmaError(f"QP {qp.qpn} already registered")
        self.qps[qp.qpn] = qp

    def unregister_qp(self, qpn: int) -> None:
        qp = self.qps.pop(qpn, None)
        if qp is not None:
            qp.outstanding.clear()  # orphan the retransmit timer

    # -- transmit ---------------------------------------------------------

    def _egress_frame(self, qp: RcQp, frame: Packet) -> None:
        """Single egress chokepoint: applies the fault-injection filter."""
        if self.drop_filter is not None and self.drop_filter(qp, frame):
            self.stats_injected_drops += 1
            self._ctr_injected_drops.inc()
            return
        self.egress(qp, frame)

    def per_packet_overhead(self) -> int:
        """Wire header bytes around each segment's payload."""
        return 14 + 20 + 8 + Bth.HEADER_LEN + ICRC_SIZE

    def send_message(self, qp: RcQp, wqe: TxWqe, data: bytes,
                     remote_addr: int = 0, rkey: int = 0):
        """Generator: segment and transmit one message.

        ``wqe.opcode`` selects SEND or RDMA WRITE; a WRITE carries the
        (remote VA, rkey) in the first segment's RETH.
        """
        if qp.state != RcQp.READY:
            raise RdmaError(f"QP {qp.qpn} not connected")
        is_write = wqe is not None and wqe.opcode == OP_RDMA_WRITE
        chunks = [data[i:i + self.mtu] for i in range(0, len(data), self.mtu)]
        if not chunks:
            chunks = [b""]
        total = len(chunks)
        ctx = wqe.trace_ctx if wqe is not None else None
        rdma_span = self._spans.enter(ctx, "rdma", self.sim.now)
        prof = self._prof
        caller_tag = prof.current_tag if prof is not None else None
        for index, chunk in enumerate(chunks):
            if prof is not None:
                # Re-established every pass: each resume of the driving
                # SQ process restores *its* tag, and the per-segment
                # pipeline timeout below belongs to the rdma engine.
                prof.current_tag = self.profile_tag
            first, last = index == 0, index == total - 1
            frame = self._build_frame(
                qp, chunk, first, last, wqe, is_write=is_write,
                remote_addr=remote_addr, rkey=rkey,
                total_length=len(data),
            )
            segment = _Segment(frame, wqe, last, self.sim.now)
            if last:
                segment.span_id = rdma_span
            qp.outstanding[qp.next_psn] = segment
            qp.next_psn = (qp.next_psn + 1) & 0xFFFFFF
            qp.stats_sent_segments += 1
            self._ctr_segments_sent.inc()
            self._egress_frame(qp, frame)
            if len(qp.outstanding) == 1:
                self._arm_retransmit_timer(qp)
            yield self.sim.timeout(0)  # pipeline one segment per pass
        if prof is not None:
            # Hand the tag back to the caller's stage (valid because the
            # saved value is the driving process's own tag, which every
            # resume re-establishes).
            prof.current_tag = caller_tag

    def _build_frame(self, qp: RcQp, payload: bytes, first: bool, last: bool,
                     wqe: Optional[TxWqe], is_write: bool = False,
                     remote_addr: int = 0, rkey: int = 0,
                     total_length: int = 0) -> Packet:
        opcode = (write_opcode(first, last) if is_write
                  else send_opcode(first, last))
        bth = Bth(
            opcode, dest_qp=qp.remote_qpn, psn=qp.next_psn,
            ack_request=last,
        )
        packet = Packet(payload=payload + bytes(ICRC_SIZE))
        packet.append(bth)
        if is_write and first:
            packet.append(Reth(remote_addr, rkey, total_length))
        udp = Udp(49152 + (qp.qpn & 0x3FFF), ROCE_V2_PORT)
        udp.finalize(bth.size() + len(payload) + ICRC_SIZE)
        packet.push(udp)
        ip = Ipv4(qp.local_ip, qp.remote_ip, proto=PROTO_UDP)
        ip.finalize(udp.length)
        packet.push(ip)
        packet.push(Ethernet(qp.local_mac, qp.remote_mac))
        if wqe is not None:
            packet.meta["context_id"] = wqe.context_id
            if wqe.trace_ctx is not None:
                # Ride the frame's metadata so retransmitted copies
                # (Packet.copy preserves meta) stay on the original trace.
                packet.meta["trace_ctx"] = wqe.trace_ctx
        return packet

    def _arm_retransmit_timer(self, qp: RcQp) -> None:
        def check():
            if not qp.outstanding:
                return
            oldest_psn = next(iter(qp.outstanding))
            oldest = qp.outstanding[oldest_psn]
            age = self.sim.now - oldest.sent_at
            if age + 1e-12 >= self.retransmit_timeout:
                self._retransmit(qp)
                self.sim.schedule(self.retransmit_timeout, check)
            else:
                self.sim.schedule(self.retransmit_timeout - age, check)

        self.sim.schedule(self.retransmit_timeout, check)

    def _retransmit(self, qp: RcQp) -> None:
        """Go-back-N: resend every outstanding segment."""
        qp.consecutive_retries += 1
        if (self.max_retries is not None
                and qp.consecutive_retries > self.max_retries):
            self.fail_qp(qp, self.SYNDROME_RETRY_EXCEEDED)
            return
        spans = self._spans
        for psn, segment in qp.outstanding.items():
            segment.sent_at = self.sim.now
            qp.stats_retransmits += 1
            self._ctr_retransmits.inc()
            ctx = segment.frame.meta.get("trace_ctx")
            if ctx is not None:
                spans.event(ctx, f"rdma.retransmit:psn={psn}", self.sim.now)
            self._egress_frame(qp, segment.frame.copy())

    # -- receive ----------------------------------------------------------

    def on_ingress(self, packet: Packet) -> bool:
        """Process a RoCE frame; returns False when it is not for us."""
        prof = self._prof
        if prof is None:
            return self._on_ingress(packet)
        # Runs synchronously inside the wire-delivery dispatch; scope
        # anything it schedules (acks, DMA) to the rdma stage.
        prev = prof.current_tag
        prof.current_tag = self.profile_tag
        try:
            return self._on_ingress(packet)
        finally:
            prof.current_tag = prev

    def _on_ingress(self, packet: Packet) -> bool:
        bth = packet.find(Bth)
        if bth is None:
            return False
        qp = self.qps.get(bth.dest_qp)
        if qp is None:
            return False
        if bth.is_ack:
            self._handle_ack(qp, packet, bth)
            return True
        if bth.is_write:
            self._handle_write(qp, packet, bth)
            return True
        self._handle_data(qp, packet, bth)
        return True

    def _handle_write(self, qp: RcQp, packet: Packet, bth: Bth) -> None:
        """Inbound RDMA WRITE: place payload directly at the target VA.

        No receive descriptor is consumed and no receive completion is
        generated — the one-sided semantics that make WRITE cheap.
        """
        if bth.psn != qp.expected_psn:
            qp.stats_duplicate_segments += 1
            self._ctr_duplicates.inc()
            self._send_ack(qp)
            return
        payload = (packet.payload[:-ICRC_SIZE]
                   if len(packet.payload) >= ICRC_SIZE else b"")
        if bth.is_first:
            reth = packet.find(Reth)
            region = self._regions.get(reth.rkey) if reth else None
            if region is None or not region.contains(reth.virtual_address,
                                                     reth.length):
                # Protection error: NAK by not advancing; real NICs move
                # the QP to an error state, which software must recover.
                qp.stats_write_protection_errors += 1
                self._send_ack(qp)
                return
            qp.write_region = region
            qp.write_cursor = reth.virtual_address
        if qp.write_cursor is None or qp.write_region is None:
            qp.stats_write_protection_errors += 1
            self._send_ack(qp)
            return
        if not qp.write_region.contains(qp.write_cursor, len(payload)):
            qp.stats_write_protection_errors += 1
            self._send_ack(qp)
            return
        qp.expected_psn = (qp.expected_psn + 1) & 0xFFFFFF
        qp.stats_received_segments += 1
        self._ctr_segments_received.inc()
        qp.stats_writes_received += 1
        if self.dma_write is not None and payload:
            self.inbound_trace_ctx = packet.meta.get("trace_ctx")
            try:
                self.dma_write(qp.write_cursor, payload)
            finally:
                self.inbound_trace_ctx = None
        qp.write_cursor += len(payload)
        if bth.is_last:
            qp.received_msn = (qp.received_msn + 1) & 0xFFFFFF
            qp.write_cursor = None
            qp.write_region = None
        if bth.ack_request or bth.is_last:
            self._send_ack(qp)

    def _handle_data(self, qp: RcQp, packet: Packet, bth: Bth) -> None:
        if bth.psn != qp.expected_psn:
            # Duplicate (retransmission already seen) or out-of-order
            # (a gap after loss).  Either way: re-ack the last good PSN
            # so the sender resynchronizes; do not deliver.
            qp.stats_duplicate_segments += 1
            self._ctr_duplicates.inc()
            self._send_ack(qp)
            return
        qp.expected_psn = (qp.expected_psn + 1) & 0xFFFFFF
        qp.stats_received_segments += 1
        self._ctr_segments_received.inc()
        if bth.is_last:
            qp.received_msn = (qp.received_msn + 1) & 0xFFFFFF
        payload = packet.payload[:-ICRC_SIZE] if len(packet.payload) >= ICRC_SIZE else b""
        flags = CQE_FLAG_MSG_LAST if bth.is_last else 0
        context = packet.meta.get("context_id", 0)
        self.inbound_trace_ctx = packet.meta.get("trace_ctx")
        try:
            self.deliver_segment(qp, payload, flags, context,
                                 first=bth.is_first, last=bth.is_last)
        finally:
            self.inbound_trace_ctx = None
        if bth.ack_request or bth.is_last:
            self._send_ack(qp)

    def _send_ack(self, qp: RcQp) -> None:
        last_good = (qp.expected_psn - 1) & 0xFFFFFF
        ack = Bth(OP_ACK, dest_qp=qp.remote_qpn, psn=last_good)
        packet = Packet(payload=bytes(ICRC_SIZE))
        packet.append(ack)
        packet.append(Aeth(msn=qp.received_msn))
        udp = Udp(49152 + (qp.qpn & 0x3FFF), ROCE_V2_PORT)
        udp.finalize(ack.size() + Aeth.HEADER_LEN + ICRC_SIZE)
        packet.push(udp)
        ip = Ipv4(qp.local_ip, qp.remote_ip, proto=PROTO_UDP)
        ip.finalize(udp.length)
        packet.push(ip)
        packet.push(Ethernet(qp.local_mac, qp.remote_mac))
        self.stats_acks_sent += 1
        self._ctr_acks_sent.inc()
        self._egress_frame(qp, packet)

    def _handle_ack(self, qp: RcQp, packet: Packet, bth: Bth) -> None:
        self.stats_acks_received += 1
        self._ctr_acks_received.inc()
        acked_psn = bth.psn
        while qp.outstanding:
            psn = next(iter(qp.outstanding))
            # Handle 24-bit wraparound with a signed window comparison.
            delta = (acked_psn - psn) & 0xFFFFFF
            if delta >= (1 << 23):
                break  # psn is after acked_psn
            segment = qp.outstanding.pop(psn)
            qp.consecutive_retries = 0  # the wire is moving again
            if segment.span_id is not None:
                self._spans.exit(segment.span_id, self.sim.now)
            if segment.is_last and segment.wqe is not None:
                self.complete_send(qp, segment.wqe)

    # -- failure ----------------------------------------------------------

    def fail_qp(self, qp: RcQp, syndrome: int) -> None:
        """Drop ``qp`` to ERR: flush outstanding work, notify software.

        Flushing empties ``qp.outstanding``, so the armed retransmit
        timer sees nothing left and dies on its next check.  Lost
        in-flight messages stay lost — recovery is a software-driven
        reset-and-reconnect through the command channel (Table 4).
        """
        if qp.state == RcQp.ERR:
            return
        spans = self._spans
        for segment in qp.outstanding.values():
            if segment.span_id is not None:
                spans.exit(segment.span_id, self.sim.now)
        qp.outstanding.clear()
        qp.error_syndrome = syndrome
        qp.modify(RcQp.ERR)
        if self.on_qp_error is not None:
            self.on_qp_error(qp, syndrome)
