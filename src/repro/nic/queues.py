"""NIC queue state: send queues, receive queues (incl. MPRQ), CQs.

Queue objects hold the state the NIC keeps per queue (ring location,
producer/consumer indices, stride bookkeeping); the device
(:mod:`repro.nic.device`) runs the processes that move packets through
them.  Rings live at *fabric addresses*, so the same queue works whether
its ring is in host memory (software driver) or inside the FLD BAR.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim import Simulator, Store
from .wqe import CQE_SIZE, RX_DESC_SIZE, TxWqe, WQE_SIZE


class QueueError(RuntimeError):
    """Raised on queue misconfiguration or overflow."""


def _power_of_two(value: int, what: str) -> int:
    if value <= 0 or value & (value - 1):
        raise QueueError(f"{what} must be a positive power of two, got {value}")
    return value


class CompletionQueue:
    """A completion ring the NIC writes and a consumer polls.

    ``notify`` is a simulation-side channel carrying each written CQE; it
    stands in for the consumer's poll loop discovering new entries (or an
    interrupt/event queue), without simulating busy-polling.
    """

    def __init__(self, sim: Simulator, cqn: int, ring_addr: int, entries: int):
        self.sim = sim
        self.cqn = cqn
        self.ring_addr = ring_addr
        self.entries = _power_of_two(entries, "CQ entries")
        self.pi = 0
        self.notify = Store(sim, name=f"cq{cqn}.notify")
        self.stats_cqes = 0
        # A consumer-installed fast path: when set, the NIC hands each
        # CQE (plus its in-flight write handle) straight to the consumer
        # instead of through the notify store, letting the consumer fuse
        # PCIe delivery with its own processing delay in one event.
        self.fused_rx = None

    def next_slot(self) -> int:
        """Fabric address of the slot for the next CQE, advancing the PI."""
        address = self.ring_addr + (self.pi % self.entries) * CQE_SIZE
        self.pi += 1
        self.stats_cqes += 1
        return address


class SendQueue:
    """A transmit ring (Ethernet raw queue or an RDMA QP's send side)."""

    TRANSPORT_ETH = "eth"
    TRANSPORT_RC = "rc"

    def __init__(self, sim: Simulator, qpn: int, ring_addr: int, entries: int,
                 cq: CompletionQueue, transport: str = TRANSPORT_ETH,
                 vport: int = 0, max_inline: int = 256):
        if transport not in (self.TRANSPORT_ETH, self.TRANSPORT_RC):
            raise QueueError(f"unknown transport {transport!r}")
        self.sim = sim
        self.qpn = qpn
        self.ring_addr = ring_addr
        self.entries = _power_of_two(entries, "SQ entries")
        self.cq = cq
        self.transport = transport
        self.vport = vport
        self.max_inline = max_inline
        self.pi = 0            # producer index, advanced by doorbells
        self.ci = 0            # consumer index, advanced by the NIC
        self.doorbell = Store(sim, name=f"sq{qpn}.doorbell")
        # Peak outstanding-WQE depth (the gauge records its high-water
        # mark); refreshed at each doorbell, the producer-side event.
        self._depth_gauge = (sim.telemetry.gauge(f"sq{qpn}.outstanding")
                             if sim.telemetry.enabled else None)
        # WQEs pushed by MMIO (WQE-by-MMIO / BlueFlame): index -> WQE.
        self.mmio_wqes: Dict[int, TxWqe] = {}
        #: Set by DESTROY_SQ; doorbells are rejected and the workers exit.
        self.destroyed = False
        self.stats_doorbells = 0
        self.stats_wqes = 0
        self.stats_wqe_fetches = 0
        self.stats_mmio_wqes = 0
        #: WQEs discarded instead of sent because the owning QP was in
        #: ERR (completion flush) or the queue was being destroyed.
        self.stats_flushed = 0

    def slot_addr(self, index: int) -> int:
        return self.ring_addr + (index % self.entries) * WQE_SIZE

    def ring_doorbell(self, new_pi: int) -> None:
        """Handle a doorbell MMIO: advance PI and wake the SQ process."""
        if self.destroyed:
            raise QueueError(f"doorbell on destroyed SQ {self.qpn}")
        if new_pi < self.pi:
            raise QueueError(
                f"doorbell PI {new_pi} behind current {self.pi} on SQ {self.qpn}"
            )
        if new_pi - self.ci > self.entries:
            raise QueueError(f"SQ {self.qpn} overflow: pi={new_pi} ci={self.ci}")
        self.pi = new_pi
        self.stats_doorbells += 1
        if self._depth_gauge is not None:
            self._depth_gauge.set(self.outstanding)
        self.doorbell.try_put(new_pi)

    def push_mmio_wqe(self, wqe: TxWqe) -> None:
        """Stage a WQE written directly through MMIO (saves a DMA read)."""
        self.mmio_wqes[wqe.wqe_index] = wqe
        self.stats_mmio_wqes += 1

    @property
    def outstanding(self) -> int:
        return self.pi - self.ci


class ReceiveQueue:
    """A receive ring of per-packet descriptors (16 B each).

    The driver posts descriptors (advancing ``pi`` through the RQ
    doorbell record); the NIC consumes one per received packet.  A
    ``shared`` RQ acts as an SRQ: multiple logical queues (or QPs)
    deliver through it.
    """

    def __init__(self, sim: Simulator, rqn: int, ring_addr: int, entries: int,
                 cq: CompletionQueue, shared: bool = False):
        self.sim = sim
        self.rqn = rqn
        self.ring_addr = ring_addr
        self.entries = _power_of_two(entries, "RQ entries")
        self.cq = cq
        self.shared = shared
        self.pi = 0
        self.ci = 0
        #: Set by DESTROY_RQ; posts are rejected and the worker exits.
        self.destroyed = False
        self.stats_packets = 0
        self.stats_drops_no_desc = 0
        self._avail_gauge = (sim.telemetry.gauge(f"rq{rqn}.posted")
                             if sim.telemetry.enabled else None)

    def slot_addr(self, index: int) -> int:
        return self.ring_addr + (index % self.entries) * RX_DESC_SIZE

    def post(self, count: int = 1) -> None:
        """Driver-side: advance the producer index by ``count``."""
        if self.destroyed:
            raise QueueError(f"post on destroyed RQ {self.rqn}")
        if self.pi + count - self.ci > self.entries:
            raise QueueError(f"RQ {self.rqn} overposted")
        self.pi += count
        if self._avail_gauge is not None:
            self._avail_gauge.set(self.available)

    @property
    def available(self) -> int:
        return self.pi - self.ci


class MultiPacketReceiveQueue(ReceiveQueue):
    """An MPRQ: each descriptor covers a large multi-stride buffer.

    Packets land in consecutive strides; a packet consumes
    ``ceil(len / stride_size)`` strides.  When the remaining strides
    cannot hold a packet, the buffer is closed (the residue is the
    bounded fragmentation of §5.2) and the next descriptor begins.
    """

    def __init__(self, sim: Simulator, rqn: int, ring_addr: int, entries: int,
                 cq: CompletionQueue, strides_per_buffer: int = 64,
                 stride_size: int = 2048, shared: bool = True):
        super().__init__(sim, rqn, ring_addr, entries, cq, shared)
        self.strides_per_buffer = _power_of_two(
            strides_per_buffer, "strides per buffer")
        self.stride_size = _power_of_two(stride_size, "stride size")
        self.stride_cursor = 0  # next free stride within the current buffer
        self.stats_buffers_closed = 0
        self.stats_wasted_strides = 0

    @property
    def buffer_size(self) -> int:
        return self.strides_per_buffer * self.stride_size

    def strides_for(self, length: int) -> int:
        return max(1, -(-length // self.stride_size))

    def place(self, length: int) -> Optional[dict]:
        """Allocate strides for a packet of ``length`` bytes.

        Returns placement info (descriptor index, stride index, whether the
        buffer was closed) or ``None`` when no descriptor is available.
        """
        needed = self.strides_for(length)
        if needed > self.strides_per_buffer:
            raise QueueError(
                f"packet of {length} B exceeds MPRQ buffer {self.buffer_size} B"
            )
        if self.available == 0:
            self.stats_drops_no_desc += 1
            return None
        if self.stride_cursor + needed > self.strides_per_buffer:
            # Close the current buffer; its tail strides are wasted.
            self.stats_wasted_strides += (
                self.strides_per_buffer - self.stride_cursor
            )
            self._advance_buffer()
            if self.available == 0:
                self.stats_drops_no_desc += 1
                return None
        placement = {
            "desc_index": self.ci,
            "stride_index": self.stride_cursor,
            "strides": needed,
            "closes_buffer": False,
        }
        self.stride_cursor += needed
        self.stats_packets += 1
        if self.stride_cursor == self.strides_per_buffer:
            placement["closes_buffer"] = True
            self._advance_buffer()
        return placement

    def _advance_buffer(self) -> None:
        self.ci += 1
        self.stride_cursor = 0
        self.stats_buffers_closed += 1


class RssGroup:
    """A set of receive queues fed through an RSS indirection table."""

    def __init__(self, name: str, queues: List[ReceiveQueue], engine):
        if not queues:
            raise QueueError("RSS group needs at least one queue")
        self.name = name
        self.queues = {i: q for i, q in enumerate(queues)}
        self.engine = engine  # a repro.net.RssEngine over range(len(queues))

    def select(self, packet) -> ReceiveQueue:
        index = self.engine.queue_for(packet)
        return self.queues[index]
