"""Traffic shaping: per-queue / per-flow token-bucket rate limiters.

The IoT experiment (§8.2.3) relies on the NIC's shaping to give each
tenant a bandwidth cap so a shared accelerator is divided fairly; the
:class:`Shaper` holds named token buckets that steering ``Meter`` actions
reference.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim import Simulator, TokenBucket


class Shaper:
    """Named rate limiters applied to packet streams.

    ``conform`` either admits a packet (consuming tokens) or reports the
    wait needed; ``police`` drops non-conforming packets outright.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._buckets: Dict[str, TokenBucket] = {}
        self.stats_dropped: Dict[str, int] = {}
        self.stats_passed: Dict[str, int] = {}
        # Per-meter telemetry counters (no-op singletons when disabled).
        self._ctr_dropped: Dict[str, object] = {}
        self._ctr_passed: Dict[str, object] = {}
        # Per-meter shaping-delay histograms: the distribution of how long
        # conforming traffic had to wait for tokens (0 = admitted at once).
        self._hist_delay: Dict[str, object] = {}

    def add_limiter(self, name: str, rate_bps: float,
                    burst_bits: Optional[float] = None) -> None:
        """Create/replace limiter ``name`` at ``rate_bps``.

        Default burst is 500 us worth of tokens — deep enough to ride
        out scheduling jitter, shallow enough to enforce the rate at the
        time scales the experiments measure.
        """
        if burst_bits is None:
            burst_bits = rate_bps * 500e-6
        self._buckets[name] = TokenBucket(self.sim, rate_bps, burst_bits)
        self.stats_dropped.setdefault(name, 0)
        self.stats_passed.setdefault(name, 0)
        tele = self.sim.telemetry
        self._ctr_dropped[name] = tele.counter(f"shaper.{name}.dropped")
        self._ctr_passed[name] = tele.counter(f"shaper.{name}.passed")
        self._hist_delay[name] = tele.histogram(f"shaper.{name}.delay")

    def remove_limiter(self, name: str) -> None:
        self._buckets.pop(name, None)

    def has_limiter(self, name: str) -> bool:
        return name in self._buckets

    def police(self, name: str, bits: float) -> bool:
        """True when the packet conforms (admitted); False -> drop."""
        bucket = self._buckets.get(name)
        if bucket is None:
            return True  # unknown meter: pass-through
        if bucket.try_consume(bits):
            self.stats_passed[name] += 1
            self._ctr_passed[name].inc()
            return True
        self.stats_dropped[name] += 1
        self._ctr_dropped[name].inc()
        return False

    def delay_for(self, name: str, bits: float) -> float:
        """Shaping delay (seconds) to make the packet conform; 0 if now."""
        bucket = self._buckets.get(name)
        if bucket is None:
            return 0.0
        delay = bucket.delay_for(bits)
        self._hist_delay[name].observe(delay)
        return delay

    def consume(self, name: str, bits: float) -> None:
        bucket = self._buckets.get(name)
        if bucket is not None:
            bucket.consume(bits)
            self.stats_passed[name] += 1
            self._ctr_passed[name].inc()
