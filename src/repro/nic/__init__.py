"""Functional model of a ConnectX-like NIC ASIC."""

from .cmd import (
    CmdError,
    CmdResult,
    CmdStatus,
    CommandChannel,
    CommandUnit,
    ObjectTable,
)
from .device import BAR_SIZE, DOORBELL_STRIDE, Nic, NicConfig, WQE_MMIO_BASE, WQE_MMIO_STRIDE
from .eswitch import ESwitch, EthernetPort, VPort
from .offloads import ChecksumOffload, SegmentationOffload
from .queues import (
    CompletionQueue,
    MultiPacketReceiveQueue,
    QueueError,
    ReceiveQueue,
    RssGroup,
    SendQueue,
)
from .rdma import RcQp, RdmaEngine, RdmaError
from .shaper import Shaper
from .steering import (
    Action,
    DecapVxlan,
    Disposition,
    Drop,
    FlowTable,
    ForwardToQueue,
    ForwardToRss,
    ForwardToUplink,
    ForwardToVport,
    GotoTable,
    MatchSpec,
    Meter,
    Rule,
    SetContextId,
    SteeringError,
    SteeringPipeline,
    ToAccelerator,
)
from .wqe import (
    CQE_FLAG_L3_OK,
    CQE_FLAG_L4_OK,
    CQE_FLAG_MSG_LAST,
    CQE_FLAG_VXLAN_DECAP,
    CQE_RECV_COMPLETION,
    CQE_SEND_COMPLETION,
    CQE_SIZE,
    Cqe,
    OP_ETH_SEND,
    OP_RDMA_SEND,
    OP_RDMA_WRITE,
    RX_DESC_SIZE,
    RxDesc,
    TxWqe,
    WQE_FLAG_CSUM_L3,
    WQE_FLAG_CSUM_L4,
    WQE_FLAG_LSO,
    WQE_FLAG_SIGNALED,
    WQE_SIZE,
)

__all__ = [
    "Action", "BAR_SIZE", "CQE_FLAG_L3_OK", "CQE_FLAG_L4_OK",
    "CQE_FLAG_MSG_LAST", "CQE_FLAG_VXLAN_DECAP", "CQE_RECV_COMPLETION",
    "CQE_SEND_COMPLETION", "CQE_SIZE", "ChecksumOffload",
    "CmdError", "CmdResult", "CmdStatus", "CommandChannel", "CommandUnit",
    "ObjectTable", "CompletionQueue",
    "Cqe", "DOORBELL_STRIDE", "DecapVxlan", "Disposition", "Drop", "ESwitch",
    "EthernetPort", "FlowTable", "ForwardToQueue", "ForwardToRss",
    "ForwardToUplink", "ForwardToVport", "GotoTable", "MatchSpec", "Meter",
    "MultiPacketReceiveQueue", "Nic", "NicConfig", "OP_ETH_SEND",
    "OP_RDMA_SEND", "OP_RDMA_WRITE", "QueueError", "RX_DESC_SIZE", "RcQp", "RdmaEngine",
    "RdmaError", "ReceiveQueue", "RssGroup", "Rule", "RxDesc", "SendQueue",
    "SegmentationOffload", "SetContextId", "Shaper", "SteeringError", "SteeringPipeline",
    "ToAccelerator", "TxWqe", "VPort", "WQE_FLAG_CSUM_L3", "WQE_FLAG_CSUM_L4",
    "WQE_FLAG_LSO", "WQE_FLAG_SIGNALED", "WQE_MMIO_BASE", "WQE_MMIO_STRIDE", "WQE_SIZE",
]
