"""FlexDriver (ASPLOS 2022) reproduction.

``__version__`` participates in every sweep-cache key
(:mod:`repro.sweep`): bumping it retires all memoized experiment
results, so bump it whenever simulation behaviour changes.
"""

__version__ = "1.1.0"
