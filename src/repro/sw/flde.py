"""FLD-E control plane (§5.3, §5.4): match-action with acceleration.

Extends the NIC's match-action abstraction with the new *acceleration
action*: matched packets detour through an FLD receive queue carrying a
context ID (tenant) and a resume-table ID; the accelerator's transmitted
packets re-enter steering at the resume table, so NIC offloads run both
before and after the accelerator.

For virtualization (§5.4) the control plane is the trusted entity: it
stamps context IDs via :class:`SetContextId` itself and rejects
tenant-supplied rules that try to forge them; per-tenant rate limits use
the NIC's shaper.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..nic import (
    Action,
    DecapVxlan,
    ForwardToQueue,
    ForwardToRss,
    MatchSpec,
    Meter,
    Rule,
    SetContextId,
    ToAccelerator,
)
from ..nic.queues import ReceiveQueue
from .runtime import FldRuntime


class FldEPolicyError(RuntimeError):
    """Raised when an untrusted rule tries to escalate (forge contexts)."""


class FldEControlPlane:
    """Installs acceleration/steering rules for one vPort's pipeline."""

    def __init__(self, runtime: FldRuntime, vport: int):
        self.runtime = runtime
        self.nic = runtime.nic
        self.ctrl = runtime.ctrl
        self.vport = vport
        self._vport = self.ctrl.ensure_vport(vport)
        self.table = self.nic.steering.table(self._vport.rx_root)
        self.stats_rules = 0
        # Teardown bookkeeping: rules and resume tables this control
        # plane installed, in install order.
        self._rules: List = []
        self._resume_tables: List = []  # ResumeTable firmware objects

    # ------------------------------------------------------------------
    # Acceleration rules
    # ------------------------------------------------------------------

    def accelerate(self, match: MatchSpec, accel_rq: ReceiveQueue,
                   resume_actions: List[Action],
                   context_id: int = 0, priority: int = 0,
                   pre_actions: Optional[List[Action]] = None,
                   resume_table: Optional[str] = None) -> Rule:
        """Send matching packets through the accelerator and resume.

        ``pre_actions`` run before the detour (e.g. VXLAN decap — the
        §8.2.2 pattern); ``resume_actions`` populate the resume table's
        default entry (e.g. RSS delivery after defragmentation).
        """
        name = resume_table or f"vport{self.vport}.resume{self.stats_rules}"
        table = self.nic.steering.table(name)
        table.default_actions = resume_actions
        self._resume_tables.append(self.ctrl.add_resume_table(name))
        actions: List[Action] = list(pre_actions or [])
        actions.append(ToAccelerator(accel_rq, name, context_id))
        rule = self._install(match, actions, priority)
        return rule

    def _install(self, match: MatchSpec, actions: List[Action],
                 priority: int) -> Rule:
        """Install a rule on the vPort root through the command channel."""
        rule = self.ctrl.install_rule(self._vport.rx_root, match, actions,
                                      priority)
        self._rules.append(rule)
        self.stats_rules += 1
        return rule

    def deliver(self, match: MatchSpec, rq: ReceiveQueue,
                priority: int = 0) -> Rule:
        """Plain delivery rule (no acceleration)."""
        return self._install(match, [ForwardToQueue(rq)], priority)

    # ------------------------------------------------------------------
    # Virtualization (§5.4)
    # ------------------------------------------------------------------

    def add_tenant(self, tenant_id: int, match: MatchSpec,
                   accel_rq: ReceiveQueue, resume_actions: List[Action],
                   rate_bps: Optional[float] = None,
                   priority: int = 0) -> Rule:
        """Classify a tenant's flows: tag + optional rate limit + detour.

        The context ID is stamped by this (trusted) control plane; the
        tenant never controls it.
        """
        if not 0 < tenant_id <= 0xFFFF:
            raise FldEPolicyError("tenant IDs are 16-bit and nonzero")
        name = f"vport{self.vport}.tenant{tenant_id}.resume"
        table = self.nic.steering.table(name)
        table.default_actions = resume_actions
        self._resume_tables.append(self.ctrl.add_resume_table(name))
        actions: List[Action] = [SetContextId(tenant_id)]
        if rate_bps is not None:
            meter_name = f"tenant{tenant_id}"
            self.nic.shaper.add_limiter(meter_name, rate_bps)
            actions.append(Meter(meter_name))
        actions.append(ToAccelerator(accel_rq, name, tenant_id))
        rule = self._install(match, actions, priority)
        return rule

    def set_tenant_rate(self, tenant_id: int, rate_bps: float) -> None:
        self.nic.shaper.add_limiter(f"tenant{tenant_id}", rate_bps)

    def validate_tenant_rule(self, actions: List[Action]) -> None:
        """Reject untrusted rules that set context IDs (§5.4).

        Tenants may install classification rules for their own traffic,
        but only the control plane may tag contexts — a forged
        SetContextId would impersonate another tenant.
        """
        for action in actions:
            if isinstance(action, SetContextId):
                raise FldEPolicyError(
                    "untrusted rules must not set context IDs"
                )

    def install_tenant_rule(self, match: MatchSpec, actions: List[Action],
                            priority: int = 0) -> Rule:
        """Install a rule on behalf of an untrusted tenant, validated."""
        self.validate_tenant_rule(actions)
        return self._install(match, actions, priority)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Destroy every rule and resume table this plane installed.

        Leaves the vPort itself alive (the node owns it); after close
        the vPort's root table is rule-free again, so the node can
        destroy the vPort without tripping ``IN_USE``.
        """
        for rule in reversed(self._rules):
            self.ctrl.try_destroy(rule)
        self._rules.clear()
        for resume in reversed(self._resume_tables):
            self.ctrl.try_destroy(resume)
            self.nic.steering.remove_table(resume.table_name)
        self._resume_tables.clear()
