"""FLD-R control plane (§5.3): a standard RDMA server for FLD QPs.

The control plane owns the *transport endpoint* half of the split QP
abstraction: it creates FLD-R QPs on behalf of the accelerator, accepts
client connections (the out-of-band connection exchange a real
deployment would run over RDMA-CM), and binds each connection's receive
path to the accelerator's reply queue.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..nic import RcQp
from .runtime import FldRuntime


class FldRConnectionInfo:
    """What the server returns to a connecting client."""

    __slots__ = ("qpn", "queue_id", "mac", "ip")

    def __init__(self, qpn: int, queue_id: int, mac, ip):
        self.qpn = qpn
        self.queue_id = queue_id
        self.mac = mac
        self.ip = ip


class FldRControlPlane:
    """Manages FLD-R QPs for one accelerator service."""

    def __init__(self, runtime: FldRuntime, vport: int, mac, ip):
        self.runtime = runtime
        self.vport = vport
        self.mac = mac
        self.ip = ip
        self.qps: List[RcQp] = []
        # All of this service's QPs deliver through ONE shared MPRQ
        # (the ConnectX shared multi-packet RQ of §6); replies route by
        # the CQE's QPN: qpn -> reply (tx) queue id.
        self.shared_rq = runtime.create_rx_queue(vport, set_default=False)
        self.queue_map: Dict[int, int] = {}
        self.stats_connections = 0

    def accept(self, client_mac, client_ip,
               client_qpn: int) -> FldRConnectionInfo:
        """Handle a client connection request.

        Creates a fresh FLD-R QP bound to the accelerator, connects it to
        the client's QP, and reports the server QPN back.  In a real
        deployment this exchange runs over the network (RDMA-CM); the
        direct call models that out-of-band channel.
        """
        qp, queue_id = self.runtime.create_fldr_qp(
            self.vport, local_mac=self.mac, local_ip=self.ip,
            rq=self.shared_rq,
        )
        self.runtime.ctrl.connect_qp(qp, client_mac, client_ip, client_qpn)
        self.qps.append(qp)
        self.queue_map[qp.qpn] = queue_id
        self.stats_connections += 1
        return FldRConnectionInfo(qp.qpn, queue_id, self.mac, self.ip)

    def close(self) -> None:
        """Tear down every accepted connection and the shared MPRQ."""
        for qp in reversed(self.qps):
            queue_id = self.queue_map.pop(qp.qpn)
            self.runtime.destroy_tx_queue(queue_id)
        self.qps.clear()
        self.runtime.destroy_rx_queue(self.shared_rq)
