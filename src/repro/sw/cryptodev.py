"""A DPDK-cryptodev-style API with software and FLD-R ZUC drivers (§7).

The paper's point: because the disaggregated accelerator hides behind
the standard cryptodev abstraction, applications swap a local device
(e.g. Intel QAT or the IPsec-MB software driver) for the remote FLD one
*without code changes*.  Both drivers below implement the same
``submit``/``completions`` interface:

* :class:`SwZucCryptodev` — the CPU baseline: the real ZUC cipher, timed
  with a cycles-per-byte cost model (Intel Multi-Buffer class).
* :class:`FldRZucCryptodev` — the paper's driver (Table 4: 732 LOC): a
  thin shim marshalling ops onto an FLD-R connection.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..accelerators.zuc.accel import (
    HEADER_SIZE,
    OP_EEA3,
    OP_EIA3,
    STATUS_OK,
    ZucRequest,
    make_request,
    parse_response,
)
from ..accelerators.zuc.eea3 import eea3_encrypt
from ..accelerators.zuc.eia3 import eia3_mac
from ..host.cpu import CpuComputeCost
from ..sim import Simulator, Store
from .client import FldRConnection


class CryptoOp:
    """One cryptographic operation (the rte_crypto_op analogue)."""

    _ids = itertools.count()

    __slots__ = ("op_id", "kind", "key", "count", "bearer", "direction",
                 "payload", "result", "mac", "status", "submitted_at",
                 "completed_at")

    CIPHER = "cipher"      # 128-EEA3
    AUTH = "auth"          # 128-EIA3

    def __init__(self, kind: str, key: bytes, payload: bytes,
                 count: int = 0, bearer: int = 0, direction: int = 0):
        self.op_id = next(self._ids)
        self.kind = kind
        self.key = key
        self.count = count
        self.bearer = bearer
        self.direction = direction
        self.payload = payload
        self.result: Optional[bytes] = None
        self.mac: Optional[int] = None
        self.status: Optional[int] = None
        self.submitted_at = 0.0
        self.completed_at = 0.0

    @property
    def latency(self) -> float:
        return self.completed_at - self.submitted_at


class Cryptodev:
    """The device-independent API: submit ops, collect completions."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.completions = Store(sim, name=f"{name}.completions")
        self.stats_submitted = 0
        self.stats_completed = 0

    def submit(self, op: CryptoOp) -> None:
        raise NotImplementedError

    def _complete(self, op: CryptoOp) -> None:
        op.completed_at = self.sim.now
        self.stats_completed += 1
        self.completions.try_put(op)


class SwZucCryptodev(Cryptodev):
    """CPU software driver: one core running the real cipher.

    Timing follows a cycles/byte model calibrated to Intel IPsec-MB class
    ZUC performance (~1.6 cycles/byte plus a fixed per-op cost), which
    puts a 2.3 GHz core near the paper's ~4.4 Gbps at 512 B requests.
    """

    def __init__(self, sim: Simulator, compute: CpuComputeCost,
                 name: str = "sw-zuc"):
        super().__init__(sim, name)
        self.compute = compute
        self._queue = Store(sim, name=f"{name}.queue")
        sim.spawn(self._worker(), name=f"{name}.core")

    def submit(self, op: CryptoOp) -> None:
        op.submitted_at = self.sim.now
        self.stats_submitted += 1
        self._queue.try_put(op)

    def _worker(self):
        while True:
            op = yield self._queue.get()
            yield self.sim.timeout(self.compute.seconds_for(len(op.payload)))
            if op.kind == CryptoOp.CIPHER:
                op.result = eea3_encrypt(op.key, op.count, op.bearer,
                                         op.direction, op.payload)
            else:
                op.mac = eia3_mac(op.key, op.count, op.bearer,
                                  op.direction, op.payload)
            op.status = STATUS_OK
            self._complete(op)


class FldRZucCryptodev(Cryptodev):
    """The disaggregated driver: ops ride an FLD-R connection."""

    def __init__(self, sim: Simulator, connection: FldRConnection,
                 name: str = "fldr-zuc"):
        super().__init__(sim, name)
        self.connection = connection
        self._inflight: Dict[int, CryptoOp] = {}
        sim.spawn(self._response_pump(), name=f"{name}.rx")

    def submit(self, op: CryptoOp) -> None:
        op.submitted_at = self.sim.now
        self.stats_submitted += 1
        wire_op = OP_EEA3 if op.kind == CryptoOp.CIPHER else OP_EIA3
        message = make_request(
            wire_op, op.key, op.payload, op.count, op.bearer,
            op.direction, request_id=op.op_id & 0xFFFFFFFF,
        )
        self._inflight[op.op_id & 0xFFFFFFFF] = op
        self.connection.post(message)

    def _response_pump(self):
        while True:
            message, _cqe = yield self.connection.responses.get()
            header, payload = parse_response(message)
            op = self._inflight.pop(header.request_id, None)
            if op is None:
                continue  # stale or foreign response
            op.status = header.status
            if op.kind == CryptoOp.CIPHER:
                op.result = payload
            else:
                op.mac = header.mac
            self._complete(op)

