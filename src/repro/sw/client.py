"""FLD-R client library (paper Table 4: the 754-LOC helper library).

Wraps a host RDMA endpoint with connection setup against an
:class:`~repro.sw.fldr.FldRControlPlane` and a simple request/response
RPC pattern — the building block of the DPDK cryptodev driver (§7).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..host.driver import RcEndpoint, SoftwareDriver
from ..sim import Event, Simulator, Store
from .fldr import FldRControlPlane, FldRConnectionInfo


class FldRClientError(RuntimeError):
    """Raised on connection misuse."""


class FldRConnection:
    """One client connection to a remote FLD-R accelerator."""

    def __init__(self, sim: Simulator, endpoint: RcEndpoint,
                 info: FldRConnectionInfo):
        self.sim = sim
        self.endpoint = endpoint
        self.info = info
        self.stats_calls = 0

    @property
    def responses(self) -> Store:
        """Raw response messages (payload, cqe)."""
        return self.endpoint.messages

    def post(self, message: bytes) -> Event:
        """Fire a request; event fires when the send is acked."""
        return self.endpoint.post_send(message)

    def call(self, message: bytes):
        """Generator: send a request and return the response message.

        Only valid when the caller is the sole consumer of responses
        (the cryptodev driver pipelines via :meth:`post` + ``responses``).
        """
        self.stats_calls += 1
        yield self.endpoint.post_send(message, signaled=False)
        response, _cqe = yield self.endpoint.messages.get()
        return response


class FldRClient:
    """Client-side connection factory."""

    def __init__(self, driver: SoftwareDriver, vport: int, mac, ip,
                 buffer_size: int = 4096):
        self.driver = driver
        self.sim = driver.sim
        self.vport = vport
        self.mac = mac
        self.ip = ip
        self.buffer_size = buffer_size

    def connect(self, control_plane: FldRControlPlane,
                rx_buffers: int = 256) -> FldRConnection:
        endpoint = self.driver.create_rc_endpoint(
            self.vport, self.mac, self.ip, buffer_size=self.buffer_size,
        )
        endpoint.post_rx_buffers(rx_buffers)
        info = control_plane.accept(self.mac, self.ip, endpoint.qpn)
        endpoint.connect(info.mac, info.ip, info.qpn)
        return FldRConnection(self.sim, endpoint, info)
