"""FLD software stack: runtime library, control planes, client library."""

from .client import FldRClient, FldRClientError, FldRConnection
from .batching import BatchingZucCryptodev
from .control import ControlPlane, ControlPlaneError
from .cryptodev import CryptoOp, Cryptodev, FldRZucCryptodev, SwZucCryptodev
from .flde import FldEControlPlane, FldEPolicyError
from .fldr import FldRConnectionInfo, FldRControlPlane
from .kdriver import FldKernelDriver
from .runtime import FldRuntime, FldRuntimeError

__all__ = [
    "BatchingZucCryptodev",
    "ControlPlane",
    "ControlPlaneError",
    "CryptoOp",
    "Cryptodev",
    "FldEControlPlane",
    "FldEPolicyError",
    "FldKernelDriver",
    "FldRClient",
    "FldRClientError",
    "FldRConnection",
    "FldRConnectionInfo",
    "FldRControlPlane",
    "FldRZucCryptodev",
    "FldRuntime",
    "FldRuntimeError",
    "SwZucCryptodev",
]
