"""The verbs-style control plane facade (§5.3).

Every layer that used to reach into the NIC object and call
``create_*`` directly now goes through a :class:`ControlPlane`: a thin,
verbs-flavoured wrapper over the firmware command channel
(:mod:`repro.nic.cmd`).  Each method packs a typed command, executes it
through the channel (synchronously — schedule-identical to the
historical direct calls), checks the typed status, and returns the live
object for the data path to use.

The facade also keeps the handle bookkeeping callers need for teardown:
``handle_of`` maps a live object back to its firmware handle, and
``destroy`` accepts either.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..nic import CmdResult, CmdStatus, CommandChannel
from ..nic.cmd import (
    AttachProg,
    ClearVportDefault,
    Command,
    CreateCq,
    CreateMprq,
    CreateProg,
    CreateProgMap,
    CreateRcQp,
    CreateRq,
    CreateSq,
    CreateVport,
    DelMapEntry,
    DestroyObject,
    DetachProg,
    InstallRule,
    ModifyQp,
    QueryMapEntry,
    QueryObject,
    RegisterResumeTable,
    SetMapEntry,
    SetVportDefault,
)
from ..nic.rdma import RcQp


class ControlPlaneError(RuntimeError):
    """A control-plane command failed; carries the typed status."""

    def __init__(self, status: CmdStatus, message: str = ""):
        super().__init__(message or status.name)
        self.status = status


class ControlPlane:
    """Verbs-like resource management over the firmware command channel."""

    def __init__(self, channel: CommandChannel):
        self.channel = channel
        self.nic = channel.nic

    # -- plumbing --------------------------------------------------------

    def _run(self, cmd: Command, what: str) -> CmdResult:
        result = self.channel.execute(cmd)
        if not result.ok:
            raise ControlPlaneError(
                result.status, f"{what} failed: {result.status.name}")
        return result

    def handle_of(self, obj: Any) -> Optional[int]:
        """The firmware handle of a live object (None if unregistered)."""
        return self.channel.unit.table.handle_of(obj)

    # -- allocation ------------------------------------------------------

    def alloc_cq(self, ring_addr: int, entries: int):
        return self._run(CreateCq(ring_addr=ring_addr, entries=entries),
                         "create-cq").obj

    def alloc_sq(self, ring_addr: int, entries: int, cq, vport: int = 0,
                 transport: str = "eth", meter: Optional[str] = None):
        return self._run(
            CreateSq(ring_addr=ring_addr, entries=entries, cq=cq,
                     vport=vport, transport=transport, meter=meter),
            "create-sq").obj

    def alloc_rq(self, ring_addr: int, entries: int, cq,
                 shared: bool = False):
        return self._run(
            CreateRq(ring_addr=ring_addr, entries=entries, cq=cq,
                     shared=int(shared)),
            "create-rq").obj

    def alloc_mprq(self, ring_addr: int, entries: int, cq,
                   strides_per_buffer: int = 64, stride_size: int = 2048):
        return self._run(
            CreateMprq(ring_addr=ring_addr, entries=entries, cq=cq,
                       strides_per_buffer=strides_per_buffer,
                       stride_size=stride_size),
            "create-mprq").obj

    def alloc_rc_qp(self, ring_addr: int, entries: int, cq, rq,
                    vport: int, local_mac, local_ip):
        return self._run(
            CreateRcQp(ring_addr=ring_addr, entries=entries, cq=cq, rq=rq,
                       vport=vport, local_mac=local_mac,
                       local_ip=local_ip),
            "create-rc-qp").obj

    # -- vPorts and steering --------------------------------------------

    def ensure_vport(self, vport: int):
        """Create (or fetch) the firmware object for a vPort."""
        return self._run(CreateVport(vport=vport), "create-vport").obj

    def set_default_queue(self, vport: int, rq) -> None:
        self._run(SetVportDefault(vport=vport, rq=rq), "set-vport-default")

    def clear_default_queue(self, vport: int) -> None:
        self._run(ClearVportDefault(vport=vport), "clear-vport-default")

    def add_resume_table(self, table_name: str):
        """Register an FLD-E resume table; returns the firmware object
        (``.resume_id``, ``.table_name``)."""
        return self._run(RegisterResumeTable(table_name=table_name),
                         "register-resume-table").obj

    def install_rule(self, table_name: str, match, actions: List[Any],
                     priority: int = 0):
        return self._run(
            InstallRule(table_name=table_name, match=match,
                        actions=actions, priority=priority),
            "install-rule").obj

    # -- match-action programs (repro.prog) -----------------------------

    def create_prog_map(self, capacity: int = 64):
        """Allocate a program map; returns the live map object."""
        return self._run(CreateProgMap(capacity=capacity),
                         "create-prog-map").obj

    def create_prog(self, program, maps=()):
        """Verify + load a program against its maps; returns the loaded
        program object.  Verifier rejections surface as
        ``ControlPlaneError`` with status ``VERIFY_FAILED``."""
        return self._run(CreateProg(program=program, maps=list(maps)),
                         "create-prog").obj

    def attach_prog(self, fld, prog, direction: str = "rx",
                    target: int = 0) -> None:
        self._run(AttachProg(prog=prog, fld=fld, direction=direction,
                             target=target),
                  f"attach-prog({direction}{target})")

    def detach_prog(self, fld, direction: str = "rx",
                    target: int = 0) -> None:
        self._run(DetachProg(fld=fld, direction=direction, target=target),
                  f"detach-prog({direction}{target})")

    def map_set(self, prog_map, key: int, value: int) -> None:
        self._run(SetMapEntry(map=prog_map, key=key, value=value),
                  "set-map-entry")

    def map_del(self, prog_map, key: int) -> None:
        self._run(DelMapEntry(map=prog_map, key=key), "del-map-entry")

    def map_get(self, prog_map, key: int) -> Optional[int]:
        info = self._run(QueryMapEntry(map=prog_map, key=key),
                         "query-map-entry").info
        return info["value"]

    # -- QP lifecycle ----------------------------------------------------

    def modify_qp(self, qp, state: str, **attrs) -> None:
        """One verbs state transition through the command channel."""
        self._run(ModifyQp(qp=qp, state=state, **attrs),
                  f"modify-qp({state})")

    def connect_qp(self, qp, remote_mac, remote_ip, remote_qpn: int,
                   rq_psn: int = 0, sq_psn: int = 0) -> None:
        """Walk a QP RESET→INIT→RTR→RTS against a remote endpoint."""
        if qp.state != RcQp.RESET:
            self.modify_qp(qp, RcQp.RESET)
        self.modify_qp(qp, RcQp.INIT)
        self.modify_qp(qp, RcQp.RTR, remote_mac=remote_mac,
                       remote_ip=remote_ip, remote_qpn=remote_qpn,
                       rq_psn=rq_psn)
        self.modify_qp(qp, RcQp.RTS, sq_psn=sq_psn)

    # -- query / teardown ------------------------------------------------

    def query(self, obj_or_handle) -> dict:
        handle = self._resolve(obj_or_handle)
        return self._run(QueryObject(handle=handle), "query").info

    def destroy(self, obj_or_handle) -> None:
        """Destroy by live object or handle; raises IN_USE when pinned."""
        handle = self._resolve(obj_or_handle)
        self._run(DestroyObject(handle=handle), "destroy")

    def try_destroy(self, obj_or_handle) -> bool:
        """Destroy, tolerating already-gone objects (idempotent path)."""
        if isinstance(obj_or_handle, int):
            handle = obj_or_handle
        else:
            handle = self.handle_of(obj_or_handle)
            if handle is None:
                return False
        result = self.channel.execute(DestroyObject(handle=handle))
        if result.status == CmdStatus.BAD_HANDLE:
            return False
        if not result.ok:
            raise ControlPlaneError(
                result.status, f"destroy failed: {result.status.name}")
        return True

    def _resolve(self, obj_or_handle) -> int:
        if isinstance(obj_or_handle, int):
            return obj_or_handle
        handle = self.handle_of(obj_or_handle)
        if handle is None:
            raise ControlPlaneError(
                CmdStatus.BAD_HANDLE,
                f"{obj_or_handle!r} is not a firmware object")
        return handle
