"""FLD kernel driver (§5.3 "Error Handling", Table 4).

The kernel-side shim between FLD hardware and control-plane
applications: it drains the hardware error channel and dispatches
asynchronous error notifications to registered handlers, keeping a log
for diagnostics.  Recovery policy stays with the application, as in
RDMA Verbs.
"""

from __future__ import annotations

from typing import Callable, List

from ..core import FlexDriver, FldError
from ..sim import Simulator


class FldKernelDriver:
    """Error-channel consumer and dispatcher."""

    def __init__(self, sim: Simulator, fld: FlexDriver):
        self.sim = sim
        self.fld = fld
        self.error_log: List[FldError] = []
        self._handlers: List[Callable[[FldError], None]] = []
        sim.spawn(self._error_pump(), name=f"{fld.name}.kdriver")

    def on_error(self, handler: Callable[[FldError], None]) -> None:
        """Register an asynchronous error handler."""
        self._handlers.append(handler)

    def _error_pump(self):
        while True:
            error = yield self.fld.errors.channel.get()
            self.error_log.append(error)
            for handler in self._handlers:
                handler(error)

    def errors_of_kind(self, kind: str) -> List[FldError]:
        return [e for e in self.error_log if e.kind == kind]
