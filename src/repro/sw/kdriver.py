"""FLD kernel driver (§5.3 "Error Handling", Table 4).

The kernel-side shim between FLD hardware and control-plane
applications: it drains the hardware error channel and dispatches
asynchronous error notifications to registered handlers, keeping a log
for diagnostics.  Recovery policy stays with the application, as in
RDMA Verbs — but the driver ships one canned policy,
:meth:`FldKernelDriver.enable_qp_recovery`, which walks an ERR'd FLD-R
QP back to RTS through the firmware command channel (the Table 4
reset-and-reconnect flow).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core import FlexDriver, FldError
from ..nic import RcQp
from ..sim import Simulator


class FldKernelDriver:
    """Error-channel consumer and dispatcher."""

    def __init__(self, sim: Simulator, fld: FlexDriver):
        self.sim = sim
        self.fld = fld
        self.error_log: List[FldError] = []
        self._handlers: List[Callable[[FldError], None]] = []
        #: (handler, error, exception) triples from handlers that raised;
        #: a faulty handler must not kill the pump or starve its peers.
        self.handler_failures: List[Tuple] = []
        self.stats_recoveries = 0
        sim.spawn(self._error_pump(), name=f"{fld.name}.kdriver")

    def on_error(self, handler: Callable[[FldError], None]) -> None:
        """Register an asynchronous error handler."""
        self._handlers.append(handler)

    def _error_pump(self):
        while True:
            error = yield self.fld.errors.channel.get()
            self.error_log.append(error)
            # Handlers run in registration order; one raising must not
            # abort the pump or skip the handlers behind it.
            for handler in list(self._handlers):
                try:
                    handler(error)
                except Exception as exc:
                    self.handler_failures.append((handler, error, exc))

    def errors_of_kind(self, kind: str) -> List[FldError]:
        return [e for e in self.error_log if e.kind == kind]

    # ------------------------------------------------------------------
    # QP recovery (Table 4)
    # ------------------------------------------------------------------

    def enable_qp_recovery(
            self, runtime,
            on_recovered: Optional[Callable[[RcQp], None]] = None) -> None:
        """Auto-recover the runtime's FLD-R QPs from transport failure.

        When a QP exhausts its retransmit budget the NIC flushes it to
        ERR and posts an error CQE onto its FLD completion ring; that
        surfaces here as a ``cqe_error``.  The recovery handler walks
        the QP RESET→INIT→RTR→RTS through the command channel against
        its previous remote endpoint (fresh PSNs), then invokes
        ``on_recovered`` so the application can resynchronize the peer.
        """

        def recover(error: FldError) -> None:
            if error.kind != FldError.CQE_ERROR:
                return
            qp = runtime.qp_for_cq(error.queue)
            if qp is None or qp.state != RcQp.ERR:
                return
            remote = (qp.remote_mac, qp.remote_ip, qp.remote_qpn)
            if remote[2] is None:
                return  # never connected; nothing to restore
            runtime.ctrl.connect_qp(qp, *remote)
            self.stats_recoveries += 1
            if on_recovered is not None:
                on_recovered(qp)

        self.on_error(recover)
