"""FLD runtime library (§5.3): binds FLD and the NIC together.

This is the host-side library control-plane applications link against.
It owns the low-level plumbing both FLD-E and FLD-R need:

* creating NIC completion queues whose rings live inside the FLD BAR,
* creating NIC send queues whose (virtual) rings live inside the FLD BAR,
* creating multi-packet receive queues whose descriptor ring lives in
  *host memory* while the buffers point into FLD's receive SRAM (§5.2),
* creating RDMA RC QPs bound to FLD queues (the FLD-R split of the verbs
  QP abstraction: software owns the transport endpoint, the accelerator
  owns the data path).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..core import FlexDriver, bar as fld_bar
from ..core.fld import FldConfig
from ..nic import (
    CommandChannel,
    MultiPacketReceiveQueue,
    Nic,
    OP_ETH_SEND,
    OP_RDMA_SEND,
    RcQp,
    RxDesc,
    SendQueue,
)
from ..nic.device import (
    DOORBELL_STRIDE,
    RQ_DOORBELL_BASE,
    WQE_MMIO_BASE,
    WQE_MMIO_STRIDE,
)
from ..topology import FLD_BAR_BASE, NIC_BAR_BASE, Node
from .control import ControlPlane


class FldRuntimeError(RuntimeError):
    """Raised on runtime misconfiguration."""


class FldRuntime:
    """One FLD device's host-side runtime state."""

    def __init__(self, node: Node, fld_config: Optional[FldConfig] = None,
                 fld_bar_base: int = FLD_BAR_BASE,
                 nic_bar_base: int = NIC_BAR_BASE,
                 fld_name: Optional[str] = None):
        self.node = node
        self.sim = node.sim
        self.nic: Nic = node.nic
        self.fld_bar_base = fld_bar_base
        self.nic_bar_base = nic_bar_base
        # All NIC resources go through the verbs-style control plane;
        # shared with the node's software driver when it has one (bare
        # fabric-holder stand-ins in tests get a local channel).
        driver = getattr(node, "driver", None)
        if driver is not None and getattr(driver, "ctrl", None) is not None:
            self.ctrl: ControlPlane = driver.ctrl
        else:
            self.ctrl = ControlPlane(CommandChannel(self.nic))
        if fld_name is None:
            fld_name = f"{node.name}.fld"
            if fld_bar_base != FLD_BAR_BASE:
                # Additional FLD cores (§9 scaling) need distinct names.
                fld_name += f"@{fld_bar_base:#x}"
        from ..pcie import PcieLinkConfig
        self.fld = FlexDriver(
            self.sim, node.fabric, name=fld_name,
            config=fld_config, bar_base=fld_bar_base,
            link_config=PcieLinkConfig(
                lanes=8, latency=getattr(node, "pcie_latency", 300e-9)),
        )
        map_window = getattr(node, "map_window", None)
        if map_window is not None:
            # Overlap-checked reservation in the node's address map.
            map_window(fld_name, fld_bar_base, fld_bar.FLD_BAR_SIZE,
                       self.fld)
        else:  # bare fabric holders (tests wiring a minimal stand-in)
            node.fabric.map_window(fld_bar_base, fld_bar.FLD_BAR_SIZE,
                                   self.fld)
        # Doorbell-mode span contexts are stashed under the NIC's name so
        # its WQE fetch loop can claim them (see repro.telemetry.spans).
        self.fld.tx.trace_scope = self.nic.name
        self.fld_name = fld_name
        self._next_tx_queue = 0
        self._next_rx_binding = 0
        # Destroyed queue/binding ids, recycled lowest-first so churn
        # cannot exhaust the FLD's fixed id spaces.
        self._free_tx_ids: list = []
        self._free_rx_bindings: list = []
        # Teardown bookkeeping: what each queue id / rx binding owns.
        self._tx_queues: Dict[int, Tuple[Any, Any]] = {}  # id -> (sq|qp, cq)
        self._rx_queues: Dict[int, dict] = {}             # rqn -> info
        self._default_rq: Dict[int, int] = {}             # vport -> rqn
        # cq index -> RC QP, for the kernel driver's recovery hook.
        self._qp_by_cq: Dict[int, RcQp] = {}

    # ------------------------------------------------------------------
    # Queue plumbing
    # ------------------------------------------------------------------

    def _alloc_tx_ids(self) -> Tuple[int, int]:
        if self._free_tx_ids:
            queue_id = self._free_tx_ids.pop(0)
        else:
            queue_id = self._next_tx_queue
            self._next_tx_queue += 1
        if queue_id >= FlexDriver.RX_CQ_BASE:
            raise FldRuntimeError("out of FLD tx queue slots")
        return queue_id, queue_id  # (queue id, tx cq index)

    def create_eth_tx_queue(self, vport: int, entries: int = 1024,
                            use_mmio: bool = True,
                            meter: Optional[str] = None,
                            credits: Optional[int] = None) -> int:
        """An FLD Ethernet transmit queue; returns the FLD queue id.

        ``credits`` caps the accelerator's in-flight packets on this
        queue (§5.5's per-queue backpressure); defaults to the ring
        depth.
        """
        queue_id, cq_index = self._alloc_tx_ids()
        cq = self.ctrl.alloc_cq(
            self.fld_bar_base + fld_bar.cq_address(cq_index),
            self.fld.config.cq_entries,
        )
        sq = self.ctrl.alloc_sq(
            self.fld_bar_base + fld_bar.tx_ring_address(queue_id, 0, entries),
            entries, cq, vport=vport, meter=meter,
        )
        self._bind_tx(queue_id, sq, cq_index, entries, use_mmio,
                      credits=credits, vport=vport)
        self._tx_queues[queue_id] = (sq, cq)
        return queue_id

    def _bind_tx(self, queue_id: int, sq: SendQueue, cq_index: int,
                 entries: int, use_mmio: bool,
                 opcode: Optional[int] = None,
                 credits: Optional[int] = None,
                 vport: Optional[int] = None) -> None:
        self.fld.bind_tx_queue(
            queue_id, sq.qpn, entries,
            doorbell_addr=self.nic_bar_base + sq.qpn * DOORBELL_STRIDE,
            mmio_addr=(self.nic_bar_base + WQE_MMIO_BASE
                       + sq.qpn * WQE_MMIO_STRIDE),
            cq_index=cq_index, use_mmio=use_mmio,
            opcode=opcode if opcode is not None else OP_ETH_SEND,
            credits=credits, vport=vport,
        )

    def create_rx_queue(self, vport: int, ring_entries: int = 2,
                        strides_per_buffer: int = 64,
                        stride_size: int = 2048,
                        set_default: bool = True) -> MultiPacketReceiveQueue:
        """An FLD receive path: MPRQ + host-memory ring + FLD buffers.

        Returns the NIC receive queue (steering rules target it).
        """
        if self._free_rx_bindings:
            binding_id = self._free_rx_bindings.pop(0)
        else:
            binding_id = self._next_rx_binding
            self._next_rx_binding += 1
        cq_index = FlexDriver.RX_CQ_BASE + binding_id
        cq = self.ctrl.alloc_cq(
            self.fld_bar_base + fld_bar.cq_address(cq_index),
            self.fld.config.cq_entries,
        )
        # The receive descriptor ring lives in HOST memory (§5.2).
        ring_addr = self.node.driver.allocator.alloc(ring_entries * 16)
        rq = self.ctrl.alloc_mprq(ring_addr, ring_entries, cq,
                                  strides_per_buffer, stride_size)
        slice_offset = self.fld.bind_rx_queue(
            binding_id, cq_index, ring_entries, strides_per_buffer,
            stride_size,
            rq_doorbell_addr=(self.nic_bar_base + RQ_DOORBELL_BASE
                              + rq.rqn * DOORBELL_STRIDE),
        )
        self.fld.install_rx_fastpath(cq, cq_index)
        # Software writes the immutable descriptors once, pointing at
        # FLD's buffer slice, and posts the full ring.
        buffer_size = strides_per_buffer * stride_size
        for i in range(ring_entries):
            desc = RxDesc(
                self.fld_bar_base + slice_offset + i * buffer_size,
                buffer_size,
            )
            self.node.memory.write_local(
                rq.slot_addr(i) - self.node.driver.mem_base, desc.pack()
            )
        rq.post(ring_entries)
        self._rx_queues[rq.rqn] = {
            "binding_id": binding_id, "rq": rq, "cq": cq,
            "ring_addr": ring_addr, "ring_bytes": ring_entries * 16,
            "vport": vport,
        }
        if set_default:
            self.ctrl.set_default_queue(vport, rq)
            self._default_rq[vport] = rq.rqn
        return rq

    def create_fldr_qp(self, vport: int, local_mac, local_ip,
                       rq: Optional[MultiPacketReceiveQueue] = None,
                       entries: int = 1024,
                       use_mmio: bool = True) -> Tuple[RcQp, int]:
        """An FLD-R RDMA QP (§5.3): FLD owns the data path, software the
        transport endpoint.  Returns (qp, fld queue id)."""
        queue_id, cq_index = self._alloc_tx_ids()
        cq = self.ctrl.alloc_cq(
            self.fld_bar_base + fld_bar.cq_address(cq_index),
            self.fld.config.cq_entries,
        )
        if rq is None:
            rq = self.create_rx_queue(vport, set_default=False)
        qp = self.ctrl.alloc_rc_qp(
            self.fld_bar_base + fld_bar.tx_ring_address(queue_id, 0, entries),
            entries, cq, rq, vport, local_mac, local_ip,
        )
        self._bind_tx(queue_id, qp.sq, cq_index, entries, use_mmio,
                      opcode=OP_RDMA_SEND, vport=vport)
        self._tx_queues[queue_id] = (qp, cq)
        self._qp_by_cq[cq_index] = qp
        return qp, queue_id

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def qp_for_cq(self, cq_index: int) -> Optional[RcQp]:
        """The RC QP completing onto FLD cq ``cq_index`` (recovery)."""
        return self._qp_by_cq.get(cq_index)

    def rx_binding_of(self, rq: MultiPacketReceiveQueue) -> int:
        """The FLD rx binding id backing an MPRQ (program attach target)."""
        try:
            return self._rx_queues[rq.rqn]["binding_id"]
        except KeyError:
            raise FldRuntimeError(
                f"rq {rq.rqn} was not created by this runtime") from None

    def destroy_tx_queue(self, queue_id: int) -> None:
        """Unbind an FLD tx queue and destroy its SQ (or QP) and CQ."""
        owner, cq = self._tx_queues.pop(queue_id)
        self.fld.unbind_tx_queue(queue_id)
        self.ctrl.destroy(owner)
        self.ctrl.destroy(cq)
        for cq_index, qp in list(self._qp_by_cq.items()):
            if qp is owner:
                del self._qp_by_cq[cq_index]
        self._free_tx_ids.append(queue_id)
        self._free_tx_ids.sort()

    def destroy_rx_queue(self, rq: MultiPacketReceiveQueue) -> None:
        """Full receive-path teardown: default route, FLD SRAM slice,
        NIC MPRQ + CQ, and the host-memory descriptor ring."""
        info = self._rx_queues.pop(rq.rqn)
        vport = info["vport"]
        if self._default_rq.get(vport) == rq.rqn:
            self.ctrl.clear_default_queue(vport)
            del self._default_rq[vport]
        self.fld.unbind_rx_queue(info["binding_id"])
        self.ctrl.destroy(rq)
        self.ctrl.destroy(info["cq"])
        self.node.driver.allocator.free(info["ring_addr"],
                                        info["ring_bytes"])
        self._free_rx_bindings.append(info["binding_id"])
        self._free_rx_bindings.sort()

    def shutdown(self) -> None:
        """Tear down every queue this runtime created, then release the
        FLD's BAR window from the node's address map and fabric."""
        for queue_id in sorted(self._tx_queues):
            self.destroy_tx_queue(queue_id)
        for rqn in sorted(self._rx_queues):
            self.destroy_rx_queue(self._rx_queues[rqn]["rq"])
        unmap = getattr(self.node, "unmap_window", None)
        if unmap is not None:
            unmap(self.fld_name)
        else:
            self.node.fabric.unmap_window(self.fld_bar_base)
        self.node.fabric.detach(self.fld)
