"""The extended cryptodev driver: key caching + batching.

Implements the client half of the §8.2.1 future work built in
:mod:`repro.accelerators.zuc.extensions` — see that module and the
``test_ablation_zuc_batching`` bench for the performance story.
"""

from __future__ import annotations

from typing import Dict

from ..sim import Simulator
from .client import FldRConnection
from .cryptodev import CryptoOp, Cryptodev

class BatchingZucCryptodev(Cryptodev):
    """The future-work driver (§8.2.1): cached keys + request batching.

    Keys are installed into accelerator slots once; operations then use
    16 B compact headers and are coalesced into batch messages.  Ops are
    flushed when ``batch_size`` accumulate or ``batch_delay`` elapses —
    the standard throughput/latency dial of any batching driver.
    """

    def __init__(self, sim: Simulator, connection: FldRConnection,
                 batch_size: int = 16, batch_delay: float = 5e-6,
                 name: str = "fldr-zuc-batched"):
        super().__init__(sim, name)
        from ..accelerators.zuc.extensions import (
            CompactRequest,
            OP_EEA3_CACHED,
            OP_EIA3_CACHED,
            OP_SET_KEY,
            make_compact_request,
            make_set_key,
            pack_batch,
            unpack_batch,
        )
        self._ext = {
            "CompactRequest": CompactRequest,
            "OP_EEA3_CACHED": OP_EEA3_CACHED,
            "OP_EIA3_CACHED": OP_EIA3_CACHED,
            "OP_SET_KEY": OP_SET_KEY,
            "make_compact_request": make_compact_request,
            "make_set_key": make_set_key,
            "pack_batch": pack_batch,
            "unpack_batch": unpack_batch,
        }
        self.connection = connection
        self.batch_size = batch_size
        self.batch_delay = batch_delay
        self._slots: Dict[bytes, int] = {}   # key -> installed slot
        self._next_slot = 0
        self._pending: list = []             # compact request bytes
        self._inflight: Dict[int, CryptoOp] = {}
        self._flush_scheduled = False
        self.stats_batches_sent = 0
        self.stats_keys_installed = 0
        sim.spawn(self._response_pump(), name=f"{name}.rx")

    # -- key slots ---------------------------------------------------------

    def _slot_for(self, key: bytes) -> int:
        slot = self._slots.get(key)
        if slot is None:
            slot = self._next_slot
            self._next_slot += 1
            self._slots[key] = slot
            self.connection.post(self._ext["make_set_key"](slot, key))
            self.stats_keys_installed += 1
        return slot

    # -- submission ----------------------------------------------------------

    def submit(self, op: CryptoOp) -> None:
        op.submitted_at = self.sim.now
        self.stats_submitted += 1
        slot = self._slot_for(op.key)
        wire_op = (self._ext["OP_EEA3_CACHED"] if op.kind == CryptoOp.CIPHER
                   else self._ext["OP_EIA3_CACHED"])
        request = self._ext["make_compact_request"](
            wire_op, slot, op.payload, op.count, op.bearer, op.direction,
            request_id=op.op_id & 0xFFFFFFFF,
        )
        self._inflight[op.op_id & 0xFFFFFFFF] = op
        self._pending.append(request)
        if len(self._pending) >= self.batch_size:
            self._flush()
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            self.sim.schedule(self.batch_delay, self._deadline_flush)

    def _deadline_flush(self) -> None:
        self._flush_scheduled = False
        if self._pending:
            self._flush()

    def _flush(self) -> None:
        batch, self._pending = self._pending, []
        self.connection.post(self._ext["pack_batch"](batch))
        self.stats_batches_sent += 1

    # -- responses -------------------------------------------------------------

    def _response_pump(self):
        CompactRequest = self._ext["CompactRequest"]
        unpack_batch = self._ext["unpack_batch"]
        while True:
            message, _cqe = yield self.connection.responses.get()
            entries = unpack_batch(message)
            if entries is None:
                entries = [message]
            for entry in entries:
                try:
                    header = CompactRequest.unpack(entry)
                except ValueError:
                    continue
                if header.op == self._ext["OP_SET_KEY"]:
                    continue  # key-install ack
                op = self._inflight.pop(header.request_id, None)
                if op is None:
                    continue
                payload = entry[16:]
                op.status = 0
                if op.kind == CryptoOp.CIPHER:
                    op.result = payload
                else:
                    op.mac = int.from_bytes(payload[:4], "big")
                self._complete(op)
