"""Packet library: byte-accurate protocol headers and traffic builders."""

from .checksum import internet_checksum, verify_checksum
from .ethernet import (
    BROADCAST_MAC,
    DEFAULT_MTU,
    ETHERTYPE_IPV4,
    Ethernet,
    MacAddress,
)
from .flows import Flow, make_flows, round_robin_packets
from .fragment import FragmentError, Reassembler, fragment_packet, parse_l4
from .ip import FLAG_DF, FLAG_MF, IpAddress, Ipv4, PROTO_TCP, PROTO_UDP
from .packet import ETHERNET_WIRE_OVERHEAD, Header, Packet
from .parse import ParseError, parse_frame
from .roce import Aeth, Bth, Reth, send_opcode, write_opcode
from .rss import DEFAULT_RSS_KEY, RssEngine, toeplitz_hash
from .tcp import Tcp
from .trace import ImcDatacenterSizes, PacketSizeDistribution, UniformSizes
from .udp import COAP_PORT, ROCE_V2_PORT, Udp, VXLAN_PORT
from .vxlan import Vxlan, vxlan_decapsulate, vxlan_encapsulate

__all__ = [
    "Aeth", "BROADCAST_MAC", "Bth", "COAP_PORT", "DEFAULT_MTU",
    "DEFAULT_RSS_KEY", "ETHERNET_WIRE_OVERHEAD", "ETHERTYPE_IPV4",
    "Ethernet", "FLAG_DF", "FLAG_MF", "Flow", "FragmentError", "Header",
    "ImcDatacenterSizes", "IpAddress", "Ipv4", "MacAddress", "PROTO_TCP",
    "PROTO_UDP", "Packet", "PacketSizeDistribution", "ParseError", "parse_frame", "ROCE_V2_PORT",
    "Reassembler", "Reth", "RssEngine", "Tcp", "Udp", "UniformSizes",
    "VXLAN_PORT", "Vxlan", "fragment_packet", "internet_checksum",
    "make_flows", "parse_l4", "round_robin_packets", "send_opcode",
    "toeplitz_hash", "verify_checksum", "vxlan_decapsulate",
    "vxlan_encapsulate", "write_opcode",
]
