"""Flow definitions and synthetic traffic builders.

A :class:`Flow` is a 5-tuple template that stamps out packets; builders
cover the workloads of the evaluation: iperf-style TCP flows (§8.2.2),
UDP/CoAP IoT traffic (§8.2.3) and raw Ethernet load-gen frames (§8.1.1).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from .ethernet import Ethernet, ETHERTYPE_IPV4, MacAddress
from .ip import IpAddress, Ipv4, PROTO_TCP, PROTO_UDP
from .packet import Packet
from .tcp import Tcp
from .udp import Udp


class Flow:
    """A unidirectional 5-tuple with packet-stamping helpers."""

    def __init__(self, src_mac, dst_mac, src_ip, dst_ip,
                 src_port: int, dst_port: int, proto: int = PROTO_UDP):
        self.src_mac = MacAddress(src_mac)
        self.dst_mac = MacAddress(dst_mac)
        self.src_ip = IpAddress(src_ip)
        self.dst_ip = IpAddress(dst_ip)
        self.src_port = src_port
        self.dst_port = dst_port
        self.proto = proto
        self._ident = random.randrange(0, 0xFFFF)
        self._seq = 0

    def next_ident(self) -> int:
        self._ident = (self._ident + 1) & 0xFFFF
        return self._ident

    def make_packet(self, payload: bytes, fill_checksums: bool = True) -> Packet:
        """A full Ethernet frame carrying ``payload`` on this flow."""
        packet = Packet()
        packet.append(Ethernet(self.src_mac, self.dst_mac, ETHERTYPE_IPV4))
        ip = Ipv4(self.src_ip, self.dst_ip, proto=self.proto,
                  ident=self.next_ident())
        packet.append(ip)
        if self.proto == PROTO_TCP:
            l4 = Tcp(self.src_port, self.dst_port, seq=self._seq)
            self._seq = (self._seq + len(payload)) & 0xFFFFFFFF
            if fill_checksums:
                l4.fill_checksum(self.src_ip, self.dst_ip, payload)
        else:
            l4 = Udp(self.src_port, self.dst_port).finalize(len(payload))
            if fill_checksums:
                l4.fill_checksum(self.src_ip, self.dst_ip, payload)
        packet.append(l4)
        ip.finalize(l4.size() + len(payload))
        packet.payload = payload
        packet.meta["flow"] = self.tuple5()
        return packet

    def make_sized_packet(self, frame_size: int) -> Packet:
        """A frame of exactly ``frame_size`` bytes (headers included)."""
        overhead = Ethernet(self.src_mac, self.dst_mac).size() + Ipv4(
            self.src_ip, self.dst_ip
        ).size()
        overhead += Tcp.HEADER_LEN if self.proto == PROTO_TCP else Udp.HEADER_LEN
        payload_len = max(0, frame_size - overhead)
        return self.make_packet(bytes(payload_len), fill_checksums=False)

    def tuple5(self):
        return (
            self.src_ip.value, self.dst_ip.value,
            self.src_port, self.dst_port, self.proto,
        )

    def __repr__(self) -> str:
        proto = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(self.proto, self.proto)
        return (
            f"Flow({self.src_ip}:{self.src_port} -> "
            f"{self.dst_ip}:{self.dst_port}/{proto})"
        )


def make_flows(count: int, proto: int = PROTO_TCP,
               base_src_ip: str = "10.0.0.1", dst_ip: str = "10.0.1.1",
               dst_port: int = 5201, seed: Optional[int] = None) -> List[Flow]:
    """``count`` distinct flows from one client subnet to one server.

    Mirrors the iperf setup of §8.2.2 (60 parallel TCP flows): same
    destination, distinct source ports so RSS can spread them.
    """
    rng = random.Random(seed)
    base = IpAddress(base_src_ip).value
    flows = []
    for i in range(count):
        flows.append(Flow(
            src_mac=f"02:00:00:00:00:{(i % 250) + 1:02x}",
            dst_mac="02:00:00:00:ff:01",
            src_ip=base + (i // 200),
            dst_ip=dst_ip,
            src_port=40000 + rng.randrange(20000),
            dst_port=dst_port,
            proto=proto,
        ))
    return flows


def round_robin_packets(flows: List[Flow], payload_size: int,
                        count: int) -> Iterator[Packet]:
    """``count`` packets cycling across ``flows`` with fixed payloads."""
    for i in range(count):
        yield flows[i % len(flows)].make_packet(bytes(payload_size),
                                                fill_checksums=False)
