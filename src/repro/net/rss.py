"""Receive-side scaling: Toeplitz hash over the 5-tuple.

This is the Microsoft RSS Toeplitz hash used by ConnectX and most NICs;
it spreads flows across receive queues/cores.  The defrag experiment
(§8.2.2) hinges on RSS *failing* for non-first IP fragments (no L4 ports
visible), collapsing traffic onto a single core.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from .ip import Ipv4, PROTO_TCP, PROTO_UDP
from .packet import Packet
from .tcp import Tcp
from .udp import Udp

# The canonical 40-byte Microsoft RSS key.
DEFAULT_RSS_KEY = bytes([
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
    0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
    0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
])


def toeplitz_hash(data: bytes, key: bytes = DEFAULT_RSS_KEY) -> int:
    """The Toeplitz hash of ``data`` under ``key`` (32-bit result)."""
    if len(key) * 8 < len(data) * 8 + 32:
        raise ValueError("RSS key too short for input")
    key_int = int.from_bytes(key, "big")
    key_bits = len(key) * 8
    result = 0
    bit_index = 0
    for byte in data:
        for bit in range(7, -1, -1):
            if byte & (1 << bit):
                # The 32-bit window of the key starting at this input bit.
                window = (key_int >> (key_bits - 32 - bit_index)) & 0xFFFFFFFF
                result ^= window
            bit_index += 1
    return result


def rss_input_v4(src: Ipv4, ports: Optional[Tuple[int, int]]) -> bytes:
    """Build the RSS hash input: src/dst IP, optionally src/dst port."""
    data = src.src.pack() + src.dst.pack()
    if ports is not None:
        data += struct.pack("!HH", ports[0], ports[1])
    return data


def extract_ports(packet: Packet) -> Optional[Tuple[int, int]]:
    """L4 ports if visible in this frame, else ``None``.

    Ports are invisible for (a) non-TCP/UDP protocols and (b) *non-first*
    IP fragments, where the L4 header lives in a different frame.  For a
    fragmented datagram even the first fragment must be excluded: hashing
    it with ports while later fragments hash without would split one
    datagram across cores, so NICs fall back to the 2-tuple for any frame
    with MF set or a nonzero offset.
    """
    ip = packet.find(Ipv4)
    if ip is None:
        return None
    if ip.is_fragment:
        return None
    l4 = packet.find(Tcp) or packet.find(Udp)
    if l4 is not None:
        return (l4.src_port, l4.dst_port)
    # Fragments carry L4 bytes opaquely in the payload; a whole
    # (unfragmented or reassembled) datagram exposes them for parsing.
    if ip.proto in (PROTO_TCP, PROTO_UDP) and len(packet.payload) >= 4:
        src_port, dst_port = struct.unpack("!HH", packet.payload[:4])
        return (src_port, dst_port)
    return None


class RssEngine:
    """Hash packets onto a receive-queue indirection table."""

    def __init__(self, queues: List[int], key: bytes = DEFAULT_RSS_KEY,
                 table_size: int = 128):
        if not queues:
            raise ValueError("RSS needs at least one queue")
        self.key = key
        self.indirection: List[int] = [
            queues[i % len(queues)] for i in range(table_size)
        ]
        self.stats_hashed = 0
        self.stats_no_ports = 0

    def queue_for(self, packet: Packet) -> int:
        """Pick the destination queue for ``packet``.

        Fragmented or portless packets hash on the 2-tuple only, which is
        what concentrates fragmented traffic (same src/dst pair) onto one
        queue in the paper's defrag experiment.
        """
        ip = packet.find(Ipv4)
        if ip is None:
            return self.indirection[0]
        ports = extract_ports(packet)
        if ports is None:
            self.stats_no_ports += 1
        self.stats_hashed += 1
        value = toeplitz_hash(rss_input_v4(ip, ports), self.key)
        packet.meta["rss_hash"] = value
        return self.indirection[value % len(self.indirection)]
