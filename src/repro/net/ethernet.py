"""Ethernet II header."""

from __future__ import annotations

import struct

from .packet import Header

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100
ETHERTYPE_ROCE = 0x8915  # RoCE v1; RoCE v2 rides UDP/4791.

MIN_FRAME_SIZE = 60  # without FCS
DEFAULT_MTU = 1500


class MacAddress:
    """A 48-bit MAC address with canonical colon formatting."""

    __slots__ = ("value",)

    def __init__(self, value):
        if isinstance(value, MacAddress):
            self.value = value.value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise ValueError(f"MAC out of range: {value:#x}")
            self.value = value
        elif isinstance(value, str):
            parts = value.split(":")
            if len(parts) != 6:
                raise ValueError(f"bad MAC string {value!r}")
            self.value = int("".join(parts), 16)
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 6:
                raise ValueError("MAC bytes must be length 6")
            self.value = int.from_bytes(value, "big")
        else:
            raise TypeError(f"cannot build MAC from {type(value)}")

    def pack(self) -> bytes:
        return self.value.to_bytes(6, "big")

    def __eq__(self, other) -> bool:
        return isinstance(other, MacAddress) and self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __str__(self) -> str:
        raw = f"{self.value:012x}"
        return ":".join(raw[i:i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"


BROADCAST_MAC = MacAddress((1 << 48) - 1)


class Ethernet(Header):
    """Ethernet II frame header (14 bytes, no VLAN tag)."""

    name = "ethernet"

    def __init__(self, src, dst, ethertype: int = ETHERTYPE_IPV4):
        self.src = MacAddress(src)
        self.dst = MacAddress(dst)
        self.ethertype = ethertype

    def pack(self) -> bytes:
        # dst(6) | src(6) | ethertype(2) as one 14-byte big-endian int.
        return ((self.dst.value << 64) | (self.src.value << 16)
                | self.ethertype).to_bytes(14, "big")

    @classmethod
    def unpack(cls, data: bytes) -> "Ethernet":
        if len(data) < 14:
            raise ValueError("truncated Ethernet header")
        # Bypass the polymorphic constructors: frame parsing runs per
        # hop on the datapath, and the wire format is already canonical.
        # One 14-byte int split beats three field-wise conversions.
        value = int.from_bytes(data[:14], "big")
        dst = MacAddress.__new__(MacAddress)
        dst.value = value >> 64
        src = MacAddress.__new__(MacAddress)
        src.value = (value >> 16) & 0xFFFFFFFFFFFF
        eth = cls.__new__(cls)
        eth.src = src
        eth.dst = dst
        eth.ethertype = value & 0xFFFF
        return eth
