"""Synthetic traffic traces.

The paper's §8.1.1 forwards mixed-size packets "taken from the IMC 2010
data-center trace" (Benson et al.).  The trace itself is proprietary-ish
raw pcap we do not ship, so :class:`ImcDatacenterSizes` reproduces the
published size *distribution* shape: a strong bimodal mixture of small
(<200 B) control/ACK packets and near-MTU data packets, with a thin middle.
That shape — not individual packets — is what drives the experiment's
packets-per-second result, so the substitution preserves the behaviour
under test.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence, Tuple

MIN_ETHERNET_FRAME = 64
DEFAULT_MTU_FRAME = 1500


class PacketSizeDistribution:
    """A discrete mixture over (low, high, weight) size buckets."""

    def __init__(self, buckets: Sequence[Tuple[int, int, float]],
                 seed: int = 0):
        if not buckets:
            raise ValueError("no buckets")
        total = sum(w for _lo, _hi, w in buckets)
        if total <= 0:
            raise ValueError("weights must sum positive")
        self.buckets = [(lo, hi, w / total) for lo, hi, w in buckets]
        for lo, hi, _w in self.buckets:
            if lo > hi or lo < MIN_ETHERNET_FRAME:
                raise ValueError(f"bad bucket [{lo}, {hi}]")
        self._rng = random.Random(seed)

    def sample(self) -> int:
        roll = self._rng.random()
        acc = 0.0
        for lo, hi, weight in self.buckets:
            acc += weight
            if roll <= acc:
                return self._rng.randint(lo, hi)
        lo, hi, _w = self.buckets[-1]
        return self._rng.randint(lo, hi)

    def sizes(self, count: int) -> List[int]:
        return [self.sample() for _ in range(count)]

    def mean(self) -> float:
        """Exact expected frame size of the mixture."""
        return sum(w * (lo + hi) / 2.0 for lo, hi, w in self.buckets)


class ImcDatacenterSizes(PacketSizeDistribution):
    """Bimodal datacenter packet sizes after Benson et al. (IMC 2010).

    The IMC study found most packets are either small (~40-200 B: TCP
    ACKs, control) or large (1400-1500 B: MSS-sized data), with the
    small mode dominating the packet count in cloud datacenters.  The
    weights below calibrate that shape so the mixture's mean frame size
    (~227 B) matches the packet rates §8.1.1 reports on this trace.
    """

    def __init__(self, seed: int = 0):
        super().__init__(
            buckets=[
                (64, 128, 0.78),    # ACKs and tiny control packets
                (129, 256, 0.08),
                (257, 576, 0.05),
                (577, 1200, 0.02),
                (1201, 1400, 0.02),
                (1401, 1500, 0.05),  # MSS-sized data packets
            ],
            seed=seed,
        )


class UniformSizes(PacketSizeDistribution):
    """Single fixed or uniform size, for fixed-size sweeps."""

    def __init__(self, size: int, seed: int = 0):
        super().__init__(buckets=[(size, size, 1.0)], seed=seed)


def frame_sizes(distribution: PacketSizeDistribution,
                count: int) -> Iterator[int]:
    for _ in range(count):
        yield distribution.sample()
