"""VXLAN header (RFC 7348) and en/decapsulation helpers.

The defrag experiment (§8.2.2) relies on the NIC's VXLAN decapsulation
offload running *before* the accelerator; these helpers implement the
encapsulation format the offload engine parses.
"""

from __future__ import annotations

import struct
from typing import Optional

from .ethernet import Ethernet, ETHERTYPE_IPV4
from .ip import Ipv4, PROTO_UDP
from .packet import Header, Packet
from .udp import Udp, VXLAN_PORT

FLAG_VNI_VALID = 0x08


class Vxlan(Header):
    """VXLAN header (8 bytes): flags + 24-bit VNI."""

    name = "vxlan"
    HEADER_LEN = 8

    def __init__(self, vni: int, flags: int = FLAG_VNI_VALID):
        if not 0 <= vni < (1 << 24):
            raise ValueError(f"VNI out of range: {vni}")
        self.vni = vni
        self.flags = flags

    def size(self) -> int:
        return self.HEADER_LEN

    def pack(self) -> bytes:
        return struct.pack("!BBHI", self.flags, 0, 0, self.vni << 8)

    @classmethod
    def unpack(cls, data: bytes) -> "Vxlan":
        if len(data) < cls.HEADER_LEN:
            raise ValueError("truncated VXLAN header")
        flags, _r1, _r2, vni_field = struct.unpack("!BBHI", data[:8])
        return cls(vni=vni_field >> 8, flags=flags)


def vxlan_encapsulate(inner: Packet, vni: int, outer_src_mac, outer_dst_mac,
                      outer_src_ip, outer_dst_ip,
                      src_port: Optional[int] = None) -> Packet:
    """Wrap ``inner`` (an Ethernet frame) in outer Eth/IP/UDP/VXLAN.

    ``src_port`` defaults to a hash of the inner frame for entropy, the
    standard trick for spreading tunnel traffic across ECMP/RSS.
    """
    if src_port is None:
        src_port = 49152 + (hash(bytes(inner.to_bytes()[:34])) & 0x3FFF)
    outer = inner.copy()
    inner_size = inner.size()
    outer.push(Vxlan(vni))
    udp = Udp(src_port, VXLAN_PORT).finalize(Vxlan.HEADER_LEN + inner_size)
    outer.push(udp)
    ip = Ipv4(outer_src_ip, outer_dst_ip, proto=PROTO_UDP)
    ip.finalize(udp.length)
    outer.push(ip)
    outer.push(Ethernet(outer_src_mac, outer_dst_mac, ETHERTYPE_IPV4))
    return outer


def vxlan_decapsulate(packet: Packet) -> Packet:
    """Strip outer Eth/IP/UDP/VXLAN, returning the inner frame.

    Raises ``ValueError`` when the packet is not a VXLAN encapsulation.
    """
    vxlan = packet.find(Vxlan)
    if vxlan is None:
        raise ValueError("not a VXLAN packet")
    udp = packet.find(Udp)
    if udp is None or udp.dst_port != VXLAN_PORT:
        raise ValueError("VXLAN header without UDP/4789 transport")
    inner = packet.copy()
    while inner.headers and not isinstance(inner.headers[0], Vxlan):
        inner.pop()
    inner.pop()  # the VXLAN header itself
    inner.meta["vxlan_vni"] = vxlan.vni
    inner.meta["decapsulated"] = True
    return inner
