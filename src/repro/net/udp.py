"""UDP header with pseudo-header checksum support."""

from __future__ import annotations

import struct

from .checksum import internet_checksum, pseudo_header_v4
from .ip import IpAddress, PROTO_UDP
from .packet import Header

VXLAN_PORT = 4789
ROCE_V2_PORT = 4791
COAP_PORT = 5683

_HEADER_STRUCT = struct.Struct("!HHHH")


class Udp(Header):
    """UDP header (8 bytes)."""

    name = "udp"
    HEADER_LEN = 8

    def __init__(self, src_port: int, dst_port: int, length: int = 0,
                 checksum: int = 0):
        self.src_port = src_port
        self.dst_port = dst_port
        self.length = length
        self.checksum = checksum

    def size(self) -> int:
        return self.HEADER_LEN

    def finalize(self, payload_length: int) -> "Udp":
        self.length = self.HEADER_LEN + payload_length
        return self

    def pack(self) -> bytes:
        return _HEADER_STRUCT.pack(
            self.src_port, self.dst_port, self.length, self.checksum
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Udp":
        if len(data) < cls.HEADER_LEN:
            raise ValueError("truncated UDP header")
        src, dst, length, checksum = _HEADER_STRUCT.unpack_from(data)
        return cls(src, dst, length, checksum)

    def compute_checksum(self, src: IpAddress, dst: IpAddress,
                         payload: bytes) -> int:
        """RFC 768 checksum over pseudo-header + UDP header + payload."""
        self.finalize(len(payload))
        pseudo = pseudo_header_v4(src.pack(), dst.pack(), PROTO_UDP, self.length)
        saved, self.checksum = self.checksum, 0
        checksum = internet_checksum(pseudo + self.pack() + payload)
        self.checksum = saved
        return checksum or 0xFFFF  # 0 means "no checksum" in UDP

    def fill_checksum(self, src: IpAddress, dst: IpAddress,
                      payload: bytes) -> "Udp":
        self.checksum = self.compute_checksum(src, dst, payload)
        return self

    def verify(self, src: IpAddress, dst: IpAddress, payload: bytes) -> bool:
        if self.checksum == 0:
            return True  # checksum disabled
        return self.compute_checksum(src, dst, payload) == self.checksum
