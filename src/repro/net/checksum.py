"""Internet checksum (RFC 1071) and helpers.

Used by the IPv4 header, UDP/TCP pseudo-header checksums, and by the NIC's
checksum offload engine.
"""

from __future__ import annotations

import struct


def _folded_sum(data: bytes, initial: int) -> int:
    """One's-complement sum of ``data``'s 16-bit words plus ``initial``.

    Since 2**16 == 1 (mod 0xFFFF), the word sum of an even-length buffer
    is congruent to the whole buffer taken as one big integer, and the
    RFC 1071 fold of a total T is 0 when T is 0 and ((T-1) % 0xFFFF) + 1
    otherwise — so one ``int.from_bytes`` replaces the unpack/sum loop.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = initial + int.from_bytes(data, "big")
    if total == 0:
        return 0
    return (total - 1) % 0xFFFF + 1


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """One's-complement sum of 16-bit words, folded and inverted.

    ``initial`` allows chaining (e.g. pseudo-header then payload).
    """
    return (~_folded_sum(data, initial)) & 0xFFFF


def ones_complement_add(data: bytes, initial: int = 0) -> int:
    """Partial (non-inverted) one's-complement sum, for pseudo-headers."""
    return _folded_sum(data, initial)


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (checksum field included) sums to zero."""
    return internet_checksum(data) == 0


def pseudo_header_v4(src: bytes, dst: bytes, proto: int, length: int) -> bytes:
    """IPv4 pseudo-header used in UDP/TCP checksums."""
    return src + dst + struct.pack("!BBH", 0, proto, length)
