"""Internet checksum (RFC 1071) and helpers.

Used by the IPv4 header, UDP/TCP pseudo-header checksums, and by the NIC's
checksum offload engine.
"""

from __future__ import annotations

import struct


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """One's-complement sum of 16-bit words, folded and inverted.

    ``initial`` allows chaining (e.g. pseudo-header then payload).
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = initial + sum(struct.unpack("!%dH" % (len(data) // 2), data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def ones_complement_add(data: bytes, initial: int = 0) -> int:
    """Partial (non-inverted) one's-complement sum, for pseudo-headers."""
    if len(data) % 2:
        data = data + b"\x00"
    total = initial + sum(struct.unpack("!%dH" % (len(data) // 2), data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (checksum field included) sums to zero."""
    return internet_checksum(data) == 0


def pseudo_header_v4(src: bytes, dst: bytes, proto: int, length: int) -> bytes:
    """IPv4 pseudo-header used in UDP/TCP checksums."""
    return src + dst + struct.pack("!BBH", 0, proto, length)
