"""RoCE v2 framing: the InfiniBand Base Transport Header (BTH) over UDP.

The NIC's RDMA engine (``repro.nic.rdma``) segments messages into MTU-sized
packets, each carrying a BTH; the opcode's first/middle/last structure lets
the receiver reassemble messages and the FLD-R path deliver per-packet
completions (§6's incremental message processing).
"""

from __future__ import annotations

import struct

from .packet import Header

# BTH opcodes (RC transport subset).
OP_SEND_FIRST = 0x00
OP_SEND_MIDDLE = 0x01
OP_SEND_LAST = 0x02
OP_SEND_ONLY = 0x04
OP_RDMA_WRITE_FIRST = 0x06
OP_RDMA_WRITE_MIDDLE = 0x07
OP_RDMA_WRITE_LAST = 0x08
OP_RDMA_WRITE_ONLY = 0x0A
OP_RDMA_READ_REQUEST = 0x0C
OP_RDMA_READ_RESPONSE_ONLY = 0x10
OP_ACK = 0x11

_SEND_OPS = {OP_SEND_FIRST, OP_SEND_MIDDLE, OP_SEND_LAST, OP_SEND_ONLY}
_WRITE_OPS = {
    OP_RDMA_WRITE_FIRST, OP_RDMA_WRITE_MIDDLE,
    OP_RDMA_WRITE_LAST, OP_RDMA_WRITE_ONLY,
}
_FIRST_OPS = {OP_SEND_FIRST, OP_RDMA_WRITE_FIRST, OP_SEND_ONLY, OP_RDMA_WRITE_ONLY}
_LAST_OPS = {OP_SEND_LAST, OP_RDMA_WRITE_LAST, OP_SEND_ONLY, OP_RDMA_WRITE_ONLY}

# Invariant CRC trailing each RoCE packet on the wire.
ICRC_SIZE = 4


class Bth(Header):
    """Base Transport Header (12 bytes)."""

    name = "bth"
    HEADER_LEN = 12

    def __init__(self, opcode: int, dest_qp: int, psn: int,
                 ack_request: bool = False, partition: int = 0xFFFF):
        self.opcode = opcode
        self.dest_qp = dest_qp & 0xFFFFFF
        self.psn = psn & 0xFFFFFF
        self.ack_request = ack_request
        self.partition = partition

    def size(self) -> int:
        return self.HEADER_LEN

    def pack(self) -> bytes:
        flags = 0x40 if self.ack_request else 0  # AckReq bit in byte 4
        return struct.pack(
            "!BBHII",
            self.opcode,
            0x40,  # SE/migreq/pad/tver defaults
            self.partition,
            (flags << 24) | self.dest_qp,
            self.psn,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Bth":
        if len(data) < cls.HEADER_LEN:
            raise ValueError("truncated BTH")
        opcode, _flags, partition, qp_field, psn_field = struct.unpack(
            "!BBHII", data[:12]
        )
        return cls(
            opcode=opcode,
            dest_qp=qp_field & 0xFFFFFF,
            psn=psn_field & 0xFFFFFF,
            ack_request=bool((qp_field >> 24) & 0x40),
            partition=partition,
        )

    # -- opcode classification -------------------------------------------

    @property
    def is_send(self) -> bool:
        return self.opcode in _SEND_OPS

    @property
    def is_write(self) -> bool:
        return self.opcode in _WRITE_OPS

    @property
    def is_first(self) -> bool:
        return self.opcode in _FIRST_OPS

    @property
    def is_last(self) -> bool:
        return self.opcode in _LAST_OPS

    @property
    def is_ack(self) -> bool:
        return self.opcode == OP_ACK


class Aeth(Header):
    """ACK Extended Transport Header (4 bytes): syndrome + MSN."""

    name = "aeth"
    HEADER_LEN = 4

    def __init__(self, msn: int, syndrome: int = 0):
        self.msn = msn & 0xFFFFFF
        self.syndrome = syndrome

    def size(self) -> int:
        return self.HEADER_LEN

    def pack(self) -> bytes:
        return struct.pack("!I", (self.syndrome << 24) | self.msn)

    @classmethod
    def unpack(cls, data: bytes) -> "Aeth":
        (word,) = struct.unpack("!I", data[:4])
        return cls(msn=word & 0xFFFFFF, syndrome=word >> 24)


class Reth(Header):
    """RDMA Extended Transport Header (16 bytes): VA, rkey, length."""

    name = "reth"
    HEADER_LEN = 16

    def __init__(self, virtual_address: int, rkey: int, length: int):
        self.virtual_address = virtual_address
        self.rkey = rkey
        self.length = length

    def size(self) -> int:
        return self.HEADER_LEN

    def pack(self) -> bytes:
        return struct.pack("!QII", self.virtual_address, self.rkey, self.length)

    @classmethod
    def unpack(cls, data: bytes) -> "Reth":
        va, rkey, length = struct.unpack("!QII", data[:16])
        return cls(va, rkey, length)


def send_opcode(first: bool, last: bool) -> int:
    """BTH opcode for a SEND segment at the given message position."""
    if first and last:
        return OP_SEND_ONLY
    if first:
        return OP_SEND_FIRST
    if last:
        return OP_SEND_LAST
    return OP_SEND_MIDDLE


def write_opcode(first: bool, last: bool) -> int:
    """BTH opcode for an RDMA WRITE segment at the given message position."""
    if first and last:
        return OP_RDMA_WRITE_ONLY
    if first:
        return OP_RDMA_WRITE_FIRST
    if last:
        return OP_RDMA_WRITE_LAST
    return OP_RDMA_WRITE_MIDDLE
