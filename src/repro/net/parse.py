"""Parse raw Ethernet frames back into layered :class:`Packet` objects.

The NIC's receive pipeline and the accelerators both parse frames that
arrive as bytes (from DMA buffers or the wire).  The parser understands
the protocols the reproduction exercises: Ethernet / IPv4 / {TCP, UDP} /
VXLAN (recursively) and RoCE v2 (BTH over UDP 4791).

Fragmented IPv4 packets stop parsing at the IP layer — their L4 bytes stay
in the payload, exactly the property that breaks L4-dependent NIC offloads.
"""

from __future__ import annotations

from .ethernet import ETHERTYPE_IPV4, Ethernet
from .ip import Ipv4, PROTO_TCP, PROTO_UDP
from .packet import Packet
from .roce import Aeth, Bth, Reth, ICRC_SIZE
from .tcp import Tcp
from .udp import ROCE_V2_PORT, Udp, VXLAN_PORT
from .vxlan import Vxlan


class ParseError(ValueError):
    """Raised on truncated or malformed frames."""


def parse_frame(data: bytes) -> Packet:
    """Parse a full Ethernet frame into a layered packet."""
    packet = Packet()
    offset = _parse_ethernet(packet, data, 0)
    packet.payload = data[offset:]
    return packet


def _parse_ethernet(packet: Packet, data: bytes, offset: int) -> int:
    if len(data) - offset < 14:
        raise ParseError("frame shorter than an Ethernet header")
    eth = Ethernet.unpack(data[offset:offset + 14])
    packet.append(eth)
    offset += 14
    if eth.ethertype == ETHERTYPE_IPV4:
        return _parse_ipv4(packet, data, offset)
    return offset


def _parse_ipv4(packet: Packet, data: bytes, offset: int) -> int:
    ip = Ipv4.unpack(data[offset:offset + Ipv4.HEADER_LEN])
    packet.append(ip)
    offset += Ipv4.HEADER_LEN
    if ip.is_fragment:
        return offset  # L4 header may be absent or must not be consumed
    if ip.proto == PROTO_TCP and len(data) - offset >= Tcp.HEADER_LEN:
        packet.append(Tcp.unpack(data[offset:offset + Tcp.HEADER_LEN]))
        return offset + Tcp.HEADER_LEN
    if ip.proto == PROTO_UDP and len(data) - offset >= Udp.HEADER_LEN:
        udp = Udp.unpack(data[offset:offset + Udp.HEADER_LEN])
        packet.append(udp)
        offset += Udp.HEADER_LEN
        if udp.dst_port == VXLAN_PORT and len(data) - offset >= Vxlan.HEADER_LEN:
            packet.append(Vxlan.unpack(data[offset:offset + Vxlan.HEADER_LEN]))
            offset += Vxlan.HEADER_LEN
            return _parse_ethernet(packet, data, offset)
        if udp.dst_port == ROCE_V2_PORT and len(data) - offset >= Bth.HEADER_LEN:
            return _parse_roce(packet, data, offset)
        return offset
    return offset


def _parse_roce(packet: Packet, data: bytes, offset: int) -> int:
    bth = Bth.unpack(data[offset:offset + Bth.HEADER_LEN])
    packet.append(bth)
    offset += Bth.HEADER_LEN
    if bth.is_ack and len(data) - offset >= Aeth.HEADER_LEN:
        packet.append(Aeth.unpack(data[offset:offset + Aeth.HEADER_LEN]))
        offset += Aeth.HEADER_LEN
    elif bth.is_write and bth.is_first and len(data) - offset >= Reth.HEADER_LEN:
        packet.append(Reth.unpack(data[offset:offset + Reth.HEADER_LEN]))
        offset += Reth.HEADER_LEN
    return offset
