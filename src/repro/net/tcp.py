"""TCP header (enough for flow generation and checksum offloads).

The reproduction does not implement a full TCP state machine: the defrag
experiment (§8.2.2) only needs identifiable TCP flows with valid checksums,
mirroring how iperf traffic exercises the NIC's RSS and checksum offloads.
"""

from __future__ import annotations

import struct

from .checksum import internet_checksum, pseudo_header_v4
from .ip import IpAddress, PROTO_TCP
from .packet import Header

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10


class Tcp(Header):
    """TCP header (20 bytes, no options)."""

    name = "tcp"
    HEADER_LEN = 20

    def __init__(self, src_port: int, dst_port: int, seq: int = 0,
                 ack: int = 0, flags: int = FLAG_ACK, window: int = 65535,
                 checksum: int = 0):
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq & 0xFFFFFFFF
        self.ack = ack & 0xFFFFFFFF
        self.flags = flags
        self.window = window
        self.checksum = checksum

    def size(self) -> int:
        return self.HEADER_LEN

    def pack(self) -> bytes:
        offset_flags = (5 << 12) | (self.flags & 0x3F)
        return struct.pack(
            "!HHIIHHHH",
            self.src_port, self.dst_port, self.seq, self.ack,
            offset_flags, self.window, self.checksum, 0,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Tcp":
        if len(data) < cls.HEADER_LEN:
            raise ValueError("truncated TCP header")
        (src, dst, seq, ack, offset_flags, window, checksum,
         _urgent) = struct.unpack("!HHIIHHHH", data[:20])
        return cls(src, dst, seq, ack, offset_flags & 0x3F, window, checksum)

    def compute_checksum(self, src: IpAddress, dst: IpAddress,
                         payload: bytes) -> int:
        length = self.HEADER_LEN + len(payload)
        pseudo = pseudo_header_v4(src.pack(), dst.pack(), PROTO_TCP, length)
        saved, self.checksum = self.checksum, 0
        checksum = internet_checksum(pseudo + self.pack() + payload)
        self.checksum = saved
        return checksum

    def fill_checksum(self, src: IpAddress, dst: IpAddress,
                      payload: bytes) -> "Tcp":
        self.checksum = self.compute_checksum(src, dst, payload)
        return self

    def verify(self, src: IpAddress, dst: IpAddress, payload: bytes) -> bool:
        return self.compute_checksum(src, dst, payload) == self.checksum
