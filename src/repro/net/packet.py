"""Layered packet model.

A :class:`Packet` is an ordered stack of header objects plus a payload.
Headers are small structs with real ``pack``/byte-accurate sizing, so wire
sizes, checksums and fragmentation behave like the real protocols.  The
``meta`` mapping carries simulation-side annotations (offload results,
queue/context IDs, timestamps) that in hardware would travel in completion
entries or sideband metadata — never on the wire.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Type, TypeVar

H = TypeVar("H")

# Ethernet wire overhead per frame: preamble+SFD (8) + FCS (4) + IFG (12).
ETHERNET_WIRE_OVERHEAD = 24


class Header:
    """Base class for protocol headers; subclasses define ``pack``."""

    name = "header"

    def pack(self) -> bytes:
        raise NotImplementedError

    def size(self) -> int:
        return len(self.pack())

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{k}={v!r}" for k, v in vars(self).items() if not k.startswith("_")
        )
        return f"{type(self).__name__}({fields})"


class Packet:
    """An ordered header stack over a payload.

    Headers are stored outermost-first (Ethernet, then IP, then L4...).
    """

    __slots__ = ("headers", "payload", "meta")

    def __init__(self, headers: Optional[List[Header]] = None,
                 payload: bytes = b"", meta: Optional[Dict[str, Any]] = None):
        self.headers: List[Header] = list(headers) if headers else []
        self.payload = payload
        self.meta: Dict[str, Any] = dict(meta) if meta else {}

    # -- header access ---------------------------------------------------

    def push(self, header: Header) -> "Packet":
        """Prepend an outer header (encapsulation)."""
        self.headers.insert(0, header)
        return self

    def append(self, header: Header) -> "Packet":
        """Add an inner header (building a packet top-down)."""
        self.headers.append(header)
        return self

    def pop(self) -> Header:
        """Remove and return the outermost header (decapsulation)."""
        if not self.headers:
            raise IndexError("no headers to pop")
        return self.headers.pop(0)

    def find(self, header_type: Type[H]) -> Optional[H]:
        """First header of the given type, outermost-first, or ``None``."""
        for header in self.headers:
            if isinstance(header, header_type):
                return header
        return None

    def find_all(self, header_type: Type[H]) -> List[H]:
        return [h for h in self.headers if isinstance(h, header_type)]

    def index_of(self, header: Header) -> int:
        return self.headers.index(header)

    def layers_below(self, header: Header) -> "Packet":
        """A new packet view of everything inside ``header`` (exclusive)."""
        idx = self.headers.index(header)
        return Packet(self.headers[idx + 1:], self.payload, self.meta)

    # -- sizing ----------------------------------------------------------

    def header_size(self) -> int:
        return sum(h.size() for h in self.headers)

    def size(self) -> int:
        """Total frame size in bytes (headers + payload, no FCS/preamble)."""
        return self.header_size() + len(self.payload)

    def wire_size(self) -> int:
        """Bytes consumed on an Ethernet wire including overheads."""
        return self.size() + ETHERNET_WIRE_OVERHEAD

    def to_bytes(self) -> bytes:
        return b"".join(h.pack() for h in self.headers) + self.payload

    def copy(self) -> "Packet":
        """Deep copy of headers, shallow copy of payload bytes."""
        return Packet(
            [copy.copy(h) for h in self.headers], self.payload, dict(self.meta)
        )

    def __repr__(self) -> str:
        names = "/".join(type(h).__name__ for h in self.headers) or "raw"
        return f"Packet({names}, payload={len(self.payload)}B)"
