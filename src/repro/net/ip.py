"""IPv4 header with fragmentation fields and real checksum."""

from __future__ import annotations

import struct

from .checksum import internet_checksum
from .packet import Header

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

FLAG_DF = 0x2  # don't fragment
FLAG_MF = 0x1  # more fragments

_HEADER_STRUCT = struct.Struct("!BBHHHBBHII")


class IpAddress:
    """A 32-bit IPv4 address."""

    __slots__ = ("value",)

    def __init__(self, value):
        if isinstance(value, IpAddress):
            self.value = value.value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise ValueError(f"IPv4 out of range: {value:#x}")
            self.value = value
        elif isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ValueError(f"bad IPv4 string {value!r}")
            self.value = 0
            for part in parts:
                octet = int(part)
                if not 0 <= octet <= 255:
                    raise ValueError(f"bad IPv4 octet {part!r}")
                self.value = (self.value << 8) | octet
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 4:
                raise ValueError("IPv4 bytes must be length 4")
            self.value = int.from_bytes(value, "big")
        else:
            raise TypeError(f"cannot build IPv4 address from {type(value)}")

    def pack(self) -> bytes:
        return self.value.to_bytes(4, "big")

    def __eq__(self, other) -> bool:
        return isinstance(other, IpAddress) and self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __str__(self) -> str:
        return ".".join(str((self.value >> s) & 0xFF) for s in (24, 16, 8, 0))

    def __repr__(self) -> str:
        return f"IpAddress('{self}')"


class Ipv4(Header):
    """IPv4 header (20 bytes, no options).

    ``total_length`` covers the IP header plus everything it encapsulates;
    callers normally leave it 0 and let :meth:`finalize` fill it in from the
    packet contents before serialization.
    """

    name = "ipv4"

    def __init__(self, src, dst, proto: int = PROTO_UDP, ttl: int = 64,
                 ident: int = 0, flags: int = 0, frag_offset: int = 0,
                 total_length: int = 0, dscp: int = 0):
        self.src = IpAddress(src)
        self.dst = IpAddress(dst)
        self.proto = proto
        self.ttl = ttl
        self.ident = ident & 0xFFFF
        self.flags = flags
        self.frag_offset = frag_offset  # in 8-byte units
        self.total_length = total_length
        self.dscp = dscp

    HEADER_LEN = 20

    def size(self) -> int:
        return self.HEADER_LEN

    @property
    def more_fragments(self) -> bool:
        return bool(self.flags & FLAG_MF)

    @property
    def dont_fragment(self) -> bool:
        return bool(self.flags & FLAG_DF)

    @property
    def is_fragment(self) -> bool:
        """True for any frame that is part of a fragmented datagram."""
        return self.more_fragments or self.frag_offset > 0

    def finalize(self, payload_length: int) -> "Ipv4":
        """Set total_length for ``payload_length`` bytes above this header."""
        self.total_length = self.HEADER_LEN + payload_length
        return self

    def pack(self) -> bytes:
        version_ihl = (4 << 4) | (self.HEADER_LEN // 4)
        tos = self.dscp << 2
        flags_frag = (self.flags << 13) | (self.frag_offset & 0x1FFF)
        src = self.src.value
        dst = self.dst.value
        # The header checksum folds the same 16-bit words struct would
        # produce, computed straight from the fields — one pack instead
        # of pack + re-scan + splice.
        total = (((version_ihl << 8) | tos) + self.total_length + self.ident
                 + flags_frag + ((self.ttl << 8) | self.proto)
                 + (src >> 16) + (src & 0xFFFF)
                 + (dst >> 16) + (dst & 0xFFFF))
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        checksum = (~total) & 0xFFFF
        return _HEADER_STRUCT.pack(
            version_ihl, tos, self.total_length, self.ident,
            flags_frag, self.ttl, self.proto, checksum, src, dst,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Ipv4":
        if len(data) < cls.HEADER_LEN:
            raise ValueError("truncated IPv4 header")
        (version_ihl, tos, total_length, ident, flags_frag, ttl, proto,
         _checksum, src, dst) = _HEADER_STRUCT.unpack_from(data)
        if version_ihl >> 4 != 4:
            raise ValueError("not an IPv4 packet")
        # Datapath fast construction: skip the polymorphic address
        # coercion — the wire values are already canonical ints.
        ip = cls.__new__(cls)
        src_addr = IpAddress.__new__(IpAddress)
        src_addr.value = src
        dst_addr = IpAddress.__new__(IpAddress)
        dst_addr.value = dst
        ip.src = src_addr
        ip.dst = dst_addr
        ip.proto = proto
        ip.ttl = ttl
        ip.ident = ident
        ip.flags = flags_frag >> 13
        ip.frag_offset = flags_frag & 0x1FFF
        ip.total_length = total_length
        ip.dscp = tos >> 2
        return ip

    def flow_key(self):
        """(src, dst, proto, ident) — the datagram identity for reassembly."""
        return (self.src.value, self.dst.value, self.proto, self.ident)
