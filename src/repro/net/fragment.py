"""IP fragmentation and reassembly.

``fragment_packet`` models a router splitting a datagram for a smaller-MTU
hop; ``Reassembler`` is the stateful inverse, used both by the software
baseline (the CPU network stack defragmenting in §8.2.2) and by the
hardware defragmentation accelerator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .ethernet import Ethernet
from .ip import FLAG_MF, Ipv4
from .packet import Packet

FRAGMENT_UNIT = 8  # fragment offsets are in units of 8 bytes


class FragmentError(ValueError):
    """Raised on malformed or unfragmentable input."""


def fragment_packet(packet: Packet, mtu: int) -> List[Packet]:
    """Split an IPv4 packet so each fragment's IP portion fits ``mtu``.

    ``mtu`` bounds the IP header + fragment payload (the L3 size, as routers
    enforce).  L4 headers travel inside the first fragment's payload, exactly
    as on the wire — which is why L4-dependent NIC offloads (RSS on ports,
    L4 checksum) break for non-first fragments.
    """
    ip = packet.find(Ipv4)
    if ip is None:
        raise FragmentError("no IPv4 header to fragment")
    if ip.dont_fragment:
        raise FragmentError("DF set; packet would be dropped (ICMP frag needed)")

    idx = packet.index_of(ip)
    outer_headers = packet.headers[:idx]
    # Everything above IP (L4 headers + payload) becomes raw fragment data.
    inner = b"".join(h.pack() for h in packet.headers[idx + 1:]) + packet.payload

    if ip.HEADER_LEN + len(inner) <= mtu:
        return [packet]

    max_payload = (mtu - ip.HEADER_LEN) // FRAGMENT_UNIT * FRAGMENT_UNIT
    if max_payload <= 0:
        raise FragmentError(f"MTU {mtu} too small for any fragment")

    fragments: List[Packet] = []
    offset = 0
    while offset < len(inner):
        chunk = inner[offset:offset + max_payload]
        last = offset + len(chunk) >= len(inner)
        frag_ip = Ipv4(
            src=ip.src, dst=ip.dst, proto=ip.proto, ttl=ip.ttl,
            ident=ip.ident, flags=ip.flags | (0 if last else FLAG_MF),
            frag_offset=offset // FRAGMENT_UNIT, dscp=ip.dscp,
        ).finalize(len(chunk))
        frag = Packet(
            [h for h in outer_headers] + [frag_ip], chunk, dict(packet.meta)
        )
        # Outer headers (e.g. Ethernet) are shared objects in `packet`;
        # copy them so later mutation of one fragment can't alias another.
        frag.headers[:idx] = [type(h).unpack(h.pack()) for h in outer_headers]
        fragments.append(frag)
        offset += len(chunk)
    return fragments


class _DatagramState:
    """Accumulates fragments of one datagram until complete."""

    __slots__ = ("chunks", "total_length", "first_fragment", "arrival")

    def __init__(self, arrival: float):
        self.chunks: Dict[int, bytes] = {}  # byte offset -> data
        self.total_length: Optional[int] = None
        self.first_fragment: Optional[Packet] = None
        self.arrival = arrival

    def add(self, frag: Packet, ip: Ipv4) -> None:
        offset = ip.frag_offset * FRAGMENT_UNIT
        data = frag.payload
        self.chunks[offset] = data
        if not ip.more_fragments:
            self.total_length = offset + len(data)
        if offset == 0:
            self.first_fragment = frag

    def complete(self) -> bool:
        if self.total_length is None or self.first_fragment is None:
            return False
        covered = 0
        for offset in sorted(self.chunks):
            if offset > covered:
                return False  # hole
            covered = max(covered, offset + len(self.chunks[offset]))
        return covered >= self.total_length

    def payload(self) -> bytes:
        out = bytearray(self.total_length)
        for offset in sorted(self.chunks):
            data = self.chunks[offset]
            out[offset:offset + len(data)] = data
        return bytes(out)


class Reassembler:
    """Reassembles IPv4 fragments into whole datagrams.

    Mirrors ``ip_defrag`` semantics: datagrams are keyed by
    (src, dst, proto, ident); stale partial datagrams expire after
    ``timeout`` seconds of simulation time; capacity bounds the number of
    concurrent partial datagrams (evicting oldest), modelling the fixed
    reassembly context table of the hardware accelerator.
    """

    def __init__(self, timeout: float = 30.0, capacity: int = 4096):
        self.timeout = timeout
        self.capacity = capacity
        self._pending: Dict[Tuple, _DatagramState] = {}
        self.stats_reassembled = 0
        self.stats_expired = 0
        self.stats_evicted = 0

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, frag: Packet, now: float = 0.0) -> Optional[Packet]:
        """Feed one frame; returns the reassembled packet when complete.

        Non-fragment packets pass through unchanged.
        """
        ip = frag.find(Ipv4)
        if ip is None:
            raise FragmentError("no IPv4 header")
        if not ip.is_fragment:
            return frag

        self._expire(now)
        key = ip.flow_key()
        state = self._pending.get(key)
        if state is None:
            if len(self._pending) >= self.capacity:
                self._evict_oldest()
            state = _DatagramState(now)
            self._pending[key] = state
        state.add(frag, ip)

        if not state.complete():
            return None

        del self._pending[key]
        self.stats_reassembled += 1
        return self._rebuild(state)

    def _rebuild(self, state: _DatagramState) -> Packet:
        first = state.first_fragment
        ip = first.find(Ipv4)
        idx = first.index_of(ip)
        data = state.payload()
        whole_ip = Ipv4(
            src=ip.src, dst=ip.dst, proto=ip.proto, ttl=ip.ttl,
            ident=ip.ident, flags=ip.flags & ~FLAG_MF, frag_offset=0,
            dscp=ip.dscp,
        ).finalize(len(data))
        packet = Packet(
            first.headers[:idx] + [whole_ip], data, dict(first.meta)
        )
        packet.meta["reassembled"] = True
        return packet

    def _expire(self, now: float) -> None:
        stale = [
            key for key, state in self._pending.items()
            if now - state.arrival > self.timeout
        ]
        for key in stale:
            del self._pending[key]
            self.stats_expired += 1

    def _evict_oldest(self) -> None:
        oldest = min(self._pending, key=lambda k: self._pending[k].arrival)
        del self._pending[oldest]
        self.stats_evicted += 1


def parse_l4(packet: Packet):
    """Parse the raw L4 bytes of a reassembled datagram.

    Returns (l4_header, payload) for TCP/UDP, or (None, payload) otherwise.
    """
    from .ip import PROTO_TCP, PROTO_UDP
    from .tcp import Tcp
    from .udp import Udp

    ip = packet.find(Ipv4)
    if ip is None:
        raise FragmentError("no IPv4 header")
    data = packet.payload
    if ip.proto == PROTO_TCP:
        header = Tcp.unpack(data)
        return header, data[Tcp.HEADER_LEN:]
    if ip.proto == PROTO_UDP:
        header = Udp.unpack(data)
        return header, data[Udp.HEADER_LEN:]
    return None, data
