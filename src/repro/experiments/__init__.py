"""Experiment harnesses reproducing the paper's evaluation (§8)."""

from . import cpu_mediated, defrag, echo, iot, scaling, zuc
from .setups import (
    Calibration,
    cpu_echo_remote,
    flde_echo_local,
    flde_echo_remote,
    fldr_echo,
    zuc_service,
)

__all__ = [
    "Calibration",
    "cpu_echo_remote",
    "cpu_mediated",
    "defrag",
    "echo",
    "flde_echo_local",
    "flde_echo_remote",
    "fldr_echo",
    "iot",
    "scaling",
    "zuc",
    "zuc_service",
]
