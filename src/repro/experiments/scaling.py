"""FLD scaling to higher line rates (§9 "Discussion").

The paper argues FLD scales past one instance's PCIe/pipeline ceiling by
"instantiating multiple FLD 'cores' within the accelerator, combined
with NIC RSS offloads to balance the load on these cores."  This
experiment builds exactly that: a 100 GbE-class NIC steering traffic
through an RSS group whose queues belong to *N separate FLD instances*,
each with its own BAR window, PCIe x8 attachment and echo engine.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, List, Optional

from ..host import LoadGenerator
from ..net import Flow, RssEngine
from ..nic import ForwardToRss, NicConfig, RssGroup
from ..sim import Simulator
from ..sweep import SweepCache, SweepPoint, run_sweep
from ..topology import (
    AccelFnSpec,
    FldSpec,
    HostQpSpec,
    LinkSpec,
    NodeSpec,
    TopologySpec,
    VportSpec,
)
from ..topology import build as build_topology
from .setups import CLIENT_MAC, CLIENT_IP, Calibration, FLD_MAC, SERVER_IP


def scaling_spec(cores: int) -> TopologySpec:
    """``cores`` FLD instances (one BAR window each) on one server."""
    return TopologySpec(
        name=f"scaling-{cores}cores",
        # A 100 GbE-era testbed: hosts attach at PCIe x16 so the
        # traffic generator is not the bottleneck under test.
        nodes=[NodeSpec(name="client", core="loadgen", host_lanes=16),
               NodeSpec(name="server", host_lanes=16)],
        links=[LinkSpec(a="client", b="server")],
        vports=[VportSpec(node="client", vport=1, mac=CLIENT_MAC),
                VportSpec(node="server", vport=2, mac=FLD_MAC)],
        flds=[FldSpec(node="server", index=core,
                      name=f"server.fld{core}")
              for core in range(cores)],
        accel_fns=[AccelFnSpec(name=f"echo{core}",
                               fld=f"server.fld{core}", kind="echo",
                               vport=2, units=2, rx_default=False)
                   for core in range(cores)],
        host_qps=[HostQpSpec(name="client", node="client", vport=1,
                             use_mmio_wqe=True, sq_entries=2048,
                             rq_entries=2048, post_rx=2048)],
    )


def build(cores: int, port_rate_bps: float = 100e9,
          cal: Optional[Calibration] = None) -> SimpleNamespace:
    """A server with ``cores`` FLD instances behind one RSS group."""
    cal = cal or Calibration()
    sim = Simulator()
    nic_config = NicConfig(port_rate_bps=port_rate_bps,
                           port_latency=cal.wire_latency,
                           processing_delay=cal.nic_processing)
    testbed = build_topology(
        sim, scaling_spec(cores), cal=cal,
        nic_configs={"client": nic_config, "server": nic_config},
    )
    client, server = testbed.node("client"), testbed.node("server")
    fns = [testbed.accel(f"echo{core}") for core in range(cores)]

    # NIC RSS spreads flows across the FLD cores' receive queues (§9).
    group = RssGroup("fld-cores", [fn.rq for fn in fns],
                     RssEngine(queues=list(range(cores))))
    vport = server.nic.eswitch.vports[2]
    server.nic.steering.table(vport.rx_root).default_actions = [
        ForwardToRss(group)]

    return SimpleNamespace(sim=sim, client=client, server=server,
                           runtimes=[fn.runtime for fn in fns],
                           accelerators=[fn.accel for fn in fns],
                           client_qp=testbed.host_qp("client"),
                           testbed=testbed)


def throughput(cores: int, frame_size: int = 1500, count: int = 2000,
               flows: int = 32, port_rate_bps: float = 100e9) -> Dict:
    """Echo throughput with ``cores`` FLD instances at ``port_rate``."""
    setup = build(cores, port_rate_bps)
    sim = setup.sim
    # Many flows so RSS can spread them; one aggregate latency/rx meter.
    flow_list = [
        Flow(CLIENT_MAC, FLD_MAC, CLIENT_IP, SERVER_IP, 40000 + i, 7001)
        for i in range(flows)
    ]
    loadgen = LoadGenerator(sim, setup.client_qp, flow_list[0])
    rate_pps = port_rate_bps / ((frame_size + 24) * 8)

    def drive(sim):
        gap = 1.0 / rate_pps
        for i in range(count):
            flow = flow_list[i % flows]
            packet = flow.make_sized_packet(frame_size)
            import struct
            payload = bytearray(packet.payload)
            struct.pack_into("!Q", payload, 0, i)
            loadgen._sent_at[i] = sim.now
            loadgen._seq = i + 1
            packet.payload = bytes(payload)
            yield from setup.client_qp.wait_for_tx_space()
            setup.client_qp.send(packet.to_bytes())
            loadgen.stats_sent += 1
            yield sim.timeout(gap)
        yield from loadgen.drain()

    loadgen.rx_meter.start(0.0)
    sim.spawn(drive(sim))
    sim.run(until=2.0)
    per_core = [a.stats_processed for a in setup.accelerators]
    return {
        "cores": cores,
        "gbps": loadgen.rx_meter.gbps(wire_overhead_per_packet=24),
        "received": loadgen.stats_received,
        "sent": loadgen.stats_sent,
        "per_core_packets": per_core,
        "active_cores": sum(1 for c in per_core if c > 0),
    }


def core_sweep_points(core_counts=(1, 2, 4), frame_size: int = 1500,
                      count: int = 1500) -> List[SweepPoint]:
    """§9 scaling: one point per FLD-core count."""
    return [
        SweepPoint("scaling", "repro.experiments.scaling:throughput",
                   {"cores": cores, "frame_size": frame_size,
                    "count": count})
        for cores in core_counts
    ]


def core_sweep(core_counts=(1, 2, 4), frame_size: int = 1500,
               count: int = 1500, jobs: int = 1,
               cache: Optional[SweepCache] = None) -> List[Dict]:
    return run_sweep(core_sweep_points(core_counts, frame_size, count),
                     jobs=jobs, cache=cache).rows
