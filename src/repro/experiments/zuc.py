"""The disaggregated ZUC accelerator experiments (§8.2.1, Fig. 8).

Measures encryption throughput and latency through the DPDK-style
cryptodev API, comparing:

* the **remote FLD accelerator** (8 ZUC units over FLD-R / 25 GbE),
* the **CPU software driver** (one core running the real cipher at
  IPsec-MB-class cycles/byte),
* the **performance model** upper bound (RoCE + application headers).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..host import CpuComputeCost, CpuCore
from ..models.perf import zuc_model_gbps
from ..sim import LatencyCollector, Simulator
from ..sw import CryptoOp, FldRZucCryptodev, SwZucCryptodev
from .setups import Calibration, zuc_service

#: Software ZUC cost: Intel IPsec-MB class performance (§8.2.1's CPU
#: baseline reaches ~1/4 of the accelerator at 512 B requests).
SW_CYCLES_PER_BYTE = 3.0
SW_CYCLES_PER_OP = 600


def _measure_throughput(sim, dev, key: bytes, size: int, count: int,
                        window: int, deadline: float) -> Dict:
    """Closed-loop with ``window`` outstanding ops (test-crypto-perf)."""
    state = {"completed": 0, "first": None, "last": None}
    latency = LatencyCollector()

    def runner(sim):
        submitted = 0
        for _ in range(min(window, count)):
            dev.submit(CryptoOp(CryptoOp.CIPHER, key, bytes(size)))
            submitted += 1
        while state["completed"] < count:
            op = yield dev.completions.get()
            latency.add(op.latency)
            state["completed"] += 1
            if state["first"] is None:
                state["first"] = sim.now
            state["last"] = sim.now
            if submitted < count:
                dev.submit(CryptoOp(CryptoOp.CIPHER, key, bytes(size)))
                submitted += 1

    sim.spawn(runner(sim))
    sim.run(until=deadline)
    duration = (state["last"] or 0) - (state["first"] or 0)
    completed = state["completed"]
    gbps = (completed - 1) * size * 8 / duration / 1e9 if duration > 0 else 0
    return {
        "size": size,
        "completed": completed,
        "gbps": gbps,
        "median_latency_us": latency.median * 1e6 if len(latency) else None,
        "p99_latency_us": latency.pct(99) * 1e6 if len(latency) else None,
    }


def fld_throughput(size: int, count: int = 400, window: int = 64,
                   cal: Optional[Calibration] = None) -> Dict:
    """One Fig. 8a point for the remote accelerator."""
    sim = Simulator()
    setup = zuc_service(sim, cal)
    dev = FldRZucCryptodev(sim, setup.connection)
    result = _measure_throughput(sim, dev, bytes(range(16)), size, count,
                                 window, deadline=5.0)
    result["mode"] = "fld"
    result["model_gbps"] = zuc_model_gbps(size)
    return result


def cpu_throughput(size: int, count: int = 400,
                   cal: Optional[Calibration] = None) -> Dict:
    """One Fig. 8a point for the single-core software baseline."""
    sim = Simulator()
    cal = cal or Calibration()
    core = CpuCore(sim, cal.cpu_frequency_hz, os_jitter_probability=0.0)
    compute = CpuComputeCost(core, SW_CYCLES_PER_BYTE, SW_CYCLES_PER_OP)
    dev = SwZucCryptodev(sim, compute)
    result = _measure_throughput(sim, dev, bytes(range(16)), size, count,
                                 window=16, deadline=5.0)
    result["mode"] = "cpu"
    result["model_gbps"] = zuc_model_gbps(size)
    return result


def figure8a(sizes: Optional[List[int]] = None,
             count: int = 300) -> List[Dict]:
    """Fig. 8a: encryption throughput vs request size, FLD vs CPU."""
    sizes = sizes or [64, 128, 256, 512, 1024, 2048, 4096]
    rows = []
    for size in sizes:
        rows.append(fld_throughput(size, count))
        rows.append(cpu_throughput(size, count))
    return rows


def figure8b(loads: Optional[List[int]] = None, size: int = 512,
             count: int = 300,
             cal: Optional[Calibration] = None) -> List[Dict]:
    """Fig. 8b: latency vs offered load for both implementations.

    ``loads`` are window sizes (outstanding requests) — the knob
    test-crypto-perf uses to raise utilization.
    """
    loads = loads or [1, 2, 4, 8, 16, 32, 64]
    rows = []
    for window in loads:
        sim = Simulator()
        setup = zuc_service(sim, cal)
        dev = FldRZucCryptodev(sim, setup.connection)
        result = _measure_throughput(sim, dev, bytes(range(16)), size,
                                     count, window, deadline=5.0)
        result["mode"] = "fld"
        result["window"] = window
        rows.append(result)

        sim = Simulator()
        cal2 = cal or Calibration()
        core = CpuCore(sim, cal2.cpu_frequency_hz,
                       os_jitter_probability=0.0)
        compute = CpuComputeCost(core, SW_CYCLES_PER_BYTE, SW_CYCLES_PER_OP)
        cpu_dev = SwZucCryptodev(sim, compute)
        cpu_result = _measure_throughput(sim, cpu_dev, bytes(range(16)),
                                         size, count, window, deadline=5.0)
        cpu_result["mode"] = "cpu"
        cpu_result["window"] = window
        rows.append(cpu_result)
    return rows
