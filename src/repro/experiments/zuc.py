"""The disaggregated ZUC accelerator experiments (§8.2.1, Fig. 8).

Measures encryption throughput and latency through the DPDK-style
cryptodev API, comparing:

* the **remote FLD accelerator** (8 ZUC units over FLD-R / 25 GbE),
* the **CPU software driver** (one core running the real cipher at
  IPsec-MB-class cycles/byte),
* the **performance model** upper bound (RoCE + application headers).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..host import CpuComputeCost, CpuCore
from ..models.perf import zuc_model_gbps
from ..sim import LatencyCollector, Simulator
from ..sweep import SweepCache, SweepPoint, run_sweep
from ..sw import CryptoOp, FldRZucCryptodev, SwZucCryptodev
from .setups import Calibration, zuc_service

#: Software ZUC cost: Intel IPsec-MB class performance (§8.2.1's CPU
#: baseline reaches ~1/4 of the accelerator at 512 B requests).
SW_CYCLES_PER_BYTE = 3.0
SW_CYCLES_PER_OP = 600


def _measure_throughput(sim, dev, key: bytes, size: int, count: int,
                        window: int, deadline: float) -> Dict:
    """Closed-loop with ``window`` outstanding ops (test-crypto-perf)."""
    state = {"completed": 0, "first": None, "last": None}
    latency = LatencyCollector()

    def runner(sim):
        submitted = 0
        for _ in range(min(window, count)):
            dev.submit(CryptoOp(CryptoOp.CIPHER, key, bytes(size)))
            submitted += 1
        while state["completed"] < count:
            op = yield dev.completions.get()
            latency.add(op.latency)
            state["completed"] += 1
            if state["first"] is None:
                state["first"] = sim.now
            state["last"] = sim.now
            if submitted < count:
                dev.submit(CryptoOp(CryptoOp.CIPHER, key, bytes(size)))
                submitted += 1

    sim.spawn(runner(sim))
    sim.run(until=deadline)
    duration = (state["last"] or 0) - (state["first"] or 0)
    completed = state["completed"]
    gbps = (completed - 1) * size * 8 / duration / 1e9 if duration > 0 else 0
    return {
        "size": size,
        "completed": completed,
        "gbps": gbps,
        "median_latency_us": latency.median * 1e6 if len(latency) else None,
        "p99_latency_us": latency.pct(99) * 1e6 if len(latency) else None,
    }


def fld_throughput(size: int, count: int = 400, window: int = 64,
                   cal: Optional[Calibration] = None) -> Dict:
    """One Fig. 8a point for the remote accelerator."""
    sim = Simulator()
    setup = zuc_service(sim, cal)
    dev = FldRZucCryptodev(sim, setup.connection)
    result = _measure_throughput(sim, dev, bytes(range(16)), size, count,
                                 window, deadline=5.0)
    result["mode"] = "fld"
    result["window"] = window
    result["model_gbps"] = zuc_model_gbps(size)
    return result


def cpu_throughput(size: int, count: int = 400, window: int = 16,
                   cal: Optional[Calibration] = None) -> Dict:
    """One Fig. 8a point for the single-core software baseline."""
    sim = Simulator()
    cal = cal or Calibration()
    core = CpuCore(sim, cal.cpu_frequency_hz, os_jitter_probability=0.0)
    compute = CpuComputeCost(core, SW_CYCLES_PER_BYTE, SW_CYCLES_PER_OP)
    dev = SwZucCryptodev(sim, compute)
    result = _measure_throughput(sim, dev, bytes(range(16)), size, count,
                                 window=window, deadline=5.0)
    result["mode"] = "cpu"
    result["window"] = window
    result["model_gbps"] = zuc_model_gbps(size)
    return result


def fig8a_points(sizes: Optional[List[int]] = None,
                 count: int = 300) -> List[SweepPoint]:
    """Fig. 8a as independent points: (implementation, request size)."""
    sizes = sizes or [64, 128, 256, 512, 1024, 2048, 4096]
    points = []
    for size in sizes:
        points.append(SweepPoint(
            "fig8a", "repro.experiments.zuc:fld_throughput",
            {"size": size, "count": count}))
        points.append(SweepPoint(
            "fig8a", "repro.experiments.zuc:cpu_throughput",
            {"size": size, "count": count}))
    return points


def figure8a(sizes: Optional[List[int]] = None, count: int = 300,
             jobs: int = 1,
             cache: Optional[SweepCache] = None) -> List[Dict]:
    """Fig. 8a: encryption throughput vs request size, FLD vs CPU."""
    return run_sweep(fig8a_points(sizes, count),
                     jobs=jobs, cache=cache).rows


def fig8b_points(loads: Optional[List[int]] = None, size: int = 512,
                 count: int = 300) -> List[SweepPoint]:
    """Fig. 8b as independent points: one per (implementation, window).

    ``loads`` are window sizes (outstanding requests) — the knob
    test-crypto-perf uses to raise utilization.
    """
    loads = loads or [1, 2, 4, 8, 16, 32, 64]
    points = []
    for window in loads:
        points.append(SweepPoint(
            "fig8b", "repro.experiments.zuc:fld_throughput",
            {"size": size, "count": count, "window": window}))
        points.append(SweepPoint(
            "fig8b", "repro.experiments.zuc:cpu_throughput",
            {"size": size, "count": count, "window": window}))
    return points


def figure8b(loads: Optional[List[int]] = None, size: int = 512,
             count: int = 300, jobs: int = 1,
             cache: Optional[SweepCache] = None) -> List[Dict]:
    """Fig. 8b: latency vs offered load for both implementations."""
    return run_sweep(fig8b_points(loads, size, count),
                     jobs=jobs, cache=cache).rows
