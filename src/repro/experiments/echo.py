"""Echo microbenchmark experiments (§8.1: Fig. 7b, Fig. 7c, Table 6,
and the mixed-size trace of §8.1.1)."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..models.perf import expected_echo_gbps
from ..net import ImcDatacenterSizes
from ..sim import LatencyCollector, Simulator
from ..sweep import SweepCache, SweepPoint, run_sweep
from .setups import Calibration, cpu_echo_remote, flde_echo_local, \
    flde_echo_remote, fldr_echo


def _run_loadgen_throughput(sim, loadgen, size: int, count: int,
                            deadline: float = 2.0,
                            pace_bps: float = 25e9) -> Dict:
    # Offer exactly line rate for this size; the measured echo rate then
    # reflects the path's capacity, not transient queueing of a burst.
    rate_pps = pace_bps / ((size + 24) * 8)

    def run(sim):
        yield from loadgen.run_open_loop([size] * count, rate_pps=rate_pps)
        yield from loadgen.drain()

    sim.spawn(run(sim))
    sim.run(until=deadline)
    return {
        "size": size,
        "sent": loadgen.stats_sent,
        "received": loadgen.stats_received,
        "gbps": loadgen.rx_meter.gbps(wire_overhead_per_packet=24),
        "mpps": loadgen.rx_meter.mpps(),
    }


def echo_throughput(mode: str, size: int, count: int = 2000,
                    cal: Optional[Calibration] = None,
                    telemetry=None) -> Dict:
    """One point of Fig. 7b: echo goodput at ``size`` for a given mode.

    Modes: ``flde-remote``, ``flde-local``, ``cpu-remote``.  Pass a
    :class:`repro.telemetry.Telemetry` to record metrics and a trace of
    the run (``python -m repro trace fig7b``).
    """
    sim = Simulator(telemetry=telemetry)
    cal = cal or Calibration()
    if mode == "flde-remote":
        setup = flde_echo_remote(sim, cal)
    elif mode == "flde-local":
        setup = flde_echo_local(sim, cal)
    elif mode == "cpu-remote":
        setup = cpu_echo_remote(sim, cal, jitter=False)
    else:
        raise ValueError(f"unknown echo mode {mode!r}")
    line_bps = 25e9 if mode.endswith("remote") else 50e9
    result = _run_loadgen_throughput(sim, setup.loadgen, size, count,
                                     pace_bps=line_bps)
    result["mode"] = mode
    result["model_gbps"] = expected_echo_gbps(size, line_bps, 50e9)
    return result


def fig7b_points(sizes: Optional[List[int]] = None, count: int = 1500,
                 modes: Optional[List[str]] = None,
                 telemetry=False) -> List[SweepPoint]:
    """The Fig. 7b sweep as independent points: one per (mode, size)."""
    sizes = sizes or [64, 128, 256, 512, 1024, 1500]
    modes = modes or ["flde-remote", "flde-local", "cpu-remote"]
    return [
        SweepPoint("fig7b", "repro.experiments.echo:echo_throughput",
                   {"mode": mode, "size": size, "count": count},
                   telemetry=telemetry)
        for mode in modes for size in sizes
    ]


def figure7b(sizes: Optional[List[int]] = None, count: int = 1500,
             modes: Optional[List[str]] = None, jobs: int = 1,
             cache: Optional[SweepCache] = None) -> List[Dict]:
    """The Fig. 7b sweep: bandwidth vs packet size per mode."""
    return run_sweep(fig7b_points(sizes, count, modes),
                     jobs=jobs, cache=cache).rows


def echo_latency(mode: str, count: int = 3000, frame_size: int = 64,
                 cal: Optional[Calibration] = None,
                 telemetry=None) -> Dict:
    """Table 6: closed-loop 64 B echo round-trip statistics."""
    sim = Simulator(telemetry=telemetry)
    cal = cal or Calibration()
    if mode == "flde":
        setup = flde_echo_remote(sim, cal)
    elif mode == "cpu":
        setup = cpu_echo_remote(sim, cal, jitter=True)
    else:
        raise ValueError(f"unknown latency mode {mode!r}")
    loadgen = setup.loadgen

    def run(sim):
        yield from loadgen.run_closed_loop(frame_size, count, window=1)
        yield from loadgen.drain()

    sim.spawn(run(sim))
    sim.run(until=10.0)
    summary = loadgen.latency.summary()
    return {
        "mode": mode,
        "count": len(loadgen.latency),
        "mean_us": summary["mean"] * 1e6,
        "median_us": summary["median"] * 1e6,
        "p99_us": summary["p99"] * 1e6,
        "p999_us": summary["p99.9"] * 1e6,
    }


def table6_points(count: int = 3000, frame_size: int = 64,
                  telemetry=False) -> List[SweepPoint]:
    return [
        SweepPoint("table6", "repro.experiments.echo:echo_latency",
                   {"mode": mode, "count": count,
                    "frame_size": frame_size},
                   telemetry=telemetry)
        for mode in ("flde", "cpu")
    ]


def table6(count: int = 3000, jobs: int = 1,
           cache: Optional[SweepCache] = None) -> List[Dict]:
    return run_sweep(table6_points(count), jobs=jobs, cache=cache).rows


def forwarding_points(count: int = 6000, seed: int = 7,
                      telemetry=False) -> List[SweepPoint]:
    """§8.1.1 mixed-size trace forwarding, FLD-E vs one CPU core."""
    return [
        SweepPoint("forwarding",
                   "repro.experiments.echo:trace_forwarding",
                   {"mode": mode, "count": count, "seed": seed},
                   telemetry=telemetry)
        for mode in ("flde", "cpu")
    ]


def trace_forwarding(mode: str, count: int = 6000, seed: int = 7,
                     cal: Optional[Calibration] = None,
                     telemetry=None) -> Dict:
    """§8.1.1: forwarding the IMC-2010-like mixed-size trace.

    Reports Mpps — the paper's 12.7 (FLD-E) vs 9.6 (one CPU core).
    """
    sim = Simulator(telemetry=telemetry)
    cal = cal or Calibration()
    if mode == "flde":
        setup = flde_echo_remote(sim, cal, units=4)
    elif mode == "cpu":
        setup = cpu_echo_remote(sim, cal, jitter=False)
    else:
        raise ValueError(f"unknown trace mode {mode!r}")
    sizes = ImcDatacenterSizes(seed=seed).sizes(count)
    loadgen = setup.loadgen

    def run(sim):
        yield from loadgen.run_open_loop(sizes)
        yield from loadgen.drain()

    sim.spawn(run(sim))
    sim.run(until=5.0)
    return {
        "mode": mode,
        "received": loadgen.stats_received,
        "sent": loadgen.stats_sent,
        "mpps": loadgen.rx_meter.mpps(),
        "gbps": loadgen.rx_meter.gbps(24),
    }


def fldr_load_point(rate: float, message_size: int = 1024,
                    local: bool = False, per_point: int = 800,
                    cal: Optional[Calibration] = None) -> Dict:
    """One Fig. 7c point: FLD-R latency at one offered request rate.

    Runs an open-loop Poisson-ish arrival (fixed gap) and reports
    median latency and achieved throughput.
    """
    sim = Simulator()
    setup = fldr_echo(sim, cal, local=local)
    connection = setup.connection
    latency = LatencyCollector()
    sent_times: List[float] = []
    state = {"received": 0, "first_rx": None, "last_rx": None}

    def receiver(sim):
        # RC QPs are FIFO: response i answers request i.
        while True:
            _message, _cqe = yield connection.responses.get()
            index = state["received"]
            state["received"] += 1
            if index < len(sent_times):
                latency.add(sim.now - sent_times[index])
            if state["first_rx"] is None:
                state["first_rx"] = sim.now
            state["last_rx"] = sim.now

    def sender(sim):
        gap = 1.0 / rate
        for _ in range(per_point):
            sent_times.append(sim.now)
            connection.post(bytes(message_size))
            yield sim.timeout(gap)

    sim.spawn(receiver(sim))
    sim.spawn(sender(sim))
    sim.run(until=per_point / rate + 0.05)
    duration = ((state["last_rx"] or 0.0) - (state["first_rx"] or 0.0))
    achieved = state["received"] / duration if duration > 0 else 0.0
    return {
        "offered_mps": rate,
        "received": state["received"],
        "achieved_mps": achieved,
        "achieved_gbps": achieved * message_size * 8 / 1e9,
        "median_latency_us": (latency.median * 1e6
                              if len(latency) else None),
        "p99_latency_us": (latency.pct(99) * 1e6
                           if len(latency) else None),
    }


def fig7c_points(loads: Optional[List[float]] = None,
                 message_size: int = 1024, local: bool = False,
                 per_point: int = 800) -> List[SweepPoint]:
    if loads is None:
        peak = 25e9 / ((message_size + 150) * 8)  # rough saturation rate
        loads = [peak * f for f in (0.1, 0.3, 0.5, 0.7, 0.8, 0.9)]
    return [
        SweepPoint("fig7c", "repro.experiments.echo:fldr_load_point",
                   {"rate": rate, "message_size": message_size,
                    "local": local, "per_point": per_point})
        for rate in loads
    ]


def fldr_latency_vs_load(loads: Optional[List[float]] = None,
                         message_size: int = 1024, local: bool = False,
                         per_point: int = 800,
                         cal: Optional[Calibration] = None,
                         jobs: int = 1,
                         cache: Optional[SweepCache] = None) -> List[Dict]:
    """Fig. 7c: FLD-R 1 KiB message latency as load increases."""
    if cal is not None:
        # A custom calibration is not JSON-addressable; run directly.
        if loads is None:
            peak = 25e9 / ((message_size + 150) * 8)
            loads = [peak * f for f in (0.1, 0.3, 0.5, 0.7, 0.8, 0.9)]
        return [fldr_load_point(rate, message_size, local, per_point, cal)
                for rate in loads]
    return run_sweep(fig7c_points(loads, message_size, local, per_point),
                     jobs=jobs, cache=cache).rows


def fldr_throughput(size: int, count: int = 400, window: int = 64,
                    local: bool = False,
                    cal: Optional[Calibration] = None,
                    telemetry=None) -> Dict:
    """Fig. 7b's right column: FLD-R echo goodput at ``size``.

    Messages above the 1024 B RoCE MTU exercise the NIC's hardware
    segmentation — the transport offload FLD gets for free (§8.1.2).
    """
    sim = Simulator(telemetry=telemetry)
    setup = fldr_echo(sim, cal, local=local)
    connection = setup.connection
    # Application-layer flow control (§5.5): keep the outstanding bytes
    # within FLD's on-chip buffering so the no-backpressure rx stream is
    # never overrun.
    window = max(4, min(window, (128 * 1024) // max(size, 1)))
    state = {"received": 0, "first": None, "last": None}

    def runner(sim):
        sent = 0
        for _ in range(min(window, count)):
            connection.post(bytes(size))
            sent += 1
        while state["received"] < count:
            _message, _cqe = yield connection.responses.get()
            state["received"] += 1
            state["first"] = state["first"] or sim.now
            state["last"] = sim.now
            if sent < count:
                connection.post(bytes(size))
                sent += 1

    sim.spawn(runner(sim))
    sim.run(until=5.0)
    duration = (state["last"] or 1.0) - (state["first"] or 0.0)
    gbps = ((state["received"] - 1) * size * 8 / duration / 1e9
            if duration > 0 else 0.0)
    segments = max(1, -(-size // 1024))
    return {
        "mode": "fldr-local" if local else "fldr-remote",
        "size": size,
        "received": state["received"],
        "gbps": gbps,
        "segments_per_message": segments,
    }


def fldr_points(sizes: Optional[List[int]] = None, count: int = 400,
                window: int = 64, local: bool = False,
                telemetry=False) -> List[SweepPoint]:
    """Fig. 7b's FLD-R column: RDMA echo goodput per message size."""
    sizes = sizes or [64, 256, 512, 1024, 4096, 8192]
    return [
        SweepPoint("fig7b-fldr",
                   "repro.experiments.echo:fldr_throughput",
                   {"size": size, "count": count, "window": window,
                    "local": local},
                   telemetry=telemetry)
        for size in sizes
    ]
