"""The IoT token-authentication experiments (§8.2.3).

Two parts:

* **line rate** — valid-token CoAP traffic at increasing packet sizes;
  the offload meets 25 GbE line rate for packets >= 256 B;
* **isolation** — two tenants offering 8 and 16 Gbps against an
  accelerator configured to accept 12 Gbps.  Without shaping the
  accelerator is divided in proportion to arrival rate (paper: 4.15 vs
  8.35 Gbps); with the NIC shaping both tenants to 6 Gbps, tenant A gets
  its full allocation (6 vs 6).
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, List, Optional

from ..accelerators.iot import CoapMessage, POST, sign_token
from ..net import Flow, MacAddress
from ..nic import ForwardToQueue, MatchSpec
from ..sim import Simulator
from ..sw import FldEControlPlane
from ..sweep import SweepCache, SweepPoint, run_sweep
from ..topology import (
    AccelFnSpec,
    FldSpec,
    HostQpSpec,
    LinkSpec,
    NodeSpec,
    TopologySpec,
    VportSpec,
)
from ..topology import build as build_topology
from .setups import CLIENT_MAC, CLIENT_IP, Calibration, SERVER_IP, SERVER_MAC

TENANT_A, TENANT_B = 1, 2
KEY_A = b"tenant-a-secret-hmac-key"
KEY_B = b"tenant-b-secret-hmac-key"


def make_iot_frame(flow: Flow, key: bytes, frame_size: int,
                   valid: bool = True) -> bytes:
    """A CoAP-over-UDP frame carrying an HS256 JWT, padded to size."""
    token = sign_token({"sub": "sensor", "seq": 1}, key if valid
                       else b"wrong-key")
    coap = CoapMessage(code=POST, payload=token + b"\x00")
    packet = flow.make_packet(coap.pack(), fill_checksums=False)
    pad = frame_size - packet.size()
    if pad > 0:
        coap = CoapMessage(code=POST, payload=token + b"\x00" + bytes(pad))
        packet = flow.make_packet(coap.pack(), fill_checksums=False)
    return packet.to_bytes()


def build(cal: Optional[Calibration] = None,
          capacity_gbps: Optional[float] = None,
          tenant_limits_gbps: Optional[Dict[int, float]] = None):
    """Server with the IoT offload; tenants classified by source IP."""
    cal = cal or Calibration()
    sim = Simulator()
    spec = TopologySpec(
        name="iot-auth",
        nodes=[NodeSpec(name="client", core="loadgen"),
               NodeSpec(name="server")],
        links=[LinkSpec(a="client", b="server")],
        vports=[VportSpec(node="client", vport=1, mac=CLIENT_MAC),
                VportSpec(node="server", vport=1, mac=SERVER_MAC)],
        flds=[FldSpec(node="server")],
        accel_fns=[AccelFnSpec(name="iot-auth", fld="server.fld",
                               kind="iot-auth", vport=1, units=8,
                               rx_default=False)],
        # Post-auth delivery: validated packets land in a host queue.
        host_qps=[HostQpSpec(name="host", node="server", vport=1,
                             register_default=False, rq_entries=4096,
                             post_rx=4096)],
    )
    testbed = build_topology(sim, spec, cal=cal)
    client, server = testbed.node("client"), testbed.node("server")
    fn = testbed.accel("iot-auth")
    runtime, fld_rq, accel = fn.runtime, fn.rq, fn.accel
    accel.set_tenant_key(TENANT_A, KEY_A)
    accel.set_tenant_key(TENANT_B, KEY_B)
    if capacity_gbps is not None:
        accel.capacity_bps = capacity_gbps * 1e9

    host_qp = testbed.host_qp("host")
    control = FldEControlPlane(runtime, vport=1)
    limits = tenant_limits_gbps or {}
    control.add_tenant(
        TENANT_A, MatchSpec(src_ip="10.0.0.1"), fld_rq,
        [ForwardToQueue(host_qp.rq)],
        rate_bps=(limits.get(TENANT_A, 0) * 1e9 or None),
    )
    control.add_tenant(
        TENANT_B, MatchSpec(src_ip="10.0.0.3"), fld_rq,
        [ForwardToQueue(host_qp.rq)],
        rate_bps=(limits.get(TENANT_B, 0) * 1e9 or None),
    )

    client_qp = client.driver.create_eth_qp(vport=1, use_mmio_wqe=True,
                                            sq_entries=4096)
    client_qp.post_rx_buffers(64)
    flow_a = Flow(CLIENT_MAC, SERVER_MAC, "10.0.0.1", SERVER_IP, 5001, 5683)
    flow_b = Flow(CLIENT_MAC, SERVER_MAC, "10.0.0.3", SERVER_IP, 5002, 5683)
    return SimpleNamespace(sim=sim, client=client, server=server,
                           accel=accel, client_qp=client_qp,
                           flow_a=flow_a, flow_b=flow_b, host_qp=host_qp,
                           control=control, testbed=testbed)


def _paced_sender(sim, qp, frame: bytes, rate_bps: float, duration: float):
    """Offer ``frame`` at ``rate_bps`` for ``duration`` seconds."""
    gap = len(frame) * 8 / rate_bps
    end = sim.now + duration
    while sim.now < end:
        yield from qp.wait_for_tx_space()
        qp.send(frame)
        yield sim.timeout(gap)


def line_rate_point(size: int, duration: float = 0.4e-3) -> Dict:
    """One §8.2.3 line-rate point: valid-token traffic at one size."""
    setup = build()
    sim = setup.sim
    frame = make_iot_frame(setup.flow_a, KEY_A, size)
    sim.spawn(_paced_sender(sim, setup.client_qp, frame, 25e9,
                            duration))
    sim.run(until=duration + 0.2e-3)
    valid_bytes = setup.accel.stats_tenant_valid_bytes.get(TENANT_A, 0)
    return {
        "size": len(frame),
        "validated_gbps": valid_bytes * 8 / duration / 1e9,
        "offered_gbps": 25.0,
        "invalid": setup.accel.stats_invalid,
    }


def line_rate_points(sizes: Optional[List[int]] = None,
                     duration: float = 0.4e-3) -> List[SweepPoint]:
    sizes = sizes or [256, 512, 1024, 1500]
    return [
        SweepPoint("iot-line-rate",
                   "repro.experiments.iot:line_rate_point",
                   {"size": size, "duration": duration})
        for size in sizes
    ]


def line_rate_sweep(sizes: Optional[List[int]] = None,
                    duration: float = 0.4e-3, jobs: int = 1,
                    cache: Optional[SweepCache] = None) -> List[Dict]:
    """§8.2.3: the offload meets line rate for packets >= 256 B."""
    return run_sweep(line_rate_points(sizes, duration),
                     jobs=jobs, cache=cache).rows


def isolation(shaped: bool, duration: float = 4e-3,
              frame_size: int = 1024) -> Dict:
    """§8.2.3 isolation: 8 + 16 Gbps tenants, 12 Gbps accelerator."""
    limits = {TENANT_A: 6.0, TENANT_B: 6.0} if shaped else None
    setup = build(capacity_gbps=12.0, tenant_limits_gbps=limits)
    sim = setup.sim
    frame_a = make_iot_frame(setup.flow_a, KEY_A, frame_size)
    frame_b = make_iot_frame(setup.flow_b, KEY_B, frame_size)
    sim.spawn(_paced_sender(sim, setup.client_qp, frame_a, 8e9, duration))
    sim.spawn(_paced_sender(sim, setup.client_qp, frame_b, 16e9, duration))
    sim.run(until=duration + 1e-3)
    bytes_a = setup.accel.stats_tenant_valid_bytes.get(TENANT_A, 0)
    bytes_b = setup.accel.stats_tenant_valid_bytes.get(TENANT_B, 0)
    return {
        "shaped": shaped,
        "tenant_a_gbps": bytes_a * 8 / duration / 1e9,
        "tenant_b_gbps": bytes_b * 8 / duration / 1e9,
        "dropped": setup.accel.stats_dropped,
        "meter_drops": setup.server.nic.stats_meter_drops,
    }


def isolation_points(duration: float = 4e-3,
                     frame_size: int = 1024) -> List[SweepPoint]:
    """§8.2.3 isolation, unshaped vs shaped, as two sweep points."""
    return [
        SweepPoint("iot", "repro.experiments.iot:isolation",
                   {"shaped": shaped, "duration": duration,
                    "frame_size": frame_size})
        for shaped in (False, True)
    ]


def drop_invalid_tokens(count: int = 200, frame_size: int = 512) -> Dict:
    """The DDoS story: forged tokens die in the accelerator."""
    setup = build()
    sim = setup.sim
    good = make_iot_frame(setup.flow_a, KEY_A, frame_size, valid=True)
    bad = make_iot_frame(setup.flow_a, KEY_A, frame_size, valid=False)

    def sender(sim):
        for i in range(count):
            yield from setup.client_qp.wait_for_tx_space()
            setup.client_qp.send(good if i % 2 == 0 else bad)
            yield sim.timeout(1e-6)

    sim.spawn(sender(sim))
    sim.run(until=0.01)
    return {
        "valid": setup.accel.stats_valid,
        "invalid": setup.accel.stats_invalid,
        "delivered_to_host": setup.host_qp.stats_rx,
    }
