"""The CPU-mediated accelerator architecture (§3, Fig. 2a).

The third corner of the paper's trade-off triangle: VN2F-style designs
put the host CPU on *every* network transaction — the NIC delivers to
host memory, software relays the data over PCIe to a dumb accelerator
BAR, polls the result back, and retransmits.  Small accelerator area,
full NIC features, but CPU cycles burn per byte and the relay caps
throughput.

This module builds that architecture on the same substrate and measures
what the paper argues qualitatively: the mediated design's throughput
ceiling and host-CPU consumption against FLD's.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, List, Optional

from ..host import CpuCore, LoadGenerator
from ..net import Flow
from ..pcie import MemoryRegion
from ..sim import Simulator, Store
from ..sweep import SweepCache, SweepPoint, run_sweep
from ..topology import (
    ACCEL_BAR_BASE,
    HostQpSpec,
    LinkSpec,
    NodeSpec,
    TopologySpec,
    VportSpec,
)
from ..topology import build as build_topology
from .setups import CLIENT_MAC, CLIENT_IP, Calibration, SERVER_IP, SERVER_MAC


class DumbAccelerator(MemoryRegion):
    """A fixed-function device with only a staging buffer BAR.

    No NIC access, no doorbells toward the network — everything moves
    through the host.  ``process`` transforms staged bytes in place
    after a fixed device latency (the echo workload: identity).
    """

    def __init__(self, sim: Simulator, name: str = "dumb-accel",
                 size: int = 1 << 20, latency: float = 500e-9):
        super().__init__(name, size)
        self.sim = sim
        self.latency = latency
        self.stats_jobs = 0

    def process(self, offset: int, length: int):
        """Event firing when the staged job completes."""
        self.stats_jobs += 1
        return self.sim.timeout(self.latency)


class CpuMediatedEcho:
    """Host software relaying packets NIC <-> accelerator (Fig. 2a)."""

    #: Cycles the relay spends per packet beyond the driver's rx cost:
    #: staging the DMA, polling the device, re-posting the transmit.
    RELAY_CYCLES = 220

    def __init__(self, sim: Simulator, node, qp, core: CpuCore):
        self.sim = sim
        self.node = node
        self.qp = qp
        self.core = core
        self.accel = DumbAccelerator(sim)
        node.fabric.attach(self.accel)
        # Overlap-checked against the node's other BAR windows.
        node.map_window("dumb-accel", ACCEL_BAR_BASE, self.accel.size,
                        self.accel)
        self._pending = Store(sim, capacity=4096, name="mediated.pending")
        self.stats_echoed = 0
        self.stats_cpu_seconds = 0.0
        qp.on_receive = lambda data, cqe: self._pending.try_put(data)
        sim.spawn(self._relay(), name="mediated.relay")

    def _relay(self):
        fabric = self.node.fabric
        cpu_port = self.node.driver.cpu_port
        while True:
            data = yield self._pending.get()
            start = self.sim.now
            # Host CPU stages the packet into the accelerator BAR...
            yield self.sim.timeout(
                self.core.seconds_for_cycles(self.RELAY_CYCLES))
            yield fabric.post_write(cpu_port, ACCEL_BAR_BASE, data)
            # ...busy-polls the device...
            yield self.accel.process(0, len(data))
            # ...reads the result back over PCIe (a blocking MMIO read
            # from the core's point of view)...
            result = yield fabric.read(cpu_port, ACCEL_BAR_BASE, len(data))
            # ...and transmits it (reusing the echo direction swap).
            from ..host.testpmd import swap_directions
            from ..net.parse import parse_frame
            packet = swap_directions(parse_frame(result))
            yield from self.qp.wait_for_tx_space()
            self.qp.send(packet.to_bytes())
            self.stats_echoed += 1
            # The relay core spins for the whole turnaround: this is
            # the "CPU involved in every network transaction" cost.
            self.stats_cpu_seconds += self.sim.now - start


def build(sim: Simulator, cal: Optional[Calibration] = None):
    """Client + CPU-mediated echo server."""
    cal = cal or Calibration()
    spec = TopologySpec(
        name="cpu-mediated-echo",
        nodes=[NodeSpec(name="client", core="loadgen"),
               NodeSpec(name="server", core="app-nojitter")],
        links=[LinkSpec(a="client", b="server")],
        vports=[VportSpec(node="client", vport=1, mac=CLIENT_MAC),
                VportSpec(node="server", vport=1, mac=SERVER_MAC)],
        host_qps=[HostQpSpec(name="client", node="client", vport=1,
                             use_mmio_wqe=True, post_rx=1024),
                  HostQpSpec(name="server", node="server", vport=1,
                             use_mmio_wqe=True, post_rx=1024)],
    )
    testbed = build_topology(sim, spec, cal=cal)
    client, server = testbed.node("client"), testbed.node("server")
    server_qp = testbed.host_qp("server")
    echo = CpuMediatedEcho(sim, server, server_qp, server.core)
    flow = Flow(CLIENT_MAC, SERVER_MAC, CLIENT_IP, SERVER_IP, 7000, 7001)
    loadgen = LoadGenerator(sim, testbed.host_qp("client"), flow)
    return SimpleNamespace(client=client, server=server, echo=echo,
                           loadgen=loadgen, testbed=testbed)


def echo_throughput(size: int, count: int = 1200,
                    cal: Optional[Calibration] = None) -> Dict:
    """One throughput point for the mediated architecture."""
    sim = Simulator()
    setup = build(sim, cal)
    loadgen = setup.loadgen
    rate = 25e9 / ((size + 24) * 8)

    def run(sim):
        yield from loadgen.run_open_loop([size] * count, rate_pps=rate)
        yield from loadgen.drain()

    sim.spawn(run(sim))
    sim.run(until=2.0)
    duration = max(loadgen.rx_meter.duration, 1e-12)
    return {
        "architecture": "cpu-mediated",
        "size": size,
        "gbps": loadgen.rx_meter.gbps(wire_overhead_per_packet=24),
        "mpps": loadgen.rx_meter.mpps(),
        "received": loadgen.stats_received,
        "sent": loadgen.stats_sent,
        # Host CPU utilization of the relay alone (excludes the driver
        # rx path, which FLD also avoids).
        "host_cpu_utilization": setup.echo.stats_cpu_seconds / duration,
    }


def sweep_points(sizes=(64, 256, 1024, 1500),
                 count: int = 1200) -> List[SweepPoint]:
    """The mediated architecture's throughput curve, one point/size."""
    return [
        SweepPoint("cpu-mediated",
                   "repro.experiments.cpu_mediated:echo_throughput",
                   {"size": size, "count": count})
        for size in sizes
    ]


def sweep(sizes=(64, 256, 1024, 1500), count: int = 1200, jobs: int = 1,
          cache: Optional[SweepCache] = None) -> List[Dict]:
    return run_sweep(sweep_points(sizes, count),
                     jobs=jobs, cache=cache).rows
