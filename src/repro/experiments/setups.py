"""Experiment testbed builders (paper §8 "Setup").

Two kinds of experiments:

* **local** — one Innova-2-like node; the load generator runs on the
  host and the eSwitch loops traffic between its vPort and FLD's vPort,
  stressing the PCIe path (ceiling ~50 Gbps);
* **remote** — a client node and a server node back-to-back over 25 GbE.

Builders return small namespace objects with the pieces each experiment
needs; all calibration constants live in :class:`Calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Optional

from ..accelerators import EchoAccelerator, RdmaEchoAccelerator, ZucAccelerator
from ..core.fld import FldConfig
from ..host import CpuCore, EchoApp, LoadGenerator
from ..net import Flow
from ..nic import NicConfig
from ..sim import Simulator
from ..sw import FldRClient, FldRControlPlane, FldRuntime
from ..testbed import Node, connect, make_local_node, make_remote_pair

CLIENT_MAC = "02:00:00:00:00:01"
SERVER_MAC = "02:00:00:00:00:02"
FLD_MAC = "02:00:00:00:00:99"
CLIENT_IP = "10.0.0.1"
SERVER_IP = "10.0.0.2"


@dataclass
class Calibration:
    """Timing constants the experiments share.

    These are the free parameters of the behavioural model; they are
    documented per-experiment in EXPERIMENTS.md.  Defaults target the
    paper's testbed (Haswell + ConnectX-5 + Innova-2 FPGA).
    """

    # Host DPDK data path: ~9.6 Mpps/core forwarding (§8.1.1).
    cpu_packet_cycles: int = 240
    cpu_frequency_hz: float = 2.3e9
    # The load generator (testpmd with vectorized rx across queues) is
    # provisioned not to be the bottleneck it measures.
    loadgen_packet_cycles: int = 100
    # OS interference: rare scheduling events inflate the CPU tail
    # (Table 6's 11.18 us p99.9 vs 2.58 us p99).
    os_jitter_probability: float = 3e-3
    os_jitter_scale: float = 10e-6
    # Fabrics.
    wire_latency: float = 300e-9
    nic_processing: float = 25e-9
    rdma_mtu: int = 1024
    # FLD's FPGA pipeline is clocked slower than the NIC ASIC: §8.1.1
    # attributes FLD-E's higher mean latency to it.
    fld_pipeline_latency: float = 300e-9

    def client_core(self, sim: Simulator) -> CpuCore:
        return CpuCore(sim, self.cpu_frequency_hz,
                       self.loadgen_packet_cycles,
                       os_jitter_probability=0.0)

    def server_core(self, sim: Simulator, jitter: bool = True) -> CpuCore:
        return CpuCore(
            sim, self.cpu_frequency_hz, self.cpu_packet_cycles,
            os_jitter_probability=self.os_jitter_probability if jitter else 0,
            os_jitter_scale=self.os_jitter_scale,
        )

    def nic_config(self) -> NicConfig:
        return NicConfig(port_latency=self.wire_latency,
                         processing_delay=self.nic_processing,
                         rdma_mtu=self.rdma_mtu)

    def fld_config(self) -> FldConfig:
        return FldConfig(pipeline_latency=self.fld_pipeline_latency)


def flde_echo_remote(sim: Simulator, cal: Optional[Calibration] = None,
                     units: int = 2) -> SimpleNamespace:
    """Remote FLD-E echo: client testpmd -> wire -> NIC -> FLD -> echo."""
    cal = cal or Calibration()
    client, server = make_remote_pair(sim, nic_config=cal.nic_config(),
                                      client_core=cal.client_core(sim))
    client.add_vport_for_mac(1, CLIENT_MAC)
    server.add_vport_for_mac(2, FLD_MAC)
    runtime = FldRuntime(server, fld_config=cal.fld_config())
    rq = runtime.create_rx_queue(vport=2)
    txq = runtime.create_eth_tx_queue(vport=2)
    accel = EchoAccelerator(sim, runtime.fld, units=units, tx_queue=txq)
    client_qp = client.driver.create_eth_qp(vport=1, use_mmio_wqe=True)
    client_qp.post_rx_buffers(1024)
    flow = Flow(CLIENT_MAC, FLD_MAC, CLIENT_IP, SERVER_IP, 7000, 7001)
    loadgen = LoadGenerator(sim, client_qp, flow)
    return SimpleNamespace(client=client, server=server, runtime=runtime,
                           accel=accel, loadgen=loadgen, rq=rq)


def flde_echo_local(sim: Simulator, cal: Optional[Calibration] = None,
                    units: int = 2) -> SimpleNamespace:
    """Local FLD-E echo: one node, eSwitch loopback between vPorts."""
    cal = cal or Calibration()
    node = make_local_node(sim, nic_config=cal.nic_config(),
                           core=cal.client_core(sim))
    node.add_vport_for_mac(1, CLIENT_MAC)
    node.add_vport_for_mac(2, FLD_MAC)
    runtime = FldRuntime(node, fld_config=cal.fld_config())
    rq = runtime.create_rx_queue(vport=2)
    txq = runtime.create_eth_tx_queue(vport=2)
    accel = EchoAccelerator(sim, runtime.fld, units=units, tx_queue=txq)
    qp = node.driver.create_eth_qp(vport=1, use_mmio_wqe=True)
    qp.post_rx_buffers(1024)
    flow = Flow(CLIENT_MAC, FLD_MAC, CLIENT_IP, SERVER_IP, 7000, 7001)
    loadgen = LoadGenerator(sim, qp, flow)
    return SimpleNamespace(client=node, server=node, runtime=runtime,
                           accel=accel, loadgen=loadgen, rq=rq)


def cpu_echo_remote(sim: Simulator, cal: Optional[Calibration] = None,
                    jitter: bool = True) -> SimpleNamespace:
    """The CPU baseline: DPDK testpmd echoing on the server host."""
    cal = cal or Calibration()
    client, server = make_remote_pair(
        sim, nic_config=cal.nic_config(),
        client_core=cal.client_core(sim),
        server_core=cal.server_core(sim, jitter=jitter),
    )
    client.add_vport_for_mac(1, CLIENT_MAC)
    server.add_vport_for_mac(1, SERVER_MAC)
    client_qp = client.driver.create_eth_qp(vport=1, use_mmio_wqe=True)
    client_qp.post_rx_buffers(1024)
    server_qp = server.driver.create_eth_qp(vport=1, use_mmio_wqe=True)
    server_qp.post_rx_buffers(1024)
    echo = EchoApp(server_qp)
    flow = Flow(CLIENT_MAC, SERVER_MAC, CLIENT_IP, SERVER_IP, 7000, 7001)
    loadgen = LoadGenerator(sim, client_qp, flow)
    return SimpleNamespace(client=client, server=server, echo=echo,
                           loadgen=loadgen)


def fldr_echo(sim: Simulator, cal: Optional[Calibration] = None,
              local: bool = False, units: int = 2) -> SimpleNamespace:
    """FLD-R echo: a host RDMA client against an FLD echo accelerator."""
    cal = cal or Calibration()
    if local:
        node = make_local_node(sim, nic_config=cal.nic_config(),
                               core=cal.client_core(sim))
        client = server = node
        client.add_vport_for_mac(1, CLIENT_MAC)
        server.add_vport_for_mac(2, FLD_MAC)
    else:
        client, server = make_remote_pair(sim, nic_config=cal.nic_config(),
                                          client_core=cal.client_core(sim))
        client.add_vport_for_mac(1, CLIENT_MAC)
        server.add_vport_for_mac(2, FLD_MAC)
    runtime = FldRuntime(server, fld_config=cal.fld_config())
    control = FldRControlPlane(runtime, vport=2, mac=FLD_MAC, ip=SERVER_IP)
    accel = RdmaEchoAccelerator(sim, runtime.fld, units=units)
    fld_client = FldRClient(client.driver, vport=1, mac=CLIENT_MAC,
                            ip=CLIENT_IP, buffer_size=16 * 1024)
    connection = fld_client.connect(control)
    # Point the echo at the connection's reply queue.
    accel.tx_queue = connection.info.queue_id
    return SimpleNamespace(client=client, server=server, runtime=runtime,
                           accel=accel, connection=connection,
                           control=control)


def zuc_service(sim: Simulator, cal: Optional[Calibration] = None,
                units: int = 8) -> SimpleNamespace:
    """The disaggregated ZUC accelerator behind FLD-R (§8.2.1)."""
    cal = cal or Calibration()
    client, server = make_remote_pair(sim, nic_config=cal.nic_config(),
                                      client_core=cal.client_core(sim))
    client.add_vport_for_mac(1, CLIENT_MAC)
    server.add_vport_for_mac(2, FLD_MAC)
    runtime = FldRuntime(server, fld_config=cal.fld_config())
    control = FldRControlPlane(runtime, vport=2, mac=FLD_MAC, ip=SERVER_IP)
    accel = ZucAccelerator(sim, runtime.fld, units=units,
                           queue_map=control.queue_map)
    fld_client = FldRClient(client.driver, vport=1, mac=CLIENT_MAC,
                            ip=CLIENT_IP, buffer_size=16 * 1024)
    connection = fld_client.connect(control)
    return SimpleNamespace(client=client, server=server, runtime=runtime,
                           accel=accel, connection=connection,
                           control=control, calibration=cal)
