"""Experiment testbed builders (paper §8 "Setup").

Two kinds of experiments:

* **local** — one Innova-2-like node; the load generator runs on the
  host and the eSwitch loops traffic between its vPort and FLD's vPort,
  stressing the PCIe path (ceiling ~50 Gbps);
* **remote** — a client node and a server node back-to-back over 25 GbE.

Each builder declares its testbed as a :class:`repro.topology.TopologySpec`
and elaborates it with :func:`repro.topology.build`; only the
application wiring (flows, load generators, control planes) stays
imperative.  Builders return small namespace objects with the pieces
each experiment needs; all calibration constants live in
:class:`Calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace
from typing import Optional

from ..accelerators import RdmaEchoAccelerator, ZucAccelerator
from ..core.fld import FldConfig
from ..host import CpuCore, EchoApp, LoadGenerator
from ..net import Flow
from ..nic import NicConfig
from ..sim import Simulator
from ..sw import FldRClient, FldRControlPlane
from ..topology import (
    AccelFnSpec,
    FldSpec,
    HostQpSpec,
    LinkSpec,
    NodeSpec,
    TopologySpec,
    VportSpec,
    build,
)

CLIENT_MAC = "02:00:00:00:00:01"
SERVER_MAC = "02:00:00:00:00:02"
FLD_MAC = "02:00:00:00:00:99"
CLIENT_IP = "10.0.0.1"
SERVER_IP = "10.0.0.2"


@dataclass
class Calibration:
    """Timing constants the experiments share.

    These are the free parameters of the behavioural model; they are
    documented per-experiment in EXPERIMENTS.md.  Defaults target the
    paper's testbed (Haswell + ConnectX-5 + Innova-2 FPGA).
    """

    # Host DPDK data path: ~9.6 Mpps/core forwarding (§8.1.1).
    cpu_packet_cycles: int = 240
    cpu_frequency_hz: float = 2.3e9
    # The load generator (testpmd with vectorized rx across queues) is
    # provisioned not to be the bottleneck it measures.
    loadgen_packet_cycles: int = 100
    # OS interference: rare scheduling events inflate the CPU tail
    # (Table 6's 11.18 us p99.9 vs 2.58 us p99).
    os_jitter_probability: float = 3e-3
    os_jitter_scale: float = 10e-6
    # Fabrics.
    wire_latency: float = 300e-9
    nic_processing: float = 25e-9
    rdma_mtu: int = 1024
    # FLD's FPGA pipeline is clocked slower than the NIC ASIC: §8.1.1
    # attributes FLD-E's higher mean latency to it.
    fld_pipeline_latency: float = 300e-9

    def client_core(self, sim: Simulator) -> CpuCore:
        return CpuCore(sim, self.cpu_frequency_hz,
                       self.loadgen_packet_cycles,
                       os_jitter_probability=0.0)

    def server_core(self, sim: Simulator, jitter: bool = True) -> CpuCore:
        return CpuCore(
            sim, self.cpu_frequency_hz, self.cpu_packet_cycles,
            os_jitter_probability=self.os_jitter_probability if jitter else 0,
            os_jitter_scale=self.os_jitter_scale,
        )

    def nic_config(self) -> NicConfig:
        return NicConfig(port_latency=self.wire_latency,
                         processing_delay=self.nic_processing,
                         rdma_mtu=self.rdma_mtu)

    def fld_config(self) -> FldConfig:
        return FldConfig(pipeline_latency=self.fld_pipeline_latency)


def flde_echo_remote_spec(units: int = 2) -> TopologySpec:
    """The remote FLD-E echo testbed, as data."""
    return TopologySpec(
        name="flde-echo-remote",
        nodes=[NodeSpec(name="client", core="loadgen"),
               NodeSpec(name="server")],
        links=[LinkSpec(a="client", b="server")],
        vports=[VportSpec(node="client", vport=1, mac=CLIENT_MAC),
                VportSpec(node="server", vport=2, mac=FLD_MAC)],
        flds=[FldSpec(node="server")],
        accel_fns=[AccelFnSpec(name="echo", fld="server.fld", kind="echo",
                               vport=2, units=units)],
        host_qps=[HostQpSpec(name="client", node="client", vport=1,
                             use_mmio_wqe=True, post_rx=1024)],
    )


def flde_echo_remote(sim: Simulator, cal: Optional[Calibration] = None,
                     units: int = 2) -> SimpleNamespace:
    """Remote FLD-E echo: client testpmd -> wire -> NIC -> FLD -> echo."""
    cal = cal or Calibration()
    spec = flde_echo_remote_spec(units)
    testbed = build(sim, spec, cal=cal)
    fn = testbed.accel("echo")
    client_qp = testbed.host_qp("client")
    flow = Flow(CLIENT_MAC, FLD_MAC, CLIENT_IP, SERVER_IP, 7000, 7001)
    loadgen = LoadGenerator(sim, client_qp, flow)
    return SimpleNamespace(client=testbed.node("client"),
                           server=testbed.node("server"),
                           runtime=fn.runtime, accel=fn.accel,
                           loadgen=loadgen, rq=fn.rq, testbed=testbed)


def flde_echo_local(sim: Simulator, cal: Optional[Calibration] = None,
                    units: int = 2) -> SimpleNamespace:
    """Local FLD-E echo: one node, eSwitch loopback between vPorts."""
    cal = cal or Calibration()
    spec = TopologySpec(
        name="flde-echo-local",
        nodes=[NodeSpec(name="local", core="loadgen")],
        vports=[VportSpec(node="local", vport=1, mac=CLIENT_MAC),
                VportSpec(node="local", vport=2, mac=FLD_MAC)],
        flds=[FldSpec(node="local")],
        accel_fns=[AccelFnSpec(name="echo", fld="local.fld", kind="echo",
                               vport=2, units=units)],
        host_qps=[HostQpSpec(name="loadgen", node="local", vport=1,
                             use_mmio_wqe=True, post_rx=1024)],
    )
    testbed = build(sim, spec, cal=cal)
    fn = testbed.accel("echo")
    qp = testbed.host_qp("loadgen")
    flow = Flow(CLIENT_MAC, FLD_MAC, CLIENT_IP, SERVER_IP, 7000, 7001)
    loadgen = LoadGenerator(sim, qp, flow)
    node = testbed.node("local")
    return SimpleNamespace(client=node, server=node, runtime=fn.runtime,
                           accel=fn.accel, loadgen=loadgen, rq=fn.rq,
                           testbed=testbed)


def cpu_echo_remote(sim: Simulator, cal: Optional[Calibration] = None,
                    jitter: bool = True) -> SimpleNamespace:
    """The CPU baseline: DPDK testpmd echoing on the server host."""
    cal = cal or Calibration()
    spec = TopologySpec(
        name="cpu-echo-remote",
        nodes=[NodeSpec(name="client", core="loadgen"),
               NodeSpec(name="server",
                        core="app" if jitter else "app-nojitter")],
        links=[LinkSpec(a="client", b="server")],
        vports=[VportSpec(node="client", vport=1, mac=CLIENT_MAC),
                VportSpec(node="server", vport=1, mac=SERVER_MAC)],
        host_qps=[HostQpSpec(name="client", node="client", vport=1,
                             use_mmio_wqe=True, post_rx=1024),
                  HostQpSpec(name="server", node="server", vport=1,
                             use_mmio_wqe=True, post_rx=1024)],
    )
    testbed = build(sim, spec, cal=cal)
    server_qp = testbed.host_qp("server")
    echo = EchoApp(server_qp)
    flow = Flow(CLIENT_MAC, SERVER_MAC, CLIENT_IP, SERVER_IP, 7000, 7001)
    loadgen = LoadGenerator(sim, testbed.host_qp("client"), flow)
    return SimpleNamespace(client=testbed.node("client"),
                           server=testbed.node("server"), echo=echo,
                           loadgen=loadgen, testbed=testbed)


def fldr_echo(sim: Simulator, cal: Optional[Calibration] = None,
              local: bool = False, units: int = 2) -> SimpleNamespace:
    """FLD-R echo: a host RDMA client against an FLD echo accelerator."""
    cal = cal or Calibration()
    if local:
        spec = TopologySpec(
            name="fldr-echo-local",
            nodes=[NodeSpec(name="local", core="loadgen")],
            vports=[VportSpec(node="local", vport=1, mac=CLIENT_MAC),
                    VportSpec(node="local", vport=2, mac=FLD_MAC)],
            flds=[FldSpec(node="local")],
        )
    else:
        spec = TopologySpec(
            name="fldr-echo-remote",
            nodes=[NodeSpec(name="client", core="loadgen"),
                   NodeSpec(name="server")],
            links=[LinkSpec(a="client", b="server")],
            vports=[VportSpec(node="client", vport=1, mac=CLIENT_MAC),
                    VportSpec(node="server", vport=2, mac=FLD_MAC)],
            flds=[FldSpec(node="server")],
        )
    testbed = build(sim, spec, cal=cal)
    if local:
        client = server = testbed.node("local")
        runtime = testbed.fld("local.fld")
    else:
        client, server = testbed.node("client"), testbed.node("server")
        runtime = testbed.fld("server.fld")
    control = FldRControlPlane(runtime, vport=2, mac=FLD_MAC, ip=SERVER_IP)
    accel = RdmaEchoAccelerator(sim, runtime.fld, units=units)
    fld_client = FldRClient(client.driver, vport=1, mac=CLIENT_MAC,
                            ip=CLIENT_IP, buffer_size=16 * 1024)
    connection = fld_client.connect(control)
    # Point the echo at the connection's reply queue.
    accel.tx_queue = connection.info.queue_id
    return SimpleNamespace(client=client, server=server, runtime=runtime,
                           accel=accel, connection=connection,
                           control=control, testbed=testbed)


def zuc_service(sim: Simulator, cal: Optional[Calibration] = None,
                units: int = 8) -> SimpleNamespace:
    """The disaggregated ZUC accelerator behind FLD-R (§8.2.1)."""
    cal = cal or Calibration()
    spec = TopologySpec(
        name="zuc-service",
        nodes=[NodeSpec(name="client", core="loadgen"),
               NodeSpec(name="server")],
        links=[LinkSpec(a="client", b="server")],
        vports=[VportSpec(node="client", vport=1, mac=CLIENT_MAC),
                VportSpec(node="server", vport=2, mac=FLD_MAC)],
        flds=[FldSpec(node="server")],
    )
    testbed = build(sim, spec, cal=cal)
    client, server = testbed.node("client"), testbed.node("server")
    runtime = testbed.fld("server.fld")
    control = FldRControlPlane(runtime, vport=2, mac=FLD_MAC, ip=SERVER_IP)
    accel = ZucAccelerator(sim, runtime.fld, units=units,
                           queue_map=control.queue_map)
    fld_client = FldRClient(client.driver, vport=1, mac=CLIENT_MAC,
                            ip=CLIENT_IP, buffer_size=16 * 1024)
    connection = fld_client.connect(control)
    return SimpleNamespace(client=client, server=server, runtime=runtime,
                           accel=accel, connection=connection,
                           control=control, calibration=cal,
                           testbed=testbed)
