"""N-tenant accelerator multiplexing on one FLD (§5.4 contexts, §9).

The paper's FLD multiplexes *accelerator functions* for many tenants on
one NIC: each tenant gets its own vPort (FDB MAC rule), its own receive
and transmit queues on the shared FLD, and its own engine.  This
experiment composes exactly that from a single declarative
:class:`~repro.topology.TopologySpec`: N functions — cycling through
echo, ZUC-encrypt-echo and IoT-HMAC-echo kinds — behind one FLD, one
load generator offering an aggregate 25 Gbps round-robin across the
tenants' flows, and per-tenant throughput/latency accounting.

With ``tenants=1`` the elaborated testbed and traffic are
event-for-event identical to the single-tenant FLD-E remote echo
(``flde_echo_remote``); a golden test pins that equivalence.
"""

from __future__ import annotations

import struct
from types import SimpleNamespace
from typing import Dict, List, Optional

from ..host import LoadGenerator
from ..net import Flow
from ..net.parse import parse_frame
from ..sim import LatencyCollector, Simulator, ThroughputMeter
from ..sweep import SweepCache, SweepPoint, run_sweep
from ..topology import (
    AccelFnSpec,
    FldSpec,
    HostQpSpec,
    LinkSpec,
    NodeSpec,
    TopologySpec,
    VportSpec,
)
from ..topology import build as build_topology
from .setups import CLIENT_IP, CLIENT_MAC, Calibration, SERVER_IP

#: Tenant ``i`` gets kind ``TENANT_KINDS[i % 3]`` — a mix of pure
#: forwarding and compute-heavy functions, so contention on the shared
#: FLD is visible in the per-tenant numbers.
TENANT_KINDS = ("echo", "zuc-echo", "iot-echo")

#: First tenant MAC == the single-tenant FLD MAC (N=1 equivalence).
_TENANT_MAC_BASE = 0x99


def tenant_mac(i: int) -> str:
    return "02:00:00:00:00:%02x" % (_TENANT_MAC_BASE + i)


def tenant_name(i: int) -> str:
    return f"tenant{i}"


def scale_tenants_spec(tenants: int, units: int = 2) -> TopologySpec:
    """N accelerator functions multiplexed on one FLD + NIC via vPorts."""
    if tenants < 1:
        raise ValueError("need at least one tenant")
    # Each tenant's receive-SRAM slice must be a power-of-two stride
    # count (MPRQ constraint): the largest one that still lets all N
    # bindings fit in the 64-stride budget of FLD's 256 KiB.
    rx_strides = 1 << max(0, (64 // tenants).bit_length() - 1)
    return TopologySpec(
        name=f"scale-tenants-{tenants}",
        nodes=[NodeSpec(name="client", core="loadgen"),
               NodeSpec(name="server")],
        links=[LinkSpec(a="client", b="server")],
        vports=([VportSpec(node="client", vport=1, mac=CLIENT_MAC)]
                + [VportSpec(node="server", vport=2 + i,
                             mac=tenant_mac(i))
                   for i in range(tenants)]),
        flds=[FldSpec(node="server")],
        # Carve FLD's 256 KiB receive SRAM evenly: N tenants each get
        # 64//N strides per buffer (the N=1 geometry is the historical
        # single-tenant default).
        accel_fns=[AccelFnSpec(name=tenant_name(i), fld="server.fld",
                               kind=TENANT_KINDS[i % len(TENANT_KINDS)],
                               vport=2 + i, units=units,
                               rx_strides=rx_strides)
                   for i in range(tenants)],
        host_qps=[HostQpSpec(name="client", node="client", vport=1,
                             use_mmio_wqe=True, post_rx=1024)],
    )


class _TenantAccounting:
    """Per-tenant RTT/throughput, attributed by ``seq % tenants``.

    Wraps the load generator's receive hook: reads the sequence stamp
    (and the generator's send timestamp) *before* delegating, because
    the generator pops the timestamp as it processes the completion.
    """

    def __init__(self, loadgen: LoadGenerator, tenants: int):
        self.loadgen = loadgen
        self.tenants = tenants
        self.latency = [LatencyCollector(f"{tenant_name(i)}-rtt")
                        for i in range(tenants)]
        self.meters = [ThroughputMeter(f"{tenant_name(i)}-rx")
                       for i in range(tenants)]
        now = loadgen.sim.now
        for meter in self.meters:
            meter.start(now)
        self._inner = loadgen._on_receive
        loadgen.qp.on_receive = self._on_receive

    def _on_receive(self, data: bytes, cqe) -> None:
        packet = parse_frame(data)
        if len(packet.payload) >= 8:
            (seq,) = struct.unpack_from("!Q", packet.payload, 0)
            sent = self.loadgen._sent_at.get(seq)
            tenant = seq % self.tenants
            now = self.loadgen.sim.now
            if sent is not None:
                self.latency[tenant].add(now - sent)
            self.meters[tenant].record(now, len(data))
        self._inner(data, cqe)


def build(tenants: int, units: int = 2,
          cal: Optional[Calibration] = None,
          telemetry=None) -> SimpleNamespace:
    """Elaborate the N-tenant testbed plus its traffic generator."""
    cal = cal or Calibration()
    sim = Simulator(telemetry=telemetry)
    spec = scale_tenants_spec(tenants, units=units)
    testbed = build_topology(sim, spec, cal=cal)
    flows = [
        Flow(CLIENT_MAC, tenant_mac(i), CLIENT_IP, SERVER_IP,
             7000, 7001 + i)
        for i in range(tenants)
    ]
    loadgen = LoadGenerator(sim, testbed.host_qp("client"), flows[0])
    accounting = _TenantAccounting(loadgen, tenants)
    return SimpleNamespace(sim=sim, spec=spec, testbed=testbed,
                           flows=flows, loadgen=loadgen,
                           accounting=accounting)


def throughput(tenants: int, size: int = 256, count: int = 400,
               units: int = 2, cal: Optional[Calibration] = None,
               telemetry=None) -> Dict:
    """One scale-tenants point: aggregate + per-tenant echo metrics.

    Pacing and deadline mirror the single-tenant echo throughput
    experiment (25 Gbps offered, 2 s simulated horizon); ``count``
    frames are dealt round-robin across the tenants' flows.
    """
    setup = build(tenants, units=units, cal=cal, telemetry=telemetry)
    sim, loadgen = setup.sim, setup.loadgen
    rate_pps = 25e9 / ((size + 24) * 8)
    labels = [tenant_name(i) for i in range(tenants)]

    def run(sim):
        yield from loadgen.run_open_loop_flows(
            setup.flows, [size] * count, rate_pps=rate_pps,
            labels=labels if tenants > 1 else None)
        yield from loadgen.drain()

    sim.spawn(run(sim))
    sim.run(until=2.0)

    acct = setup.accounting
    per_tenant: List[Dict] = []
    for i in range(tenants):
        fn = setup.testbed.accel(tenant_name(i))
        lat = acct.latency[i]
        per_tenant.append({
            "tenant": tenant_name(i),
            "kind": fn.spec.kind,
            "vport": fn.spec.vport,
            "received": acct.meters[i].packets,
            "gbps": acct.meters[i].gbps(wire_overhead_per_packet=24),
            "mean_us": lat.mean * 1e6 if len(lat) else None,
            "p99_us": lat.pct(99.0) * 1e6 if len(lat) else None,
            "accel_packets": fn.accel.stats_processed,
        })
    violations = setup.testbed.quiesce()
    return {
        "tenants": tenants,
        "size": size,
        "sent": loadgen.stats_sent,
        "received": loadgen.stats_received,
        "gbps": loadgen.rx_meter.gbps(wire_overhead_per_packet=24),
        "mpps": loadgen.rx_meter.mpps(),
        "per_tenant": per_tenant,
        "violations": len(violations),
    }


def sweep_points(tenant_counts=(1, 2, 4), size: int = 256,
                 count: int = 400) -> List[SweepPoint]:
    """One point per tenant count; the spec joins each cache key."""
    return [
        SweepPoint("scale-tenants",
                   "repro.experiments.scale_tenants:throughput",
                   {"tenants": tenants, "size": size, "count": count},
                   topology=scale_tenants_spec(tenants).to_dict())
        for tenants in tenant_counts
    ]


def sweep(tenant_counts=(1, 2, 4), size: int = 256, count: int = 400,
          jobs: int = 1, cache: Optional[SweepCache] = None) -> List[Dict]:
    return run_sweep(sweep_points(tenant_counts, size, count),
                     jobs=jobs, cache=cache).rows
