"""Match-action programs in the FLD datapath (repro.prog, ISSUE 6).

Four example programs run against declarative testbeds, exercising the
whole stack: verifier + loader through the firmware command channel,
rx-hook interpretation ahead of the accelerator, and (for the load
balancer) redirect re-injection through the eswitch:

* **firewall** — one echo tenant, four flows; a blocklist map drops two
  of the four UDP destination ports before the accelerator sees them.
* **lb** — an L4 load balancer function fronting two backend echo
  functions on the same FLD: the program rewrites the destination MAC
  and hairpins the packet out of the LB vPort; the FDB loops it back to
  the chosen backend.  The LB function's own accelerator stays idle.
* **nat** — static destination-port translation; every packet takes the
  ``modify`` verdict and still echoes back to the client.
* **ddos** — a token-bucket filter (one bucket per destination port):
  each flow's first ``burst`` packets pass, the rest drop, and the
  bucket state lives in firmware-owned cuckoo maps.

Every scenario reports per-verdict counters (read back through
``QueryObject``), per-program interpretation latency from the
``prog.<name>`` spans, per-function accelerator counts, and the
invariant-audit violation count — drops end their packet's trace, so a
clean run audits complete even when most packets die in the program.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..host import LoadGenerator
from ..net import Flow
from ..prog.programs import (
    ddos_filter,
    firewall,
    load_balancer,
    mac_to_int,
    nat,
    passthrough,
)
from ..sim import Simulator
from ..telemetry import Telemetry
from ..telemetry.audit import audit_all
from ..topology import (
    AccelFnSpec,
    FldSpec,
    HostQpSpec,
    LinkSpec,
    NodeSpec,
    TopologySpec,
    VportSpec,
)
from ..topology import build as build_topology
from .scale_tenants import tenant_mac
from .setups import CLIENT_IP, CLIENT_MAC, Calibration, SERVER_IP

SCENARIOS = ("firewall", "lb", "nat", "ddos")

#: Token bucket used by the ddos scenario: at 25 Gbps offered load the
#: whole burst arrives in well under a refill interval, so each flow
#: passes exactly ``burst`` packets and drops the rest.
DDOS_RATE_PPS = 2_000
DDOS_BURST = 20

#: UDP destination ports the firewall scenario blocks (of 7001..7004).
BLOCKED_PORTS = (7003, 7004)

#: External -> internal destination-port translations for nat.
NAT_TRANSLATIONS = {7001: 7101, 7002: 7102}


def prog_spec(scenario: str) -> TopologySpec:
    """The testbed for one scenario: echo functions behind one FLD.

    All scenarios ingress at the first function's vPort (its MAC is the
    flows' destination); ``lb`` adds two backend echo functions whose
    vPorts the redirected packets loop back into.
    """
    if scenario == "lb":
        # Every packet ingresses at the LB front end, so the 64-stride
        # receive-SRAM budget is carved asymmetrically: half to the LB
        # binding, a quarter to each backend (which only ever sees its
        # share of the redirected traffic).
        fns = (("lb", 32), ("b0", 16), ("b1", 16))
    else:
        fns = (("tenant0", 64),)
    return TopologySpec(
        name=f"prog-{scenario}",
        nodes=[NodeSpec(name="client", core="loadgen"),
               NodeSpec(name="server")],
        links=[LinkSpec(a="client", b="server")],
        vports=([VportSpec(node="client", vport=1, mac=CLIENT_MAC)]
                + [VportSpec(node="server", vport=2 + i,
                             mac=tenant_mac(i))
                   for i in range(len(fns))]),
        flds=[FldSpec(node="server")],
        accel_fns=[AccelFnSpec(name=name, fld="server.fld", kind="echo",
                               vport=2 + i, units=2,
                               rx_strides=rx_strides)
                   for i, (name, rx_strides) in enumerate(fns)],
        host_qps=[HostQpSpec(name="client", node="client", vport=1,
                             use_mmio_wqe=True, post_rx=1024)],
    )


def _scenario_flows(scenario: str) -> List[Flow]:
    ports = {"firewall": 4, "lb": 4, "nat": 2, "ddos": 2}[scenario]
    return [Flow(CLIENT_MAC, tenant_mac(0), CLIENT_IP, SERVER_IP,
                 7000, 7001 + i)
            for i in range(ports)]


def _scenario_program(scenario: str):
    """(program, map specs) — each map spec is (capacity, entries)."""
    if scenario == "firewall":
        return firewall(), [(64, {port: 1 for port in BLOCKED_PORTS})]
    if scenario == "lb":
        backends = {0: mac_to_int(tenant_mac(1)),
                    1: mac_to_int(tenant_mac(2))}
        return load_balancer(2, vport=2), [(64, backends)]
    if scenario == "nat":
        return nat(), [(64, dict(NAT_TRANSLATIONS))]
    if scenario == "ddos":
        return ddos_filter(DDOS_RATE_PPS, DDOS_BURST), [(256, {}),
                                                        (256, {})]
    raise ValueError(f"unknown scenario {scenario!r} "
                     f"(one of {', '.join(SCENARIOS)})")


def _prog_latency_us(spans, name: str) -> Dict:
    """Mean/p99 of the ``prog.<name>`` span durations, in microseconds."""
    stage = f"prog.{name}"
    durations = sorted(
        span.duration
        for trace in spans.traces
        for span in trace.spans
        if span.stage == stage and span.end is not None)
    if not durations:
        return {"spans": 0, "mean_us": None, "p99_us": None}
    p99 = durations[min(len(durations) - 1,
                        int(round(0.99 * (len(durations) - 1))))]
    return {"spans": len(durations),
            "mean_us": sum(durations) / len(durations) * 1e6,
            "p99_us": p99 * 1e6}


def run_scenario(scenario: str, size: int = 256, count: int = 400,
                 cal: Optional[Calibration] = None) -> Dict:
    """One scenario end-to-end: build, load, attach, measure, tear down.

    The program and its maps are created, populated, attached, detached
    and destroyed strictly through the firmware command channel — the
    same lifecycle a real driver would drive — and the run finishes
    with a full invariant audit plus testbed teardown.
    """
    program, map_specs = _scenario_program(scenario)
    cal = cal or Calibration()
    telemetry = Telemetry(trace=False, spans=True, span_sample_rate=1)
    sim = Simulator(telemetry=telemetry)
    testbed = build_topology(sim, prog_spec(scenario), cal=cal)
    runtime = testbed.fld("server.fld")
    ctrl = runtime.ctrl

    maps = []
    for capacity, entries in map_specs:
        prog_map = ctrl.create_prog_map(capacity=capacity)
        for key, value in entries.items():
            ctrl.map_set(prog_map, key, value)
        maps.append(prog_map)
    prog = ctrl.create_prog(program, maps)
    ingress = testbed.accel("lb" if scenario == "lb" else "tenant0")
    binding = runtime.rx_binding_of(ingress.rq)
    ctrl.attach_prog(runtime.fld, prog, "rx", binding)

    flows = _scenario_flows(scenario)
    loadgen = LoadGenerator(sim, testbed.host_qp("client"), flows[0])
    # The lb hairpin sends every packet through the shared FLD twice
    # (LB binding, then backend binding), so its lossless offered load
    # is half the single-pass scenarios'.
    offered_gbps = 12.5e9 if scenario == "lb" else 25e9
    rate_pps = offered_gbps / ((size + 24) * 8)

    def run(sim):
        yield from loadgen.run_open_loop_flows(
            flows, [size] * count, rate_pps=rate_pps)
        yield from loadgen.drain()

    sim.spawn(run(sim))
    sim.run(until=2.0)

    info = ctrl.query(prog)
    latency = _prog_latency_us(telemetry.spans, program.name)
    per_fn = [{"fn": fn_spec.name, "vport": fn_spec.vport,
               "accel_packets": testbed.accel(fn_spec.name)
               .accel.stats_processed}
              for fn_spec in testbed.spec.accel_fns]
    map_stats = [prog_map.stats_dict() for prog_map in maps]

    # Full firmware-path lifecycle: detach unpins the program, destroy
    # order (program before maps) satisfies the dependency refcounts.
    ctrl.detach_prog(runtime.fld, "rx", binding)
    ctrl.destroy(prog)
    for prog_map in maps:
        ctrl.destroy(prog_map)

    lat = loadgen.latency
    violations = (testbed.quiesce()
                  + audit_all(spans=telemetry.spans))
    testbed.teardown()
    return {
        "scenario": scenario,
        "program": program.name,
        "size": size,
        "count": count,
        "sent": loadgen.stats_sent,
        "received": loadgen.stats_received,
        "gbps": loadgen.rx_meter.gbps(wire_overhead_per_packet=24),
        "rtt_mean_us": lat.mean * 1e6 if len(lat) else None,
        "rtt_p99_us": lat.pct(99.0) * 1e6 if len(lat) else None,
        "verdicts": info["counters"],
        "prog_latency": latency,
        "per_fn": per_fn,
        "maps": map_stats,
        "violations": len(violations),
    }


def run_all(size: int = 256, count: int = 400,
            cal: Optional[Calibration] = None) -> List[Dict]:
    return [run_scenario(scenario, size=size, count=count, cal=cal)
            for scenario in SCENARIOS]


# -- NULL fast path ------------------------------------------------------

def echo_fingerprint(size: int = 256, count: int = 200,
                     touch_prog: bool = False,
                     cal: Optional[Calibration] = None) -> Dict:
    """A single-tenant echo run, fingerprinted for bit-identity checks.

    With ``touch_prog=True`` the run creates, attaches, detaches and
    destroys a passthrough program *before* any traffic.  Because the
    engine restores the datapath hooks to ``None`` when the last
    program detaches, the returned fingerprint — counts and exact float
    timings — must equal the untouched run's bit for bit; the prog CI
    job and ``tests/prog`` pin that.
    """
    cal = cal or Calibration()
    sim = Simulator()
    testbed = build_topology(sim, prog_spec("firewall"), cal=cal)
    runtime = testbed.fld("server.fld")
    if touch_prog:
        fn = testbed.accel("tenant0")
        binding = runtime.rx_binding_of(fn.rq)
        prog = runtime.ctrl.create_prog(passthrough(), [])
        runtime.ctrl.attach_prog(runtime.fld, prog, "rx", binding)
        runtime.ctrl.detach_prog(runtime.fld, "rx", binding)
        runtime.ctrl.destroy(prog)
    flows = _scenario_flows("firewall")
    loadgen = LoadGenerator(sim, testbed.host_qp("client"), flows[0])
    rate_pps = 25e9 / ((size + 24) * 8)

    def run(sim):
        yield from loadgen.run_open_loop_flows(
            flows, [size] * count, rate_pps=rate_pps)
        yield from loadgen.drain()

    sim.spawn(run(sim))
    sim.run(until=2.0)
    lat = loadgen.latency
    fingerprint = {
        "sent": loadgen.stats_sent,
        "received": loadgen.stats_received,
        "gbps": loadgen.rx_meter.gbps(wire_overhead_per_packet=24),
        "mpps": loadgen.rx_meter.mpps(),
        "rtt_mean": lat.mean if len(lat) else None,
        "rtt_p99": lat.pct(99.0) if len(lat) else None,
        "accel_packets": testbed.accel("tenant0").accel.stats_processed,
        "violations": len(testbed.quiesce()),
    }
    testbed.teardown()
    return fingerprint
